"""Sharing-pattern classification over recorded traces.

The paper's §2 motivates Ghostwriter with the difficulty of *finding*
false sharing ("only implicitly defined in the source code").  This
module is the detection tool the reproduction ships: given a trace, it
classifies every cache block by how cores touch it —

* ``PRIVATE``       — one core only;
* ``READ_SHARED``   — many readers, at most one writer that only wrote
  words nobody else touches before any reader... (strictly: no writes
  from a second core);
* ``TRUE_SHARED``   — multiple cores write the *same word*;
* ``FALSE_SHARED``  — multiple cores write the block but never the same
  word: exactly the pattern Ghostwriter's GS/GI absorb;
* ``MIXED``         — both true and false sharing present.

It also estimates per-block contention (write interleavings between
different cores) so blocks can be ranked by expected ping-pong.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.trace.record import Trace

__all__ = ["SharingPattern", "BlockReport", "classify_trace",
           "false_sharing_candidates"]


class SharingPattern(enum.Enum):
    """How the cores of a run touched one cache block."""
    PRIVATE = "private"
    READ_SHARED = "read-shared"
    FALSE_SHARED = "false-shared"
    TRUE_SHARED = "true-shared"
    MIXED = "mixed"


@dataclass(frozen=True, slots=True)
class BlockReport:
    block: int
    pattern: SharingPattern
    readers: int
    writers: int
    accesses: int
    writes: int
    #: consecutive-write pairs from different cores (ping-pong proxy)
    write_interleavings: int

    @property
    def contention_score(self) -> float:
        """Write ping-pongs per write: 1.0 means every write alternated cores."""
        return self.write_interleavings / max(self.writes, 1)


def classify_trace(trace: Trace) -> dict[int, BlockReport]:
    """Classify every block touched by the trace."""
    if len(trace) == 0:
        return {}
    blocks = trace.blocks()
    is_write = trace.is_write()
    order = np.argsort(trace.cycles, kind="stable")

    reports: dict[int, BlockReport] = {}
    for block in np.unique(blocks):
        mask = blocks == block
        cores = trace.cores[mask]
        writes_mask = is_write[mask]
        addrs = trace.addrs[mask]

        readers = set(cores[~writes_mask].tolist())
        writers = set(cores[writes_mask].tolist())
        n_writes = int(writes_mask.sum())

        # word-level: does any word see writes from more than one core?
        true_shared = False
        if len(writers) > 1:
            for word in np.unique(addrs[writes_mask]):
                word_writers = set(
                    cores[writes_mask & (addrs == word)].tolist()
                )
                if len(word_writers) > 1:
                    true_shared = True
                    break
        # word-level: do different cores write different words?
        false_shared = False
        if len(writers) > 1:
            by_word: dict[int, set[int]] = {}
            for word, core in zip(addrs[writes_mask].tolist(),
                                  cores[writes_mask].tolist()):
                by_word.setdefault(word, set()).add(core)
            writer_words = {
                w: cs for w, cs in by_word.items()
            }
            # a pair of words with disjoint single writers => false sharing
            single_owned = [
                (w, next(iter(cs))) for w, cs in writer_words.items()
                if len(cs) == 1
            ]
            owners = {o for _w, o in single_owned}
            false_shared = len(owners) > 1

        if len(readers | writers) <= 1:
            pattern = SharingPattern.PRIVATE
        elif not writers or len(writers) == 1 and not true_shared and not false_shared:
            pattern = SharingPattern.READ_SHARED
        elif true_shared and false_shared:
            pattern = SharingPattern.MIXED
        elif true_shared:
            pattern = SharingPattern.TRUE_SHARED
        elif false_shared:
            pattern = SharingPattern.FALSE_SHARED
        else:
            pattern = SharingPattern.READ_SHARED

        # write interleavings in time order
        interleavings = 0
        if n_writes > 1:
            seq_mask = mask[order]
            w_seq = is_write[order][seq_mask]
            c_seq = trace.cores[order][seq_mask]
            wc = c_seq[w_seq]
            interleavings = int((wc[1:] != wc[:-1]).sum())

        reports[int(block)] = BlockReport(
            block=int(block), pattern=pattern,
            readers=len(readers), writers=len(writers),
            accesses=int(mask.sum()), writes=n_writes,
            write_interleavings=interleavings,
        )
    return reports


def false_sharing_candidates(trace: Trace,
                             min_interleavings: int = 4) -> list[BlockReport]:
    """Blocks most likely to benefit from Ghostwriter annotation, ranked
    by contention: false/mixed-shared blocks with real write ping-pong."""
    reports = classify_trace(trace)
    hits = [
        r for r in reports.values()
        if r.pattern in (SharingPattern.FALSE_SHARED, SharingPattern.MIXED)
        and r.write_interleavings >= min_interleavings
    ]
    return sorted(hits, key=lambda r: r.write_interleavings, reverse=True)
