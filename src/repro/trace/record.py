"""Memory-reference trace recording.

Attaching a :class:`TraceRecorder` to a machine captures every L1 access
(cycle, core, access type, address, store value, hit/miss) into columnar
numpy arrays.  Traces feed three consumers:

* :mod:`repro.trace.sharing` — sharing-pattern classification (the
  paper's §2 motivation: finding false sharing),
* :mod:`repro.trace.replay` — trace-driven re-simulation under a
  different protocol configuration,
* offline storage (``save``/``load`` round-trip through ``.npz``).
"""
from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.types import AccessType
from repro.obs.events import Event, EventKind
from repro.sim.machine import Machine

__all__ = ["Trace", "TraceRecorder"]

_ATYPE_CODE = {
    AccessType.LOAD: 0,
    AccessType.STORE: 1,
    AccessType.SCRIBBLE: 2,
}
_CODE_ATYPE = {v: k for k, v in _ATYPE_CODE.items()}
_WHAT_CODE = {a.value: code for a, code in _ATYPE_CODE.items()}


class Trace:
    """An immutable columnar access trace."""

    __slots__ = ("cycles", "cores", "atypes", "addrs", "values", "hits",
                 "block_bytes")

    def __init__(self, cycles, cores, atypes, addrs, values, hits,
                 block_bytes: int = 64) -> None:
        self.cycles = np.asarray(cycles, dtype=np.int64)
        self.cores = np.asarray(cores, dtype=np.int32)
        self.atypes = np.asarray(atypes, dtype=np.int8)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.int64)
        self.hits = np.asarray(hits, dtype=bool)
        self.block_bytes = block_bytes
        n = len(self.cycles)
        for arr in (self.cores, self.atypes, self.addrs, self.values,
                    self.hits):
            if len(arr) != n:
                raise ValueError("trace columns have mismatched lengths")

    def __len__(self) -> int:
        return len(self.cycles)

    # -- derived views -----------------------------------------------------
    def blocks(self) -> np.ndarray:
        """Block-aligned address of every access."""
        return self.addrs - (self.addrs % self.block_bytes)

    def atype_of(self, i: int) -> AccessType:
        """Access type of the i-th trace entry."""
        return _CODE_ATYPE[int(self.atypes[i])]

    def is_write(self) -> np.ndarray:
        """Boolean mask of stores and scribbles."""
        return self.atypes != _ATYPE_CODE[AccessType.LOAD]

    def for_core(self, core: int) -> "Trace":
        """Sub-trace of one core's accesses (program order preserved)."""
        mask = self.cores == core
        return Trace(
            self.cycles[mask], self.cores[mask], self.atypes[mask],
            self.addrs[mask], self.values[mask], self.hits[mask],
            self.block_bytes,
        )

    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return float((~self.hits).mean()) if len(self) else 0.0

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the trace as compressed ``.npz``."""
        np.savez_compressed(
            Path(path),
            cycles=self.cycles, cores=self.cores, atypes=self.atypes,
            addrs=self.addrs, values=self.values, hits=self.hits,
            block_bytes=np.int64(self.block_bytes),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace saved with :meth:`save`."""
        data = np.load(Path(path))
        return cls(
            data["cycles"], data["cores"], data["atypes"], data["addrs"],
            data["values"], data["hits"], int(data["block_bytes"]),
        )


class TraceRecorder:
    """Collects the ACCESS events of a machine into a :class:`Trace`.

    Subscribes to the machine's :class:`~repro.obs.events.EventBus`
    (attaching one if the machine is not tracing yet) and filters for
    :attr:`~repro.obs.events.EventKind.ACCESS`, so it composes with any
    other bus consumer — the old private per-L1 hook is no longer used.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._cycles: list[int] = []
        self._cores: list[int] = []
        self._atypes: list[int] = []
        self._addrs: list[int] = []
        self._values: list[int] = []
        self._hits: list[bool] = []
        self._bus = machine.attach_bus()
        self._bus.subscribe(self._record, kinds={EventKind.ACCESS})

    def _record(self, event: Event) -> None:
        self._cycles.append(event.cycle)
        self._cores.append(event.node)
        self._atypes.append(_WHAT_CODE[event.what])
        self._addrs.append(event.addr)
        self._values.append(event.value)
        self._hits.append(event.info == "hit")

    def detach(self) -> None:
        """Stop recording (unsubscribe from the machine's bus)."""
        self._bus.unsubscribe(self._record)

    def trace(self) -> Trace:
        """Snapshot the recorded accesses as an immutable Trace."""
        return Trace(
            self._cycles, self._cores, self._atypes, self._addrs,
            self._values, self._hits, self.machine.cfg.block_bytes,
        )

    def __len__(self) -> int:
        return len(self._cycles)
