"""Trace-driven re-simulation.

Replays a recorded trace through a *fresh* machine, typically under a
different protocol configuration — the classic trace-driven methodology
for protocol studies: record once on the baseline, replay under every
candidate design.

Each core's accesses are replayed in recorded program order with
``Compute`` gaps reconstructed from the recorded inter-access cycle
deltas (capped, so a slow recorded run does not pad a fast replay).
Recorded scribbles stay scribbles; ``SetAprx`` is issued up front.

Traces lower *directly* to :class:`~repro.isa.compiled.CompiledProgram`
columns (:func:`repro.isa.compiled.lower_trace`) — a recorded trace is
already the flat op stream the compiled interpreter wants, so replay
skips the per-access dataclass generator entirely.

Replay is *timing-faithful in structure only*: the replayed machine
re-decides hits/misses and coherence actions itself, which is exactly
the point of replaying under a different protocol.
"""
from __future__ import annotations

import numpy as np

from repro.common.config import SimConfig
from repro.isa.compiled import lower_trace
from repro.sim.machine import Machine
from repro.trace.record import Trace

__all__ = ["replay_trace"]


def replay_trace(trace: Trace, cfg: SimConfig,
                 initial_memory: dict[int, list[int]] | None = None,
                 max_cycles: int = 500_000_000) -> Machine:
    """Replay ``trace`` on a machine built from ``cfg``.

    ``initial_memory`` (block addr -> words) seeds the backing store —
    pass ``machine.backing.memory_image()`` taken *before* the recorded
    run (or the ``memory`` layer of a
    :class:`~repro.sim.state.MachineCheckpoint` blob) for value-faithful
    replay.  Returns the finished machine for stats inspection.
    """
    machine = Machine(cfg)
    if initial_memory:
        for block, words in initial_memory.items():
            machine.backing.write_block(block, words)

    cores = np.unique(trace.cores)
    if cores.size == 0:
        raise ValueError("cannot replay an empty trace")
    if int(cores.max()) >= cfg.num_cores:
        raise ValueError(
            f"trace uses core {int(cores.max())} but the machine has "
            f"{cfg.num_cores}"
        )
    for core in cores.tolist():
        sub = trace.for_core(int(core))
        prog = lower_trace(sub.cycles, sub.atypes, sub.addrs, sub.values,
                           cfg.ghostwriter.d_distance)
        machine.add_thread(int(core), prog)
    machine.run(max_cycles=max_cycles)
    machine.check_quiescent()
    return machine
