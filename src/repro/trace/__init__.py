"""Trace recording, analysis and replay."""
from repro.trace.record import Trace, TraceRecorder
from repro.trace.replay import replay_trace
from repro.trace.sharing import (
    BlockReport, SharingPattern, classify_trace, false_sharing_candidates,
)

__all__ = [
    "Trace", "TraceRecorder", "replay_trace",
    "BlockReport", "SharingPattern", "classify_trace",
    "false_sharing_candidates",
]
