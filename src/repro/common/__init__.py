"""repro.common subpackage."""
