"""Core enumerations and small value types shared across the simulator.

Everything here is deliberately dependency-free so that every other
subpackage (caches, coherence, NoC, workloads) can import it without
cycles.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "AccessType",
    "CoherenceState",
    "DirState",
    "MessageType",
    "MessageClass",
    "WORD_BYTES",
    "WORD_BITS",
    "WORD_MASK",
]

#: All functional memory in the simulator is word-granular: 32-bit words.
WORD_BYTES = 4
WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF


class AccessType(enum.Enum):
    """Kind of memory reference a core issues to its L1."""

    LOAD = "load"
    STORE = "store"
    #: Approximate store (the paper's ``scribble`` instruction).  Falls back
    #: to a conventional STORE whenever the value-similarity check fails.
    SCRIBBLE = "scribble"

    @property
    def is_write(self) -> bool:
        """True for stores and scribbles."""
        return self is not AccessType.LOAD


class CoherenceState(enum.Enum):
    """L1 cache-block states.

    Stable MESI states plus Ghostwriter's approximate states (``GS``,
    ``GI``) and the transient states of the blocking directory protocol.
    ``I`` at the L1 means *tag present but invalid* when the tag exists
    (matching Fig. 3 of the paper); a genuinely absent block simply has no
    entry in the cache.
    """

    # --- stable ---
    I = "I"          # noqa: E741 - mirrors the literature
    S = "S"
    E = "E"
    M = "M"
    #: MOESI Owned: dirty + shared; this cache supplies data on forwards
    O = "O"          # noqa: E741
    # --- Ghostwriter approximate states ---
    GS = "GS"        # locally-modified shared copy, hidden from directory
    GI = "GI"        # locally-modified invalid copy, timeout-bounded
    # --- transient (request in flight) ---
    IS_D = "IS_D"    # I -> S, waiting for data
    IM_D = "IM_D"    # I -> M, waiting for data (+acks)
    SM_D = "SM_D"    # S -> M via UPGRADE, waiting for ack/data

    @property
    def stable(self) -> bool:
        """True for non-transient states."""
        return self in _STABLE_STATES

    @property
    def transient(self) -> bool:
        """True while a transaction is in flight."""
        return not self.stable

    @property
    def readable(self) -> bool:
        """Loads hit without a coherence transaction."""
        return self in _READABLE_STATES

    @property
    def writable(self) -> bool:
        """Conventional stores hit without a coherence transaction."""
        return self in _WRITABLE_STATES

    @property
    def approximate(self) -> bool:
        """True for the Ghostwriter GS/GI states."""
        return self is CoherenceState.GS or self is CoherenceState.GI

    @property
    def owns_dirty_data(self) -> bool:
        """Block must be written back on (non-approximate) eviction."""
        return self is CoherenceState.M or self is CoherenceState.O


_STABLE_STATES = frozenset(
    {
        CoherenceState.I,
        CoherenceState.S,
        CoherenceState.E,
        CoherenceState.M,
        CoherenceState.O,
        CoherenceState.GS,
        CoherenceState.GI,
    }
)
_READABLE_STATES = frozenset(
    {
        CoherenceState.S,
        CoherenceState.E,
        CoherenceState.M,
        CoherenceState.O,
        CoherenceState.GS,
        CoherenceState.GI,
    }
)
_WRITABLE_STATES = frozenset(
    {
        CoherenceState.E,
        CoherenceState.M,
        CoherenceState.GS,
        CoherenceState.GI,
    }
)


class DirState(enum.Enum):
    """Directory-side (home) states for a block."""

    I = "I"          # noqa: E741 - no L1 holds the block
    S = "S"          # one or more read-only sharers
    EM = "EM"        # a single owner holds the block in E or M
    O = "O"          # noqa: E741 - MOESI: a dirty owner plus sharers


class MessageClass(enum.Enum):
    """Traffic class used for the Fig. 8 breakdown and NoC accounting."""

    GETS = "GETS"
    GETX = "GETX"
    UPGRADE = "UPGRADE"
    DATA = "Data"
    OTHER = "Other"


class MessageType(enum.Enum):
    """Every coherence message exchanged between L1s and directories."""

    # requests: L1 -> directory
    GETS = ("GETS", MessageClass.GETS, False)
    GETX = ("GETX", MessageClass.GETX, False)
    UPGRADE = ("UPGRADE", MessageClass.UPGRADE, False)
    PUTS = ("PUTS", MessageClass.OTHER, False)      # clean eviction notice
    PUTE = ("PUTE", MessageClass.OTHER, False)      # silent-exclusive eviction
    PUTM = ("PUTM", MessageClass.DATA, True)        # dirty writeback (data)
    # directory -> L1
    DATA = ("DATA", MessageClass.DATA, True)        # fill with data
    DATA_E = ("DATA_E", MessageClass.DATA, True)    # fill, exclusive grant
    ACK = ("ACK", MessageClass.OTHER, False)        # upgrade grant / wb ack
    INV = ("INV", MessageClass.OTHER, False)        # invalidate your copy
    #: write-update hybrid: refresh your shared copy with this data
    UPDATE = ("UPDATE", MessageClass.DATA, True)
    FWD_GETS = ("FWD_GETS", MessageClass.OTHER, False)
    FWD_GETX = ("FWD_GETX", MessageClass.OTHER, False)
    # L1 -> L1 / L1 -> directory responses
    INV_ACK = ("INV_ACK", MessageClass.OTHER, False)
    FWD_DATA = ("FWD_DATA", MessageClass.DATA, True)   # owner -> requestor
    CHAIN_DATA = ("CHAIN_DATA", MessageClass.DATA, True)  # owner -> home copy
    CHAIN_ACK = ("CHAIN_ACK", MessageClass.OTHER, False)  # owner -> home, no data
    #: MOESI: owner served the forward and *kept* the block in O
    CHAIN_ACK_OWNED = ("CHAIN_ACK_OWNED", MessageClass.OTHER, False)

    def __init__(self, label: str, klass: MessageClass, carries_data: bool):
        self.label = label
        self.klass = klass
        self.carries_data = carries_data


@dataclass(frozen=True, slots=True)
class WordAddr:
    """A validated, word-aligned byte address.

    Thin wrapper used at API boundaries (workload allocator, typed views);
    the hot simulator paths pass plain ints.
    """

    byte_addr: int

    def __post_init__(self) -> None:
        if self.byte_addr < 0:
            raise ValueError(f"negative address {self.byte_addr:#x}")
        if self.byte_addr % WORD_BYTES:
            raise ValueError(
                f"address {self.byte_addr:#x} is not {WORD_BYTES}-byte aligned"
            )

    @property
    def word_index(self) -> int:
        """The address expressed in 32-bit words."""
        return self.byte_addr // WORD_BYTES

    def __int__(self) -> int:
        return self.byte_addr
