"""Simulation configuration — the reproduction of the paper's Table 1.

Defaults mirror the paper's gem5 setup (24 in-order cores, 32 kB 2-way L1,
128 kB/core 8-way shared L2, 6x4 mesh with four corner directory
controllers, 1024-cycle GI timeout).  Every knob the evaluation sweeps
(d-distance, GI timeout, core count) is a plain dataclass field so sweeps
are `dataclasses.replace` calls.
"""
from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.noc.topologies import Topology

__all__ = [
    "CacheConfig",
    "NocConfig",
    "DramConfig",
    "GhostwriterConfig",
    "VerifyConfig",
    "FaultConfig",
    "ObsConfig",
    "SimConfig",
    "table1_rows",
    "noc_for_topology",
]


def _check_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    block_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        _check_power_of_two("cache size", self.size_bytes)
        _check_power_of_two("associativity", self.assoc)
        _check_power_of_two("block size", self.block_bytes)
        if self.hit_latency < 1:
            raise ValueError("hit latency must be >= 1 cycle")
        if self.size_bytes < self.assoc * self.block_bytes:
            raise ValueError("cache smaller than one set")

    @property
    def num_blocks(self) -> int:
        """Total cache lines."""
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (blocks / associativity)."""
        return self.num_blocks // self.assoc

    @property
    def words_per_block(self) -> int:
        """32-bit words per cache block."""
        return self.block_bytes // 4

    def set_index(self, block_addr: int) -> int:
        """Set index for a block-aligned byte address."""
        return (block_addr // self.block_bytes) % self.num_sets


@dataclass(frozen=True, slots=True)
class NocConfig:
    """Network-on-chip parameters.

    The route/latency model itself is pluggable: ``topology`` names a
    registered :class:`~repro.noc.topologies.Topology` ("mesh" — the
    paper's 6x4 2D mesh — "ring", "crossbar", or "chiplet"), reachable
    as :attr:`topo`.  ``mesh_cols``/``mesh_rows`` describe one die
    (sub-mesh for "chiplet", which multiplies them by ``chiplets``;
    ring/crossbar just linearize ``cols * rows`` nodes).
    """

    mesh_cols: int = 6
    mesh_rows: int = 4
    router_latency: int = 1
    link_latency: int = 1
    flit_bytes: int = 16
    control_msg_bytes: int = 8
    #: Node ids hosting the directory controllers; empty defers to the
    #: topology's default placement (mesh: the four Table 1 corners;
    #: ring/crossbar: evenly spread; chiplet: one gateway per chiplet).
    directory_nodes: tuple[int, ...] = ()
    #: Registered topology name (see :mod:`repro.noc.topologies`).
    topology: str = "mesh"
    #: Sub-mesh count for the "chiplet" topology; must stay 1 for the
    #: single-die topologies.
    chiplets: int = 1
    #: Latency of the gateway-to-gateway die crossing ("chiplet" only).
    chiplet_link_latency: int = 4

    def __post_init__(self) -> None:
        if self.mesh_cols < 1 or self.mesh_rows < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.chiplets < 1:
            raise ValueError("chiplet count must be positive")
        if self.chiplet_link_latency < 1:
            raise ValueError("chiplet link latency must be >= 1")
        # runtime (not import-time) registry lookup: common.config must
        # stay importable before repro.noc — same pattern as
        # SimConfig.protocol and the coherence registry
        from repro.noc.topologies import available_topologies, get_topology
        if self.topology not in available_topologies():
            raise ValueError(
                f"unknown topology {self.topology!r}; registered: "
                f"{', '.join(available_topologies())}"
            )
        topo_cls = get_topology(self.topology)
        topo_cls.check_config(self)
        if not self.directory_nodes:
            object.__setattr__(
                self, "directory_nodes",
                topo_cls.default_directory_nodes(self))
        for n in self.directory_nodes:
            if not 0 <= n < self.num_nodes:
                raise ValueError(
                    f"directory node {n} outside the {self.num_nodes}-node "
                    f"{self.topology!r} topology"
                )

    @property
    def num_nodes(self) -> int:
        """Total nodes (cols x rows, times chiplets)."""
        return self.mesh_cols * self.mesh_rows * self.chiplets

    @property
    def topo(self) -> "Topology":
        """The (memoized) topology object — the route/latency model."""
        from repro.noc.topologies import build_topology
        return build_topology(self)

    def corner_nodes(self) -> tuple[int, ...]:
        """Deprecated: the four mesh-corner node ids.  Directory
        placement is topology-defined now
        (``Topology.default_directory_nodes``)."""
        warnings.warn(
            "NocConfig.corner_nodes is deprecated; directory placement "
            "is topology-defined (see repro.noc.topologies."
            "Topology.default_directory_nodes)",
            DeprecationWarning, stacklevel=2,
        )
        c, r = self.mesh_cols, self.mesh_rows
        corners = {0, c - 1, c * (r - 1), c * r - 1}
        return tuple(sorted(corners))

    def coords(self, node: int) -> tuple[int, int]:
        """Deprecated shim: use ``NocConfig.topo.coords``."""
        warnings.warn(
            "NocConfig.coords is deprecated; use NocConfig.topo.coords "
            "(see repro.noc.topologies)",
            DeprecationWarning, stacklevel=2,
        )
        return self.topo.coords(node)

    def hops(self, src: int, dst: int) -> int:
        """Deprecated shim: use ``NocConfig.topo.hops``."""
        warnings.warn(
            "NocConfig.hops is deprecated; use NocConfig.topo.hops "
            "(see repro.noc.topologies)",
            DeprecationWarning, stacklevel=2,
        )
        return self.topo.hops(src, dst)

    def flits(self, payload_bytes: int) -> int:
        """Number of flits for a message of the given payload size."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        return -(-payload_bytes // self.flit_bytes)

    def message_latency(self, src: int, dst: int, payload_bytes: int) -> int:
        """End-to-end latency: per-hop router+link plus serialization.

        Delegates the path term to the topology; on the default mesh
        this is byte-identical to the historic
        ``hops * (router + link) + flits - 1`` arithmetic.
        """
        if src == dst:
            return self.router_latency  # local turnaround
        return (self.topo.path_latency(src, dst)
                + (self.flits(payload_bytes) - 1))

    def home_directory(self, block_addr: int, block_bytes: int) -> int:
        """NoC node of the directory controller owning a block
        (block-index interleave over ``directory_nodes``)."""
        dirs = self.directory_nodes
        if not dirs:
            raise ValueError(
                f"topology {self.topology!r} provides no directory nodes; "
                f"set NocConfig.directory_nodes explicitly"
            )
        return dirs[(block_addr // block_bytes) % len(dirs)]


@dataclass(frozen=True, slots=True)
class DramConfig:
    """Main-memory timing (DDR3-1600-class, heavily abstracted)."""

    access_latency: int = 100
    num_banks: int = 8
    bank_busy_cycles: int = 24
    size_bytes: int = 2 * 1024**3

    def __post_init__(self) -> None:
        if self.access_latency < 1:
            raise ValueError("DRAM latency must be >= 1")
        _check_power_of_two("DRAM banks", self.num_banks)


@dataclass(frozen=True, slots=True)
class GhostwriterConfig:
    """Knobs of the Ghostwriter protocol extension."""

    #: Approximation on/off switch: False strips the GS/GI states from
    #: whatever ``SimConfig.protocol`` names, leaving its precise base
    #: (the paper's "0 d-distance" bars).  Protocol *selection* lives in
    #: ``SimConfig.protocol`` / :mod:`repro.coherence.policy`.
    enabled: bool = True
    #: Maximum number of differing least-significant bits for a scribble
    #: to be serviced approximately.
    d_distance: int = 4
    #: Periodic flash-invalidate interval for GI blocks, in cycles.
    gi_timeout: int = 1024
    #: Similarity semantics for the scribe comparator.  "bitwise" is the
    #: paper's XNOR d-distance; "arithmetic" treats values as signed ints
    #: and accepts |a - b| < 2**d — the extension the paper leaves as
    #: future work (§3.4: -1 vs 0 are arithmetically close but 32-distance
    #: apart bit-wise).
    similarity_mode: str = "bitwise"
    #: Optional bound on the number of approximate stores absorbed per
    #: GS/GI episode; once exceeded, the next scribble falls back to the
    #: conventional path, re-cohering the block.  Implements the
    #: light-weight runtime error-bounding the paper points to in §3.5.
    #: None disables the budget.
    approx_write_budget: int | None = None
    #: How a dissimilar scribble falls back from GS.  False (default):
    #: UPGRADE in place, publishing the whole locally-modified block —
    #: other threads' words are re-published from the holder's (d-similar,
    #: slightly stale) view, which measures as both faster and lower-error
    #: (see benchmarks/test_ablation_gs_fallback.py).  True: a full GETX
    #: that discards the divergent copy and publishes only the store's own
    #: word.  Exposed as an ablation knob.
    gs_fallback_getx: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.d_distance <= 32:
            raise ValueError("d-distance must be in [0, 32]")
        if self.gi_timeout < 1:
            raise ValueError("GI timeout must be positive")
        if self.similarity_mode not in ("bitwise", "arithmetic"):
            raise ValueError(
                f"unknown similarity mode {self.similarity_mode!r}"
            )
        if self.approx_write_budget is not None and self.approx_write_budget < 1:
            raise ValueError("approx write budget must be positive")


@dataclass(frozen=True, slots=True)
class VerifyConfig:
    """Knobs of the verification layer (:mod:`repro.verify`)."""

    #: Run ``check_quiescent()`` + ``check_coherence_invariants()`` at the
    #: end of every harness run (``Workload.run``).
    check_invariants: bool = True
    #: Cycle period of the *runtime* invariant monitor; 0 disables it.
    #: When enabled the monitor re-checks SWMR / directory agreement on
    #: every quiescent block while the simulation is still running.
    monitor_period: int = 0
    #: Also check coherent (non-GS/GI) cache lines word-by-word against
    #: the golden reference memory on every monitor pass.
    check_values: bool = True
    #: Polling interval of the progress watchdog, in cycles; 0 disables
    #: it.  The watchdog replaces the blind ``max_cycles`` abort: if no
    #: core retires work for ``watchdog_stalls`` consecutive intervals it
    #: raises :class:`repro.verify.DeadlockError` with a diagnostic dump.
    watchdog_interval: int = 0
    #: Consecutive no-progress intervals tolerated before raising.
    watchdog_stalls: int = 2
    #: Cycle period of the machine checkpoint recorder; 0 disables it.
    #: When enabled, ``Machine.run`` steps the event queue in
    #: period-sized windows and captures a restorable
    #: :class:`repro.sim.state.MachineCheckpoint` at every safe
    #: boundary (all events tagged, network empty, L1s/directories
    #: quiescent); unsafe boundaries are skipped, never fatal.
    checkpoint_period: int = 0

    def __post_init__(self) -> None:
        if self.monitor_period < 0:
            raise ValueError("monitor period cannot be negative")
        if self.watchdog_interval < 0:
            raise ValueError("watchdog interval cannot be negative")
        if self.watchdog_stalls < 1:
            raise ValueError("watchdog stall threshold must be >= 1")
        if self.checkpoint_period < 0:
            raise ValueError("checkpoint period cannot be negative")


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Knobs of the fault-injection layer (:mod:`repro.faults`).

    All injection is deterministic given ``seed``; a config with
    ``cache_rate == msg_rate == delay_jitter == 0`` injects nothing.
    """

    #: Expected cache-resident bit-flip events per million cycles
    #: (Poisson arrivals; each event corrupts one resident L1 word).
    cache_rate: float = 0.0
    #: Per-data-message probability of corrupting the NoC payload.
    msg_rate: float = 0.0
    #: Max extra delivery delay (cycles) added uniformly at random to
    #: every NoC message — timing jitter for race shaking.
    delay_jitter: int = 0
    #: Bits flipped per fault event (single- or multi-bit upsets).
    bits: int = 1
    #: RNG seed for the injector.
    seed: int = 1
    #: What the monitor does when the data-value invariant catches a
    #: corrupted coherent line: "abort" raises, "recover" invalidates the
    #: line and refetches coherent data (restoring in place when the line
    #: is the only copy), "log" counts it and continues.
    policy: str = "abort"

    def __post_init__(self) -> None:
        if self.cache_rate < 0 or self.msg_rate < 0:
            raise ValueError("fault rates cannot be negative")
        if not 0.0 <= self.msg_rate <= 1.0:
            raise ValueError("msg_rate is a probability in [0, 1]")
        if self.delay_jitter < 0:
            raise ValueError("delay jitter cannot be negative")
        if not 1 <= self.bits <= 32:
            raise ValueError("bits per fault must be in [1, 32]")
        if self.policy not in ("abort", "recover", "log"):
            raise ValueError(f"unknown fault policy {self.policy!r}")

    @property
    def active(self) -> bool:
        """True when any fault mechanism is enabled."""
        return bool(self.cache_rate or self.msg_rate or self.delay_jitter)


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Knobs of the observability layer (:mod:`repro.obs`).

    Everything defaults to off; a default-constructed machine carries no
    event bus and its hot paths pay one ``is None`` attribute check.
    """

    #: Attach an :class:`~repro.obs.events.EventBus` and record every
    #: typed protocol event (state transitions, coherence messages, MSHR
    #: stalls, scribble accept/reject) into an in-memory recorder.
    trace_events: bool = False
    #: Cycle period of the metrics timeline sampler; 0 disables it.  Each
    #: sample snapshots traffic, miss-class and approximate-residency
    #: counters into columnar numpy series.
    timeline_interval: int = 0
    #: Depth of the ring-buffer flight recorder whose tail is attached to
    #: deadlock/invariant-violation dumps; 0 = off (but ``trace_events``
    #: implies a default-depth ring, see :attr:`flight_depth`).
    flight_recorder: int = 0

    #: Ring depth implied by ``trace_events`` when ``flight_recorder`` is
    #: left at 0.
    DEFAULT_FLIGHT_DEPTH = 256

    def __post_init__(self) -> None:
        if self.timeline_interval < 0:
            raise ValueError("timeline interval cannot be negative")
        if self.flight_recorder < 0:
            raise ValueError("flight-recorder depth cannot be negative")

    @property
    def flight_depth(self) -> int:
        """Effective flight-recorder ring depth."""
        if self.flight_recorder:
            return self.flight_recorder
        return self.DEFAULT_FLIGHT_DEPTH if self.trace_events else 0

    @property
    def bus_active(self) -> bool:
        """True when the machine needs an event bus at construction."""
        return self.trace_events or self.flight_depth > 0

    @property
    def active(self) -> bool:
        """True when any observability mechanism is enabled."""
        return self.bus_active or self.timeline_interval > 0


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Top-level simulated-machine configuration (paper Table 1)."""

    num_cores: int = 24
    core_freq_ghz: float = 1.0
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2, 64, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(128 * 1024, 8, 64, 10))
    noc: NocConfig = field(default_factory=NocConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    ghostwriter: GhostwriterConfig = field(default_factory=GhostwriterConfig)
    verify: VerifyConfig = field(default_factory=VerifyConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Coherence protocol, by registry name (see
    #: :mod:`repro.coherence.policy`): "ghostwriter" (the paper's full
    #: protocol, the default), "mesi"/"moesi" (precise baselines), the
    #: "gw-gs-only"/"gw-gi-only" ablations, "ghostwriter-moesi", and the
    #: non-paper "self-invalidate"/"update-hybrid" variants.  The legacy
    #: spelling — "mesi"/"moesi" with ``ghostwriter.enabled=True`` —
    #: still resolves to the matching Ghostwriter variant, with a
    #: DeprecationWarning; ``ghostwriter.enabled=False`` strips the
    #: approximate states from any variant (the d-distance-0 baseline
    #: legs), so the default here is behavior-identical to the historic
    #: ``protocol="mesi"`` + ``enabled`` encoding.
    protocol: str = "ghostwriter"
    #: Directory state lookup/update occupancy per transaction, in
    #: cycles.  Serializes same-block transactions at the home, which is
    #: what makes heavy false sharing collapse (Fig. 1).
    dir_access_latency: int = 6
    #: Max consecutive L1-hit ops a core executes per scheduler event.
    #: 1 (default) gives strict event ordering — larger values batch hits
    #: for simulator speed but let a core slip past in-flight
    #: invalidations, *understating* contention on heavily false-shared
    #: blocks (measurably so on Fig. 1/Fig. 10).
    core_quantum: int = 1
    #: Execute thread programs through the compiled-program layer
    #: (record-once columnar op streams + the sweep-wide program cache,
    #: see repro.isa.compiled).  Results are bit-identical either way —
    #: the knob exists for the equivalence suite and for debugging with
    #: the plain generator interpreter.
    compile_programs: bool = True
    #: Vectorized hit-run fast lane (repro.core.hitrun): execute whole
    #: runs of guaranteed-L1-hit compiled ops as numpy kernels instead
    #: of one scheduler event per op.  Bit-identical to the scalar path
    #: by construction (the lane only merges complete pure-hit quanta
    #: and falls back to event-driven execution at the first op that
    #: could miss, observe, or transition state) — the knob exists for
    #: the equivalence suite and A/B debugging, like
    #: ``compile_programs``.  Requires ``compile_programs``; ignored
    #: when tracing or monitoring hooks are attached (those force the
    #: scalar path dynamically).
    fast_lane: bool = True

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.num_cores > self.noc.num_nodes:
            raise ValueError(
                f"{self.num_cores} cores do not fit a "
                f"{self.noc.num_nodes}-node {self.noc.topology!r} topology "
                f"(see noc_for_topology)"
            )
        if self.l1.block_bytes != self.l2.block_bytes:
            raise ValueError("L1/L2 block sizes must match")
        if self.core_quantum < 1:
            raise ValueError("core quantum must be >= 1")
        # runtime (not import-time) registry lookup: common.config must
        # stay importable before repro.coherence
        from repro.coherence.policy import available_protocols
        if self.protocol not in available_protocols():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; registered: "
                f"{', '.join(available_protocols())}"
            )
        if self.dir_access_latency < 0:
            raise ValueError("directory latency cannot be negative")

    @property
    def block_bytes(self) -> int:
        """Cache block size shared by L1 and L2."""
        return self.l1.block_bytes

    @property
    def policy(self):
        """The effective :class:`~repro.coherence.policy.ProtocolPolicy`
        — the named protocol, with the approximate states stripped when
        ``ghostwriter.enabled`` is off (and with the legacy
        mesi/moesi-plus-enabled spelling resolved, warning once per
        lookup).  ``Machine`` resolves this once at construction and
        hands the policy down to every controller."""
        from repro.coherence.policy import resolve_policy
        return resolve_policy(self.protocol, self.ghostwriter.enabled)

    def with_ghostwriter(
        self, *, enabled: bool | None = None, d_distance: int | None = None,
        gi_timeout: int | None = None,
    ) -> "SimConfig":
        """Copy with updated Ghostwriter knobs (sweep helper)."""
        gw = self.ghostwriter
        return replace(
            self,
            ghostwriter=GhostwriterConfig(
                enabled=gw.enabled if enabled is None else enabled,
                d_distance=gw.d_distance if d_distance is None else d_distance,
                gi_timeout=gw.gi_timeout if gi_timeout is None else gi_timeout,
                similarity_mode=gw.similarity_mode,
                approx_write_budget=gw.approx_write_budget,
                gs_fallback_getx=gw.gs_fallback_getx,
            ),
        )

    def with_cores(self, num_cores: int) -> "SimConfig":
        """Copy with a different core count (thread-sweep helper)."""
        return replace(self, num_cores=num_cores)

    def home_directory(self, block_addr: int) -> int:
        """NoC node of the directory controller owning this block."""
        return self.noc.home_directory(block_addr, self.block_bytes)

    def home_l2_slice(self, block_addr: int) -> int:
        """NoC node of the L2 slice holding this block (address interleave)."""
        return (block_addr // self.block_bytes) % self.num_cores

    def block_base(self, addr: int) -> int:
        """Block-aligned base address of ``addr``."""
        return addr - (addr % self.block_bytes)


def table1_rows(cfg: SimConfig) -> list[tuple[str, str]]:
    """Render a config as the rows of the paper's Table 1."""
    gw = cfg.ghostwriter
    proto = (
        f"Ghostwriter (baseline MESI), d-distance {gw.d_distance}, "
        f"{gw.gi_timeout}-cycle GI timeout"
        if gw.enabled
        else "Baseline MESI"
    )
    return [
        ("Cores", f"{cfg.num_cores} in-order cores, {cfg.core_freq_ghz:g}GHz"),
        (
            "L1",
            f"Private {cfg.l1.size_bytes // 1024}kB D-Cache, "
            f"{cfg.l1.assoc}-Way Set Assoc., {cfg.l1.block_bytes}B Block, "
            f"Pseudo-LRU, {cfg.l1.hit_latency}-cycle",
        ),
        (
            "L2",
            f"Shared, {cfg.l2.size_bytes // 1024}kB per core, "
            f"{cfg.l2.assoc}-Way Set Assoc., {cfg.l2.block_bytes}B Block, "
            f"Pseudo-LRU, {cfg.l2.hit_latency}-cycle",
        ),
        ("Coherence", proto),
        ("Network", cfg.noc.topo.summary()),
        ("DRAM", f"{cfg.dram.size_bytes // 1024**3}GB, DDR3 1600MHz"),
    ]


def default_config() -> SimConfig:
    """The paper's Table 1 machine."""
    return SimConfig()


def small_config(
    num_cores: int = 4,
    *,
    enabled: bool = True,
    d_distance: int = 4,
    gi_timeout: int = 1024,
    core_quantum: int = 8,
) -> SimConfig:
    """A scaled-down machine for tests and quick examples.

    Keeps the paper's structure (2-way L1, 8-way shared L2, mesh with
    corner directories) at a size where unit tests can exercise evictions.
    """
    cols = max(2, min(num_cores, 4))
    rows = -(-num_cores // cols)
    rows = max(rows, 2)
    return SimConfig(
        num_cores=num_cores,
        l1=CacheConfig(1024, 2, 64, 2),
        l2=CacheConfig(4096, 8, 64, 10),
        noc=NocConfig(mesh_cols=cols, mesh_rows=rows),
        dram=DramConfig(access_latency=60),
        ghostwriter=GhostwriterConfig(
            enabled=enabled, d_distance=d_distance, gi_timeout=gi_timeout
        ),
        core_quantum=core_quantum,
    )


def noc_for_topology(topology: str = "mesh", num_cores: int = 24, *,
                     chiplets: int = 4) -> NocConfig:
    """A ``NocConfig`` of the named topology sized to hold ``num_cores``.

    The sizing rules keep the paper's machine exactly: the default mesh
    at <= 24 cores *is* ``NocConfig()`` (6x4, corner directories).
    Larger meshes grow square-ish; ring/crossbar linearize one node per
    core; "chiplet" splits the cores over ``chiplets`` square-ish
    sub-meshes (64 cores -> 4 chiplets of 4x4) with one directory slice
    per chiplet.
    """
    if num_cores < 1:
        raise ValueError("need at least one core")

    def grid(n: int) -> tuple[int, int]:
        cols = 1
        while cols * cols < n:
            cols += 1
        return cols, -(-n // cols)

    if topology == "mesh":
        if num_cores <= 24:
            return NocConfig()
        cols, rows = grid(num_cores)
        return NocConfig(mesh_cols=cols, mesh_rows=rows)
    if topology in ("ring", "crossbar"):
        return NocConfig(mesh_cols=num_cores, mesh_rows=1,
                         topology=topology)
    if topology == "chiplet":
        per = -(-num_cores // chiplets)
        cols, rows = grid(per)
        return NocConfig(mesh_cols=cols, mesh_rows=rows,
                         topology="chiplet", chiplets=chiplets)
    # unknown names fall through to NocConfig's canonical registry error
    return NocConfig(topology=topology)


__all__ += ["default_config", "small_config"]
