"""Hierarchical statistics counters.

Every simulator component owns a :class:`StatGroup`; groups nest under a
root so a finished run can be flattened into ``component.counter`` rows
for the harness/report layer.  Counters are plain ints/floats — hot paths
increment attributes directly rather than going through dict lookups.
"""
from __future__ import annotations

from collections import Counter
from typing import Any, Iterator

__all__ = ["StatGroup", "HistogramStat"]


class HistogramStat:
    """Integer-keyed histogram (used for d-distance distributions)."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter[int] = Counter()

    def add(self, key: int, n: int = 1) -> None:
        """Count ``n`` samples in bucket ``key``."""
        self.counts[key] += n

    def total(self) -> int:
        """Total samples across all buckets."""
        return sum(self.counts.values())

    def cdf(self, max_key: int) -> list[float]:
        """Cumulative fraction of samples with key <= k, for k in 0..max_key."""
        total = self.total()
        if total == 0:
            return [0.0] * (max_key + 1)
        out: list[float] = []
        running = 0
        for k in range(max_key + 1):
            running += self.counts.get(k, 0)
            out.append(running / total)
        return out

    def merge(self, other: "HistogramStat") -> None:
        """Accumulate another histogram's buckets into this one."""
        self.counts.update(other.counts)

    def as_dict(self) -> dict[int, int]:
        """Bucket counts as a plain dict, sorted by key."""
        return dict(sorted(self.counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HistogramStat({self.as_dict()})"


class StatGroup:
    """A named bag of counters with nested child groups.

    Attribute access auto-creates numeric counters::

        g = StatGroup("l1")
        g.hits += 1            # auto-initialized to 0
        g.child("noc").flits += 8
    """

    def __init__(self, name: str) -> None:
        # bypass __setattr__ bookkeeping during init
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_children", {})
        object.__setattr__(self, "_values", {})

    # -- counters -----------------------------------------------------
    def __getattr__(self, key: str) -> Any:
        # only called when normal lookup fails
        if key.startswith("_"):
            raise AttributeError(key)
        values = object.__getattribute__(self, "_values")
        if key not in values:
            values[key] = 0
        return values[key]

    def __setattr__(self, key: str, value: Any) -> None:
        if key.startswith("_") or key == "name":
            object.__setattr__(self, key, value)
        else:
            self._values[key] = value

    def counters(self, *names: str) -> dict[str, Any]:
        """Hot-path view: seed ``names`` to 0 and return the *live*
        underlying counter dict.

        ``group.counters("loads")["loads"] += 1`` is the same counter as
        ``group.loads += 1`` but costs one dict item access instead of
        two attribute-protocol dispatches — components bind the dict
        once at construction and bump it in their per-access paths.
        """
        values = self._values
        for name in names:
            if name.startswith("_"):
                raise ValueError(f"invalid counter name {name!r}")
            values.setdefault(name, 0)
        return values

    def bulk_add(self, name: str, n: int) -> None:
        """Add ``n`` to counter ``name`` in one update.

        The vectorized paths (the hit-run fast lane, GI flash sweeps,
        approx flushes) account for a whole batch of events at once;
        ``bulk_add`` is the single-dict-op equivalent of bumping the
        counter ``n`` times in a loop.
        """
        if name.startswith("_"):
            raise ValueError(f"invalid counter name {name!r}")
        values = self._values
        values[name] = values.get(name, 0) + n

    def histogram(self, key: str) -> HistogramStat:
        """Fetch-or-create a histogram counter."""
        h = self._values.get(key)
        if h is None:
            h = HistogramStat()
            self._values[key] = h
        elif not isinstance(h, HistogramStat):
            raise TypeError(f"stat {key!r} already holds {type(h).__name__}")
        return h

    # -- hierarchy ----------------------------------------------------
    def child(self, name: str) -> "StatGroup":
        """Fetch-or-create a nested group."""
        grp = self._children.get(name)
        if grp is None:
            grp = StatGroup(name)
            self._children[name] = grp
        return grp

    def children(self) -> dict[str, "StatGroup"]:
        """Shallow copy of the nested groups."""
        return dict(self._children)

    def values(self) -> dict[str, Any]:
        """Shallow copy of this group's counters."""
        return dict(self._values)

    # -- aggregation ----------------------------------------------------
    def flatten(self, prefix: str = "") -> dict[str, Any]:
        """All counters as ``group.subgroup.counter`` -> value."""
        base = f"{prefix}{self.name}" if prefix or self.name else self.name
        out: dict[str, Any] = {}
        for key, val in self._values.items():
            full = f"{base}.{key}" if base else key
            out[full] = val.as_dict() if isinstance(val, HistogramStat) else val
        for kid in self._children.values():
            out.update(kid.flatten(f"{base}." if base else ""))
        return out

    def merge(self, other: "StatGroup") -> None:
        """Accumulate another group's counters into this one (same shape)."""
        for key, val in other._values.items():
            if isinstance(val, HistogramStat):
                self.histogram(key).merge(val)
            else:
                self._values[key] = self._values.get(key, 0) + val
        for name, kid in other._children.items():
            self.child(name).merge(kid)

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Deep restorable copy of the whole tree (histograms included)."""
        values: dict[str, Any] = {}
        for key, val in self._values.items():
            values[key] = (
                ("__hist__", dict(val.counts))
                if isinstance(val, HistogramStat) else val
            )
        return {
            "values": values,
            "children": {name: kid.snapshot()
                         for name, kid in self._children.items()},
        }

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state **in place**.

        Components bind the live ``_values`` dict (:meth:`counters`) and
        histogram ``counts`` objects at construction, so restore mutates
        the existing containers rather than replacing them — every
        hot-path binding stays valid across a restore.
        """
        values = self._values
        hists = {k: v for k, v in values.items()
                 if isinstance(v, HistogramStat)}
        values.clear()
        for key, val in blob["values"].items():
            if isinstance(val, tuple) and len(val) == 2 and val[0] == "__hist__":
                h = hists.get(key)
                if h is None:
                    h = HistogramStat()
                h.counts.clear()
                h.counts.update(val[1])
                values[key] = h
            else:
                values[key] = val
        for name, kid_blob in blob["children"].items():
            self.child(name).restore(kid_blob)

    def total(self, key: str) -> float:
        """Sum of a counter across this group and all descendants."""
        tot = self._values.get(key, 0) or 0
        for kid in self._children.values():
            tot += kid.total(key)
        return tot

    def iter_groups(self) -> Iterator["StatGroup"]:
        """This group and every descendant, preorder."""
        yield self
        for kid in self._children.values():
            yield from kid.iter_groups()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatGroup({self.name!r}, {len(self._values)} counters)"
