"""Module entry point: ``python -m repro.store`` -> :func:`cli.main`."""
import sys

from repro.store.cli import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
