"""``python -m repro.store``: inspect and maintain a result store.

Subcommands::

    python -m repro.store show   sweeps.db     # contents + hit rates
    python -m repro.store verify sweeps.db     # integrity-check rows
    python -m repro.store gc     sweeps.db     # drop stale-version rows

``verify`` exits non-zero when any row fails its payload-hash or
unpickle check (``--evict`` deletes the bad rows so the next sweep
recomputes them); ``gc`` reclaims rows committed under an older code
version, which can never be served again.
"""
from __future__ import annotations

import argparse
import sys

from repro.store.result_store import ResultStore, StoreError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.store",
        description="Inspect and maintain a durable sweep-result store.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="summarize contents and hit rates")
    show.add_argument("db", help="path to the store database")
    show.add_argument("--rows", type=int, default=0, metavar="N",
                      help="also list the N most recent rows")

    verify = sub.add_parser("verify", help="integrity-check every row")
    verify.add_argument("db", help="path to the store database")
    verify.add_argument("--evict", action="store_true",
                        help="delete rows that fail the check")

    gc = sub.add_parser("gc", help="drop rows from older code versions")
    gc.add_argument("db", help="path to the store database")
    gc.add_argument("--vacuum", action="store_true",
                    help="compact the database file afterwards")
    return p


def _show(store: ResultStore, n_rows: int) -> int:
    info = store.summary()
    kinds = info["by_kind"]
    print(f"store {info['path']}: {info['rows']} rows "
          f"({kinds.get('row', 0)} results, "
          f"{kinds.get('failure', 0)} permanent failures), "
          f"{info['payload_bytes'] / 1024:.1f} KiB payload")
    print(f"schema v{info['schema_version']}, "
          f"code versions: "
          + ", ".join(f"{v} x{n}"
                      for v, n in sorted(info["by_code_version"].items())))
    rows = info["rows"]
    print(f"cumulative hits: {info['total_hits']} "
          f"({info['total_hits'] / rows:.1f} per row)" if rows
          else "cumulative hits: 0")
    if info["by_workload"]:
        per_wl = ", ".join(f"{w or '?'}={n}"
                           for w, n in info["by_workload"].items())
        print(f"by workload: {per_wl}")
    if n_rows:
        for row in list(store.rows())[:n_rows]:
            print(f"  {row.key}  {row.kind:<7} {row.workload:<18} "
                  f"protocol={row.protocol or '-':<14} "
                  f"seed={row.seed if row.seed is not None else '-':<10} "
                  f"hits={row.hits}")
    return 0


def _verify(store: ResultStore, evict: bool) -> int:
    bad = store.verify()
    total = len(store)
    if not bad:
        print(f"ok: {total}/{total} rows pass integrity checks")
        return 0
    print(f"CORRUPT: {len(bad)}/{total} rows fail integrity checks:")
    for key in bad:
        print(f"  {key}")
    if evict:
        n = store.evict(bad)
        print(f"evicted {n} rows; the next sweep recomputes them")
    else:
        print("re-run with --evict to delete them")
    return 1


def _gc(store: ResultStore, vacuum: bool) -> int:
    before = len(store)
    dropped = store.gc(vacuum=vacuum)
    print(f"dropped {dropped} stale rows ({before - dropped} remain, "
          f"current code version {store.code_version})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.store``."""
    args = _build_parser().parse_args(argv)
    try:
        with ResultStore(args.db) as store:
            if args.command == "show":
                return _show(store, args.rows)
            if args.command == "verify":
                return _verify(store, args.evict)
            if args.command == "gc":
                return _gc(store, args.vacuum)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(args.command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
