"""Content-address keys for stored sweep results.

A stored row must be safe to reuse wherever the *simulated result* would
be identical, and only there.  The key therefore covers everything that
shapes the simulation — workload name, every run kwarg, the coherence
protocol, the seed, the fault knobs — plus a code/schema version, and
deliberately excludes knobs that only shape *execution*: worker count,
the store path itself, retry/timeout policy, and the observability
capture switches (a traced run produces the same ``RunRow`` stats; only
its ``obs`` side channel differs, and stored rows never carry one).

The digest is a keyed BLAKE2b over the canonical ``repr`` of the
normalized point, the same construction
:func:`repro.harness.parallel.derive_seed` uses for per-job seeds, so
keys are stable across processes, platforms and ``PYTHONHASHSEED``.
"""
from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Mapping

__all__ = ["CODE_VERSION", "KEY_SCHEMA", "EXECUTION_FIELDS",
           "NEUTRAL_DEFAULTS", "options_fingerprint", "canonical_point",
           "point_key"]

#: Revision of the key construction itself.  Bump when the
#: canonicalization below changes shape, so old stores never serve rows
#: under a differently-built key.
KEY_SCHEMA = 1

#: Version tag stored with (and hashed into) every row.  Derived from
#: the package version plus :data:`KEY_SCHEMA`; bumping either retires
#: every previously stored row (``repro store gc`` reclaims them).
def _code_version() -> str:
    try:
        from importlib.metadata import version

        pkg = version("repro")
    except Exception:
        pkg = "1.0.0"
    return f"{pkg}+k{KEY_SCHEMA}"


CODE_VERSION = _code_version()

#: ``RunOptions`` fields that shape *how* a grid executes, not *what*
#: the simulation computes.  They never enter the content key: a row
#: computed with ``--jobs 8`` must satisfy a ``--jobs 1`` lookup (the
#: bit-identity guarantee makes them interchangeable), and the store /
#: retry knobs must not invalidate their own cache.
EXECUTION_FIELDS = frozenset({
    "jobs", "store", "resume",
    "point_timeout", "point_retries", "point_backoff",
    "trace_events", "timeline_interval", "flight_recorder",
    # the batch backend is bit-identical to serial by construction (and
    # by the differential suite), so a row computed either way satisfies
    # a lookup from the other
    "backend",
    # ditto the vectorized hit-run fast lane (repro.core.hitrun): rows
    # computed lane-on and lane-off are interchangeable by the fast-lane
    # equivalence suite
    "fast_lane",
})


#: Result-shaping ``RunOptions`` fields elided from the fingerprint
#: while they hold their neutral default.  This is how a *new* knob
#: joins ``RunOptions`` without retiring every stored row: a row keyed
#: before the knob existed still satisfies a lookup at the knob's
#: default (which is defined to be simulation-identical to the
#: pre-knob behavior), while any non-default value keys distinctly.
NEUTRAL_DEFAULTS = {
    # the default mesh is byte-identical to the pre-topology-layer
    # machine (PR 8); ring/crossbar/chiplet fingerprints diverge
    "topology": "mesh",
}


def options_fingerprint(options: Any) -> tuple:
    """The result-shaping fields of a ``RunOptions``, as sorted pairs.

    Works on any dataclass instance; fields named in
    :data:`EXECUTION_FIELDS` are dropped, and fields sitting at their
    :data:`NEUTRAL_DEFAULTS` value are elided.  The tuple form has a
    deterministic ``repr`` suitable for hashing.
    """
    pairs = []
    for f in dataclasses.fields(options):
        if f.name in EXECUTION_FIELDS:
            continue
        value = getattr(options, f.name)
        if f.name in NEUTRAL_DEFAULTS and value == NEUTRAL_DEFAULTS[f.name]:
            continue
        pairs.append((f.name, value))
    return tuple(sorted(pairs))


def _canonical_value(value: Any) -> Any:
    """Normalize one kwarg value into a deterministically-``repr``-able
    form (options objects become their fingerprint tuples)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return ("@options",) + options_fingerprint(value)
    if isinstance(value, Mapping):
        return tuple(sorted((k, _canonical_value(v))
                            for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    return value


def canonical_point(workload: str, kwargs: Mapping[str, Any]) -> tuple:
    """The canonical, hashable form of one grid point.

    Kwargs are sorted by name; ``label`` never appears (it is cosmetic
    and lives on the ``GridPoint``, not in its kwargs).
    """
    return (
        str(workload),
        tuple(sorted((k, _canonical_value(v)) for k, v in kwargs.items())),
    )


def point_key(workload: str, kwargs: Mapping[str, Any], *,
              code_version: str | None = None) -> str:
    """BLAKE2b content key of one grid point (32 hex chars).

    ``code_version`` defaults to :data:`CODE_VERSION`; passing an
    explicit value exists for migration tooling and tests.
    """
    version = CODE_VERSION if code_version is None else code_version
    text = repr((version, canonical_point(workload, kwargs)))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()
