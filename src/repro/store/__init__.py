"""Durable, content-addressed result store for sweep grids.

Sweeps are grids of *pure* simulator runs: the resulting
:class:`~repro.harness.experiment.RunRow` is a deterministic function of
the grid point's configuration (workload, kwargs, protocol, seed) and
the code that executed it.  ``repro.store`` exploits that purity to make
sweeps durable: every completed point is committed to a SQLite database
keyed by a BLAKE2b content hash of its configuration
(:func:`~repro.store.keys.point_key`), and
:func:`~repro.harness.parallel.run_grid` consults the store before
fanning work out — a crashed or killed sweep resumes from what is
committed instead of recomputing the whole grid.

Layout:

* :mod:`repro.store.keys` — the content-address: canonicalization of a
  :class:`~repro.harness.parallel.GridPoint` (execution-only knobs such
  as ``jobs`` or the store path itself never enter the key) and the
  BLAKE2b digest over it plus the code/schema version.
* :mod:`repro.store.result_store` — :class:`ResultStore`: WAL-journaled
  SQLite with versioned migrations, atomic per-point commits, payload
  hashes for integrity, and ``verify``/``gc`` maintenance.
* :mod:`repro.store.cli` — ``python -m repro.store {show,verify,gc}``.

The durability contract mirrors the ``--jobs`` determinism guarantee:
a resumed sweep is **bit-identical** to a cold serial run (see
``tests/store/test_resume.py``).
"""
from repro.store.keys import (
    CODE_VERSION,
    canonical_point,
    options_fingerprint,
    point_key,
)
from repro.store.result_store import (
    ResultStore,
    StoreError,
    StoreStats,
    open_store,
)

__all__ = [
    "CODE_VERSION",
    "ResultStore",
    "StoreError",
    "StoreStats",
    "canonical_point",
    "open_store",
    "options_fingerprint",
    "point_key",
]
