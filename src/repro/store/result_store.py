"""SQLite-backed result store: WAL journaling, migrations, integrity.

One row per committed grid point, keyed by the content address from
:mod:`repro.store.keys`.  The design goals, in order:

1. **Never serve a wrong result silently.**  Every payload is stored
   next to a BLAKE2b hash of its bytes; a row whose payload no longer
   matches (bit rot, a torn write that survived SQLite's own
   journaling) is treated as absent, deleted, and counted — the caller
   recomputes.  A database file that is itself corrupt (truncated,
   overwritten) fails to open with a clean :class:`StoreError`.
2. **Atomic per-point commits.**  Each :meth:`ResultStore.put` is its
   own transaction; a sweep killed between points loses at most the
   point in flight.  WAL journaling keeps concurrent readers (a resume
   probe, ``repro store show``) consistent while a sweep commits.
3. **Versioned schema.**  ``PRAGMA user_version`` tracks the schema;
   :data:`_MIGRATIONS` applies in order inside one transaction, so a
   store created by an older build upgrades in place.

Payloads are pickles of the committed outcome — a
:class:`~repro.harness.experiment.RunRow` (with its ``obs`` capture
stripped; captures are run-local side channels, not results) or a
*permanent* :class:`~repro.harness.parallel.GridFailure`.  Pickle is
appropriate here: the store is a local cache of this package's own
frozen dataclasses, not an interchange format.
"""
from __future__ import annotations

import hashlib
import pickle
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.store.keys import CODE_VERSION

__all__ = ["SCHEMA_VERSION", "ResultStore", "StoreError", "StoreStats",
           "open_store"]


class StoreError(RuntimeError):
    """The store database is unusable (corrupt, wrong format, locked)."""


#: Migrations, applied in order; ``PRAGMA user_version`` records how far
#: a database has been upgraded.  Append — never edit — entries.
_MIGRATIONS: tuple[str, ...] = (
    # v1: the initial schema
    """
    CREATE TABLE IF NOT EXISTS meta (
        k TEXT PRIMARY KEY,
        v TEXT NOT NULL
    );
    CREATE TABLE IF NOT EXISTS results (
        key          TEXT PRIMARY KEY,
        kind         TEXT NOT NULL CHECK (kind IN ('row', 'failure')),
        workload     TEXT NOT NULL DEFAULT '',
        protocol     TEXT NOT NULL DEFAULT '',
        seed         INTEGER,
        payload      BLOB NOT NULL,
        payload_hash TEXT NOT NULL,
        code_version TEXT NOT NULL,
        created_at   REAL NOT NULL,
        hits         INTEGER NOT NULL DEFAULT 0
    );
    CREATE INDEX IF NOT EXISTS idx_results_point
        ON results (workload, protocol, seed);
    """,
)

SCHEMA_VERSION = len(_MIGRATIONS)


def _payload_hash(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass
class StoreStats:
    """Session counters of one :class:`ResultStore` handle.

    ``hits``/``misses`` count :meth:`ResultStore.get` probes,
    ``commits`` counts :meth:`ResultStore.put`, and ``corrupt`` counts
    rows that failed their integrity check and were evicted (each such
    probe also counts as a miss — the caller recomputes).
    """

    hits: int = 0
    misses: int = 0
    commits: int = 0
    corrupt: int = 0

    @property
    def probes(self) -> int:
        """Total ``get`` calls this session."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from the store (0.0 when idle)."""
        return self.hits / self.probes if self.probes else 0.0

    def render(self) -> str:
        """One-line summary, e.g. for sweep progress banners."""
        pct = 100.0 * self.hit_rate
        text = (f"{self.hits}/{self.probes} hits ({pct:.0f}%), "
                f"{self.commits} committed")
        if self.corrupt:
            text += f", {self.corrupt} corrupt evicted"
        return text


@dataclass(frozen=True, slots=True)
class StoredRow:
    """Metadata view of one stored row (``payload`` omitted)."""

    key: str
    kind: str
    workload: str
    protocol: str
    seed: int | None
    code_version: str
    created_at: float
    hits: int
    payload_bytes: int = field(default=0)


class ResultStore:
    """Content-addressed (key -> outcome) store over one SQLite file.

    Use as a context manager or call :meth:`close`; every write commits
    immediately, so an open handle is always crash-consistent.
    """

    def __init__(self, path: str | Path, *,
                 code_version: str = CODE_VERSION) -> None:
        self.path = Path(path)
        self.code_version = code_version
        self.stats = StoreStats()
        try:
            self._conn = sqlite3.connect(self.path)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._check_integrity()
            self._migrate()
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"result store {self.path} is corrupt or not a store "
                f"database: {exc}"
            ) from exc

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- schema --------------------------------------------------------
    def _check_integrity(self) -> None:
        """Fail fast on a damaged database file.

        ``quick_check`` walks the b-trees without verifying every index
        entry — cheap enough to run at open, and it catches truncation
        and torn pages, the failure modes a killed sweep can leave.
        """
        row = self._conn.execute("PRAGMA quick_check(1)").fetchone()
        if row is None or row[0] != "ok":
            raise sqlite3.DatabaseError(
                f"quick_check failed: {row[0] if row else 'no result'}"
            )

    def _migrate(self) -> None:
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise StoreError(
                f"result store {self.path} has schema v{version}, newer "
                f"than this build's v{SCHEMA_VERSION}; refusing to touch it"
            )
        if version == SCHEMA_VERSION:
            return
        # migrations are idempotent (IF NOT EXISTS) and user_version is
        # only advanced at the end, so a crash mid-upgrade simply re-runs
        # the remaining steps on the next open
        for step in _MIGRATIONS[version:]:
            self._conn.executescript(step)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (k, v) VALUES "
                "('code_version', ?)", (self.code_version,))
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    @property
    def schema_version(self) -> int:
        """The database's current ``PRAGMA user_version``."""
        return self._conn.execute("PRAGMA user_version").fetchone()[0]

    # -- the content-addressed map -------------------------------------
    def get(self, key: str) -> Any | None:
        """The committed outcome under ``key``, or ``None``.

        A row that fails its payload-hash check or does not unpickle is
        **evicted and reported as a miss** (never served): the sweep
        recomputes and recommits it.  Hits bump the row's persistent
        ``hits`` counter and the session :class:`StoreStats`.
        """
        row = self._conn.execute(
            "SELECT payload, payload_hash FROM results WHERE key = ?",
            (key,)).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        payload, expected = row
        if _payload_hash(payload) != expected:
            self._evict_corrupt(key)
            return None
        try:
            outcome = pickle.loads(payload)
        except Exception:
            self._evict_corrupt(key)
            return None
        with self._conn:
            self._conn.execute(
                "UPDATE results SET hits = hits + 1 WHERE key = ?", (key,))
        self.stats.hits += 1
        return outcome

    def _evict_corrupt(self, key: str) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
        self.stats.corrupt += 1
        self.stats.misses += 1

    def put(self, key: str, outcome: Any, *, kind: str, workload: str = "",
            protocol: str = "", seed: int | None = None) -> None:
        """Commit one outcome atomically (replacing any previous row)."""
        if kind not in ("row", "failure"):
            raise ValueError(f"kind must be 'row' or 'failure', got {kind!r}")
        payload = pickle.dumps(outcome)
        with self._conn:  # its own transaction: the atomic per-point commit
            self._conn.execute(
                "INSERT OR REPLACE INTO results (key, kind, workload, "
                "protocol, seed, payload, payload_hash, code_version, "
                "created_at, hits) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                (key, kind, workload, protocol, seed, payload,
                 _payload_hash(payload), self.code_version, time.time()))
        self.stats.commits += 1

    def __contains__(self, key: str) -> bool:
        """``key in store`` without touching hit counters."""
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        """Number of committed rows."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM results").fetchone()[0]

    # -- maintenance (the ``repro store`` subcommands) -----------------
    def rows(self) -> Iterator[StoredRow]:
        """Metadata of every stored row, newest first."""
        cur = self._conn.execute(
            "SELECT key, kind, workload, protocol, seed, code_version, "
            "created_at, hits, LENGTH(payload) FROM results "
            "ORDER BY created_at DESC")
        for r in cur:
            yield StoredRow(key=r[0], kind=r[1], workload=r[2],
                            protocol=r[3], seed=r[4], code_version=r[5],
                            created_at=r[6], hits=r[7], payload_bytes=r[8])

    def verify(self) -> list[str]:
        """Integrity-check every row; the keys that failed.

        Checks the payload hash and that the payload unpickles.  Bad
        rows are reported, **not** deleted — ``repro store verify
        --evict`` (or a later ``get``) removes them.
        """
        bad: list[str] = []
        for key, payload, expected in self._conn.execute(
                "SELECT key, payload, payload_hash FROM results"):
            if _payload_hash(payload) != expected:
                bad.append(key)
                continue
            try:
                pickle.loads(payload)
            except Exception:
                bad.append(key)
        return bad

    def evict(self, keys: list[str]) -> int:
        """Delete the given keys; returns how many rows went away."""
        with self._conn:
            cur = self._conn.executemany(
                "DELETE FROM results WHERE key = ?", [(k,) for k in keys])
        return cur.rowcount if cur.rowcount >= 0 else len(keys)

    def gc(self, *, keep_code_version: str | None = None,
           vacuum: bool = False) -> int:
        """Drop rows whose ``code_version`` is stale; returns the count.

        Stale rows can never be served again — their keys embed the old
        version — so they are pure dead weight.  ``vacuum=True`` also
        compacts the file afterwards.
        """
        keep = keep_code_version or self.code_version
        with self._conn:
            cur = self._conn.execute(
                "DELETE FROM results WHERE code_version != ?", (keep,))
        if vacuum:
            self._conn.execute("VACUUM")
        return cur.rowcount

    def summary(self) -> dict[str, Any]:
        """Aggregate view for ``repro store show``."""
        by_kind = dict(self._conn.execute(
            "SELECT kind, COUNT(*) FROM results GROUP BY kind"))
        by_workload = dict(self._conn.execute(
            "SELECT workload, COUNT(*) FROM results GROUP BY workload "
            "ORDER BY COUNT(*) DESC"))
        versions = dict(self._conn.execute(
            "SELECT code_version, COUNT(*) FROM results "
            "GROUP BY code_version"))
        total_hits, payload_bytes = self._conn.execute(
            "SELECT COALESCE(SUM(hits), 0), COALESCE(SUM(LENGTH(payload)), "
            "0) FROM results").fetchone()
        return {
            "path": str(self.path),
            "schema_version": self.schema_version,
            "code_version": self.code_version,
            "rows": len(self),
            "by_kind": by_kind,
            "by_workload": by_workload,
            "by_code_version": versions,
            "total_hits": total_hits,
            "payload_bytes": payload_bytes,
        }


def open_store(path: str | Path | None) -> ResultStore | None:
    """Open a :class:`ResultStore`, or ``None`` when no path is set.

    The one-liner every harness entry point uses to turn the optional
    ``RunOptions.store`` path into a handle.
    """
    return ResultStore(path) if path else None
