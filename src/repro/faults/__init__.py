"""Deterministic, seeded fault injection (soft-error modeling).

:class:`~repro.faults.injector.FaultInjector` flips bits in cache-resident
words and NoC data payloads and jitters message delivery, all driven by a
:class:`~repro.common.config.FaultConfig`;
:mod:`repro.faults.sweep` is the experiment driver measuring output error
vs. fault rate for baseline MESI against Ghostwriter d in {4, 8}.
"""
from repro.faults.injector import FaultInjector

__all__ = ["FaultInjector"]
