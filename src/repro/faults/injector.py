"""Seeded fault injector: bit flips in caches and on the wire.

Three mechanisms, all deterministic given ``FaultConfig.seed``:

* **Cache-resident flips** — a periodic event (every ``_FLIP_PERIOD``
  cycles, so the injector never stretches the event queue past the end of
  real work) injects a fault with probability ``cache_rate * period /
  1e6``, picking a uniformly random valid, stable, non-invalid L1 line
  and flipping ``bits`` random bits of one random word.
* **NoC payload flips** — each data-carrying message is corrupted with
  probability ``msg_rate`` (the payload is copied first, so the sender's
  SRAM copy is untouched — only the wire is noisy).
* **Delay jitter** — every message gets up to ``delay_jitter`` extra
  delivery cycles, uniformly at random; useful for shaking out timing
  races under the fuzzer even with both flip rates at zero.

Detection and recovery are not this module's job: the runtime invariant
monitor (:mod:`repro.verify.monitor`) catches corrupted *coherent* lines
against its golden memory and applies ``FaultConfig.policy``.  Faults in
GS/GI lines are indistinguishable from approximation error by design —
they surface only in application output quality (see
:mod:`repro.faults.sweep`).
"""
from __future__ import annotations

import random

from repro.common.config import FaultConfig
from repro.common.types import CoherenceState as CS
from repro.coherence.messages import Message

__all__ = ["FaultInjector"]

#: cadence of the cache-flip lottery; small enough that the last injector
#: event trails the end of real work by a negligible number of cycles
_FLIP_PERIOD = 256


class FaultInjector:
    """Injects the faults described by a :class:`FaultConfig` into one
    machine.  Construct with the machine, then :meth:`start` from
    ``Machine.run``."""

    def __init__(self, machine, cfg: FaultConfig) -> None:
        self.machine = machine
        self.cfg = cfg
        self.rng = random.Random(cfg.seed)
        self.stats = machine.stats.child("faults")
        #: (cycle, where, block, word, mask) of every injected flip
        self.log: list[tuple[int, str, int, int, int]] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Hook the network and arm the cache-flip lottery."""
        if self.cfg.msg_rate or self.cfg.delay_jitter:
            self.machine.network.fault_hook = self._on_message
        if self.cfg.cache_rate:
            self.machine.engine.schedule_tagged(
                _FLIP_PERIOD, self._flip_lottery, ("flip_lottery",)
            )

    # ------------------------------------------------------------------
    # checkpoint layer
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Restorable injector state: the RNG stream and the fault log
        (so a restored run draws the *same* remaining random sequence)."""
        return {"rng": self.rng.getstate(), "log": list(self.log)}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self.rng.setstate(blob["rng"])
        self.log = list(blob["log"])

    # ------------------------------------------------------------------
    # cache-resident upsets
    # ------------------------------------------------------------------
    def _flip_lottery(self) -> None:
        p = self.cfg.cache_rate * _FLIP_PERIOD / 1e6
        while p > 0 and self.rng.random() < min(p, 1.0):
            self.inject_cache_flip()
            p -= 1.0
        # reschedule only while cores are unfinished: keying on the event
        # queue instead would let two periodic services (e.g. monitor +
        # fault lottery) keep each other alive forever
        if any(c is not None and not c.done for c in self.machine.cores):
            self.machine.engine.schedule_tagged(
                _FLIP_PERIOD, self._flip_lottery, ("flip_lottery",)
            )

    def inject_cache_flip(self) -> tuple[int, int, int] | None:
        """Flip bits in one random resident L1 word.

        Returns ``(node, block, word_offset)`` of the victim, or None when
        no line is eligible.  Also callable directly from tests to place a
        deterministic corruption.
        """
        candidates = [
            (l1, line)
            for l1 in self.machine.l1s
            for line in l1.array.iter_valid()
            if line.words is not None
            and line.state is not None
            and line.state.stable
            and line.state is not CS.I
        ]
        if not candidates:
            return None
        l1, line = self.rng.choice(candidates)
        off = self.rng.randrange(len(line.words))
        mask = self._bit_mask()
        line.words[off] ^= mask
        self.stats.cache_flips += 1
        self.log.append(
            (self.machine.engine.now, f"l1-{l1.node}", line.tag, off, mask)
        )
        return l1.node, line.tag, off

    # ------------------------------------------------------------------
    # NoC faults
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> int:
        cfg = self.cfg
        if (
            msg.words is not None
            and cfg.msg_rate
            and self.rng.random() < cfg.msg_rate
        ):
            msg.words = msg.words.copy()  # corrupt the wire, not the SRAM
            off = self.rng.randrange(len(msg.words))
            mask = self._bit_mask()
            msg.words[off] ^= mask
            self.stats.msg_flips += 1
            self.log.append(
                (self.machine.engine.now, "noc", msg.block_addr, off, mask)
            )
        if cfg.delay_jitter:
            self.stats.jittered_messages += 1
            return self.rng.randint(0, cfg.delay_jitter)
        return 0

    # ------------------------------------------------------------------
    def _bit_mask(self) -> int:
        bits = self.rng.sample(range(32), self.cfg.bits)
        mask = 0
        for b in bits:
            mask |= 1 << b
        return mask
