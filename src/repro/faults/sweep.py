"""Output error vs. fault rate: baseline MESI against Ghostwriter.

The paper's thesis is that error-tolerant applications absorb the value
divergence Ghostwriter introduces; the same tolerance should also absorb
a background rate of soft errors.  This driver runs one workload at a
sweep of cache-flip rates (flips per million cycles, seeded and
deterministic — see :class:`repro.faults.injector.FaultInjector`) under
baseline MESI and Ghostwriter d in {4, 8}, with the ``log`` degradation
policy so corruptions flow into the application output, and reports the
resulting output error.

``python -m repro.faults.sweep`` prints the table; ``--help`` lists the
knobs (workload, threads, scale, rates, seeds-per-cell).
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.harness.options import RunOptions, resolve_options
from repro.harness.parallel import GridFailure, GridPoint, run_grid
from repro.workloads.registry import ALL_WORKLOADS, PAPER_WORKLOADS

__all__ = ["FaultSweepResult", "fault_sweep", "main", "DEFAULT_RATES"]

DEFAULT_RATES: tuple[float, ...] = (0.0, 20.0, 100.0, 500.0)

#: (label, d_distance) columns of the sweep; d=0 is baseline MESI
_CONFIGS: tuple[tuple[str, int], ...] = (
    ("mesi", 0), ("gw d=4", 4), ("gw d=8", 8),
)


@dataclass(frozen=True, slots=True)
class FaultSweepResult:
    """Error-vs-fault-rate table for one workload.

    Each cell is ``(mean_error_pct | None, crashes, runs)``: faults that
    corrupt control data (an index, a loop bound) crash the run rather
    than degrade the output, and fault-injection studies report the two
    outcomes separately.
    """

    workload: str
    metric: str
    rates: tuple[float, ...]
    #: ``cells[(rate, label)] -> (mean error % or None, crashes, runs)``
    cells: dict

    @staticmethod
    def _cell_text(cell) -> str:
        error, crashes, runs = cell
        if error is None:
            return f"crash ({crashes}/{runs})"
        text = f"{error:.3f}"
        if crashes:
            text += f" ({crashes}/{runs} crash)"
        return text

    def render(self) -> str:
        """The text table the CLI prints."""
        headers = ["flips/Mcycle"] + [label for label, _d in _CONFIGS]
        rows = []
        for rate in self.rates:
            row = [f"{rate:g}"]
            for label, _d in _CONFIGS:
                row.append(self._cell_text(self.cells[(rate, label)]))
            rows.append(row)
        widths = [
            max(len(h), *(len(r[i]) for r in rows))
            for i, h in enumerate(headers)
        ]
        def line(cells):
            return "  ".join(
                c.rjust(w) for c, w in zip(cells, widths)
            ).rstrip()
        out = [
            f"{self.workload}: output error ({self.metric}, %) vs "
            "injected cache-flip rate",
            line(headers),
            line(["-" * w for w in widths]),
        ]
        out.extend(line(r) for r in rows)
        return "\n".join(out)


def fault_sweep(workload: str = "histogram", *,
                num_threads: int = 8, scale: float = 0.25,
                rates: tuple[float, ...] = DEFAULT_RATES,
                seeds_per_cell: int = 1,
                seed: int = 12345,
                options: RunOptions | None = None,
                jobs: int | None = None) -> FaultSweepResult:
    """Run the full (rate x config x fault-seed) grid and average over
    fault seeds.

    Every run shares the workload seed (identical inputs and thread
    programs); only the fault seed varies inside a cell, so differences
    between cells are attributable to the injected faults and the
    protocol's response alone.  ``options.jobs`` fans the grid out over a
    process pool (:mod:`repro.harness.parallel`); a run killed by
    control-data corruption comes back as a
    :class:`~repro.harness.parallel.GridFailure` and is tallied as a
    crash, exactly as in the serial path.  The bare ``jobs`` keyword is a
    deprecated shim; the per-cell fault rate/seed/policy always override
    the corresponding ``options`` fields.
    """
    if workload not in ALL_WORKLOADS:
        raise KeyError(
            f"unknown workload {workload!r}; available: "
            f"{sorted(ALL_WORKLOADS)}"
        )
    base = resolve_options(options, who="fault_sweep", jobs=jobs)
    cls = PAPER_WORKLOADS.get(workload)
    metric = cls.error_metric if cls is not None else "error"
    grid = [
        (rate, label,
         GridPoint(workload,
                   dict(d_distance=d, num_threads=num_threads, scale=scale,
                        seed=seed,
                        options=base.replace(fault_rate=rate,
                                             fault_seed=1 + k,
                                             fault_policy="log")),
                   label=f"{label} rate={rate:g} fault_seed={1 + k}"))
        for rate in rates
        for label, d in _CONFIGS
        for k in range(seeds_per_cell)
    ]
    # base also carries the durability knobs (result store, resume,
    # retry policy); the per-cell fault fields are part of each point's
    # content key, so every (rate, config, fault-seed) cell commits and
    # resumes independently
    outcomes = run_grid([p for _r, _l, p in grid], jobs=base.jobs,
                        options=base)
    errors: dict[tuple, list[float]] = {}
    crashes: dict[tuple, int] = {}
    for (rate, label, _point), outcome in zip(grid, outcomes):
        key = (rate, label)
        errors.setdefault(key, [])
        crashes.setdefault(key, 0)
        if isinstance(outcome, GridFailure):
            # control-data corruption (e.g. a flipped index) killed the
            # run; tally it instead of aborting the sweep
            crashes[key] += 1
        else:
            errors[key].append(outcome.error_pct)
    cells = {
        key: (sum(errs) / len(errs) if errs else None,
              crashes[key], seeds_per_cell)
        for key, errs in errors.items()
    }
    return FaultSweepResult(workload=workload, metric=metric,
                            rates=tuple(rates), cells=cells)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.faults.sweep``: print the error-vs-rate table."""
    import argparse
    import time

    p = argparse.ArgumentParser(
        prog="repro.faults.sweep",
        description="Output error vs injected cache-fault rate, "
                    "MESI vs Ghostwriter d in {4, 8}.",
    )
    p.add_argument("--workload", default="histogram",
                   choices=sorted(ALL_WORKLOADS))
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--rates", type=float, nargs="+",
                   default=list(DEFAULT_RATES),
                   metavar="FLIPS_PER_MCYCLE")
    p.add_argument("--seeds-per-cell", type=int, default=1,
                   help="fault seeds averaged per table cell")
    p.add_argument("--seed", type=int, default=12345,
                   help="workload input seed (shared by every run)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the (rate x config x seed) "
                        "grid (results identical to --jobs 1)")
    p.add_argument("--store", metavar="DB", default=None,
                   help="durable result store: commit every cell as it "
                        "lands and resume a killed sweep from it "
                        "(see repro.store)")
    p.add_argument("--resume", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="serve cells already committed to --store "
                        "(--no-resume recomputes and overwrites)")
    p.add_argument("--retries", type=int, default=0, metavar="K",
                   help="re-executions granted to transiently failing "
                        "cells (worker death, timeout); deterministic "
                        "crashes never retry")
    p.add_argument("--point-timeout", type=float, default=0.0,
                   metavar="SEC",
                   help="wall-clock budget per cell, seconds (0 = none)")
    args = p.parse_args(argv)

    t0 = time.time()
    result = fault_sweep(
        args.workload, num_threads=args.threads, scale=args.scale,
        rates=tuple(args.rates), seeds_per_cell=args.seeds_per_cell,
        seed=args.seed,
        options=RunOptions(jobs=args.jobs, store=args.store,
                           resume=args.resume, point_retries=args.retries,
                           point_timeout=args.point_timeout),
    )
    print(result.render())
    print(f"[{time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
