"""repro.coherence subpackage."""
