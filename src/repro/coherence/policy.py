"""Protocol-policy layer: coherence *policy* extracted from the controllers.

The L1 and directory controllers implement the protocol *mechanism*
(transient states, message sequencing, races); everything that makes one
protocol differ from another — may a scribble enter GS/GI, what happens
to a GS copy when a remote core stores, does an UPGRADE invalidate or
update the other sharers, which base (MESI/MOESI) handles dirty-owner
forwards — is a :class:`ProtocolPolicy` value looked up by name in a
registry.  This turns the simulator into a protocol laboratory: the
paper's full design, its GS-only / GI-only ablations, and non-paper
variants (a directory-mediated write-update hybrid after Dovgopol &
Rosonke, a self-invalidation scheme after Abdulla et al.) all run
through the *same* controllers.

Registered variants (see README's protocol matrix):

==================  ======  =====  =====  ==================  ========
name                base    GS     GI     remote store on GS  UPGRADE
==================  ======  =====  =====  ==================  ========
mesi                MESI    --     --     (no GS)             invalidate
moesi               MOESI   --     --     (no GS)             invalidate
ghostwriter         MESI    yes    yes    invalidate          invalidate
ghostwriter-moesi   MOESI   yes    yes    invalidate          invalidate
gw-gs-only          MESI    yes    --     invalidate          invalidate
gw-gi-only          MESI    --     yes    (no GS)             invalidate
self-invalidate     MESI    yes    yes    demote to GI        invalidate
update-hybrid       MESI    yes    yes    invalidate          update
==================  ======  =====  =====  ==================  ========

The legacy ``SimConfig`` encoding — ``protocol in ("mesi", "moesi")``
plus the ``ghostwriter.enabled`` boolean — maps onto this registry via
:func:`resolve_policy`, which keeps old configs running (with a
``DeprecationWarning``) while new code names the protocol directly.
"""
from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

__all__ = [
    "ProtocolPolicy",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "resolve_policy",
]

_BASES = ("mesi", "moesi")
_REMOTE_STORE_GS = ("invalidate", "self-invalidate")
_GS_FALLBACKS = ("config", "getx")


@dataclass(frozen=True, slots=True)
class ProtocolPolicy:
    """Every decision point the controllers delegate, as plain data.

    Frozen and hashable so a policy can ride inside frozen configs and
    cross the ``--jobs N`` process boundary; the L1 pre-resolves the
    fields it consults per access into plain attributes at construction,
    so the indirection costs nothing on the hot path.
    """

    #: Registry key; also the value of ``SimConfig.protocol``.
    name: str
    #: Precise write-invalidate base: "mesi" or "moesi".  MOESI keeps a
    #: dirty Owned copy supplying forwards instead of writing back home.
    base: str = "mesi"
    #: May a similar scribble on an S copy enter GS (local writes hidden
    #: from the directory while staying on its sharer list)?
    allows_gs: bool = False
    #: May a similar scribble on an I copy enter GI (stale local copy,
    #: invisible to the directory, bounded by the GI timeout)?
    allows_gi: bool = False
    #: What an INV does to a GS copy: "invalidate" drops it to I (the
    #: paper), "self-invalidate" demotes it to GI — the holder keeps
    #: reading its stale copy until the GI timeout flash-invalidates it
    #: (Abdulla et al.-style self-invalidation, bounded staleness).
    remote_store_gs: str = "invalidate"
    #: Directory reaction to an UPGRADE from an S sharer when *other*
    #: sharers exist: False invalidates them (write-invalidate); True
    #: pushes the written block to them (directory-mediated write-update
    #: hybrid).  A sole sharer is granted M either way, which avoids the
    #: classic update-protocol pathology of paying a directory data
    #: transaction for every private re-write.
    update_on_upgrade: bool = False
    #: How a dissimilar scribble falls back from a divergent GS copy:
    #: "config" defers to ``GhostwriterConfig.gs_fallback_getx`` (the
    #: existing ablation knob); "getx" forces the GETX path.  Update
    #: protocols must force GETX: an in-place UPGRADE from GS would
    #: publish a single word while the holder keeps divergent scribbled
    #: words in a now-coherent S line.
    gs_fallback: str = "config"
    #: One-line description for ``--protocol`` listings and docs.
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("protocol name cannot be empty")
        if self.base not in _BASES:
            raise ValueError(f"base must be one of {_BASES}, got {self.base!r}")
        if self.remote_store_gs not in _REMOTE_STORE_GS:
            raise ValueError(
                f"remote_store_gs must be one of {_REMOTE_STORE_GS}, "
                f"got {self.remote_store_gs!r}"
            )
        if self.gs_fallback not in _GS_FALLBACKS:
            raise ValueError(
                f"gs_fallback must be one of {_GS_FALLBACKS}, "
                f"got {self.gs_fallback!r}"
            )

    # -- derived views -------------------------------------------------
    @property
    def approx(self) -> bool:
        """True when any approximate (GS/GI) state is reachable."""
        return self.allows_gs or self.allows_gi

    def precise(self) -> "ProtocolPolicy":
        """This policy with the approximate states stripped (the
        ``d_distance=0`` / ``ghostwriter.enabled=False`` baseline legs:
        same base protocol, no GS/GI)."""
        if not self.approx:
            return self
        return replace(self, allows_gs=False, allows_gi=False)

    def gs_fallback_is_getx(self, gw) -> bool:
        """Resolve the GS-fallback choice against a GhostwriterConfig."""
        if self.gs_fallback == "getx":
            return True
        return bool(gw.gs_fallback_getx)


_REGISTRY: dict[str, ProtocolPolicy] = {}


def register_protocol(policy):
    """Register a protocol variant.

    Accepts a :class:`ProtocolPolicy` directly, or decorates a zero-arg
    factory returning one::

        @register_protocol
        def _mesi() -> ProtocolPolicy: ...

    Returns the registered policy either way.
    """
    if callable(policy) and not isinstance(policy, ProtocolPolicy):
        policy = policy()
    if not isinstance(policy, ProtocolPolicy):
        raise TypeError(f"cannot register {policy!r} as a protocol")
    if policy.name in _REGISTRY:
        raise ValueError(f"protocol {policy.name!r} already registered")
    _REGISTRY[policy.name] = policy
    return policy


def get_protocol(name: str) -> ProtocolPolicy:
    """The registered policy for ``name`` (KeyError lists the options)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; registered: "
            f"{', '.join(available_protocols())}"
        ) from None


def available_protocols() -> tuple[str, ...]:
    """Registered protocol names, in registration order."""
    return tuple(_REGISTRY)


#: Legacy ``SimConfig.protocol`` values that, combined with
#: ``ghostwriter.enabled=True``, historically meant "that base *plus*
#: the Ghostwriter extension".
_LEGACY_APPROX = {"mesi": "ghostwriter", "moesi": "ghostwriter-moesi"}


def resolve_policy(protocol: str, approx_enabled: bool = True) -> ProtocolPolicy:
    """Map a ``SimConfig`` (protocol name, ghostwriter.enabled) pair to
    the effective policy.

    The legacy encoding — ``protocol="mesi"``/``"moesi"`` with
    ``enabled=True`` — resolves to the matching Ghostwriter variant with
    a :class:`DeprecationWarning` (name the protocol directly instead).
    ``approx_enabled=False`` strips GS/GI from any variant, which is how
    the sweep harness runs each protocol's precise baseline leg.
    """
    legacy = _LEGACY_APPROX.get(protocol)
    if approx_enabled and legacy is not None:
        warnings.warn(
            f"protocol={protocol!r} with ghostwriter.enabled=True is the "
            f"legacy spelling of protocol={legacy!r}; name the protocol "
            "directly (SimConfig.protocol / --protocol)",
            DeprecationWarning, stacklevel=3,
        )
        protocol = legacy
    policy = get_protocol(protocol)
    return policy if approx_enabled else policy.precise()


# ---------------------------------------------------------------------
# the registered variants
# ---------------------------------------------------------------------
register_protocol(ProtocolPolicy(
    name="mesi",
    description="baseline write-invalidate MESI (the paper's baseline)",
))
register_protocol(ProtocolPolicy(
    name="moesi",
    base="moesi",
    description="write-invalidate MOESI: dirty Owned copies keep "
                "supplying forwards instead of writing back home",
))
register_protocol(ProtocolPolicy(
    name="ghostwriter",
    allows_gs=True,
    allows_gi=True,
    description="the paper's full protocol: GS + GI over MESI",
))
register_protocol(ProtocolPolicy(
    name="ghostwriter-moesi",
    base="moesi",
    allows_gs=True,
    allows_gi=True,
    description="GS + GI layered over MOESI (the paper's \"most "
                "existing protocols\" claim)",
))
register_protocol(ProtocolPolicy(
    name="gw-gs-only",
    allows_gs=True,
    description="ablation: only shared copies go approximate; scribbles "
                "on I always take the conventional miss path",
))
register_protocol(ProtocolPolicy(
    name="gw-gi-only",
    allows_gi=True,
    description="ablation: only invalid copies go approximate; scribbles "
                "on S always pay the UPGRADE",
))
register_protocol(ProtocolPolicy(
    name="self-invalidate",
    allows_gs=True,
    allows_gi=True,
    remote_store_gs="self-invalidate",
    description="non-paper variant: a remote store demotes GS to GI "
                "instead of dropping it, so the holder self-invalidates "
                "at the GI timeout (Abdulla et al.-style)",
))
register_protocol(ProtocolPolicy(
    name="update-hybrid",
    allows_gs=True,
    allows_gi=True,
    update_on_upgrade=True,
    gs_fallback="getx",
    description="non-paper variant: UPGRADEs push the written block to "
                "the surviving sharers instead of invalidating them "
                "(directory-mediated write-update hybrid)",
))
