"""Coherence message objects exchanged over the NoC.

A :class:`Message` is a plain record; routing/latency/energy accounting
happens in :mod:`repro.noc.network`.  ``requestor`` carries the original
requesting L1's node id through forwards so owners can reply directly
(three-hop protocol).
"""
from __future__ import annotations

from repro.common.types import MessageType

__all__ = ["Message", "ProtocolError"]


class ProtocolError(RuntimeError):
    """An impossible protocol state was reached — always a simulator bug,
    never a workload condition."""


class Message:
    """One coherence message: type, block, src/dst nodes, and payload."""
    __slots__ = ("mtype", "block_addr", "src", "dst", "requestor", "words",
                 "stale", "addr", "value", "shared")

    def __init__(
        self,
        mtype: MessageType,
        block_addr: int,
        src: int,
        dst: int,
        *,
        requestor: int | None = None,
        words: list[int] | None = None,
        stale: bool = False,
        addr: int | None = None,
        value: int | None = None,
        shared: bool = False,
    ) -> None:
        if mtype.carries_data and words is None:
            raise ProtocolError(f"{mtype.label} must carry data")
        self.mtype = mtype
        self.block_addr = block_addr
        self.src = src
        self.dst = dst
        #: original requesting node for forwarded requests
        self.requestor = requestor
        #: functional block contents for data-bearing messages
        self.words = words
        #: marks a directory ACK for a PUT that lost a race (discard)
        self.stale = stale
        #: update-hybrid UPGRADE: byte address and value of the store, so
        #: the home can apply it and push the result to the sharers
        self.addr = addr
        self.value = value
        #: marks an upgrade-grant ACK that leaves the requestor in S (the
        #: directory fanned the write out as UPDATEs instead of INVs)
        self.shared = shared

    def payload_bytes(self, block_bytes: int, control_bytes: int) -> int:
        """Wire size: header for control messages, plus the block for data."""
        return block_bytes + control_bytes if self.mtype.carries_data else control_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f", req={self.requestor}" if self.requestor is not None else ""
        return (
            f"Message({self.mtype.label} {self.block_addr:#x} "
            f"{self.src}->{self.dst}{extra})"
        )
