"""The Ghostwriter protocol's L1 transition table — Fig. 3, explicitly.

A declarative (state, event) -> (next state, action) table for the
stable-state protocol, in three roles:

* **documentation** — :func:`render_fig3` prints the state machine the
  way the paper draws it;
* **conformance oracle** — the test suite drives the simulator through
  each entry and checks the observed transition against this table
  (``tests/coherence/test_transition_table.py``);
* **API** — :func:`next_state` lets tools reason about the protocol
  without instantiating a machine.

Events are the local-core accesses and the remote-induced messages a
stable L1 block can see.  Scribble events are split by the outcome of
the scribe similarity check, because that check is what selects between
the approximate and conventional paths (§3.1).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.types import CoherenceState as CS

__all__ = ["Event", "Transition", "TRANSITIONS", "next_state",
           "render_fig3"]


class Event(enum.Enum):
    """Stimuli a stable L1 block can receive."""

    LOAD = "Load"
    STORE = "Store"
    SCRIBBLE_SIMILAR = "Scribble(similar)"
    SCRIBBLE_DISSIMILAR = "Scribble(dissimilar)"
    REMOTE_GETS = "Fwd_GETS/Inv-free read"   # a remote load
    REMOTE_GETX = "Inv/Fwd_GETX"             # a remote conventional store
    GI_TIMEOUT = "Timeout"
    EVICT = "Replacement"


@dataclass(frozen=True, slots=True)
class Transition:
    """One edge of the protocol state machine."""

    state: CS
    event: Event
    next_state: CS
    action: str


#: The stable-state Ghostwriter protocol over MESI (Fig. 3).  ``I`` rows
#: assume the tag is present (the paper's reading of I); a full tag miss
#: always takes the conventional miss path.
TRANSITIONS: tuple[Transition, ...] = (
    # ---- I (tag present) -------------------------------------------------
    Transition(CS.I, Event.LOAD, CS.S, "GETS; fill shared (E if sole)"),
    Transition(CS.I, Event.STORE, CS.M, "GETX; fill + write"),
    Transition(CS.I, Event.SCRIBBLE_SIMILAR, CS.GI,
               "write locally; no GETX; arm timeout"),
    Transition(CS.I, Event.SCRIBBLE_DISSIMILAR, CS.M, "fallback GETX"),
    Transition(CS.I, Event.REMOTE_GETX, CS.I, "ack stray invalidation"),
    Transition(CS.I, Event.EVICT, CS.I, "drop tag"),
    # ---- S ----------------------------------------------------------------
    Transition(CS.S, Event.LOAD, CS.S, "hit"),
    Transition(CS.S, Event.STORE, CS.M, "UPGRADE; invalidate sharers"),
    Transition(CS.S, Event.SCRIBBLE_SIMILAR, CS.GS,
               "write locally; no UPGRADE"),
    Transition(CS.S, Event.SCRIBBLE_DISSIMILAR, CS.M, "fallback UPGRADE"),
    Transition(CS.S, Event.REMOTE_GETS, CS.S, "no action"),
    Transition(CS.S, Event.REMOTE_GETX, CS.I, "invalidate; ack"),
    Transition(CS.S, Event.EVICT, CS.I, "PUTS (prune sharer)"),
    # ---- E ----------------------------------------------------------------
    Transition(CS.E, Event.LOAD, CS.E, "hit"),
    Transition(CS.E, Event.STORE, CS.M, "silent upgrade"),
    Transition(CS.E, Event.SCRIBBLE_SIMILAR, CS.M, "store path (silent)"),
    Transition(CS.E, Event.SCRIBBLE_DISSIMILAR, CS.M, "store path (silent)"),
    Transition(CS.E, Event.REMOTE_GETS, CS.S, "forward data; downgrade"),
    Transition(CS.E, Event.REMOTE_GETX, CS.I, "forward data; invalidate"),
    Transition(CS.E, Event.EVICT, CS.I, "PUTE (clean notice)"),
    # ---- M ----------------------------------------------------------------
    Transition(CS.M, Event.LOAD, CS.M, "hit"),
    Transition(CS.M, Event.STORE, CS.M, "hit"),
    Transition(CS.M, Event.SCRIBBLE_SIMILAR, CS.M, "hit"),
    Transition(CS.M, Event.SCRIBBLE_DISSIMILAR, CS.M, "hit"),
    Transition(CS.M, Event.REMOTE_GETS, CS.S,
               "forward data; copy back; downgrade (O under MOESI)"),
    Transition(CS.M, Event.REMOTE_GETX, CS.I, "forward data; invalidate"),
    Transition(CS.M, Event.EVICT, CS.I, "PUTM (dirty writeback)"),
    # ---- GS ---------------------------------------------------------------
    Transition(CS.GS, Event.LOAD, CS.GS, "hit (possibly stale)"),
    Transition(CS.GS, Event.STORE, CS.GS, "hit, local-only write"),
    Transition(CS.GS, Event.SCRIBBLE_SIMILAR, CS.GS,
               "hit, local-only write"),
    Transition(CS.GS, Event.SCRIBBLE_DISSIMILAR, CS.M,
               "fallback UPGRADE publishes the local block"),
    Transition(CS.GS, Event.REMOTE_GETS, CS.GS, "no action (still sharer)"),
    Transition(CS.GS, Event.REMOTE_GETX, CS.I,
               "invalidate; local updates forfeited"),
    Transition(CS.GS, Event.EVICT, CS.I,
               "PUTS; local updates forfeited"),
    # ---- GI ---------------------------------------------------------------
    Transition(CS.GI, Event.LOAD, CS.GI, "hit (stale)"),
    Transition(CS.GI, Event.STORE, CS.GI, "hit, local-only write"),
    Transition(CS.GI, Event.SCRIBBLE_SIMILAR, CS.GI,
               "hit, local-only write"),
    Transition(CS.GI, Event.SCRIBBLE_DISSIMILAR, CS.M, "fallback GETX"),
    Transition(CS.GI, Event.GI_TIMEOUT, CS.I,
               "flash-invalidate; updates forfeited"),
    Transition(CS.GI, Event.EVICT, CS.I,
               "silent drop; updates forfeited"),
)

_INDEX = {(t.state, t.event): t for t in TRANSITIONS}


def next_state(state: CS, event: Event) -> Transition | None:
    """The table entry for (state, event), or None if the combination
    cannot occur for a stable block."""
    return _INDEX.get((state, event))


def render_fig3() -> str:
    """Fig. 3 as a state-grouped text table."""
    lines = ["Fig. 3: Ghostwriter L1 protocol (stable states)"]
    for state in (CS.I, CS.S, CS.E, CS.M, CS.GS, CS.GI):
        lines.append(f"\n[{state.value}]")
        for t in TRANSITIONS:
            if t.state is state:
                lines.append(
                    f"  {t.event.value:<22} -> {t.next_state.value:<3} "
                    f"({t.action})"
                )
    return "\n".join(lines)
