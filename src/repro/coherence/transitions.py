"""Per-protocol L1 transition tables — Fig. 3, explicitly, per variant.

A declarative (state, event) -> (next state, action) table for the
stable-state protocol, in three roles:

* **documentation** — :func:`render_fig3` prints the state machine the
  way the paper draws it (for any registered protocol);
* **conformance oracle** — the test suite drives the simulator through
  each entry and checks the observed transition against this table, for
  *every* registered protocol variant
  (``tests/coherence/test_transition_table.py``);
* **API** — :func:`next_state` lets tools reason about a protocol
  without instantiating a machine.

Events are the local-core accesses and the remote-induced messages a
stable L1 block can see.  Scribble events are split by the outcome of
the scribe similarity check, because that check is what selects between
the approximate and conventional paths (§3.1).

:data:`TRANSITIONS` remains the hand-written full-Ghostwriter table (the
paper's Fig. 3, pinned verbatim by tests); every other variant's table
is generated from its :class:`~repro.coherence.policy.ProtocolPolicy` by
:func:`protocol_table`, and a parity test guarantees the generator
reproduces the Ghostwriter literal exactly.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

from repro.common.types import CoherenceState as CS

__all__ = ["Event", "Transition", "TRANSITIONS", "protocol_table",
           "next_state", "render_fig3", "scribble_table_arrays",
           "STATE_CODES"]


class Event(enum.Enum):
    """Stimuli a stable L1 block can receive."""

    LOAD = "Load"
    STORE = "Store"
    SCRIBBLE_SIMILAR = "Scribble(similar)"
    SCRIBBLE_DISSIMILAR = "Scribble(dissimilar)"
    REMOTE_GETS = "Fwd_GETS/Inv-free read"   # a remote load
    REMOTE_GETX = "Inv/Fwd_GETX"             # a remote conventional store
    REMOTE_UPDATE = "Update"                 # pushed data (update-hybrid)
    GI_TIMEOUT = "Timeout"
    EVICT = "Replacement"


@dataclass(frozen=True, slots=True)
class Transition:
    """One edge of the protocol state machine."""

    state: CS
    event: Event
    next_state: CS
    action: str


#: The stable-state Ghostwriter protocol over MESI (Fig. 3).  ``I`` rows
#: assume the tag is present (the paper's reading of I); a full tag miss
#: always takes the conventional miss path.
TRANSITIONS: tuple[Transition, ...] = (
    # ---- I (tag present) -------------------------------------------------
    Transition(CS.I, Event.LOAD, CS.S, "GETS; fill shared (E if sole)"),
    Transition(CS.I, Event.STORE, CS.M, "GETX; fill + write"),
    Transition(CS.I, Event.SCRIBBLE_SIMILAR, CS.GI,
               "write locally; no GETX; arm timeout"),
    Transition(CS.I, Event.SCRIBBLE_DISSIMILAR, CS.M, "fallback GETX"),
    Transition(CS.I, Event.REMOTE_GETX, CS.I, "ack stray invalidation"),
    Transition(CS.I, Event.EVICT, CS.I, "drop tag"),
    # ---- S ----------------------------------------------------------------
    Transition(CS.S, Event.LOAD, CS.S, "hit"),
    Transition(CS.S, Event.STORE, CS.M, "UPGRADE; invalidate sharers"),
    Transition(CS.S, Event.SCRIBBLE_SIMILAR, CS.GS,
               "write locally; no UPGRADE"),
    Transition(CS.S, Event.SCRIBBLE_DISSIMILAR, CS.M, "fallback UPGRADE"),
    Transition(CS.S, Event.REMOTE_GETS, CS.S, "no action"),
    Transition(CS.S, Event.REMOTE_GETX, CS.I, "invalidate; ack"),
    Transition(CS.S, Event.EVICT, CS.I, "PUTS (prune sharer)"),
    # ---- E ----------------------------------------------------------------
    Transition(CS.E, Event.LOAD, CS.E, "hit"),
    Transition(CS.E, Event.STORE, CS.M, "silent upgrade"),
    Transition(CS.E, Event.SCRIBBLE_SIMILAR, CS.M, "store path (silent)"),
    Transition(CS.E, Event.SCRIBBLE_DISSIMILAR, CS.M, "store path (silent)"),
    Transition(CS.E, Event.REMOTE_GETS, CS.S, "forward data; downgrade"),
    Transition(CS.E, Event.REMOTE_GETX, CS.I, "forward data; invalidate"),
    Transition(CS.E, Event.EVICT, CS.I, "PUTE (clean notice)"),
    # ---- M ----------------------------------------------------------------
    Transition(CS.M, Event.LOAD, CS.M, "hit"),
    Transition(CS.M, Event.STORE, CS.M, "hit"),
    Transition(CS.M, Event.SCRIBBLE_SIMILAR, CS.M, "hit"),
    Transition(CS.M, Event.SCRIBBLE_DISSIMILAR, CS.M, "hit"),
    Transition(CS.M, Event.REMOTE_GETS, CS.S,
               "forward data; copy back; downgrade (O under MOESI)"),
    Transition(CS.M, Event.REMOTE_GETX, CS.I, "forward data; invalidate"),
    Transition(CS.M, Event.EVICT, CS.I, "PUTM (dirty writeback)"),
    # ---- GS ---------------------------------------------------------------
    Transition(CS.GS, Event.LOAD, CS.GS, "hit (possibly stale)"),
    Transition(CS.GS, Event.STORE, CS.GS, "hit, local-only write"),
    Transition(CS.GS, Event.SCRIBBLE_SIMILAR, CS.GS,
               "hit, local-only write"),
    Transition(CS.GS, Event.SCRIBBLE_DISSIMILAR, CS.M,
               "fallback UPGRADE publishes the local block"),
    Transition(CS.GS, Event.REMOTE_GETS, CS.GS, "no action (still sharer)"),
    Transition(CS.GS, Event.REMOTE_GETX, CS.I,
               "invalidate; local updates forfeited"),
    Transition(CS.GS, Event.EVICT, CS.I,
               "PUTS; local updates forfeited"),
    # ---- GI ---------------------------------------------------------------
    Transition(CS.GI, Event.LOAD, CS.GI, "hit (stale)"),
    Transition(CS.GI, Event.STORE, CS.GI, "hit, local-only write"),
    Transition(CS.GI, Event.SCRIBBLE_SIMILAR, CS.GI,
               "hit, local-only write"),
    Transition(CS.GI, Event.SCRIBBLE_DISSIMILAR, CS.M, "fallback GETX"),
    Transition(CS.GI, Event.GI_TIMEOUT, CS.I,
               "flash-invalidate; updates forfeited"),
    Transition(CS.GI, Event.EVICT, CS.I,
               "silent drop; updates forfeited"),
)


# ---------------------------------------------------------------------
# per-protocol table generation
# ---------------------------------------------------------------------
def _build(policy) -> tuple[Transition, ...]:
    """Generate the stable-state table a ProtocolPolicy implies.

    Row order matches the hand-written Ghostwriter table (states in
    I, S, E, M, [O], [GS], [GI] order; events in access, remote, evict
    order) so the Ghostwriter output is *identical* to ``TRANSITIONS``.
    """
    E, T = Event, Transition
    moesi = policy.base == "moesi"
    update = policy.update_on_upgrade
    rows: list[Transition] = []

    # ---- I (tag present) ----
    rows += [
        T(CS.I, E.LOAD, CS.S, "GETS; fill shared (E if sole)"),
        T(CS.I, E.STORE, CS.M, "GETX; fill + write"),
    ]
    if policy.allows_gi:
        rows.append(T(CS.I, E.SCRIBBLE_SIMILAR, CS.GI,
                      "write locally; no GETX; arm timeout"))
    else:
        rows.append(T(CS.I, E.SCRIBBLE_SIMILAR, CS.M,
                      "conventional GETX (no GI)"))
    rows.append(T(CS.I, E.SCRIBBLE_DISSIMILAR, CS.M,
                  "fallback GETX" if policy.approx
                  else "conventional GETX"))
    rows += [
        T(CS.I, E.REMOTE_GETX, CS.I, "ack stray invalidation"),
        T(CS.I, E.EVICT, CS.I, "drop tag"),
    ]

    # ---- S ----
    store_next = CS.S if update else CS.M
    store_act = ("UPGRADE; push update to sharers (M if sole)"
                 if update else "UPGRADE; invalidate sharers")
    rows.append(T(CS.S, E.LOAD, CS.S, "hit"))
    rows.append(T(CS.S, E.STORE, store_next, store_act))
    if policy.allows_gs:
        rows.append(T(CS.S, E.SCRIBBLE_SIMILAR, CS.GS,
                      "write locally; no UPGRADE"))
    else:
        rows.append(T(CS.S, E.SCRIBBLE_SIMILAR, store_next,
                      "conventional UPGRADE (no GS)"))
    rows.append(T(CS.S, E.SCRIBBLE_DISSIMILAR, store_next,
                  "fallback UPGRADE" if policy.approx
                  else "conventional UPGRADE"))
    rows += [
        T(CS.S, E.REMOTE_GETS, CS.S, "no action"),
        T(CS.S, E.REMOTE_GETX, CS.I, "invalidate; ack"),
    ]
    if update:
        rows.append(T(CS.S, E.REMOTE_UPDATE, CS.S, "apply pushed data"))
    rows.append(T(CS.S, E.EVICT, CS.I, "PUTS (prune sharer)"))

    # ---- E ----
    rows += [
        T(CS.E, E.LOAD, CS.E, "hit"),
        T(CS.E, E.STORE, CS.M, "silent upgrade"),
        T(CS.E, E.SCRIBBLE_SIMILAR, CS.M, "store path (silent)"),
        T(CS.E, E.SCRIBBLE_DISSIMILAR, CS.M, "store path (silent)"),
        T(CS.E, E.REMOTE_GETS, CS.S, "forward data; downgrade"),
        T(CS.E, E.REMOTE_GETX, CS.I, "forward data; invalidate"),
        T(CS.E, E.EVICT, CS.I, "PUTE (clean notice)"),
    ]

    # ---- M ----
    rows += [
        T(CS.M, E.LOAD, CS.M, "hit"),
        T(CS.M, E.STORE, CS.M, "hit"),
        T(CS.M, E.SCRIBBLE_SIMILAR, CS.M, "hit"),
        T(CS.M, E.SCRIBBLE_DISSIMILAR, CS.M, "hit"),
    ]
    if moesi:
        rows.append(T(CS.M, E.REMOTE_GETS, CS.O,
                      "forward data; keep supplying (Owned)"))
    else:
        rows.append(T(CS.M, E.REMOTE_GETS, CS.S,
                      "forward data; copy back; downgrade (O under MOESI)"))
    rows += [
        T(CS.M, E.REMOTE_GETX, CS.I, "forward data; invalidate"),
        T(CS.M, E.EVICT, CS.I, "PUTM (dirty writeback)"),
    ]

    # ---- O (MOESI bases only) ----
    if moesi:
        rows += [
            T(CS.O, E.LOAD, CS.O, "hit"),
            T(CS.O, E.STORE, CS.M, "UPGRADE; invalidate sharers"),
            T(CS.O, E.SCRIBBLE_SIMILAR, CS.M,
              "conventional UPGRADE (O is the coherent master)"),
            T(CS.O, E.SCRIBBLE_DISSIMILAR, CS.M,
              "conventional UPGRADE (O is the coherent master)"),
            T(CS.O, E.REMOTE_GETS, CS.O, "forward data; stay Owned"),
            T(CS.O, E.REMOTE_GETX, CS.I, "forward data; invalidate"),
            T(CS.O, E.EVICT, CS.I, "PUTM (dirty writeback)"),
        ]

    # ---- GS ----
    if policy.allows_gs:
        rows += [
            T(CS.GS, E.LOAD, CS.GS, "hit (possibly stale)"),
            T(CS.GS, E.STORE, CS.GS, "hit, local-only write"),
            T(CS.GS, E.SCRIBBLE_SIMILAR, CS.GS, "hit, local-only write"),
        ]
        if policy.gs_fallback == "getx":
            rows.append(T(CS.GS, E.SCRIBBLE_DISSIMILAR, CS.M,
                          "fallback GETX discards the divergent copy"))
        else:
            rows.append(T(CS.GS, E.SCRIBBLE_DISSIMILAR, CS.M,
                          "fallback UPGRADE publishes the local block"))
        rows.append(T(CS.GS, E.REMOTE_GETS, CS.GS,
                      "no action (still sharer)"))
        if policy.remote_store_gs == "self-invalidate":
            rows.append(T(CS.GS, E.REMOTE_GETX, CS.GI,
                          "demote to GI; self-invalidate at timeout"))
        else:
            rows.append(T(CS.GS, E.REMOTE_GETX, CS.I,
                          "invalidate; local updates forfeited"))
        if update:
            rows.append(T(CS.GS, E.REMOTE_UPDATE, CS.S,
                          "apply pushed data; local updates forfeited"))
        rows.append(T(CS.GS, E.EVICT, CS.I,
                      "PUTS; local updates forfeited"))

    # ---- GI ----
    if policy.allows_gi:
        rows += [
            T(CS.GI, E.LOAD, CS.GI, "hit (stale)"),
            T(CS.GI, E.STORE, CS.GI, "hit, local-only write"),
            T(CS.GI, E.SCRIBBLE_SIMILAR, CS.GI, "hit, local-only write"),
            T(CS.GI, E.SCRIBBLE_DISSIMILAR, CS.M, "fallback GETX"),
            T(CS.GI, E.GI_TIMEOUT, CS.I,
              "flash-invalidate; updates forfeited"),
            T(CS.GI, E.EVICT, CS.I, "silent drop; updates forfeited"),
        ]

    return tuple(rows)


@lru_cache(maxsize=None)
def protocol_table(protocol: str = "ghostwriter") -> tuple[Transition, ...]:
    """The stable-state transition table of a registered protocol.

    The Ghostwriter table is the hand-written :data:`TRANSITIONS`
    literal; other variants are generated from their policy.
    """
    if protocol == "ghostwriter":
        return TRANSITIONS
    from repro.coherence.policy import get_protocol
    return _build(get_protocol(protocol))


@lru_cache(maxsize=None)
def _index(protocol: str) -> dict[tuple[CS, Event], Transition]:
    return {(t.state, t.event): t for t in protocol_table(protocol)}


def next_state(state: CS, event: Event,
               protocol: str = "ghostwriter") -> Transition | None:
    """The table entry for (state, event) under ``protocol``, or None if
    the combination cannot occur for a stable block."""
    return _index(protocol).get((state, event))


_STATE_ORDER = (CS.I, CS.S, CS.E, CS.M, CS.O, CS.GS, CS.GI)

#: fixed state -> small-int code used by the vectorized table arrays
#: (and by the batch backend's decision-trace classification)
STATE_CODES: dict[CS, int] = {s: i for i, s in enumerate(_STATE_ORDER)}


@lru_cache(maxsize=None)
def scribble_table_arrays(protocol: str = "ghostwriter"):
    """Numpy-encoded scribble next-state lookup for ``protocol``.

    Returns ``(similar, dissimilar)``: two int8 arrays of length
    ``len(_STATE_ORDER)``, mapping a line's state code
    (:data:`STATE_CODES`) to the next-state code the table prescribes
    for a similar / dissimilar scribble, or ``-1`` where the table has
    no entry (the combination cannot occur for a stable block under
    that protocol).  This is the array form of
    :func:`protocol_table` the batch backend uses to classify whole
    decision-trace vectors at once instead of one ``next_state`` call
    per check.
    """
    import numpy as np

    idx = _index(protocol)
    n = len(_STATE_ORDER)
    similar = np.full(n, -1, dtype=np.int8)
    dissimilar = np.full(n, -1, dtype=np.int8)
    for state, code in STATE_CODES.items():
        t = idx.get((state, Event.SCRIBBLE_SIMILAR))
        if t is not None:
            similar[code] = STATE_CODES[t.next_state]
        t = idx.get((state, Event.SCRIBBLE_DISSIMILAR))
        if t is not None:
            dissimilar[code] = STATE_CODES[t.next_state]
    similar.setflags(write=False)
    dissimilar.setflags(write=False)
    return similar, dissimilar


def render_fig3(protocol: str = "ghostwriter") -> str:
    """Fig. 3 as a state-grouped text table, for any registered protocol."""
    table = protocol_table(protocol)
    if protocol == "ghostwriter":
        lines = ["Fig. 3: Ghostwriter L1 protocol (stable states)"]
    else:
        lines = [f"Fig. 3 variant [{protocol}]: L1 protocol (stable states)"]
    present = {t.state for t in table}
    for state in _STATE_ORDER:
        if state not in present:
            continue
        lines.append(f"\n[{state.value}]")
        for t in table:
            if t.state is state:
                lines.append(
                    f"  {t.event.value:<22} -> {t.next_state.value:<3} "
                    f"({t.action})"
                )
    return "\n".join(lines)
