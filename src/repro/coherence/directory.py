"""Directory controllers (the protocol's home agents).

Four controllers sit at the mesh corners (Table 1); blocks are
address-interleaved across them.  Each agent owns, for its blocks:

* the full-map directory state (``I`` / ``S`` + sharer set / ``EM`` +
  owner) — kept in a dict, so directory capacity is never the bottleneck
  (the paper's protocol concerns are all at the L1),
* transaction serialization: one in-flight transaction per block, later
  requests queue (a *blocking* directory, the standard gem5-style design),
* orchestration of the data path: L2-slice probes/fills (with their NoC
  hops accounted) and DRAM fetches on L2 misses,
* invalidation fan-out and ack collection for GETX/UPGRADE, and
  owner-forwarding (three-hop transactions: owner replies straight to the
  requestor, with a chained ack/data copy back to the home).

Races handled here (mirroring the L1 side): UPGRADE from a core that lost
its sharer status mid-flight is promoted to a full GETX; a PUT from a
core that is no longer the registered owner is acknowledged as *stale* so
the L1 can free its write-back buffer.

The Ghostwriter states are intentionally invisible here: a GS block is
just an S sharer, a GI block is not tracked at all — the paper keeps all
modifications "simple and local to the L1 level of the hierarchy" (§3.2).
"""
from __future__ import annotations

from collections import deque

from repro.cache.l2 import L2Slice
from repro.coherence.messages import Message, ProtocolError
from repro.common.config import SimConfig
from repro.common.stats import StatGroup
from repro.common.types import DirState, MessageType
from repro.mem.backing import BackingStore
from repro.mem.dram import Dram
from repro.noc.network import Network
from repro.obs.events import Event, EventKind
from repro.sim.engine import CheckpointUnsupported, Engine

__all__ = ["DirectoryAgent", "DirEntry"]


class DirEntry:
    """Full-map directory state for one block: stable state, owner,
    sharer set, and the blocking-transaction queue."""
    __slots__ = ("state", "owner", "sharers", "busy", "pending", "txn")

    def __init__(self) -> None:
        self.state = DirState.I
        self.owner: int | None = None
        self.sharers: set[int] = set()
        self.busy = False
        self.pending: deque[Message] = deque()
        self.txn: _Txn | None = None

    def idle_and_empty(self) -> bool:
        """True when the entry carries no state and can be garbage-collected."""
        return (
            not self.busy
            and not self.pending
            and self.state is DirState.I
            and not self.sharers
        )


class _Txn:
    """Bookkeeping for the single in-flight transaction on a block."""

    __slots__ = ("msg", "pending_acks", "data_words", "data_ready",
                 "waiting_chain", "is_pure_upgrade", "is_update",
                 "_on_chain", "_data_src", "_check")

    def __init__(self, msg: Message) -> None:
        self.msg = msg
        self.pending_acks = 0
        self.data_words: list[int] | None = None
        self.data_ready = False
        self.waiting_chain = False
        self.is_pure_upgrade = False
        #: update-hybrid: UPGRADE fanned out as UPDATEs, not INVs
        self.is_update = False
        self._on_chain = None
        self._data_src: int | None = None
        #: custom completion predicate (MOESI dir-O GETX: acks + chain)
        self._check = None


class DirectoryAgent:
    """One home/directory controller at a mesh corner node."""

    def __init__(
        self,
        node: int,
        cfg: SimConfig,
        engine: Engine,
        network: Network,
        slices: list[L2Slice],
        backing: BackingStore,
        dram: Dram,
        stats: StatGroup,
        *,
        policy=None,
    ) -> None:
        self.node = node
        self.cfg = cfg
        # Machine resolves the policy once and passes it down; direct
        # constructions (unit tests) fall back to the config's resolution
        self.policy = cfg.policy if policy is None else policy
        self._update_upgrades = self.policy.update_on_upgrade
        self.engine = engine
        self.network = network
        self.slices = slices
        self.backing = backing
        self.dram = dram
        self.stats = stats
        self._entries: dict[int, DirEntry] = {}
        #: event bus (repro.obs); wired by Machine.attach_bus
        self.bus = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def entry(self, block: int) -> DirEntry:
        """Fetch-or-create the directory entry for a block."""
        e = self._entries.get(block)
        if e is None:
            e = DirEntry()
            self._entries[block] = e
        return e

    def peek_entry(self, block: int) -> DirEntry | None:
        """The entry for a block without creating one (for tests/invariants)."""
        return self._entries.get(block)

    def _slice(self, block: int) -> L2Slice:
        return self.slices[self.cfg.home_l2_slice(block)]

    def _send(self, mtype: MessageType, block: int, dst: int, *,
              src: int | None = None, **kw) -> None:
        self.network.send(
            Message(mtype, block,
                    src=self.node if src is None else src, dst=dst, **kw)
        )

    # ------------------------------------------------------------------
    # message entry point
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        """Message entry point: responses feed the active transaction;
        requests start or queue behind the per-block transaction."""
        mtype = msg.mtype
        if mtype in (MessageType.INV_ACK, MessageType.CHAIN_DATA,
                     MessageType.CHAIN_ACK, MessageType.CHAIN_ACK_OWNED):
            self._handle_response(msg)
            return
        e = self.entry(msg.block_addr)
        if e.busy:
            e.pending.append(msg)
            self.stats.queued_requests += 1
        else:
            self._start(e, msg)

    def _start(self, e: DirEntry, msg: Message) -> None:
        """Claim the entry, then dispatch after the directory's state
        lookup/update latency (per-block occupancy)."""
        e.busy = True
        lat = self.cfg.dir_access_latency
        if lat:
            self.engine.schedule(lat, lambda: self._dispatch(e, msg))
        else:
            self._dispatch(e, msg)

    def _dispatch(self, e: DirEntry, msg: Message) -> None:
        e.txn = _Txn(msg)
        mtype = msg.mtype
        self.stats.transactions += 1
        bus = self.bus
        if bus is not None:
            bus.emit(Event(
                self.engine.now, EventKind.DIR, self.node, msg.block_addr,
                mtype.label, f"src={msg.src}", msg.src,
            ))
        if mtype is MessageType.GETS:
            self._do_gets(e, msg)
        elif mtype is MessageType.GETX:
            self._do_getx(e, msg)
        elif mtype is MessageType.UPGRADE:
            self._do_upgrade(e, msg)
        elif mtype is MessageType.PUTS:
            self._do_puts(e, msg)
        elif mtype in (MessageType.PUTE, MessageType.PUTM):
            self._do_pute_putm(e, msg)
        else:
            raise ProtocolError(f"directory {self.node} cannot start {msg}")

    def _finish(self, e: DirEntry, block: int) -> None:
        e.txn = None
        if e.pending:
            # keep the entry busy while the queue drains so a request
            # arriving in the gap cannot jump ahead of queued ones
            nxt = e.pending.popleft()
            self.engine.schedule(1, lambda: self._start(e, nxt))
        else:
            e.busy = False
            if e.idle_and_empty():
                self._entries.pop(block, None)

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    def _do_gets(self, e: DirEntry, msg: Message) -> None:
        block, req = msg.block_addr, msg.src
        if e.state is DirState.EM or e.state is DirState.O:
            if e.owner == req:
                raise ProtocolError(
                    f"owner {req} re-requested {block:#x} (PUT overtake?)"
                )
            e.txn.waiting_chain = True
            self._send(MessageType.FWD_GETS, block, e.owner, requestor=req)
            self.stats.fwd_gets += 1

            # completion continues in _handle_response
            def on_chain(chain: Message) -> None:
                if chain.mtype is MessageType.CHAIN_ACK_OWNED:
                    # MOESI: the owner kept the block in O
                    e.sharers.add(req)
                    e.state = DirState.O
                elif chain.mtype is MessageType.CHAIN_DATA:
                    self._l2_install(block, chain.words, dirty=True)
                    e.sharers = e.sharers | {e.owner, req}
                    e.owner = None
                    e.state = DirState.S
                else:  # CHAIN_ACK: clean owner downgraded to S
                    e.sharers = e.sharers | {e.owner, req}
                    e.owner = None
                    e.state = DirState.S
                self._finish(e, block)

            e.txn._on_chain = on_chain
            return
        if e.state is DirState.S:
            def deliver(words: list[int], src_node: int) -> None:
                e.sharers.add(req)
                self._send(MessageType.DATA, block, req, src=src_node,
                           words=words)
                self._finish(e, block)
            self._fetch(block, deliver)
            return
        # DirState.I: exclusive grant (MESI E optimization)
        def deliver_excl(words: list[int], src_node: int) -> None:
            e.state = DirState.EM
            e.owner = req
            self._send(MessageType.DATA_E, block, req, src=src_node,
                       words=words)
            self._finish(e, block)
        self._fetch(block, deliver_excl)

    def _do_getx(self, e: DirEntry, msg: Message) -> None:
        block, req = msg.block_addr, msg.src
        if e.state is DirState.EM:
            if e.owner == req:
                raise ProtocolError(
                    f"owner {req} sent GETX for {block:#x} (PUT overtake?)"
                )
            old_owner = e.owner
            e.txn.waiting_chain = True
            self._send(MessageType.FWD_GETX, block, old_owner, requestor=req)
            self.stats.fwd_getx += 1

            def on_chain(_chain: Message) -> None:
                # requestor got the data directly from the old owner
                e.owner = req
                e.state = DirState.EM
                self._finish(e, block)

            e.txn._on_chain = on_chain
            return
        if e.state is DirState.O:
            # MOESI: invalidate the sharers, forward to the dirty owner
            txn = e.txn
            others = e.sharers - {req}
            txn.pending_acks = len(others)
            for node in others:
                self._send(MessageType.INV, block, node)
                self.stats.invalidations_sent += 1
            txn.waiting_chain = True
            self._send(MessageType.FWD_GETX, block, e.owner, requestor=req)
            self.stats.fwd_getx += 1

            def check() -> None:
                if txn.pending_acks == 0 and not txn.waiting_chain:
                    e.sharers = set()
                    e.owner = req
                    e.state = DirState.EM
                    self._finish(e, block)

            def on_chain(_chain: Message) -> None:
                check()

            txn._on_chain = on_chain
            txn._check = check
            return
        # S or I: invalidate other sharers (if any) and send data
        txn = e.txn
        others = e.sharers - {req}
        txn.pending_acks = len(others)
        for node in others:
            self._send(MessageType.INV, block, node)
            self.stats.invalidations_sent += 1

        def data_ready(words: list[int], src_node: int) -> None:
            txn.data_words = words
            txn.data_ready = True
            txn._data_src = src_node
            self._maybe_complete_getx(e, block, req)

        self._fetch(block, data_ready)

    def _maybe_complete_getx(self, e: DirEntry, block: int, req: int) -> None:
        txn = e.txn
        if txn is None or txn.pending_acks > 0 or not txn.data_ready:
            return
        e.sharers = set()
        e.owner = req
        e.state = DirState.EM
        src = txn._data_src if txn._data_src is not None else self.node
        self._send(MessageType.DATA, block, req, src=src,
                   words=txn.data_words)
        self._finish(e, block)

    def _do_upgrade(self, e: DirEntry, msg: Message) -> None:
        block, req = msg.block_addr, msg.src
        if e.state is DirState.O and (req == e.owner or req in e.sharers):
            # MOESI: grant M to the upgrading owner/sharer after every
            # other copy (including a dirty O owner, whose content the
            # requestor's copy duplicates) is invalidated
            txn = e.txn
            txn.is_pure_upgrade = True
            targets = (e.sharers - {req}) | (
                {e.owner} if e.owner != req else set()
            )
            txn.pending_acks = len(targets)
            for node in targets:
                self._send(MessageType.INV, block, node)
                self.stats.invalidations_sent += 1
            self.stats.upgrades += 1
            if txn.pending_acks == 0:
                self._complete_upgrade(e, block, req)
            return
        if e.state is DirState.S and req in e.sharers:
            others = e.sharers - {req}
            if self._update_upgrades and others:
                # write-update hybrid: push the written block to the
                # surviving sharers instead of invalidating them.  A
                # sole sharer falls through to the normal invalidate
                # path (granted M with zero acks), which avoids paying a
                # data transaction for every private re-write — the
                # classic update-protocol pathology.
                self._do_update(e, msg, others)
                return
            txn = e.txn
            txn.is_pure_upgrade = True
            txn.pending_acks = len(others)
            for node in others:
                self._send(MessageType.INV, block, node)
                self.stats.invalidations_sent += 1
            self.stats.upgrades += 1
            if txn.pending_acks == 0:
                self._complete_upgrade(e, block, req)
            # else: completion continues as INV_ACKs arrive
            return
        # the requestor lost its sharer status while the UPGRADE was in
        # flight: promote to a full GETX (its L1 is now in IM_D)
        self.stats.upgrades_promoted += 1
        self._do_getx(e, msg)

    def _complete_upgrade(self, e: DirEntry, block: int, req: int) -> None:
        e.sharers = set()
        e.owner = req
        e.state = DirState.EM
        self._send(MessageType.ACK, block, req)
        self._finish(e, block)

    def _do_update(self, e: DirEntry, msg: Message, others: set[int]) -> None:
        """Write-update hybrid UPGRADE: apply the requestor's word to the
        coherent copy, push the result to every other sharer, and grant
        the requestor *shared* (not exclusive) access once all sharers
        acknowledged.  Directory state stays S with the sharer set
        unchanged — everyone still holds the (now refreshed) block."""
        block, req = msg.block_addr, msg.src
        if msg.addr is None or msg.value is None:
            raise ProtocolError(f"update UPGRADE without word payload: {msg}")
        txn = e.txn
        txn.is_update = True
        self.stats.upgrades += 1
        self.stats.updates += 1

        def data_ready(words: list[int], _src_node: int) -> None:
            words = words.copy()
            words[(msg.addr - block) // 4] = msg.value
            self._l2_install(block, words, dirty=True)
            txn.pending_acks = len(others)
            for node in others:
                self._send(MessageType.UPDATE, block, node,
                           words=words.copy())
                self.stats.updates_sent += 1

        self._fetch(block, data_ready)

    def _complete_update(self, e: DirEntry, block: int, req: int) -> None:
        # requestor stays a sharer among sharers; state remains S
        self._send(MessageType.ACK, block, req, shared=True)
        self._finish(e, block)

    def _do_puts(self, e: DirEntry, msg: Message) -> None:
        block, src = msg.block_addr, msg.src
        if e.state is DirState.S:
            e.sharers.discard(src)
            if not e.sharers:
                e.state = DirState.I
        elif e.state is DirState.O:
            e.sharers.discard(src)
            if not e.sharers:
                e.state = DirState.EM  # the dirty owner remains
        # in EM/I the PUTS is stale (its copy was already invalidated or
        # converted); nothing to do — PUTS needs no acknowledgement
        self.stats.puts += 1
        self._finish(e, block)

    def _do_pute_putm(self, e: DirEntry, msg: Message) -> None:
        block, src = msg.block_addr, msg.src
        if e.state in (DirState.EM, DirState.O) and e.owner == src:
            if msg.mtype is MessageType.PUTM:
                self._l2_install(block, msg.words, dirty=True)
                self.stats.putm += 1
            else:
                self.stats.pute += 1
            e.owner = None
            # an O owner's departure leaves its sharers behind
            e.state = DirState.S if e.sharers else DirState.I
            self._send(MessageType.ACK, block, src, stale=False)
        else:
            # ownership moved while the PUT was in flight (the L1 already
            # served the forward from its write-back buffer)
            self.stats.stale_puts += 1
            self._send(MessageType.ACK, block, src, stale=True)
        self._finish(e, block)

    # ------------------------------------------------------------------
    # responses (never queue — they belong to the active transaction)
    # ------------------------------------------------------------------
    def _handle_response(self, msg: Message) -> None:
        e = self._entries.get(msg.block_addr)
        if e is None or e.txn is None:
            raise ProtocolError(f"response without transaction: {msg}")
        txn = e.txn
        if msg.mtype is MessageType.INV_ACK:
            if txn.pending_acks <= 0:
                raise ProtocolError(f"unexpected INV_ACK: {msg}")
            txn.pending_acks -= 1
            req = txn.msg.src
            if txn.is_update:
                if txn.pending_acks == 0:
                    self._complete_update(e, msg.block_addr, req)
                return
            if txn.is_pure_upgrade:
                if txn.pending_acks == 0:
                    self._complete_upgrade(e, msg.block_addr, req)
                return
            if txn._check is not None:
                txn._check()
                return
            self._maybe_complete_getx(e, msg.block_addr, req)
            return
        if msg.mtype in (MessageType.CHAIN_DATA, MessageType.CHAIN_ACK,
                         MessageType.CHAIN_ACK_OWNED):
            if not txn.waiting_chain:
                raise ProtocolError(f"unexpected chain response: {msg}")
            txn.waiting_chain = False
            on_chain = txn._on_chain
            if on_chain is None:
                raise ProtocolError("chain response with no continuation")
            on_chain(msg)
            return
        raise ProtocolError(f"directory cannot handle response {msg}")

    # ------------------------------------------------------------------
    # data path: L2 slice + DRAM
    # ------------------------------------------------------------------
    def _fetch(self, block: int, then) -> None:
        """Obtain the globally coherent copy of ``block``.

        Charges the home->slice control hop and the L2 access; falls
        through to DRAM on an L2 miss (installing the block in L2).
        ``then(words, src_node)`` runs when data is ready; ``src_node`` is
        where the data message should originate (the slice tile).
        """
        slc = self._slice(block)
        hop = self.network.account_transfer(self.node, slc.node, data=False)

        def at_slice() -> None:
            words = slc.probe(block)
            if words is not None:
                then(words, slc.node)
                return
            self.stats.l2_misses += 1

            def from_dram() -> None:
                data = self.backing.read_block(block)
                victim = slc.fill(block, data, dirty=False)
                if victim is not None and victim.dirty:
                    self.backing.write_block(victim.block_addr, victim.words)
                    self.dram.write(victim.block_addr)
                then(data, slc.node)

            self.dram.read(block, from_dram)

        self.engine.schedule(hop + self.cfg.l2.hit_latency, at_slice)

    def _l2_install(self, block: int, words: list[int], dirty: bool) -> None:
        """Write dirty data (from a PUTM or chained copyback) into the L2
        slice, spilling any dirty victim to DRAM."""
        slc = self._slice(block)
        self.network.account_transfer(self.node, slc.node, data=True)
        victim = slc.fill(block, words, dirty=dirty)
        self.stats.l2_installs += 1
        if victim is not None and victim.dirty:
            self.backing.write_block(victim.block_addr, victim.words)
            self.dram.write(victim.block_addr)

    # ------------------------------------------------------------------
    # invariants / introspection (used heavily by tests)
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no transaction is active or queued on any block."""
        return all(not e.busy and not e.pending for e in self._entries.values())

    def entries_view(self) -> dict[int, DirEntry]:
        """Shallow copy of the entry map (for invariant checking)."""
        return dict(self._entries)

    def entries_snapshot(self) -> dict[int, DirEntry]:
        """Deprecated alias of :meth:`entries_view` — "snapshot" now
        refers to the restorable checkpoint layer."""
        import warnings

        warnings.warn(
            "DirectoryAgent.entries_snapshot() is deprecated; use "
            "entries_view() (or MachineCheckpoint for restorable state)",
            DeprecationWarning, stacklevel=2,
        )
        return self.entries_view()

    # ------------------------------------------------------------------
    # checkpoint layer
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Restorable directory state: every entry's stable triple
        (state, owner, sorted sharers).  Requires :meth:`quiescent` —
        busy entries hold transaction closures that cannot round-trip."""
        if not self.quiescent():
            raise CheckpointUnsupported(
                f"directory {self.node} has active/queued transactions; "
                "snapshot requires a quiescent agent"
            )
        return {
            "entries": {
                block: (e.state, e.owner, sorted(e.sharers))
                for block, e in self._entries.items()
            },
        }

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state (all entries idle)."""
        entries: dict[int, DirEntry] = {}
        for block, (state, owner, sharers) in blob["entries"].items():
            e = DirEntry()
            e.state = state
            e.owner = owner
            e.sharers = set(sharers)
            entries[block] = e
        self._entries = entries

    def busy_entries(self) -> dict[int, DirEntry]:
        """Blocks with an active or queued transaction (for the watchdog
        dump and the runtime monitor's skip set)."""
        return {
            block: e for block, e in self._entries.items()
            if e.busy or e.pending
        }
