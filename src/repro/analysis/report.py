"""Text-report helpers: aligned tables and run summaries.

The figure drivers and CLI render through these, and they are public API
for downstream users who want quick textual views of their own runs.
"""
from __future__ import annotations

from typing import Sequence

from repro.common.types import MessageClass
from repro.sim.machine import Machine

__all__ = ["format_table", "run_summary", "traffic_summary"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Monospace-aligned table with a dashed header rule."""
    headers = [str(h) for h in headers]
    rows = [[str(c) for c in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def run_summary(machine: Machine) -> str:
    """Key counters of a finished run, one per line."""
    l1 = machine.stats.child("l1")
    noc = machine.stats.child("noc")
    dram = machine.stats.child("dram")
    loads = int(l1.total("loads"))
    stores = int(l1.total("stores"))
    misses = int(l1.total("load_misses") + l1.total("store_misses"))
    accesses = max(loads + stores, 1)
    rows = [
        ("cycles", f"{machine.cycles}"),
        ("L1 accesses", f"{loads + stores} ({loads} loads, {stores} stores)"),
        ("L1 miss rate", f"{misses / accesses:.2%}"),
        ("GS serviced", f"{int(l1.total('gs_serviced'))} entries + "
                        f"{int(l1.total('gs_store_hits'))} hits"),
        ("GI serviced", f"{int(l1.total('gi_serviced'))} entries + "
                        f"{int(l1.total('gi_store_hits'))} hits"),
        ("approx data dropped", f"{int(l1.total('approx_data_dropped'))}"),
        ("NoC messages", f"{int(noc.total('messages'))} "
                         f"({int(noc.total('flit_hops'))} flit-hops)"),
        ("DRAM accesses", f"{int(dram.total('reads'))} reads, "
                          f"{int(dram.total('writes'))} writes"),
    ]
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k.ljust(width)}  {v}" for k, v in rows)


def traffic_summary(machine: Machine) -> str:
    """Fig.-8-style message-class breakdown for one run."""
    counts = machine.network.class_counts()
    total = max(sum(counts.values()), 1)
    rows = [
        [klass.value, str(counts[klass]), f"{counts[klass] / total:.1%}"]
        for klass in MessageClass
    ]
    rows.append(["total", str(sum(counts.values())), "100.0%"])
    return format_table(["class", "messages", "share"], rows)
