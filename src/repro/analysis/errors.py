"""Output-quality metrics used by the paper's evaluation (Table 2).

The paper measures either *maximum percent error* (MPE) or *normalized
root-mean-squared error* (NRMSE), per application, following Akturk et
al. (WDDD'15).  Both are returned as percentages.
"""
from __future__ import annotations

import numpy as np

__all__ = ["mpe", "nrmse", "error_for_metric"]

_EPS = 1e-12


def mpe(reference, measured) -> float:
    """Maximum percent error: ``max |m - r| / |r| * 100``.

    Elements whose reference is (near) zero fall back to absolute error
    (so an exact match is still 0 and the metric never divides by zero).
    """
    ref = np.asarray(reference, dtype=np.float64).ravel()
    mea = np.asarray(measured, dtype=np.float64).ravel()
    if ref.shape != mea.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {mea.shape}")
    if ref.size == 0:
        raise ValueError("empty output")
    diff = np.abs(mea - ref)
    denom = np.abs(ref)
    rel = np.where(denom > _EPS, diff / np.maximum(denom, _EPS), diff)
    return float(rel.max() * 100.0)


def nrmse(reference, measured) -> float:
    """Root-mean-squared error normalized by the reference value range."""
    ref = np.asarray(reference, dtype=np.float64).ravel()
    mea = np.asarray(measured, dtype=np.float64).ravel()
    if ref.shape != mea.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {mea.shape}")
    if ref.size == 0:
        raise ValueError("empty output")
    rmse = float(np.sqrt(np.mean((mea - ref) ** 2)))
    spread = float(ref.max() - ref.min())
    if spread < _EPS:
        scale = max(abs(float(ref.max())), 1.0)
        return rmse / scale * 100.0
    return rmse / spread * 100.0


def error_for_metric(metric: str, reference, measured) -> float:
    """Dispatch to :func:`mpe` or :func:`nrmse` by metric name."""
    if metric == "MPE":
        return mpe(reference, measured)
    if metric == "NRMSE":
        return nrmse(reference, measured)
    raise ValueError(f"unknown error metric {metric!r}")
