"""Store-value similarity analysis — reproduces Fig. 2.

The paper measures, over each application's execution, the d-distance
between every store's value and the word it overwrites in the cache
("irrespective of coherence state"), and plots the cumulative
distribution per suite.  The L1 scribe units record exactly that
histogram during any run; this module aggregates and summarizes them.
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.common.stats import HistogramStat
from repro.common.types import WORD_BITS
from repro.scribe.similarity import SIMILARITY_MASKS
from repro.sim.machine import Machine

__all__ = [
    "machine_store_histogram",
    "cdf_from_histogram",
    "within_distance_array",
    "SimilarityProfile",
]


@lru_cache(maxsize=None)
def _mask_u32(d: int) -> np.uint32:
    """Memoized uint32 comparator mask for d-distance ``d`` (the same
    :data:`~repro.scribe.similarity.SIMILARITY_MASKS` table the live
    scribe units use, cast once per d instead of once per call)."""
    return np.uint32(SIMILARITY_MASKS[d])


def within_distance_array(a: np.ndarray, b: np.ndarray,
                          d: int) -> np.ndarray:
    """Vectorized word-similarity check: ``out[i]`` is True when
    ``a[i]`` and ``b[i]`` are d-distance similar.

    Mask-compare form of the scribe comparator (one XOR + AND over the
    whole array, no per-element bit-length), equivalent to
    ``d_distance_array(a, b) <= d`` — the property tests pin the two
    paths to each other.
    """
    if not 0 <= d <= WORD_BITS:
        raise ValueError(f"d out of range: {d}")
    xor = np.asarray(a, dtype=np.uint32) ^ np.asarray(b, dtype=np.uint32)
    return (xor & _mask_u32(d)) == 0


def machine_store_histogram(machine: Machine) -> HistogramStat:
    """Merged store d-distance histogram across all L1s of a run."""
    merged = HistogramStat()
    for l1 in machine.l1s:
        merged.merge(l1.scribe.stats.histogram("store_d_distance"))
    return merged


def cdf_from_histogram(hist: HistogramStat,
                       max_d: int = WORD_BITS) -> np.ndarray:
    """P(d-distance <= k) for k = 0..max_d (one Fig. 2 curve)."""
    return np.asarray(hist.cdf(max_d))


class SimilarityProfile:
    """A named Fig.-2 curve plus its headline scalars."""

    __slots__ = ("name", "cdf")

    def __init__(self, name: str, hist: HistogramStat) -> None:
        self.name = name
        self.cdf = cdf_from_histogram(hist)

    @property
    def silent_store_fraction(self) -> float:
        """P(0-distance): identical value overwrites (paper avg: 22.8%)."""
        return float(self.cdf[0])

    def fraction_within(self, d: int) -> float:
        """P(d-distance <= d) — e.g. the paper's 36.4% @ 4, 43.7% @ 8."""
        if not 0 <= d <= WORD_BITS:
            raise ValueError(f"d out of range: {d}")
        return float(self.cdf[d])

    def rows(self) -> list[tuple[int, float]]:
        """All (d, cumulative fraction) points of the curve."""
        return [(d, float(p)) for d, p in enumerate(self.cdf)]
