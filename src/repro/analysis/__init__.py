"""repro.analysis subpackage."""
