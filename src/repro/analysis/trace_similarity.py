"""Offline (trace-driven) store-value similarity analysis.

The live Fig. 2 instrumentation (scribe histograms) compares each store
against the word *currently resident in the cache*.  When only a
recorded trace is available, the closest offline approximation compares
each store against the previous write to the same word in global time
order — the value that would be resident absent invalidation-induced
staleness.  Differences between the two views are themselves a measure
of how much stale data the run exposed.

Implemented with vectorized numpy (sort by (address, time), then a
shifted comparison within address groups) — no Python-level loop over
the trace.
"""
from __future__ import annotations

import numpy as np

from repro.scribe.similarity import d_distance_array, similarity_cdf
from repro.trace.record import Trace

__all__ = ["store_distances", "trace_similarity_cdf"]


def store_distances(trace: Trace) -> np.ndarray:
    """d-distance of every store vs the previous write to the same word.

    First-writes to a word compare against the initial value 0 (what an
    uninitialized resident word would hold).  Returns one entry per
    write in the trace, in global time order.
    """
    is_write = trace.is_write()
    if not is_write.any():
        return np.zeros(0, dtype=np.int64)
    addrs = trace.addrs[is_write]
    values = (trace.values[is_write].astype(np.int64)
              & 0xFFFFFFFF).astype(np.uint32)
    cycles = trace.cycles[is_write]

    # stable sort by (addr, time): within each address, writes in order
    order = np.lexsort((cycles, addrs))
    a_sorted = addrs[order]
    v_sorted = values[order]

    prev = np.empty_like(v_sorted)
    prev[1:] = v_sorted[:-1]
    prev[0] = 0
    # first write of each address group compares against 0
    group_start = np.empty(len(a_sorted), dtype=bool)
    group_start[0] = True
    group_start[1:] = a_sorted[1:] != a_sorted[:-1]
    prev[group_start] = 0

    dist_sorted = d_distance_array(v_sorted, prev)
    # undo the sort so results align with the trace's write order
    out = np.empty_like(dist_sorted)
    out[order] = dist_sorted
    return out


def trace_similarity_cdf(trace: Trace, max_d: int = 32) -> np.ndarray:
    """P(d-distance <= k) over all writes in the trace (a Fig. 2 curve
    computed offline)."""
    return similarity_cdf(store_distances(trace), max_d)
