"""Per-core approximate-region tracking (the compiler's job in the paper).

The paper's compiler turns conventional stores inside ``approx_begin`` /
``approx_end`` regions into scribbles for the annotated data structures.
We model that with a per-core :class:`ApproxManager`: thread programs
issue plain ``Store`` ops, and the core consults the manager to decide
whether the store should execute as a scribble.

A one-entry range cache keeps the common case (tight loops over one
array) O(1).
"""
from __future__ import annotations

__all__ = ["ApproxManager"]


class ApproxManager:
    """Set of byte ranges whose stores are approximate, with enable flag."""

    __slots__ = ("_ranges", "enabled", "_hot")

    def __init__(self) -> None:
        self._ranges: list[tuple[int, int]] = []
        self.enabled = False
        self._hot: tuple[int, int] | None = None

    def begin(self, ranges: tuple[tuple[int, int], ...]) -> None:
        """``approx_begin``: add ranges and enable conversion."""
        for start, end in ranges:
            if end <= start:
                raise ValueError(f"empty approximate range [{start:#x},{end:#x})")
            self._ranges.append((start, end))
        self.enabled = True
        self._hot = None

    def end(self, ranges: tuple[tuple[int, int], ...]) -> None:
        """``approx_end``: remove ranges; disables when none remain."""
        for rng in ranges:
            try:
                self._ranges.remove(rng)
            except ValueError:
                raise ValueError(
                    f"approx_end of unannotated range {rng}"
                ) from None
        if not self._ranges:
            self.enabled = False
        self._hot = None

    def clear(self) -> None:
        """Drop all ranges and disable."""
        self._ranges.clear()
        self.enabled = False
        self._hot = None

    def is_approx(self, addr: int) -> bool:
        """Should a store to ``addr`` execute as a scribble?"""
        if not self.enabled:
            return False
        hot = self._hot
        if hot is not None and hot[0] <= addr < hot[1]:
            return True
        for rng in self._ranges:
            if rng[0] <= addr < rng[1]:
                self._hot = rng
                return True
        return False

    def active_ranges(self) -> list[tuple[int, int]]:
        """Copy of the currently annotated ranges."""
        return list(self._ranges)

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable state (the hot-range memo is pure cache)."""
        return {"ranges": list(self._ranges), "enabled": self.enabled}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self._ranges = [tuple(r) for r in blob["ranges"]]
        self.enabled = blob["enabled"]
        self._hot = None
