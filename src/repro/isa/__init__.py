"""repro.isa subpackage."""
