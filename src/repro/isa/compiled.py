"""Compiled thread programs: columnar op streams + the sweep-wide cache.

The legacy execution model materializes one frozen ``@dataclass`` op per
simulated memory reference and round-trips it through a Python generator
into ``Core._step``'s ``type(op)`` dispatch.  That is flexible — programs
are arbitrary Python — but it makes op *materialization* the simulator's
bottleneck, and every point of a d-distance/GI-timeout/protocol sweep
pays it again for the identical op stream.

This module adds a second representation and the machinery around it:

* :class:`CompiledProgram` — the op stream as columnar numpy arrays
  (int8 opcode, int64 addr/value/cycles) plus two sparse side tables
  (sync-object handles, approx-region ranges) and the *segment*
  structure: maximal straight-line runs split at ops whose continuation
  leaves the core (blocking sync).  Loads are *dynamic* segment
  boundaries — instead of splitting, the interpreter validates each
  executed load value against the recorded column and deoptimizes to the
  generator on the first mismatch (see ``Core._step``).
* :class:`ProgramRecorder` — a tee the core attaches to a live generator
  run; it lowers the retired op stream (with the store/scribble access
  type already resolved and every load's actual value patched in) into a
  ``CompiledProgram`` at zero algorithmic cost.
* :class:`ProgramSpec` — what workloads hand to ``Machine.add_thread``:
  a generator *factory* plus a cache key, so a run can record on a cache
  miss, execute from arrays on a hit, and rebuild the generator for
  deoptimization or the end-of-run side-effect replay.
* :class:`ProgramCache` — the (workload, params, seed)-keyed LRU that
  lets every point of a sweep reuse the compiled arrays.
* :func:`resync_generator` / :func:`replay_to_completion` — pure-Python
  generator replays driven by the recorded value column.  Generators are
  deterministic functions of the values fed into them, so feeding the
  recorded (and validated) values reproduces the exact op stream without
  touching the simulated machine; this is how a compiled run re-executes
  the program's Python side effects (result collection) exactly once,
  and how deoptimization resynchronizes a fresh generator mid-stream.
* :func:`lower_trace` — direct trace->``CompiledProgram`` lowering for
  :mod:`repro.trace.replay`, replacing the per-access dataclass
  generator.
"""
from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable

import numpy as np

__all__ = [
    "OP_LOAD", "OP_STORE", "OP_SCRIBBLE", "OP_COMPUTE", "OP_BARRIER",
    "OP_ACQUIRE", "OP_RELEASE", "OP_SETAPRX", "OP_ENDAPRX",
    "OP_APPROX_BEGIN", "OP_APPROX_END", "OP_FLUSH", "OP_NAMES",
    "CompiledProgram", "HitRunPlan", "ProgramRecorder", "ProgramSpec",
    "ProgramCache",
    "resync_generator", "replay_to_completion", "lower_trace",
]

# int8 opcode space.  LOAD/STORE/SCRIBBLE match the trace atype codes
# (repro.trace.record) so trace lowering is a straight copy; the
# store-vs-scribble resolution (`Store` inside an active approx region
# executes as a scribble) is performed at record time, so the interpreter
# never consults the ApproxManager for dispatch.
OP_LOAD = 0
OP_STORE = 1
OP_SCRIBBLE = 2
OP_COMPUTE = 3        # cycles column = compute cycles
OP_BARRIER = 4        # objs table: ("barrier", creation index)
OP_ACQUIRE = 5        # objs table: ("lock", creation index)
OP_RELEASE = 6        # objs table: ("lock", creation index)
OP_SETAPRX = 7        # cycles column = d_distance
OP_ENDAPRX = 8
OP_APPROX_BEGIN = 9   # ranges table: the pragma's range tuple
OP_APPROX_END = 10    # ranges table: the pragma's range tuple
OP_FLUSH = 11

OP_NAMES = (
    "LOAD", "STORE", "SCRIBBLE", "COMPUTE", "BARRIER", "ACQUIRE",
    "RELEASE", "SETAPRX", "ENDAPRX", "APPROX_BEGIN", "APPROX_END", "FLUSH",
)

#: ops after which control leaves the core until a scheduled wakeup —
#: the static segment boundaries
_BLOCKING = frozenset((OP_BARRIER, OP_ACQUIRE))


class CompiledProgram:
    """One thread program as columnar arrays (see module docstring).

    ``op``/``addr``/``value``/``cycles`` are equal-length numpy columns;
    ``objs`` maps a pc to a ``(kind, creation_index)`` sync handle and
    ``ranges`` maps a pc to an approx-pragma range tuple.  When
    ``validate_loads`` is set the interpreter checks every executed
    load's value against the ``value`` column (the deoptimization
    trigger); trace-lowered programs clear it because a replayed trace
    discards load values by construction.
    """

    __slots__ = ("op", "addr", "value", "cycles", "objs", "ranges",
                 "segment_starts", "validate_loads", "_lists", "_plans")

    def __init__(
        self,
        op: np.ndarray,
        addr: np.ndarray,
        value: np.ndarray,
        cycles: np.ndarray,
        objs: dict[int, tuple[str, int]] | None = None,
        ranges: dict[int, tuple] | None = None,
        *,
        validate_loads: bool = True,
    ) -> None:
        self.op = np.asarray(op, dtype=np.int8)
        self.addr = np.asarray(addr, dtype=np.int64)
        self.value = np.asarray(value, dtype=np.int64)
        self.cycles = np.asarray(cycles, dtype=np.int64)
        n = len(self.op)
        if not (len(self.addr) == len(self.value) == len(self.cycles) == n):
            raise ValueError("compiled-program columns must be equal length")
        self.objs = objs or {}
        self.ranges = ranges or {}
        self.segment_starts = self._segments()
        self.validate_loads = validate_loads
        self._lists: tuple[list, list, list, list] | None = None
        self._plans: dict[tuple[int, int], HitRunPlan] = {}

    def _segments(self) -> tuple[int, ...]:
        starts = [0] if len(self.op) else []
        for pc in np.flatnonzero(np.isin(self.op, tuple(_BLOCKING))).tolist():
            if pc + 1 < len(self.op):
                starts.append(pc + 1)
        return tuple(starts)

    def __len__(self) -> int:
        return len(self.op)

    def lists(self) -> tuple[list, list, list, list]:
        """Plain-list views of the columns, memoized.

        The interpreter indexes these instead of the numpy arrays:
        scalar indexing of an ndarray allocates a numpy scalar per
        access, which is slower than list indexing in a Python loop.
        """
        if self._lists is None:
            self._lists = (self.op.tolist(), self.addr.tolist(),
                           self.value.tolist(), self.cycles.tolist())
        return self._lists

    def nbytes(self) -> int:
        """Array payload size (cache accounting)."""
        return (self.op.nbytes + self.addr.nbytes + self.value.nbytes
                + self.cycles.nbytes)

    def hit_plan(self, block_bytes: int, hit_latency: int) -> "HitRunPlan":
        """The memoized :class:`HitRunPlan` for one cache geometry.

        Keyed by ``(block_bytes, hit_latency)`` because the block/word
        decomposition depends on the block size and the per-op cost
        column on the L1 hit latency; a sweep sharing one compiled
        program across many machines with identical geometry reuses one
        plan.
        """
        key = (block_bytes, hit_latency)
        plan = self._plans.get(key)
        if plan is None:
            plan = HitRunPlan(self, block_bytes, hit_latency)
            self._plans[key] = plan
        return plan


class HitRunPlan:
    """Compile-time side tables for the hit-run fast lane.

    Everything here is a pure function of the op stream and the cache
    geometry — no run-time machine state:

    * ``block``/``woff`` — per-op block base address and word offset
      (zero for non-memory ops): the per-access address arithmetic the
      scalar path recomputes per op, hoisted to compile time.
    * ``breaks`` — sorted positions of *static run breaks*: every op
      that blocks, releases a lock, reprograms the scribe unit, edits
      approx ranges, or flushes (opcode >= ``OP_BARRIER``).  A hit run
      can never extend across one.
    * ``cost``/``cum`` — per-op quantum cost (hit latency for memory
      ops, the cycles column for computes) and its prefix sum, so the
      lane finds scalar-identical quantum boundaries with
      ``searchsorted`` instead of replaying the cost loop.
    """

    __slots__ = ("block", "woff", "breaks", "cost", "cum",
                 "block_list", "woff_list")

    def __init__(self, prog: CompiledProgram, block_bytes: int,
                 hit_latency: int) -> None:
        op = prog.op
        off_mask = block_bytes - 1
        self.block = prog.addr & ~np.int64(off_mask)
        self.woff = (prog.addr & np.int64(off_mask)) >> 2
        self.breaks = np.flatnonzero(op >= OP_BARRIER).astype(np.int64)
        is_mem = op < OP_COMPUTE
        cost = np.where(is_mem, np.int64(hit_latency), prog.cycles)
        cost = np.where(op > OP_COMPUTE, np.int64(1), cost)
        self.cost = cost.astype(np.int64)
        self.cum = np.cumsum(self.cost)
        #: plain-list views for the scalar interpreter (same rationale
        #: as CompiledProgram.lists)
        self.block_list = self.block.tolist()
        self.woff_list = self.woff.tolist()

    def run_end(self, pc: int) -> int:
        """First static break position at/after ``pc`` (or stream end)."""
        breaks = self.breaks
        i = np.searchsorted(breaks, pc)
        return int(breaks[i]) if i < len(breaks) else len(self.cost)


class ProgramRecorder:
    """Tee attached to a generator-path run; lowers it op by op.

    The core records every retired op in program order.  A load is
    recorded when issued and its value patched in when the core delivers
    it to the program (:meth:`patch_load`); a load is the only op that
    receives a non-``None`` ``send`` value, so the core's send site is
    the single patch point.  Sync objects are mapped to
    ``(kind, creation_index)`` through the machine's creation-order
    tables; an object the machine did not create (or a range tuple that
    is not plain data) marks the recording non-cacheable rather than
    producing arrays that cannot be rebound to a fresh machine.
    """

    __slots__ = ("ops", "addrs", "vals", "cycs", "objs", "ranges",
                 "cacheable", "_sync_tables", "_obj_map", "_last_load")

    def __init__(self, sync_tables: tuple[list, list] | None = None) -> None:
        self.ops: list[int] = []
        self.addrs: list[int] = []
        self.vals: list[int] = []
        self.cycs: list[int] = []
        self.objs: dict[int, tuple[str, int]] = {}
        self.ranges: dict[int, tuple] = {}
        self.cacheable = True
        self._sync_tables = sync_tables
        self._obj_map: dict[int, tuple[str, int] | None] = {}
        self._last_load = -1

    def record(self, op: int, addr: int = 0, value: int = 0,
               cycles: int = 0) -> None:
        """Append one retired op."""
        self.ops.append(op)
        self.addrs.append(addr)
        self.vals.append(value)
        self.cycs.append(cycles)

    def record_load(self, addr: int) -> None:
        """Append a load; its value arrives later via :meth:`patch_load`."""
        self._last_load = len(self.ops)
        self.record(OP_LOAD, addr)

    def patch_load(self, value: int) -> None:
        """Fill in the value the pending load actually returned."""
        self.vals[self._last_load] = value

    def _locate(self, obj: Any) -> tuple[str, int] | None:
        if self._sync_tables is None:
            return None
        barriers, locks = self._sync_tables
        for i, b in enumerate(barriers):
            if b is obj:
                return ("barrier", i)
        for i, lk in enumerate(locks):
            if lk is obj:
                return ("lock", i)
        return None

    def record_sync(self, op: int, obj: Any) -> None:
        """Append a sync op, resolving its object to a stable handle."""
        ent = self._obj_map.get(id(obj), False)
        if ent is False:
            ent = self._locate(obj)
            self._obj_map[id(obj)] = ent
        if ent is None:
            self.cacheable = False
            ent = ("?", -1)
        self.objs[len(self.ops)] = ent
        self.record(op)

    def record_ranges(self, op: int, ranges: tuple) -> None:
        """Append an approx-region pragma with its range tuple."""
        try:
            hash(ranges)
        except TypeError:
            self.cacheable = False
        self.ranges[len(self.ops)] = ranges
        self.record(op)

    def finalize(self, *, validate_loads: bool = True) -> CompiledProgram:
        """The recorded stream as a :class:`CompiledProgram`."""
        return CompiledProgram(
            np.asarray(self.ops, dtype=np.int8),
            np.asarray(self.addrs, dtype=np.int64),
            np.asarray(self.vals, dtype=np.int64),
            np.asarray(self.cycs, dtype=np.int64),
            dict(self.objs), dict(self.ranges),
            validate_loads=validate_loads,
        )


class ProgramSpec:
    """A thread program by factory, with its materialization-cache slot.

    ``factory()`` must return a *fresh* generator each call — the cold
    path runs (and records) one, deoptimization resynchronizes another,
    and the end-of-run side-effect replay consumes a third.  ``key`` and
    ``cache`` may be ``None`` to opt out of caching (the program still
    runs through the generator path).
    """

    __slots__ = ("factory", "key", "cache")

    def __init__(self, factory: Callable[[], Any],
                 key: Hashable | None = None,
                 cache: "ProgramCache | None" = None) -> None:
        self.factory = factory
        self.key = key
        self.cache = cache


class ProgramCache:
    """LRU of compiled programs, keyed by (workload, params, seed, ...).

    One process-wide instance (``repro.workloads.registry.PROGRAM_CACHE``)
    is shared by every sweep point; ``--jobs N`` workers each hold their
    own copy, which chunked grid execution still amortizes.  Only
    cacheable recordings are stored (see :class:`ProgramRecorder`).
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, CompiledProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> CompiledProgram | None:
        """The cached program, refreshed as most-recently-used."""
        prog = self._entries.get(key)
        if prog is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return prog

    def put(self, key: Hashable, prog: CompiledProgram) -> None:
        """Insert/replace; evicts the least-recently-used past capacity."""
        self._entries[key] = prog
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


# ---------------------------------------------------------------------
# value-driven generator replay
# ---------------------------------------------------------------------
def _advance(gen: Any, ops: list[int], vals: list[int], count: int) -> Any:
    """Fetch ops ``[0, count)`` from ``gen``, feeding recorded load values.

    Returns the value pending delivery for op ``count - 1`` (``None``
    unless it was a load).  Pure Python: no machine interaction, no
    timing — only the program's own side effects execute.
    """
    pending = None
    for i in range(count):
        gen.send(pending)
        pending = vals[i] if ops[i] == OP_LOAD else None
    return pending


def resync_generator(factory: Callable[[], Any], prog: CompiledProgram,
                     count: int) -> Any:
    """A fresh generator advanced through the first ``count`` ops.

    After the call the generator has yielded op ``count - 1`` and awaits
    its ``send`` — exactly the state a live run would be in, so the core
    can deoptimize mid-stream by sending the op's *actual* value next.
    """
    gen = factory()
    ops, _, vals, _ = prog.lists()
    _advance(gen, ops, vals, count)
    return gen


def replay_to_completion(factory: Callable[[], Any],
                         prog: CompiledProgram) -> None:
    """Run one full value-driven generator pass (side effects only).

    A run that executed entirely from arrays never touched the program's
    Python body, so result-collection assignments never happened in this
    workload instance.  Every executed load was validated against the
    value column, and a generator is a deterministic function of the
    values fed to it — so this offline pass follows the identical path
    the live run would have taken.
    """
    gen = factory()
    ops, _, vals, _ = prog.lists()
    pending = _advance(gen, ops, vals, len(ops))
    try:
        op = gen.send(pending)
    except StopIteration:
        return
    raise RuntimeError(
        f"program yielded {op!r} beyond its {len(ops)}-op recording "
        "(non-deterministic thread program?)"
    )


# ---------------------------------------------------------------------
# trace lowering
# ---------------------------------------------------------------------
_MAX_GAP = 200  # cap reconstructed compute gaps (cycles)


def lower_trace(cycles: Iterable[int], atypes: Iterable[int],
                addrs: Iterable[int], values: Iterable[int],
                d_distance: int) -> CompiledProgram:
    """Lower one core's recorded trace columns to a compiled program.

    Mirrors the legacy replay generator exactly: ``SetAprx`` up front,
    a ``Compute`` for every inter-access gap above the hit latency
    (capped at ``_MAX_GAP``), then the access with the trace's resolved
    atype code.  ``validate_loads`` is off — replay re-decides hits and
    values under the replay machine's own protocol, which is the point
    of trace-driven methodology.
    """
    cyc = np.asarray(cycles, dtype=np.int64).tolist()
    atc = np.asarray(atypes, dtype=np.int8).tolist()
    adr = np.asarray(addrs, dtype=np.int64).tolist()
    val = np.asarray(values, dtype=np.int64).tolist()

    ops_o: list[int] = [OP_SETAPRX]
    addr_o: list[int] = [0]
    val_o: list[int] = [0]
    cyc_o: list[int] = [d_distance]

    last = cyc[0] if cyc else 0
    for i in range(len(cyc)):
        gap = cyc[i] - last
        last = cyc[i]
        if gap > 2:
            ops_o.append(OP_COMPUTE)
            addr_o.append(0)
            val_o.append(0)
            cyc_o.append(min(gap, _MAX_GAP))
        code = atc[i]
        ops_o.append(code)
        addr_o.append(adr[i])
        val_o.append(0 if code == OP_LOAD else val[i] & 0xFFFFFFFF)
        cyc_o.append(0)

    return CompiledProgram(
        np.asarray(ops_o, dtype=np.int8),
        np.asarray(addr_o, dtype=np.int64),
        np.asarray(val_o, dtype=np.int64),
        np.asarray(cyc_o, dtype=np.int64),
        validate_loads=False,
    )
