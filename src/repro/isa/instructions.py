"""The simulated instruction set, as yielded by thread programs.

Thread programs are Python generators that ``yield`` these ops; the core
model executes them and ``send``s load results back in.  The set mirrors
the paper's ISA surface:

* ``Load`` / ``Store`` — conventional memory references (32-bit words).
* ``Scribble`` — the approximate store (usually emitted automatically by
  the :class:`~repro.isa.approx.ApproxManager` when a ``Store`` targets an
  annotated region, mirroring the paper's compiler pass).
* ``SetAprx`` / ``EndAprx`` — (re)program / disable the scribe comparator
  (the paper's ``setaprx``/``endaprx`` opcodes; `approx_dist` pragma).
* ``ApproxBegin`` / ``ApproxEnd`` — the `approx_begin`/`approx_end`
  pragmas: mark address ranges whose stores become scribbles.
* ``Compute`` — advance local time (non-memory work).
* ``BarrierWait`` / ``Acquire`` / ``Release`` — scheduler-level sync.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.sync import Barrier, Lock

__all__ = [
    "Load", "Store", "Scribble", "Compute",
    "SetAprx", "EndAprx", "ApproxBegin", "ApproxEnd", "FlushApprox",
    "BarrierWait", "Acquire", "Release", "Op",
]


@dataclass(frozen=True, slots=True)
class Load:
    addr: int


@dataclass(frozen=True, slots=True)
class Store:
    addr: int
    value: int  # 32-bit pattern


@dataclass(frozen=True, slots=True)
class Scribble:
    """Explicitly approximate store (bypasses region lookup)."""

    addr: int
    value: int


@dataclass(frozen=True, slots=True)
class Compute:
    cycles: int


@dataclass(frozen=True, slots=True)
class SetAprx:
    """Program the L1 scribe comparator with a new d-distance."""

    d_distance: int


@dataclass(frozen=True, slots=True)
class EndAprx:
    """Disable approximate transitions at this core's L1."""


@dataclass(frozen=True, slots=True)
class ApproxBegin:
    """Enable scribble conversion for the given (start, end) byte ranges."""

    ranges: tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class ApproxEnd:
    ranges: tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class FlushApprox:
    """Model a context switch / thread join (paper §3.5): the core's
    approximate (GS/GI) lines are dropped to I, forfeiting their local
    updates, so subsequent loads observe globally coherent data."""


@dataclass(frozen=True, slots=True)
class BarrierWait:
    barrier: "Barrier"


@dataclass(frozen=True, slots=True)
class Acquire:
    lock: "Lock"


@dataclass(frozen=True, slots=True)
class Release:
    lock: "Lock"


Op = (
    Load | Store | Scribble | Compute | SetAprx | EndAprx
    | ApproxBegin | ApproxEnd | FlushApprox
    | BarrierWait | Acquire | Release
)
