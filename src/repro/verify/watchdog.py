"""Progress watchdog: deadlock detection with a structured diagnostic.

The blind ``max_cycles`` abort tells you *that* the simulation hung, not
*why*.  The watchdog polls every ``watchdog_interval`` cycles; if no core
retires any work for ``watchdog_stalls`` consecutive intervals while
cores are still unfinished, it raises :class:`DeadlockError` carrying
:func:`diagnostic_dump`: per-core blocked op, L1 MSHR and write-back
buffer contents, directory busy entries with their pending queues, and
the NoC messages still in flight — everything needed to localize a
wedged transaction.

While unfinished cores exist the watchdog keeps itself scheduled, so a
drained-but-deadlocked event queue also surfaces as a watchdog report
instead of a bare "core never finished".
"""
from __future__ import annotations

from repro.sim.engine import SimulationError

__all__ = ["DeadlockError", "ProgressWatchdog", "diagnostic_dump"]

_MAX_DUMPED_MESSAGES = 24


class DeadlockError(SimulationError):
    """No forward progress for the configured number of watchdog
    intervals; the message carries the full diagnostic dump.

    When the hung machine had a checkpoint recorder attached,
    ``Machine.run`` sets :attr:`checkpoint` to the most recent
    :class:`~repro.sim.state.MachineCheckpoint` before re-raising, so
    the hang can be replayed from just before it wedged (the wedged
    state itself is never a safe point — its event queue is full of
    in-flight transaction closures)."""

    checkpoint = None


def diagnostic_dump(machine) -> str:
    """A structured snapshot of everything that can wedge a run."""
    eng = machine.engine
    out = [
        f"=== diagnostic dump @ cycle {eng.now} "
        f"({eng.pending()} events pending) ==="
    ]
    for core in machine.cores:
        if core is None:
            continue
        if core.done:
            status = f"done @ cycle {core.finish_cycle}"
        elif core.blocked_op is not None:
            status = (
                f"BLOCKED on {core.blocked_op} "
                f"since cycle {core._blocked_since}"
            )
        else:
            status = "runnable"
        out.append(f"core {core.cid}: {status}")
    for l1 in machine.l1s:
        entries = l1.mshrs.entries()
        wb = l1.wb_buffer_occupancy()
        if not entries and not wb:
            continue
        for e in entries:
            out.append(
                f"L1 {l1.node}: MSHR {e.kind.value} on {e.block_addr:#x} "
                f"issued @ {e.issued_at}, {len(e.deferred)} deferred msg(s)"
            )
        for block, depth in wb.items():
            out.append(
                f"L1 {l1.node}: write-back buffer holds {block:#x} "
                f"(depth {depth})"
            )
    for agent in machine.agents.values():
        for block, e in agent.busy_entries().items():
            txn = e.txn
            desc = (
                f"dir {agent.node}: busy on {block:#x} "
                f"state={e.state.value} owner={e.owner} "
                f"sharers={sorted(e.sharers)}"
            )
            if txn is not None:
                desc += (
                    f" txn={txn.msg} pending_acks={txn.pending_acks}"
                    f" waiting_chain={txn.waiting_chain}"
                )
            if e.pending:
                desc += f" queued={[str(m) for m in e.pending]}"
            out.append(desc)
    in_flight = machine.network.in_flight()
    for msg in in_flight[:_MAX_DUMPED_MESSAGES]:
        out.append(f"noc in flight: {msg}")
    if len(in_flight) > _MAX_DUMPED_MESSAGES:
        out.append(f"noc: ... and {len(in_flight) - _MAX_DUMPED_MESSAGES} more")
    flight = getattr(machine, "flight", None)
    if flight is not None and len(flight):
        out.append(flight.render_tail())
    return "\n".join(out)


class ProgressWatchdog:
    """Raises :class:`DeadlockError` when retirement stops."""

    def __init__(self, machine, interval: int, stall_threshold: int = 2) -> None:
        if interval < 1:
            raise ValueError("watchdog interval must be >= 1 cycle")
        self.machine = machine
        self.interval = interval
        self.stall_threshold = stall_threshold
        self._last: tuple | None = None
        self._stalls = 0

    def start(self) -> None:
        """Arm the periodic poll (called by ``Machine.run``)."""
        self.machine.engine.schedule_tagged(self.interval, self._fire,
                                            ("watchdog",))

    def _progress(self) -> tuple:
        cores = [c for c in self.machine.cores if c is not None]
        return (
            sum(1 for c in cores if c.done),
            sum(int(c.stats.mem_ops) for c in cores),
            sum(int(c.stats.compute_cycles) for c in cores),
        )

    def _fire(self) -> None:
        cores = [c for c in self.machine.cores if c is not None]
        unfinished = [c for c in cores if not c.done]
        if not unfinished:
            return  # run is finishing; let the queue drain naturally
        snap = self._progress()
        if any(c.blocked_op is None for c in unfinished):
            # a runnable core (e.g. mid-Compute) is forward progress even
            # while the retirement counters sit still
            self._stalls = 0
            self._last = snap
            self.machine.engine.schedule_tagged(self.interval, self._fire,
                                                ("watchdog",))
            return
        if snap == self._last:
            self._stalls += 1
            if self._stalls >= self.stall_threshold:
                raise DeadlockError(
                    f"no op retired in {self._stalls * self.interval} "
                    f"cycles ({sum(1 for c in cores if not c.done)} core(s) "
                    "unfinished)\n" + diagnostic_dump(self.machine)
                )
        else:
            self._stalls = 0
            self._last = snap
        self.machine.engine.schedule_tagged(self.interval, self._fire,
                                            ("watchdog",))

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable stall-tracking state."""
        return {"last": self._last, "stalls": self._stalls}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self._last = blob["last"]
        self._stalls = blob["stalls"]
