"""Randomized protocol fuzzer with trace minimization and a corpus.

A :class:`FuzzTrace` is a fully explicit, JSON-serializable program: one
op list per core over a small pool of hot addresses (a mix of
falsely-shared private words and truly shared words, the layouts that
maximize protocol races).  :func:`run_trace` executes a trace on a small
machine with the runtime invariant monitor and the progress watchdog
armed, then checks:

* quiescence + structural coherence invariants (including the monitor's
  data-value invariant against the golden memory),
* **load provenance** — every loaded value must be the initial value or
  some value previously stored to that address (store values are unique
  by construction, so cross-address mixups and fabricated data are
  caught even under approximate execution),
* **sequential oracle for precise data** — with Ghostwriter disabled the
  final coherent value of every address must be the *last* value some
  core wrote to it (per-core program order is preserved by a coherent
  memory; with Ghostwriter on, dropped scribbles legally resurface older
  values, so only provenance applies).

:func:`run_matrix` sweeps seeds across the registered protocol variants
(precise bases plus every approximation-capable policy, each with the
approximation switch honored); :func:`minimize_trace` is a
deterministic ddmin-style shrinker
for failing traces; :func:`load_corpus_trace`/:func:`save_corpus_trace`
round-trip shrunk traces through ``tests/verify/corpus/`` for regression
replay.  ``python -m repro.verify.fuzz --seeds 200`` runs the sweep from
the command line.
"""
from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path

from repro.common.config import FaultConfig, VerifyConfig, small_config
from repro.isa.instructions import (
    Compute, FlushApprox, Load, Scribble, SetAprx, Store,
)
from repro.sim.machine import Machine

__all__ = [
    "FuzzTrace", "FuzzFailure", "approx_drops",
    "generate_trace", "run_trace", "run_trace_batch",
    "run_trace_fastlane", "run_matrix",
    "minimize_trace", "save_corpus_trace", "load_corpus_trace", "main",
    "PROTOCOL_MATRIX", "BATCH_LANE_DS",
]

#: the protocol configurations every trace is exercised under: both
#: precise bases, every approximation-capable registry variant, one
#: approximation-stripped variant (update-hybrid keeps its write-update
#: mechanism even with approximation off), and two batch-backend
#: differentials (:func:`run_trace_batch`) exercising the lockstep
#: lane-sharing proof of :mod:`repro.sim.batch`.  Entries are
#: ``(protocol, gw)`` or ``(protocol, gw, backend)``; a missing backend
#: means ``"serial"``.
PROTOCOL_MATRIX: tuple[tuple, ...] = (
    ("mesi", False), ("ghostwriter", True),
    ("moesi", False), ("ghostwriter-moesi", True),
    ("gw-gs-only", True), ("gw-gi-only", True),
    ("self-invalidate", True),
    ("update-hybrid", True), ("update-hybrid", False),
    ("ghostwriter", True, "batch"),
    ("gw-gi-only", True, "batch"),
    # hit-run fast-lane differentials (:func:`run_trace_fastlane`):
    # every trace replayed compiled, lane-on vs lane-off, must be
    # bit-identical in fingerprint and engine accounting
    ("ghostwriter", True, "fastlane"),
    ("mesi", False, "fastlane"),
)

#: legacy (base, gw=True) spellings still accepted by :func:`run_trace`;
#: translated here so old callers don't trip the config-layer shim
_LEGACY_GW = {"mesi": "ghostwriter", "moesi": "ghostwriter-moesi"}

_BASE = 0x8000
_WORDS_PER_BLOCK = 16
#: d-distance used by fuzz traces: store values encode the target address
#: above bit 10 and a uniqueness counter in the low 8 bits, so two values
#: for the same word are always d-similar while values for different
#: words never are
_FUZZ_D = 10
_FAR_BIT = 1 << 30

_OP_WEIGHTS = (
    ("load", 32), ("store", 24), ("scribble", 24), ("scribble_far", 8),
    ("compute", 6), ("flush", 6),
)


class FuzzFailure(AssertionError):
    """A fuzz run violated an invariant or oracle; the message names the
    seed, protocol configuration, and the precise check that failed."""


@dataclass(frozen=True, slots=True)
class FuzzTrace:
    """One fully explicit multi-core fuzz program."""

    seed: int
    num_cores: int
    d_distance: int
    #: per-core tuple of ops; each op is ``(kind, addr_or_n, value)``
    ops: tuple[tuple[tuple[str, int, int], ...], ...]

    def op_count(self) -> int:
        """Total ops across all cores."""
        return sum(len(core_ops) for core_ops in self.ops)

    def to_json(self) -> dict:
        """JSON-serializable representation (corpus format)."""
        return {
            "seed": self.seed,
            "num_cores": self.num_cores,
            "d_distance": self.d_distance,
            "ops": [[list(op) for op in core_ops] for core_ops in self.ops],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FuzzTrace":
        """Inverse of :meth:`to_json`."""
        return cls(
            seed=data["seed"],
            num_cores=data["num_cores"],
            d_distance=data["d_distance"],
            ops=tuple(
                tuple((k, int(a), int(b)) for k, a, b in core_ops)
                for core_ops in data["ops"]
            ),
        )


def _pool_addr(slot: int, tid: int, blocks: int) -> int:
    """Map a slot choice to an address.  Even slots pick a word private
    to the thread inside a shared block (false sharing); odd slots pick a
    fully shared word."""
    block = (slot % blocks) * 64
    if slot % 2 == 0:
        off = 4 * (4 + tid % (_WORDS_PER_BLOCK - 4))
    else:
        off = 4 * (slot % 4)
    return _BASE + block + off


def _encode_value(addr: int, uniq: int, far: bool) -> int:
    value = ((addr >> 2) & 0xFFFF) << 10 | (uniq & 0xFF)
    return value | _FAR_BIT if far else value


def generate_trace(seed: int, *, num_cores: int = 3, ops_per_core: int = 24,
                   blocks: int = 3) -> FuzzTrace:
    """A seeded random trace over a small hot-address pool."""
    rng = random.Random(seed)
    kinds = [k for k, w in _OP_WEIGHTS for _ in range(w)]
    uniq = 0
    cores = []
    for tid in range(num_cores):
        ops: list[tuple[str, int, int]] = []
        for _ in range(ops_per_core):
            kind = rng.choice(kinds)
            if kind == "compute":
                ops.append(("compute", rng.randint(1, 8), 0))
                continue
            if kind == "flush":
                ops.append(("flush", 0, 0))
                continue
            addr = _pool_addr(rng.randrange(blocks * 4), tid, blocks)
            if kind == "load":
                ops.append(("load", addr, 0))
                continue
            uniq += 1
            far = kind == "scribble_far"
            value = _encode_value(addr, uniq, far)
            ops.append(
                ("scribble" if far else kind, addr, value)
            )
        cores.append(tuple(ops))
    return FuzzTrace(seed=seed, num_cores=num_cores, d_distance=_FUZZ_D,
                     ops=tuple(cores))


# ---------------------------------------------------------------------
# execution + oracles
# ---------------------------------------------------------------------
def run_trace(trace: FuzzTrace, *, protocol: str = "mesi", gw: bool = True,
              jitter: int = 0, monitor_period: int = 64,
              max_cycles: int = 2_000_000) -> Machine:
    """Execute one trace under one protocol configuration and apply every
    oracle; raises :class:`FuzzFailure` on any violation.  Returns the
    finished machine for further inspection."""
    label = (
        f"seed={trace.seed} protocol={protocol} gw={gw} jitter={jitter}"
    )
    if gw:
        protocol = _LEGACY_GW.get(protocol, protocol)
    cfg = small_config(
        num_cores=max(2, trace.num_cores), enabled=gw,
        d_distance=trace.d_distance, gi_timeout=256, core_quantum=1,
    )
    cfg = dc_replace(
        cfg,
        protocol=protocol,
        verify=VerifyConfig(monitor_period=monitor_period,
                            watchdog_interval=50_000),
        faults=FaultConfig(delay_jitter=jitter, seed=trace.seed or 1),
    )
    m = Machine(cfg)

    written: dict[int, set[int]] = {}
    last_write: dict[int, dict[int, int]] = {}  # addr -> {tid: last value}
    loads: list[tuple[int, int, int]] = []      # (tid, addr, observed)

    def program(tid: int, ops):
        def prog():
            yield SetAprx(trace.d_distance)
            for kind, a, b in ops:
                if kind == "load":
                    value = yield Load(a)
                    loads.append((tid, a, value))
                elif kind == "store":
                    written.setdefault(a, set()).add(b)
                    last_write.setdefault(a, {})[tid] = b
                    yield Store(a, b)
                elif kind == "scribble":
                    written.setdefault(a, set()).add(b)
                    last_write.setdefault(a, {})[tid] = b
                    yield Scribble(a, b)
                elif kind == "compute":
                    yield Compute(a)
                elif kind == "flush":
                    yield FlushApprox()
                else:
                    raise ValueError(f"unknown fuzz op kind {kind!r}")
        return prog()

    for tid, core_ops in enumerate(trace.ops):
        m.add_thread(tid, program(tid, core_ops))

    try:
        m.run(max_cycles=max_cycles)
        m.check_quiescent()
        m.check_coherence_invariants()
    except FuzzFailure:
        raise
    except Exception as exc:
        raise FuzzFailure(f"[{label}] {type(exc).__name__}: {exc}") from exc

    # load provenance: every observed value was initial (0) or stored
    for tid, addr, value in loads:
        if value != 0 and value not in written.get(addr, ()):
            raise FuzzFailure(
                f"[{label}] core {tid} loaded fabricated value "
                f"{value:#x} from {addr:#x}"
            )

    # final-state oracles on the coherent view
    golden = m.monitor.golden if m.monitor is not None else None
    for addr, values in written.items():
        final = (
            golden.word(addr) if golden is not None
            else m.backing.load_word(addr)
        )
        if not gw:
            allowed = set(last_write[addr].values())
        else:
            # dropped scribbles legally resurface older/initial values
            allowed = values | {0}
        if final not in allowed:
            raise FuzzFailure(
                f"[{label}] final value of {addr:#x} is {final:#x}, "
                f"not among {sorted(hex(v) for v in allowed)}"
            )
    return m


#: alternative d-distance lanes the batch differential predicts sharing
#: for, straddling :data:`_FUZZ_D` (values encode same-word similarity
#: in the low 8 bits: lanes above 8 share, while 4 — and sometimes 6 —
#: peel, so both paths of the sharing predicate get exercised)
BATCH_LANE_DS = (4, 6, 8, 12, 14)


def _machine_fingerprint(machine: Machine) -> dict:
    """Complete observable state of a finished machine: every counter,
    the backing-memory image, and each L1's canonical array snapshot —
    the checkpoint layer's :func:`~repro.sim.state.fingerprint_payload`,
    which is the one definition of "observable state" shared by the
    fuzzer, the round-trip tests, and ``MachineCheckpoint``."""
    from repro.sim.state import fingerprint_payload

    return fingerprint_payload(machine)


def run_trace_batch(trace: FuzzTrace, *, protocol: str = "ghostwriter",
                    gw: bool = True, jitter: int = 0,
                    monitor_period: int = 64, max_cycles: int = 2_000_000,
                    lane_ds=BATCH_LANE_DS) -> dict[str, int]:
    """Differential oracle for the lockstep lane-sharing proof of
    :mod:`repro.sim.batch`.

    Runs the trace once as a *representative* with the scribe decision
    probe armed, then for every alternative d-distance in ``lane_ds``
    asks the :class:`~repro.sim.batch.DecisionTrace` whether that lane
    would share.  Each lane predicted to share is re-run serially (a
    never-batched ground-truth run, itself passing :func:`run_trace`'s
    oracles) and must be **bit-identical** to the representative in
    every counter, every backing word, and every cache line
    (:func:`_machine_fingerprint`); any difference is a
    :class:`FuzzFailure`.  Lanes predicted to peel are exactly the
    lanes the batch backend runs through the ordinary interpreter, so
    there is nothing to verify for them.  Returns
    ``{"shared": ..., "peeled": ..., "checks": ...}``.
    """
    from repro.sim.batch import DecisionTrace, probe_hook

    label = f"seed={trace.seed} protocol={protocol} gw={gw} backend=batch"
    records: list = []
    with probe_hook(records):
        rep = run_trace(trace, protocol=protocol, gw=gw, jitter=jitter,
                        monitor_period=monitor_period,
                        max_cycles=max_cycles)
    dtrace = DecisionTrace(records, swept_d=trace.d_distance)
    rep_print = None
    shared = peeled = 0
    for d in lane_ds:
        if d == trace.d_distance:
            continue
        if not dtrace.agrees(d):
            peeled += 1
            continue
        lane = run_trace(dc_replace(trace, d_distance=d),
                         protocol=protocol, gw=gw, jitter=jitter,
                         monitor_period=monitor_period,
                         max_cycles=max_cycles)
        shared += 1
        if rep_print is None:
            rep_print = _machine_fingerprint(rep)
        lane_print = _machine_fingerprint(lane)
        if lane_print != rep_print:
            diff = [k for k in rep_print
                    if lane_print[k] != rep_print[k]]
            raise FuzzFailure(
                f"[{label}] lane d={d} predicted to share with the "
                f"d={trace.d_distance} representative but diverged "
                f"in {', '.join(diff)} ({len(dtrace)} swept checks)"
            )
    return {"shared": shared, "peeled": peeled, "checks": len(dtrace)}


def _lower_fuzz_core(ops, d_distance: int):
    """Lower one fuzz core's op tuple to a :class:`CompiledProgram`
    (``SetAprx`` prefix, then the ops verbatim) so the hit-run fast
    lane — which only exists on the compiled path — can engage."""
    import numpy as np

    from repro.isa.compiled import (
        CompiledProgram, OP_COMPUTE, OP_FLUSH, OP_LOAD, OP_SCRIBBLE,
        OP_SETAPRX, OP_STORE,
    )

    codes = {"load": OP_LOAD, "store": OP_STORE, "scribble": OP_SCRIBBLE}
    ops_o: list[int] = [OP_SETAPRX]
    addr_o: list[int] = [0]
    val_o: list[int] = [0]
    cyc_o: list[int] = [d_distance]
    for kind, a, b in ops:
        if kind == "compute":
            ops_o.append(OP_COMPUTE)
            addr_o.append(0)
            val_o.append(0)
            cyc_o.append(a)
        elif kind == "flush":
            ops_o.append(OP_FLUSH)
            addr_o.append(0)
            val_o.append(0)
            cyc_o.append(0)
        else:
            ops_o.append(codes[kind])
            addr_o.append(a)
            val_o.append(b & 0xFFFFFFFF)
            cyc_o.append(0)
    return CompiledProgram(
        np.asarray(ops_o, dtype=np.int8),
        np.asarray(addr_o, dtype=np.int64),
        np.asarray(val_o, dtype=np.int64),
        np.asarray(cyc_o, dtype=np.int64),
        validate_loads=False,
    )


def run_trace_fastlane(trace: FuzzTrace, *, protocol: str = "ghostwriter",
                       gw: bool = True, jitter: int = 0,
                       max_cycles: int = 2_000_000,
                       min_run: int = 1) -> dict[str, int]:
    """Differential oracle for the hit-run fast lane
    (:mod:`repro.core.hitrun`).

    Lowers the trace to compiled programs (the only form the lane
    executes) and runs it twice — ``fast_lane=True`` vs ``False`` — on
    otherwise identical machines with the runtime monitor *disabled*
    (its commit hook forces the scalar path, which would make the
    differential vacuous) and ``MIN_RUN`` shrunk to ``min_run`` so even
    short fuzz-length hit runs vectorize.  Both runs must pass the
    quiescence/coherence invariants and be **bit-identical** in the
    checkpoint fingerprint payload plus the engine's cycle/event
    accounting; any difference is a :class:`FuzzFailure`.
    """
    import repro.core.hitrun as hitrun

    label = f"seed={trace.seed} protocol={protocol} gw={gw} backend=fastlane"
    if gw:
        protocol = _LEGACY_GW.get(protocol, protocol)
    base = small_config(
        num_cores=max(2, trace.num_cores), enabled=gw,
        d_distance=trace.d_distance, gi_timeout=256, core_quantum=8,
    )
    base = dc_replace(
        base,
        protocol=protocol,
        verify=VerifyConfig(monitor_period=0, watchdog_interval=50_000),
        faults=FaultConfig(delay_jitter=jitter, seed=trace.seed or 1),
    )

    prints = {}
    saved_min_run = hitrun.MIN_RUN
    hitrun.MIN_RUN = min_run
    try:
        for lane in (True, False):
            cfg = dc_replace(base, fast_lane=lane)
            m = Machine(cfg)
            for tid, core_ops in enumerate(trace.ops):
                m.add_thread(tid, _lower_fuzz_core(core_ops,
                                                   trace.d_distance))
            try:
                m.run(max_cycles=max_cycles)
                m.check_quiescent()
                m.check_coherence_invariants()
            except FuzzFailure:
                raise
            except Exception as exc:
                raise FuzzFailure(
                    f"[{label} fast_lane={lane}] "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            payload = _machine_fingerprint(m)
            payload["engine"] = (m.engine.now, m.engine.events_executed)
            prints[lane] = payload
    finally:
        hitrun.MIN_RUN = saved_min_run

    on, off = prints[True], prints[False]
    if on != off:
        diff = [k for k in off if on[k] != off[k]]
        raise FuzzFailure(
            f"[{label}] fast-lane run diverged from the scalar run "
            f"in {', '.join(diff)}"
        )
    return {"ops": trace.op_count()}


def run_matrix(seeds, *, jitter: int = 0, num_cores: int = 3,
               ops_per_core: int = 24, matrix=PROTOCOL_MATRIX,
               corpus_dir: str | Path | None = None) -> dict[str, int]:
    """Run every seed under every protocol configuration.

    Matrix entries are ``(protocol, gw)`` or ``(protocol, gw,
    backend)``; ``backend="batch"`` routes through
    :func:`run_trace_batch`.  Raises :class:`FuzzFailure` on the first
    violation — batch-sharing divergences are first ddmin-minimized and
    saved into ``corpus_dir`` (when given) for regression replay.
    Returns summary counters (``runs``, ``ops``) when everything passes.
    """
    runs = ops = 0
    for seed in seeds:
        trace = generate_trace(seed, num_cores=num_cores,
                               ops_per_core=ops_per_core)
        for protocol, gw, *rest in matrix:
            backend = rest[0] if rest else "serial"
            if backend == "batch":
                try:
                    run_trace_batch(trace, protocol=protocol, gw=gw,
                                    jitter=jitter)
                except FuzzFailure:
                    if corpus_dir is not None:
                        _minimize_batch_divergence(
                            trace, protocol=protocol, gw=gw,
                            jitter=jitter, corpus_dir=corpus_dir)
                    raise
            elif backend == "fastlane":
                try:
                    run_trace_fastlane(trace, protocol=protocol, gw=gw,
                                       jitter=jitter)
                except FuzzFailure:
                    if corpus_dir is not None:
                        _minimize_fastlane_divergence(
                            trace, protocol=protocol, gw=gw,
                            jitter=jitter, corpus_dir=corpus_dir)
                    raise
            else:
                run_trace(trace, protocol=protocol, gw=gw, jitter=jitter)
            runs += 1
            ops += trace.op_count()
    return {"runs": runs, "ops": ops}


def _minimize_batch_divergence(trace: FuzzTrace, *, protocol: str,
                               gw: bool, jitter: int,
                               corpus_dir: str | Path) -> Path:
    """Shrink a batch-sharing divergence and save it to the corpus."""
    def diverges(t: FuzzTrace) -> bool:
        try:
            run_trace_batch(t, protocol=protocol, gw=gw, jitter=jitter)
        except FuzzFailure:
            return True
        return False

    small = minimize_trace(trace, diverges)
    path = (Path(corpus_dir)
            / f"batch_divergence_seed{trace.seed}_{protocol}.json")
    save_corpus_trace(
        small, path,
        note=(f"batch lane-sharing divergence: protocol={protocol} "
              f"gw={gw} jitter={jitter}; replay with "
              f"run_trace_batch (see repro.sim.batch)"),
    )
    return path


def _minimize_fastlane_divergence(trace: FuzzTrace, *, protocol: str,
                                  gw: bool, jitter: int,
                                  corpus_dir: str | Path) -> Path:
    """Shrink a fast-lane/scalar divergence and save it to the corpus."""
    def diverges(t: FuzzTrace) -> bool:
        try:
            run_trace_fastlane(t, protocol=protocol, gw=gw, jitter=jitter)
        except FuzzFailure:
            return True
        return False

    small = minimize_trace(trace, diverges)
    path = (Path(corpus_dir)
            / f"fastlane_divergence_seed{trace.seed}_{protocol}.json")
    save_corpus_trace(
        small, path,
        note=(f"hit-run fast-lane divergence: protocol={protocol} "
              f"gw={gw} jitter={jitter}; replay with "
              f"run_trace_fastlane (see repro.core.hitrun)"),
    )
    return path


def approx_drops(machine: Machine) -> int:
    """Total approximate updates forfeited across all L1s (the
    Ghostwriter GS/GI-invalidation race the corpus traces pin down)."""
    l1_stats = machine.stats.child("l1")
    return sum(
        l1_stats.child(f"c{n}").approx_data_dropped
        for n in range(machine.cfg.num_cores)
    )


# ---------------------------------------------------------------------
# minimization
# ---------------------------------------------------------------------
def minimize_trace(trace: FuzzTrace, failing) -> FuzzTrace:
    """Deterministic ddmin-style shrink: greedily delete op chunks (then
    single ops, then empty cores) while ``failing(trace)`` stays True.
    ``failing`` must be a pure predicate of the trace.

    Verdicts are memoized on the candidate's canonical-JSON BLAKE2b
    digest: the shrink loop revisits identical candidates whenever a
    later pass re-derives an earlier deletion, and ``failing`` runs a
    full (often multi-lane) simulation each time.  This is the
    checkpoint-reuse analog scoped to ddmin — successive trims share
    most of their simulated prefix, but safe-point alignment across
    *different* programs is not generally possible, so the reuse is at
    verdict granularity rather than machine-state granularity.
    """
    import hashlib

    verdicts: dict[bytes, bool] = {}

    def check(t: FuzzTrace) -> bool:
        key = hashlib.blake2b(
            json.dumps(t.to_json(), sort_keys=True).encode(),
            digest_size=16,
        ).digest()
        if key not in verdicts:
            verdicts[key] = bool(failing(t))
        return verdicts[key]

    if not check(trace):
        raise ValueError("minimize_trace needs a failing trace to start from")

    def with_ops(ops_lists) -> FuzzTrace:
        return dc_replace(trace, ops=tuple(tuple(o) for o in ops_lists))

    current = [list(core_ops) for core_ops in trace.ops]
    shrunk = True
    while shrunk:
        shrunk = False
        for cid in range(len(current)):
            chunk = max(1, len(current[cid]) // 2)
            while chunk >= 1:
                start = 0
                while start < len(current[cid]):
                    candidate = [list(o) for o in current]
                    del candidate[cid][start:start + chunk]
                    if check(with_ops(candidate)):
                        current = candidate
                        shrunk = True
                    else:
                        start += chunk
                chunk //= 2
    # drop cores left with no ops (renumbering keeps the machine small)
    pruned = [ops for ops in current if ops]
    if pruned and len(pruned) < len(current):
        candidate = dc_replace(
            trace,
            num_cores=len(pruned),
            ops=tuple(tuple(o) for o in pruned),
        )
        if check(candidate):
            return candidate
    return with_ops(current)


# ---------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------
def save_corpus_trace(trace: FuzzTrace, path: str | Path, *,
                      note: str) -> None:
    """Write a shrunk trace to the regression corpus."""
    data = trace.to_json()
    data["note"] = note
    Path(path).write_text(json.dumps(data, indent=1) + "\n")


def load_corpus_trace(path: str | Path) -> FuzzTrace:
    """Read a corpus trace back."""
    return FuzzTrace.from_json(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """``python -m repro.verify.fuzz``: run the seed sweep and report."""
    import argparse
    import time

    p = argparse.ArgumentParser(
        prog="repro.verify.fuzz",
        description="Randomized Ghostwriter protocol fuzzer.",
    )
    p.add_argument("--seeds", type=int, default=200,
                   help="number of seeded traces (each runs under every "
                        "PROTOCOL_MATRIX variant)")
    p.add_argument("--first-seed", type=int, default=0)
    p.add_argument("--ops", type=int, default=24, help="ops per core")
    p.add_argument("--cores", type=int, default=3)
    p.add_argument("--jitter", type=int, default=0,
                   help="max extra NoC delay cycles (race shaking)")
    p.add_argument("--corpus", metavar="DIR", default=None,
                   help="directory batch-sharing divergences are "
                        "ddmin-minimized into (e.g. tests/verify/corpus)")
    args = p.parse_args(argv)

    t0 = time.time()
    summary = run_matrix(
        range(args.first_seed, args.first_seed + args.seeds),
        jitter=args.jitter, num_cores=args.cores, ops_per_core=args.ops,
        corpus_dir=args.corpus,
    )
    dt = time.time() - t0
    print(
        f"fuzz: {summary['runs']} runs "
        f"({args.seeds} seeds x {len(PROTOCOL_MATRIX)} configs, "
        f"{summary['ops']} trace ops) clean in {dt:.1f}s"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
