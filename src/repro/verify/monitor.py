"""Runtime invariant monitor: protocol safety checked *during* the run.

Ghostwriter deliberately hides locally-dirty copies from the directory
(GS/GI), so the usual "the protocol is standard, trust it" safety net
does not apply.  This module provides:

* :func:`check_block_structure` — the per-block structural invariants
  (SWMR, exclusive/shared exclusion, directory agreement), shared by the
  runtime monitor and the post-run
  :meth:`~repro.sim.machine.Machine.check_coherence_invariants`.
* :class:`GoldenMemory` — a word-granular reference of the globally
  coherent value of every block, maintained from the L1 commit hook:
  whenever an L1 becomes the unique M copy with new data (store hit on
  E/M, fill+store, upgrade grant) its words *are* the coherent values by
  SWMR, so the whole block is recorded.  Blocks never conventionally
  written fall back to the functional backing store (which holds the
  workload's initial data).
* :class:`InvariantMonitor` — fires every ``monitor_period`` cycles,
  skips blocks with in-flight activity (transient L1 states, write-back
  buffer entries, busy/queued directory transactions, undelivered NoC
  messages), and on the remaining — block-quiescent — population checks
  the structural invariants plus the **data-value invariant**: every
  coherent (non-GS/GI) cache line must match the golden memory word for
  word.  A mismatch means corrupted data (see :mod:`repro.faults`) or a
  protocol bug; the configured policy decides between aborting,
  invalidate-and-refetch recovery, and log-and-continue.

Known laundering window (documented, deliberate): a conventional store
committing on a line whose *other* words were already corrupted records
the corruption as golden — exactly the silent-data-corruption window a
real machine without ECC scrubbing has.
"""
from __future__ import annotations

from repro.coherence.messages import ProtocolError
from repro.common.types import CoherenceState as CS

__all__ = ["InvariantViolation", "GoldenMemory", "InvariantMonitor",
           "check_block_structure"]


class InvariantViolation(RuntimeError):
    """A runtime invariant failed (data-value mismatch under the abort
    policy, or any structural violation found mid-run).

    When the machine had a checkpoint recorder attached, ``Machine.run``
    sets :attr:`checkpoint` to the most recent
    :class:`~repro.sim.state.MachineCheckpoint` before re-raising, so
    the violating window can be replayed from just before it."""

    checkpoint = None


def check_block_structure(machine, block: int,
                          states: dict[int, CS]) -> None:
    """Structural invariants for one block given its L1 holders.

    * SWMR: at most one L1 holds the block in E/M/O; E/M owners coexist
      with no S copies, while an O owner (MOESI) coexists with sharers by
      design.  GS copies are *expected* violations of global visibility
      but still appear in the directory sharer list; GI copies are
      invisible to the directory by design.
    * Directory agreement: dir owner <-> the E/M/O holder; every S/GS
      holder is in the dir sharer list.
    """
    owners = [n for n, s in states.items() if s in (CS.E, CS.M, CS.O)]
    exclusive = [n for n, s in states.items() if s in (CS.E, CS.M)]
    shared = [n for n, s in states.items() if s in (CS.S, CS.GS)]
    if len(owners) > 1:
        raise ProtocolError(
            f"SWMR violated on {block:#x}: owners {owners}"
        )
    if exclusive and shared:
        raise ProtocolError(
            f"{block:#x} owned by {exclusive[0]} but shared by {shared}"
        )
    home = machine.cfg.home_directory(block)
    agent = machine.agents.get(home)
    if agent is None:
        # a topology whose directory placement disagrees with the built
        # agents would otherwise surface as a bare KeyError mid-check
        raise ProtocolError(
            f"no directory agent at home node {home} for {block:#x} "
            f"(topology {machine.cfg.noc.topology!r}, directories "
            f"{machine.cfg.noc.directory_nodes})"
        )
    entry = agent.peek_entry(block)
    if owners:
        if entry is None or entry.owner != owners[0]:
            raise ProtocolError(
                f"dir/owner mismatch on {block:#x}: "
                f"L1 owner {owners[0]}, dir {entry}"
            )
    for node in shared:
        if entry is None or node not in entry.sharers:
            raise ProtocolError(
                f"{block:#x}: node {node} holds S/GS but is not a "
                "directory sharer"
            )


class GoldenMemory:
    """Word-granular reference memory of globally coherent values."""

    __slots__ = ("_backing", "_blocks")

    def __init__(self, backing) -> None:
        self._backing = backing
        self._blocks: dict[int, list[int]] = {}

    def commit(self, block: int, words: list[int]) -> None:
        """Record a conventional-store commit (the L1 commit hook)."""
        self._blocks[block] = words.copy()

    def block(self, block_addr: int) -> list[int]:
        """The coherent words of a block (a copy; callers may mutate)."""
        words = self._blocks.get(block_addr)
        if words is None:
            return self._backing.read_block(block_addr)
        return words.copy()

    def word(self, addr: int) -> int:
        """The coherent value of one aligned 32-bit word."""
        base = self._backing.block_base(addr)
        words = self._blocks.get(base)
        if words is None:
            return self._backing.load_word(addr)
        return words[(addr - base) // 4]

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Deep copy of every committed block."""
        return {"blocks": {b: list(w) for b, w in self._blocks.items()}}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self._blocks = {b: list(w) for b, w in blob["blocks"].items()}


class InvariantMonitor:
    """Periodic in-flight invariant checker for one machine."""

    def __init__(self, machine, period: int, *, check_values: bool = True,
                 policy: str = "abort") -> None:
        if period < 1:
            raise ValueError("monitor period must be >= 1 cycle")
        self.machine = machine
        self.period = period
        self.check_values = check_values
        self.policy = policy
        self.golden = GoldenMemory(machine.backing)
        self.stats = machine.stats.child("verify")
        #: human-readable record of every data-value violation observed
        self.violations: list[str] = []
        for l1 in machine.l1s:
            l1.commit_hook = self.golden.commit

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic check (called by ``Machine.run``)."""
        self.machine.engine.schedule_tagged(self.period, self._fire,
                                            ("monitor",))

    def _fire(self) -> None:
        self.check()
        # reschedule only while cores are unfinished: keying on the event
        # queue instead would let two periodic services (e.g. monitor +
        # fault lottery) keep each other alive forever
        if any(c is not None and not c.done for c in self.machine.cores):
            self.machine.engine.schedule_tagged(self.period, self._fire,
                                                ("monitor",))

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable monitor state (counters live in the stats tree)."""
        return {"golden": self.golden.snapshot(),
                "violations": list(self.violations)}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self.golden.restore(blob["golden"])
        self.violations = list(blob["violations"])

    # ------------------------------------------------------------------
    def check(self) -> None:
        """One full pass over every block-quiescent block."""
        m = self.machine
        self.stats.checks += 1
        skip = m.network.blocks_in_flight()
        for l1 in m.l1s:
            skip.update(l1.wb_buffer_occupancy())
            for entry in l1.mshrs.entries():
                skip.add(entry.block_addr)
        for agent in m.agents.values():
            skip.update(agent.busy_entries())

        holders: dict[int, dict[int, object]] = {}
        for l1 in m.l1s:
            for line in l1.array.iter_valid():
                state = line.state
                if state is None or state is CS.I:
                    continue
                if state.transient:
                    skip.add(line.tag)
                    continue
                holders.setdefault(line.tag, {})[l1.node] = (l1, line)

        for block, by_node in holders.items():
            if block in skip:
                self.stats.blocks_skipped += 1
                continue
            self.stats.blocks_checked += 1
            check_block_structure(
                m, block,
                {node: line.state for node, (_l1, line) in by_node.items()},
            )
            if self.check_values:
                self._check_values(block, by_node)

    # ------------------------------------------------------------------
    # data-value invariant
    # ------------------------------------------------------------------
    def _check_values(self, block: int, by_node: dict) -> None:
        golden = None
        for _node, (l1, line) in by_node.items():
            if line.state.approximate or line.words is None:
                continue  # GS/GI diverge from coherent values by design
            if golden is None:
                golden = self.golden.block(block)
            bad = [
                i for i, (have, want) in enumerate(zip(line.words, golden))
                if have != want
            ]
            if bad:
                self._on_corruption(l1, line, block, bad, golden)

    def _on_corruption(self, l1, line, block: int, bad: list[int],
                       golden: list[int]) -> None:
        self.stats.value_violations += 1
        detail = (
            f"data-value invariant violated on {block:#x} at L1 {l1.node} "
            f"(state {line.state.value}): words {bad} hold "
            f"{[hex(line.words[i]) for i in bad]}, coherent "
            f"{[hex(golden[i]) for i in bad]}"
        )
        self.violations.append(detail)
        if self.policy == "abort":
            flight = getattr(self.machine, "flight", None)
            if flight is not None and len(flight):
                detail += "\n" + flight.render_tail()
            raise InvariantViolation(detail)
        if self.policy == "recover":
            self._recover(l1, line, golden)

    def _recover(self, l1, line, golden: list[int]) -> None:
        """Invalidate-and-refetch recovery for a corrupted coherent line.

        An S copy is simply dropped to I: the next access misses and
        refetches coherent data; the stale directory sharer listing is
        safe (a later INV to a non-holder is acknowledged
        unconditionally, same as after a GS flush).  An E/M/O line may be
        the *only* copy, so dropping it would lose data or break
        owner-forwarding — its words are restored in place from the
        golden reference instead.
        """
        if line.state is CS.S:
            l1._set_state(line, CS.I, "corruption recovery: invalidate")
        else:
            line.words[:] = golden
        self.stats.corruptions_recovered += 1
