"""Verification layer: runtime invariant monitor, progress watchdog, and
the randomized protocol fuzzer.

See DESIGN.md ("Verification & fault injection") for the full story; the
short version:

* :class:`~repro.verify.monitor.InvariantMonitor` re-checks SWMR,
  directory agreement and the data-value invariant every
  ``SimConfig.verify.monitor_period`` cycles while the run is live.
* :class:`~repro.verify.watchdog.ProgressWatchdog` turns silent deadlocks
  into :class:`~repro.verify.watchdog.DeadlockError` with a structured
  diagnostic dump.
* :mod:`repro.verify.fuzz` drives seeded random multi-core traces through
  {MESI, MOESI} x {Ghostwriter on/off} under the monitor, with
  failing-trace minimization and a replayable regression corpus.
"""
from repro.verify.monitor import (
    GoldenMemory, InvariantMonitor, InvariantViolation, check_block_structure,
)
from repro.verify.watchdog import DeadlockError, ProgressWatchdog, diagnostic_dump

__all__ = [
    "GoldenMemory",
    "InvariantMonitor",
    "InvariantViolation",
    "check_block_structure",
    "DeadlockError",
    "ProgressWatchdog",
    "diagnostic_dump",
]
