"""Metrics timelines: periodic StatGroup sampling into columnar series.

End-of-run counter totals cannot show *when* an invalidation burst
happened or how long GS/GI residency windows last — the time-resolved
behavior behind Figs. 7–12.  A :class:`MetricsTimeline` attached to a
machine samples the interesting counters every ``timeline_interval``
cycles (plus once at the end of the run) and freezes them into an
immutable columnar :class:`Timeline` with an ``.npz`` round-trip,
mirroring :class:`repro.trace.record.Trace`.

Multi-run files: :func:`save_merged` packs many labeled timelines into
one ``.npz`` (keys ``label/column``), which is how the CLI merges the
per-run timelines of a ``--jobs N`` sweep; :func:`load_merged` splits
them back out.
"""
from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.common.types import CoherenceState

__all__ = ["DEFAULT_TIMELINE_INTERVAL", "Timeline", "MetricsTimeline",
           "save_merged", "load_merged"]

#: Sampling period used when tracing is requested without an explicit
#: interval (the CLI's ``--trace-events`` without ``--timeline-interval``).
DEFAULT_TIMELINE_INTERVAL = 4096

#: L1 counters sampled cumulatively each tick (summed over all L1s).
_L1_COUNTERS = (
    "loads", "stores", "load_misses", "store_misses", "approx_load_hits",
    "approx_store_hits", "gs_serviced", "gi_serviced", "gs_store_hits",
    "gi_store_hits", "invalidations", "gi_timeout_invalidations",
    "approx_data_dropped",
)


class Timeline:
    """An immutable set of equally-long named numpy columns."""

    __slots__ = ("columns",)

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("timeline needs at least one column")
        self.columns = {k: np.asarray(v) for k, v in columns.items()}
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("timeline columns have mismatched lengths")

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return (self.columns.keys() == other.columns.keys()
                and all(np.array_equal(v, other.columns[k])
                        for k, v in self.columns.items()))

    __hash__ = None  # mutable ndarray payload

    def column(self, name: str) -> np.ndarray:
        """One named series."""
        return self.columns[name]

    def records(self) -> list[dict[str, Any]]:
        """Row records (uniform keys), for the harness.export writers."""
        names = list(self.columns)
        return [
            {name: self.columns[name][i].item() for name in names}
            for i in range(len(self))
        ]

    # -- persistence ---------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist as compressed ``.npz`` (one array per column)."""
        np.savez_compressed(Path(path), **self.columns)

    @classmethod
    def load(cls, path: str | Path) -> "Timeline":
        """Load a timeline saved with :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls({name: data[name] for name in data.files})


def save_merged(labeled: Sequence[tuple[str, Timeline]],
                path: str | Path) -> None:
    """Pack labeled timelines into one ``.npz`` keyed ``label/column``.

    Labels must be unique and slash-free; entries are written in the
    given order, so a sorted ``labeled`` yields byte-identical files
    regardless of how the runs were scheduled (the ``--jobs N``
    bit-identity guarantee).
    """
    arrays: dict[str, np.ndarray] = {}
    seen: set[str] = set()
    for label, timeline in labeled:
        if "/" in label:
            raise ValueError(f"timeline label may not contain '/': {label!r}")
        if label in seen:
            raise ValueError(f"duplicate timeline label {label!r}")
        seen.add(label)
        for name, col in timeline.columns.items():
            arrays[f"{label}/{name}"] = col
    if not arrays:
        raise ValueError("nothing to save")
    np.savez_compressed(Path(path), **arrays)


def load_merged(path: str | Path) -> dict[str, Timeline]:
    """Inverse of :func:`save_merged`: label -> Timeline."""
    grouped: dict[str, dict[str, np.ndarray]] = {}
    with np.load(Path(path)) as data:
        for key in data.files:
            label, _, name = key.partition("/")
            grouped.setdefault(label, {})[name] = data[key]
    return {label: Timeline(cols) for label, cols in grouped.items()}


class MetricsTimeline:
    """Live periodic sampler bound to one machine.

    Follows the invariant monitor's scheduling pattern: armed by
    ``Machine.run``, reschedules itself only while cores are unfinished,
    and takes one final sample when the run completes so short runs
    still produce at least one row.
    """

    def __init__(self, machine, interval: int) -> None:
        if interval < 1:
            raise ValueError("timeline interval must be >= 1 cycle")
        self.machine = machine
        self.interval = interval
        self._rows: list[dict[str, float]] = []

    def __len__(self) -> int:
        return len(self._rows)

    # -- scheduling ----------------------------------------------------
    def start(self) -> None:
        """Arm the periodic sampler (called by ``Machine.run``)."""
        self.machine.engine.schedule_tagged(self.interval, self._fire,
                                            ("timeline",))

    def _fire(self) -> None:
        self.sample()
        if any(c is not None and not c.done for c in self.machine.cores):
            self.machine.engine.schedule_tagged(self.interval, self._fire,
                                                ("timeline",))

    # -- checkpoint layer ----------------------------------------------
    def snapshot(self) -> dict:
        """Restorable sampler state: the rows collected so far."""
        return {"rows": [dict(r) for r in self._rows]}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self._rows = [dict(r) for r in blob["rows"]]

    def finish(self) -> None:
        """Take the end-of-run sample (skipped if one just fired)."""
        if not self._rows or self._rows[-1]["cycle"] != self.machine.engine.now:
            self.sample()

    # -- sampling ------------------------------------------------------
    def sample(self) -> None:
        """Snapshot one row of counters at the current cycle."""
        m = self.machine
        row: dict[str, float] = {"cycle": m.engine.now}
        for klass, count in m.network.class_counts().items():
            row[f"msgs_{klass.value}"] = count
        noc = m.stats.child("noc")
        row["flits"] = noc.flits
        row["flit_hops"] = noc.flit_hops
        l1 = m.stats.child("l1")
        for name in _L1_COUNTERS:
            row[name] = l1.total(name)
        gs = gi = 0
        for ctrl in m.l1s:
            for line in ctrl.array.iter_valid():
                if line.state is CoherenceState.GS:
                    gs += 1
                elif line.state is CoherenceState.GI:
                    gi += 1
        row["gs_resident"] = gs
        row["gi_resident"] = gi
        self._rows.append(row)

    # -- result --------------------------------------------------------
    def result(self) -> Timeline:
        """Freeze the samples into an immutable :class:`Timeline`."""
        if not self._rows:
            self.sample()
        names = list(self._rows[0])
        return Timeline({
            name: np.asarray([row[name] for row in self._rows])
            for name in names
        })
