"""Per-run observability capture: what a traced run hands back.

A machine built with tracing enabled carries live, unpicklable objects
(the bus, the recorder, the sampler).  :class:`ObsCapture` freezes just
the results — the event records and the finished timeline — into a
plain value that can ride on a ``RunRow``, cross a process boundary in
a ``--jobs N`` sweep, and feed the exporters/report without the machine.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.timeline import Timeline

__all__ = ["ObsCapture"]


@dataclass(frozen=True)
class ObsCapture:
    """Frozen observability results of one run.

    ``events`` is empty unless the run traced events; ``timeline`` is
    ``None`` unless it sampled a timeline.
    """

    events: tuple[dict[str, Any], ...] = ()
    timeline: Timeline | None = None
    #: registry name of the coherence protocol the traced run used
    protocol: str = "ghostwriter"

    @classmethod
    def from_machine(cls, machine) -> "ObsCapture | None":
        """Harvest a finished machine; ``None`` when nothing was traced."""
        recorder = getattr(machine, "recorder", None)
        sampler = getattr(machine, "timeline", None)
        if recorder is None and sampler is None:
            return None
        return cls(
            events=tuple(recorder.records()) if recorder is not None else (),
            timeline=sampler.result() if sampler is not None else None,
            protocol=machine.cfg.protocol,
        )
