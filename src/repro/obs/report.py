"""Per-phase traffic/staleness summary of a traced run.

:func:`render_report` splits a run's cycle span into equal phases and
breaks down, per phase: coherence messages by class, GS/GI entries,
scribble accept/reject behavior (with the mean observed d-distance),
and MSHR stalls — the Neat-style evaluation view of where the
approximate-coherence action happens in time.  When the capture also
holds a timeline, mean GS/GI residency per phase is folded in.
"""
from __future__ import annotations

from repro.common.types import MessageClass
from repro.obs.capture import ObsCapture

__all__ = ["render_report"]

_CLASSES = tuple(k.value for k in MessageClass)


def _phase_of(cycle: int, span: int, phases: int) -> int:
    idx = cycle * phases // span if span else 0
    return min(idx, phases - 1)


def render_report(capture: ObsCapture, phases: int = 4) -> str:
    """Render the per-phase breakdown as an aligned text table."""
    if phases < 1:
        raise ValueError("need at least one phase")
    events = capture.events
    if not events and capture.timeline is None:
        return "(no observability data captured)"

    end = max((e["cycle"] for e in events), default=0)
    if capture.timeline is not None:
        cycles = capture.timeline.column("cycle")
        if len(cycles):
            end = max(end, int(cycles[-1]))
    span = end + 1

    msg = [dict.fromkeys(_CLASSES, 0) for _ in range(phases)]
    gs_in = [0] * phases
    gi_in = [0] * phases
    flash = [0] * phases
    accept = [0] * phases
    reject = [0] * phases
    dist_sum = [0] * phases
    stalls = [0] * phases
    for e in events:
        p = _phase_of(e["cycle"], span, phases)
        kind = e["kind"]
        if kind == "msg":
            msg[p][e["info"]] += 1
        elif kind == "state":
            what = e["what"]
            if what.endswith("->GS"):
                gs_in[p] += 1
            elif what.endswith("->GI"):
                gi_in[p] += 1
            if e["info"] == "GI timeout":
                flash[p] += 1
        elif kind == "scribble":
            if e["what"] == "accept":
                accept[p] += 1
            else:
                reject[p] += 1
            dist_sum[p] += e["value"]
        elif kind == "mshr_stall":
            stalls[p] += 1

    gs_res: list[float | None] = [None] * phases
    gi_res: list[float | None] = [None] * phases
    tl = capture.timeline
    if tl is not None and "gs_resident" in tl.columns:
        buckets: list[list[int]] = [[] for _ in range(phases)]
        cyc = tl.column("cycle")
        for i in range(len(tl)):
            buckets[_phase_of(int(cyc[i]), span, phases)].append(i)
        for p, idxs in enumerate(buckets):
            if idxs:
                gs_res[p] = sum(
                    float(tl.column("gs_resident")[i]) for i in idxs
                ) / len(idxs)
                gi_res[p] = sum(
                    float(tl.column("gi_resident")[i]) for i in idxs
                ) / len(idxs)

    rows: list[tuple[str, list[str]]] = []
    rows.append(("messages " + "/".join(_CLASSES), [
        "/".join(str(msg[p][c]) for c in _CLASSES) for p in range(phases)
    ]))
    rows.append(("GS entries", [str(n) for n in gs_in]))
    rows.append(("GI entries", [str(n) for n in gi_in]))
    rows.append(("GI-timeout flashes", [str(n) for n in flash]))
    rows.append(("scribble accept/reject", [
        f"{accept[p]}/{reject[p]}" for p in range(phases)
    ]))
    rows.append(("mean observed d", [
        f"{dist_sum[p] / (accept[p] + reject[p]):.2f}"
        if accept[p] + reject[p] else "-"
        for p in range(phases)
    ]))
    rows.append(("MSHR stalls", [str(n) for n in stalls]))
    if tl is not None:
        rows.append(("mean GS resident", [
            f"{gs_res[p]:.1f}" if gs_res[p] is not None else "-"
            for p in range(phases)
        ]))
        rows.append(("mean GI resident", [
            f"{gi_res[p]:.1f}" if gi_res[p] is not None else "-"
            for p in range(phases)
        ]))

    bound = span // phases
    heads = [f"phase {p} (<{(p + 1) * bound if p < phases - 1 else span})"
             for p in range(phases)]
    label_w = max(len(r[0]) for r in rows)
    col_ws = [
        max(len(heads[p]), max(len(r[1][p]) for r in rows))
        for p in range(phases)
    ]
    out = [
        f"per-phase breakdown over {span} cycles, {phases} phases "
        f"[protocol={capture.protocol}]"
    ]
    out.append("  ".join(
        [" " * label_w, *(heads[p].rjust(col_ws[p]) for p in range(phases))]
    ))
    for label, cells in rows:
        out.append("  ".join(
            [label.ljust(label_w),
             *(cells[p].rjust(col_ws[p]) for p in range(phases))]
        ))
    return "\n".join(out)
