"""Observability layer: structured event tracing + metrics timelines.

The third leg of the verification/performance/observability triad
(DESIGN.md §9).  Components of a :class:`~repro.sim.machine.Machine`
emit typed protocol events onto an :class:`EventBus`; consumers include
an in-memory :class:`EventRecorder`, a ring-buffer :class:`FlightRecorder`
whose tail rides along on deadlock/invariant dumps, and a
:class:`MetricsTimeline` sampling the StatGroup counters into columnar
numpy series.  Everything is off by default and guarded by a single
``bus is None`` attribute check on the hot paths.
"""
from repro.obs.capture import ObsCapture
from repro.obs.events import (
    Event, EventBus, EventKind, EventRecorder, FlightRecorder,
)
from repro.obs.report import render_report
from repro.obs.timeline import (
    DEFAULT_TIMELINE_INTERVAL, MetricsTimeline, Timeline, load_merged,
    save_merged,
)

__all__ = [
    "Event", "EventBus", "EventKind", "EventRecorder", "FlightRecorder",
    "MetricsTimeline", "Timeline", "DEFAULT_TIMELINE_INTERVAL",
    "save_merged", "load_merged", "ObsCapture", "render_report",
]
