"""Typed protocol events and the bus that carries them.

Every simulator component that matters for the paper's time-resolved
analysis can emit :class:`Event` objects onto the machine's
:class:`EventBus`:

* the L1 controllers: every access (hit/miss), every coherence-state
  transition — including GS/GI entry/exit, GI-timeout flash-invalidates
  and evictions — and structural MSHR/write-back stalls,
* the scribe comparators: scribble accept/reject decisions with the
  observed d-distance,
* the NoC: every coherence message with its
  :class:`~repro.common.types.MessageClass`,
* the directory agents: every dispatched transaction,
* the L2 slices: probes and fills.

The bus is deliberately dumb — a list of subscriber callables — so that
`machine.bus is None` is the *only* cost tracing imposes on a machine
that does not trace (see ``benchmarks/perf``).
"""
from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

__all__ = ["EventKind", "Event", "EventBus", "EventRecorder",
           "FlightRecorder"]


class EventKind(enum.Enum):
    """Taxonomy of protocol events (DESIGN.md §9)."""

    #: One core memory reference at its L1 (``what`` = access type,
    #: ``info`` = "hit"/"miss", ``value`` = store value, ``addr`` is the
    #: full byte address).
    ACCESS = "access"
    #: An L1 coherence-state transition (``what`` = "old->new",
    #: ``info`` = the transition reason, e.g. "GI timeout").
    STATE = "state"
    #: A coherence message entering the NoC (``what`` = message type,
    #: ``info`` = its MessageClass, ``value`` = destination node).
    MSG = "msg"
    #: A structural stall in the L1 miss path (``info`` = reason).
    MSHR_STALL = "mshr_stall"
    #: A scribble similarity decision (``what`` = "accept"/"reject",
    #: ``value`` = the observed d-distance).
    SCRIBBLE = "scribble"
    #: A directory agent dispatching a transaction (``what`` = message
    #: type, ``value`` = requesting node).
    DIR = "dir"
    #: An L2 slice probe or fill (``what`` = "probe"/"fill").
    L2 = "l2"


@dataclass(slots=True)
class Event:
    """One structured protocol event.

    ``addr`` is block-aligned for every kind except ``ACCESS``, which
    carries the full byte address.  ``what``/``info``/``value`` are
    kind-specific (see :class:`EventKind`).
    """

    cycle: int
    kind: EventKind
    node: int
    addr: int
    what: str
    info: str = ""
    value: int = 0

    def to_record(self) -> dict[str, Any]:
        """A JSON-ready flat record (the events.jsonl row format)."""
        return {
            "cycle": self.cycle, "kind": self.kind.value, "node": self.node,
            "addr": self.addr, "what": self.what, "info": self.info,
            "value": self.value,
        }

    def render(self) -> str:
        """One human-readable line (the flight-recorder dump format)."""
        text = (f"cycle {self.cycle:>8} [{self.kind.value}] "
                f"node {self.node:>2} {self.addr:#x}: {self.what}")
        if self.info:
            text += f" ({self.info})"
        if self.value:
            text += f" v={self.value}"
        return text


class EventBus:
    """Fan-out of :class:`Event` objects to subscriber callables.

    Subscribers may restrict themselves to a set of :class:`EventKind`
    values; emitters on allocation-sensitive paths ask :meth:`wants`
    before even *constructing* an Event, so a machine tracing only state
    transitions never pays per-access Event allocation (the
    ``workload_obs_tracing`` vs ``workload_false_sharing`` gap in
    ``BENCH_perf.json``).
    """

    __slots__ = ("_subscribers", "events_emitted", "_wants_all",
                 "_wanted_kinds")

    def __init__(self) -> None:
        #: (callback, kinds) pairs; kinds None = every kind
        self._subscribers: list[
            tuple[Callable[[Event], None], frozenset[EventKind] | None]
        ] = []
        self.events_emitted = 0
        self._wants_all = False
        self._wanted_kinds: frozenset[EventKind] = frozenset()

    def _recompute_wants(self) -> None:
        self._wants_all = any(kinds is None for _, kinds in self._subscribers)
        self._wanted_kinds = frozenset().union(
            *(kinds for _, kinds in self._subscribers if kinds is not None)
        )

    def subscribe(self, fn: Callable[[Event], None],
                  kinds: Iterable[EventKind] | None = None) -> None:
        """Add a subscriber (called synchronously on every emit).

        ``kinds`` restricts delivery (and, through :meth:`wants`, event
        construction) to the given event kinds; None subscribes to all.
        """
        # == not `is`: bound methods are recreated per attribute access
        if any(f == fn for f, _ in self._subscribers):
            raise ValueError("subscriber already registered")
        self._subscribers.append(
            (fn, None if kinds is None else frozenset(kinds))
        )
        self._recompute_wants()

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        """Remove a subscriber; a no-op if it is not registered."""
        self._subscribers = [
            (f, kinds) for f, kinds in self._subscribers if f != fn
        ]
        self._recompute_wants()

    @property
    def subscriber_count(self) -> int:
        """Number of registered subscribers."""
        return len(self._subscribers)

    def wants(self, kind: EventKind) -> bool:
        """True when at least one subscriber receives this kind."""
        return self._wants_all or kind in self._wanted_kinds

    def emit(self, event: Event) -> None:
        """Deliver one event to each interested subscriber, in
        subscription order."""
        self.events_emitted += 1
        kind = event.kind
        for fn, kinds in self._subscribers:
            if kinds is None or kind in kinds:
                fn(event)


class EventRecorder:
    """Bus subscriber that keeps every event (the ``trace_events`` sink)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def record(self, event: Event) -> None:
        """The bus-facing callback."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def by_kind(self, kind: EventKind) -> list[Event]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e.kind is kind]

    def records(self) -> list[dict[str, Any]]:
        """Every event as a JSON-ready record (export format)."""
        return [e.to_record() for e in self.events]

    def clear(self) -> None:
        """Drop every recorded event."""
        self.events.clear()


class FlightRecorder:
    """Bounded ring buffer of the most recent events.

    Cheap enough to leave armed on long runs; its tail is appended to
    :func:`repro.verify.watchdog.diagnostic_dump` so a ``DeadlockError``
    or invariant violation carries the protocol activity that led up to
    it.
    """

    __slots__ = ("_ring", "events_seen")

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("flight-recorder depth must be >= 1")
        self._ring: deque[Event] = deque(maxlen=depth)
        self.events_seen = 0

    @property
    def depth(self) -> int:
        """Ring capacity (the constructor's ``depth``)."""
        return self._ring.maxlen or 0

    def record(self, event: Event) -> None:
        """The bus-facing callback."""
        self.events_seen += 1
        self._ring.append(event)

    def __len__(self) -> int:
        return len(self._ring)

    def tail(self, n: int | None = None) -> list[Event]:
        """The most recent ``n`` events (all retained ones by default)."""
        events = list(self._ring)
        return events if n is None else events[-n:]

    def render_tail(self, n: int | None = None) -> str:
        """The dump block appended to deadlock/invariant diagnostics."""
        events = self.tail(n)
        head = (f"--- flight recorder: last {len(events)} of "
                f"{self.events_seen} events ---")
        return "\n".join([head, *(e.render() for e in events)])
