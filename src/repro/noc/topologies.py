"""Pluggable NoC topologies: the ``@register_topology`` registry.

What PR 4 did for coherence protocols, this module does for the
interconnect: :class:`Topology` is the abstract route/latency model, and
the registry maps the ``NocConfig.topology`` name to an implementation.
Four topologies ship:

``mesh``
    The paper's 2D mesh with dimension-ordered (X-then-Y) routing —
    byte-identical to the arithmetic that used to live on
    ``NocConfig.coords``/``hops`` and ``repro.noc.topology.xy_route``,
    including the ``hops + 1`` router-traversal count the DSENT-style
    energy model charges.
``ring``
    A bidirectional ring; messages take the shorter direction (ties go
    clockwise).  The cheap-to-build baseline with the *worst* directory
    distance scaling.
``crossbar``
    A single-stage switch: every pair is one hop.  The idealized
    lower bound on NoC distance effects.
``chiplet``
    ``NocConfig.chiplets`` sub-meshes joined through per-chiplet gateway
    nodes (local node 0, the AMD-Zen-3-style ``Mesh_IO_Center`` shape:
    every chiplet hangs off a central IO die).  Crossing chiplets costs
    one extra hop at ``NocConfig.chiplet_link_latency`` instead of
    ``link_latency``, and the default directory placement is one slice
    per chiplet — its gateway — so ``home_directory`` interleaves
    blocks across chiplets.

Topology objects are cheap and stateless; :func:`build_topology`
memoizes them per (frozen, hashable) ``NocConfig`` so the hot paths
share one instance per machine configuration.
"""
from __future__ import annotations

import random
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.common.config import NocConfig

__all__ = [
    "Topology", "MeshTopology", "RingTopology", "CrossbarTopology",
    "ChipletTopology", "register_topology", "get_topology",
    "available_topologies", "build_topology",
]

#: Exhaustive-validation ceiling: at or below this many nodes
#: ``Topology.validate`` checks every (src, dst) pair (the paper's
#: 24-node machine is always exhaustive); above it, a seeded sample.
VALIDATE_SAMPLE_LIMIT = 64


class Topology(ABC):
    """Route and latency model of one interconnect shape.

    Subclasses are registered under :attr:`name` with
    :func:`register_topology` and built from a ``NocConfig`` (which
    carries the geometry knobs: ``mesh_cols``/``mesh_rows``, the
    per-hop latencies, ``chiplets``).  All methods are pure functions
    of the config, so one instance is shared per config via
    :func:`build_topology`.
    """

    #: Registry name (the ``NocConfig.topology`` / ``--topology`` value).
    name: ClassVar[str] = ""

    def __init__(self, cfg: "NocConfig") -> None:
        self.cfg = cfg

    # -- config hooks (classmethods: usable before directory defaulting) --
    @classmethod
    def check_config(cls, cfg: "NocConfig") -> None:
        """Raise ``ValueError`` when ``cfg`` cannot host this topology.
        Runs inside ``NocConfig.__post_init__``, before directory
        placement, so it must not touch ``directory_nodes``."""
        if cfg.chiplets != 1:
            raise ValueError(
                f"topology {cls.name!r} is single-die; NocConfig.chiplets "
                f"must be 1, got {cfg.chiplets}"
            )

    @classmethod
    @abstractmethod
    def default_directory_nodes(cls, cfg: "NocConfig") -> tuple[int, ...]:
        """Directory placement when ``NocConfig.directory_nodes`` is
        left empty."""

    # -- geometry --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total endpoint count (``NocConfig.num_nodes``)."""
        return self.cfg.num_nodes

    @abstractmethod
    def coords(self, node: int) -> tuple[int, int]:
        """(x, y) layout position of a node (plots and XY routing)."""

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Minimal link traversals between two nodes."""

    @abstractmethod
    def route(self, src: int, dst: int) -> list[int]:
        """Node ids visited by the deterministic minimal route,
        inclusive of both endpoints (``len(route) == hops + 1``)."""

    def route_routers(self, src: int, dst: int) -> int:
        """Router traversals for a message — the DSENT energy term.
        Minimal routes visit ``hops + 1`` routers (a local message
        still crosses its own router once)."""
        return self.hops(src, dst) + 1

    # -- latency ---------------------------------------------------------
    def link_latency(self, a: int, b: int) -> int:
        """Cycles on the link between two *adjacent* nodes."""
        return self.cfg.link_latency

    def path_latency(self, src: int, dst: int) -> int:
        """Head-flit latency along the route: router + link per hop.
        Serialization (``flits - 1``) is added by the caller."""
        per_hop = self.cfg.router_latency + self.cfg.link_latency
        return self.hops(src, dst) * per_hop

    # -- directory placement --------------------------------------------
    def directory_nodes(self) -> tuple[int, ...]:
        """The config's directory placement (defaulted at construction)."""
        return self.cfg.directory_nodes

    def mean_directory_hops(self) -> float:
        """Mean hop distance from a node to a (block-interleaved,
        hence uniformly likely) home directory — the x-axis of the
        ``fig_topology`` sensitivity study."""
        dirs = self.cfg.directory_nodes
        if not dirs:
            return 0.0
        n = self.num_nodes
        total = sum(self.hops(node, d) for node in range(n) for d in dirs)
        return total / (n * len(dirs))

    # -- rendering -------------------------------------------------------
    def summary(self) -> str:
        """One-line description for Table 1's Network row."""
        return (f"{self.num_nodes}-node {self.name}, "
                f"{self.cfg.router_latency}-cycle router, "
                f"{self.cfg.link_latency}-cycle link, "
                f"{len(self.cfg.directory_nodes)} Directory Controllers")

    # -- conformance -----------------------------------------------------
    def _validate_nodes(self, sample_limit: int, seed: int) -> list[int]:
        """The node set validation covers: every node up to
        ``sample_limit``, else a seeded deterministic sample that always
        includes the endpoints and every directory node."""
        n = self.num_nodes
        if n <= sample_limit:
            return list(range(n))
        # a str seed hashes deterministically (no PYTHONHASHSEED salt),
        # so the sampled pair set is stable across processes and runs
        rng = random.Random(f"{self.name}:{n}:{seed}")
        picked = set(rng.sample(range(n), sample_limit))
        picked.update(self.cfg.directory_nodes)
        picked.update((0, n - 1))
        return sorted(picked)

    def validate(self, *, sample_limit: int = VALIDATE_SAMPLE_LIMIT,
                 seed: int = 0) -> None:
        """Route conformance: minimal, connected, endpoint-correct.

        Exhaustive over all pairs up to ``sample_limit`` nodes (the
        paper-scale machines); above that, all pairs among a seeded
        deterministic node sample — O(limit²) instead of O(n²) at 256
        cores.  Raises ``AssertionError`` on the first violation.
        """
        nodes = self._validate_nodes(sample_limit, seed)
        for src in nodes:
            for dst in nodes:
                if self.hops(src, dst) != self.hops(dst, src):
                    raise AssertionError(
                        f"asymmetric hops {src}<->{dst}")
                path = self.route(src, dst)
                if path[0] != src or path[-1] != dst:
                    raise AssertionError(
                        f"route {src}->{dst} has wrong endpoints: {path}")
                if len(path) - 1 != self.hops(src, dst):
                    raise AssertionError(
                        f"non-minimal route {src}->{dst}: {path}")
                for a, b in zip(path, path[1:]):
                    if self.hops(a, b) != 1:
                        raise AssertionError(
                            f"route {src}->{dst} jumps {a}->{b}")


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
_REGISTRY: dict[str, type[Topology]] = {}


def register_topology(cls: type[Topology]) -> type[Topology]:
    """Class decorator: register a :class:`Topology` under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise ValueError(f"topology class {cls!r} needs a 'name' attribute")
    if name in _REGISTRY:
        raise ValueError(f"topology {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_topology(name: str) -> type[Topology]:
    """The registered topology class, or ``KeyError`` naming the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; registered: "
            f"{', '.join(available_topologies())}"
        ) from None


def available_topologies() -> tuple[str, ...]:
    """Registered topology names, sorted."""
    return tuple(sorted(_REGISTRY))


@lru_cache(maxsize=256)
def build_topology(cfg: "NocConfig") -> Topology:
    """The (memoized) topology object of a config.  ``NocConfig`` is
    frozen and hashable, so every machine built from the same config
    shares one instance."""
    return get_topology(cfg.topology)(cfg)


# ---------------------------------------------------------------------
# Implementations
# ---------------------------------------------------------------------
@register_topology
class MeshTopology(Topology):
    """The paper's 2D mesh with dimension-ordered XY routing."""

    name = "mesh"

    @classmethod
    def default_directory_nodes(cls, cfg: "NocConfig") -> tuple[int, ...]:
        # Table 1's placement: the four mesh corners
        c, r = cfg.mesh_cols, cfg.mesh_rows
        return tuple(sorted({0, c - 1, c * (r - 1), c * r - 1}))

    def coords(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh")
        return node % self.cfg.mesh_cols, node // self.cfg.mesh_cols

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> list[int]:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        cols = self.cfg.mesh_cols
        path = [src]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(y * cols + x)
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(y * cols + x)
        return path

    def summary(self) -> str:
        cfg = self.cfg
        return (f"{cfg.mesh_cols}x{cfg.mesh_rows} Mesh, XY Routing, "
                f"{cfg.router_latency}-cycle router, "
                f"{cfg.link_latency}-cycle link, "
                f"{len(cfg.directory_nodes)} Directory Controllers "
                f"at Mesh Corners")


def _spread_nodes(n: int, k: int = 4) -> tuple[int, ...]:
    """Up to ``k`` node ids spread evenly over ``range(n)``."""
    k = min(k, n)
    return tuple(sorted({(i * n) // k for i in range(k)}))


@register_topology
class RingTopology(Topology):
    """Bidirectional ring; the shorter direction wins, ties clockwise."""

    name = "ring"

    @classmethod
    def default_directory_nodes(cls, cfg: "NocConfig") -> tuple[int, ...]:
        return _spread_nodes(cfg.num_nodes)

    def coords(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside ring")
        return node, 0

    def hops(self, src: int, dst: int) -> int:
        self.coords(src), self.coords(dst)  # range checks
        d = abs(src - dst)
        return min(d, self.num_nodes - d)

    def route(self, src: int, dst: int) -> list[int]:
        n = self.num_nodes
        self.coords(src), self.coords(dst)
        fwd = (dst - src) % n
        back = (src - dst) % n
        step = 1 if fwd <= back else -1
        path = [src]
        node = src
        for _ in range(min(fwd, back)):
            node = (node + step) % n
            path.append(node)
        return path

    def summary(self) -> str:
        return (f"{self.num_nodes}-node Bidirectional Ring, "
                f"{self.cfg.router_latency}-cycle router, "
                f"{self.cfg.link_latency}-cycle link, "
                f"{len(self.cfg.directory_nodes)} Directory Controllers")


@register_topology
class CrossbarTopology(Topology):
    """Single-stage crossbar: every distinct pair is one hop."""

    name = "crossbar"

    @classmethod
    def default_directory_nodes(cls, cfg: "NocConfig") -> tuple[int, ...]:
        return _spread_nodes(cfg.num_nodes)

    def coords(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside crossbar")
        return node, 0

    def hops(self, src: int, dst: int) -> int:
        self.coords(src), self.coords(dst)
        return 0 if src == dst else 1

    def route(self, src: int, dst: int) -> list[int]:
        self.coords(src), self.coords(dst)
        return [src] if src == dst else [src, dst]

    def summary(self) -> str:
        return (f"{self.num_nodes}-port Crossbar, "
                f"{self.cfg.router_latency}-cycle router, "
                f"{self.cfg.link_latency}-cycle link, "
                f"{len(self.cfg.directory_nodes)} Directory Controllers")


@register_topology
class ChipletTopology(Topology):
    """Chiplet sub-meshes joined through per-chiplet gateway nodes.

    ``NocConfig.chiplets`` copies of a ``mesh_cols x mesh_rows`` XY
    mesh; node ids are chiplet-major (chiplet ``c`` owns
    ``[c*per, (c+1)*per)`` with ``per = cols*rows``).  Local node 0 of
    each chiplet is its gateway; a cross-chiplet message routes to the
    source gateway, takes one gateway-to-gateway hop across the IO die
    at ``chiplet_link_latency``, then routes to the destination.  This
    is the ``Mesh_IO_Center`` shape: intra-chiplet links keep
    ``link_latency``, the die crossing is strictly slower.
    """

    name = "chiplet"

    @classmethod
    def check_config(cls, cfg: "NocConfig") -> None:
        if cfg.chiplets < 2:
            raise ValueError(
                f"topology 'chiplet' needs NocConfig.chiplets >= 2, "
                f"got {cfg.chiplets}"
            )
        if cfg.chiplet_link_latency < cfg.link_latency:
            raise ValueError(
                "chiplet_link_latency below link_latency: the die "
                "crossing cannot be faster than an on-die link"
            )

    @classmethod
    def default_directory_nodes(cls, cfg: "NocConfig") -> tuple[int, ...]:
        # one directory slice per chiplet, at its gateway
        per = cfg.mesh_cols * cfg.mesh_rows
        return tuple(c * per for c in range(cfg.chiplets))

    # -- chiplet arithmetic ---------------------------------------------
    @property
    def _per(self) -> int:
        return self.cfg.mesh_cols * self.cfg.mesh_rows

    def chiplet_of(self, node: int) -> int:
        """Which chiplet owns a node id."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside chiplet array")
        return node // self._per

    def gateway(self, chiplet: int) -> int:
        """Global id of a chiplet's gateway (its local node 0)."""
        return chiplet * self._per

    def _local_coords(self, node: int) -> tuple[int, int]:
        lid = node % self._per
        return lid % self.cfg.mesh_cols, lid // self.cfg.mesh_cols

    def _local_hops(self, a: int, b: int) -> int:
        ax, ay = self._local_coords(a)
        bx, by = self._local_coords(b)
        return abs(ax - bx) + abs(ay - by)

    def _local_route(self, a: int, b: int) -> list[int]:
        """XY route within one chiplet, in global node ids."""
        base = (a // self._per) * self._per
        ax, ay = self._local_coords(a)
        bx, by = self._local_coords(b)
        cols = self.cfg.mesh_cols
        path = [a]
        x, y = ax, ay
        step = 1 if bx > x else -1
        while x != bx:
            x += step
            path.append(base + y * cols + x)
        step = 1 if by > y else -1
        while y != by:
            y += step
            path.append(base + y * cols + x)
        return path

    # -- Topology interface ---------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        chip = self.chiplet_of(node)
        lx, ly = self._local_coords(node)
        return chip * self.cfg.mesh_cols + lx, ly

    def hops(self, src: int, dst: int) -> int:
        cs, cd = self.chiplet_of(src), self.chiplet_of(dst)
        if cs == cd:
            return self._local_hops(src, dst)
        return (self._local_hops(src, self.gateway(cs)) + 1
                + self._local_hops(self.gateway(cd), dst))

    def route(self, src: int, dst: int) -> list[int]:
        cs, cd = self.chiplet_of(src), self.chiplet_of(dst)
        if cs == cd:
            return self._local_route(src, dst)
        head = self._local_route(src, self.gateway(cs))
        tail = self._local_route(self.gateway(cd), dst)
        return head + tail

    def link_latency(self, a: int, b: int) -> int:
        if self.chiplet_of(a) != self.chiplet_of(b):
            return self.cfg.chiplet_link_latency
        return self.cfg.link_latency

    def path_latency(self, src: int, dst: int) -> int:
        cfg = self.cfg
        per_hop = cfg.router_latency + cfg.link_latency
        cs, cd = self.chiplet_of(src), self.chiplet_of(dst)
        if cs == cd:
            return self._local_hops(src, dst) * per_hop
        local = (self._local_hops(src, self.gateway(cs))
                 + self._local_hops(self.gateway(cd), dst))
        return local * per_hop + cfg.router_latency + cfg.chiplet_link_latency

    def summary(self) -> str:
        cfg = self.cfg
        return (f"{cfg.chiplets}x({cfg.mesh_cols}x{cfg.mesh_rows}) "
                f"Chiplet Mesh, XY Routing, "
                f"{cfg.router_latency}-cycle router, "
                f"{cfg.link_latency}-cycle intra-/"
                f"{cfg.chiplet_link_latency}-cycle inter-chiplet link, "
                f"{len(cfg.directory_nodes)} per-chiplet "
                f"Directory Controllers")
