"""repro.noc subpackage."""
