"""repro.noc subpackage: transport (:mod:`~repro.noc.network`) and the
pluggable topology registry (:mod:`~repro.noc.topologies`)."""
from repro.noc.topologies import (
    Topology, available_topologies, build_topology, get_topology,
    register_topology,
)

__all__ = [
    "Topology", "available_topologies", "build_topology", "get_topology",
    "register_topology",
]
