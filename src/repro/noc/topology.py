"""Deprecated mesh-only topology helpers.

The route enumeration and conformance checks moved behind the pluggable
topology layer (:mod:`repro.noc.topologies`): ``xy_route`` is the mesh
topology's ``route``, ``route_routers`` is ``Topology.route_routers``,
and ``validate_topology`` is ``Topology.validate`` — now sample-based
above :data:`~repro.noc.topologies.VALIDATE_SAMPLE_LIMIT` nodes instead
of O(n²) over all pairs.  These shims delegate (for *any* registered
topology, not just the mesh) and warn, in the PR 4/PR 6 deprecation
style.
"""
from __future__ import annotations

import warnings

from repro.common.config import NocConfig
from repro.noc.topologies import VALIDATE_SAMPLE_LIMIT, build_topology

__all__ = ["xy_route", "route_routers", "validate_topology"]


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.noc.topology.{old} is deprecated; use {new} "
        "(see repro.noc.topologies)",
        DeprecationWarning, stacklevel=3,
    )


def xy_route(cfg: NocConfig, src: int, dst: int) -> list[int]:
    """Deprecated shim: node ids visited by the config's topology route
    (dimension-ordered X-then-Y on the default mesh), inclusive of both
    endpoints.  Use ``cfg.topo.route(src, dst)``."""
    _warn("xy_route", "NocConfig.topo.route")
    return build_topology(cfg).route(src, dst)


def route_routers(cfg: NocConfig, src: int, dst: int) -> int:
    """Deprecated shim: router traversals for a message (includes the
    injection router).  Use ``cfg.topo.route_routers(src, dst)``."""
    _warn("route_routers", "NocConfig.topo.route_routers")
    return build_topology(cfg).route_routers(src, dst)


def validate_topology(cfg: NocConfig, *,
                      sample_limit: int = VALIDATE_SAMPLE_LIMIT,
                      seed: int = 0) -> None:
    """Deprecated shim: route minimality/connectivity conformance.
    Use ``cfg.topo.validate()`` — exhaustive at paper scale, a seeded
    deterministic sample above ``sample_limit`` nodes."""
    _warn("validate_topology", "NocConfig.topo.validate")
    build_topology(cfg).validate(sample_limit=sample_limit, seed=seed)
