"""Mesh topology helpers: coordinates, XY routing paths, distances.

The latency/flit arithmetic lives on :class:`repro.common.config.NocConfig`;
this module adds the route *enumeration* used by per-router traffic and
energy accounting (each traversed router matters for DSENT-style energy,
not just the hop count).
"""
from __future__ import annotations

from repro.common.config import NocConfig

__all__ = ["xy_route", "route_routers", "validate_topology"]


def xy_route(cfg: NocConfig, src: int, dst: int) -> list[int]:
    """Node ids visited by dimension-ordered (X then Y) routing, inclusive
    of both endpoints."""
    sx, sy = cfg.coords(src)
    dx, dy = cfg.coords(dst)
    path = [src]
    x, y = sx, sy
    step = 1 if dx > x else -1
    while x != dx:
        x += step
        path.append(y * cfg.mesh_cols + x)
    step = 1 if dy > y else -1
    while y != dy:
        y += step
        path.append(y * cfg.mesh_cols + x)
    return path


def route_routers(cfg: NocConfig, src: int, dst: int) -> int:
    """Number of router traversals for a message (includes injection
    router; a local message still crosses its own router once)."""
    return len(xy_route(cfg, src, dst))


def validate_topology(cfg: NocConfig) -> None:
    """Sanity checks used by tests: XY routes are minimal and connected."""
    for src in range(cfg.num_nodes):
        for dst in range(cfg.num_nodes):
            path = xy_route(cfg, src, dst)
            if len(path) - 1 != cfg.hops(src, dst):
                raise AssertionError(
                    f"non-minimal route {src}->{dst}: {path}"
                )
            for a, b in zip(path, path[1:]):
                ax, ay = cfg.coords(a)
                bx, by = cfg.coords(b)
                if abs(ax - bx) + abs(ay - by) != 1:
                    raise AssertionError(f"route {src}->{dst} jumps {a}->{b}")
