"""Network-on-chip transport: delivery scheduling + traffic accounting.

Latency model (documented in DESIGN.md): a message from ``src`` to ``dst``
takes the topology's path latency — ``hops * (router_latency +
link_latency)`` on the default mesh; see :mod:`repro.noc.topologies` for
ring/crossbar/chiplet — plus a serialization term
of ``flits - 1`` cycles.  There is no contention/VC arbitration model; the
paper's first-order effect — fewer coherence transactions means less
traffic, energy and stall time — is carried entirely by message counts and
hop-weighted flit counts, which we account exactly per
:class:`~repro.common.types.MessageClass` for Fig. 8 and the DSENT-style
energy model (Fig. 9).
"""
from __future__ import annotations

from typing import Callable

from repro.common.config import NocConfig
from repro.common.stats import StatGroup
from repro.common.types import MessageClass
from repro.coherence.messages import Message
from repro.noc.topologies import build_topology
from repro.obs.events import Event, EventKind
from repro.sim.engine import Engine

__all__ = ["Network"]


class Network:
    """Routes :class:`Message` objects between registered endpoints."""

    __slots__ = ("cfg", "topo", "engine", "stats", "block_bytes",
                 "_endpoints", "_class_counts", "_in_flight", "fault_hook",
                 "bus", "_c", "_route_memo")

    def __init__(self, cfg: NocConfig, engine: Engine, block_bytes: int,
                 stats: StatGroup | None = None) -> None:
        self.cfg = cfg
        #: the config's route/latency model (repro.noc.topologies)
        self.topo = build_topology(cfg)
        self.engine = engine
        self.block_bytes = block_bytes
        self.stats = stats if stats is not None else StatGroup("noc")
        self._endpoints: dict[int, Callable[[Message], None]] = {}
        # eagerly materialize the Fig. 8 class counters
        self._class_counts = {klass: 0 for klass in MessageClass}
        self._c = self.stats.counters(
            "messages", "flits", "flit_hops", "router_traversals",
            "payload_bytes",
        )
        # (src, dst, payload) -> (latency, flits, flit_hops, traversals):
        # the route terms are pure functions of the mesh geometry, and a
        # run sees only a handful of distinct (endpoints, payload) pairs
        self._route_memo: dict[tuple[int, int, int],
                               tuple[int, int, int, int]] = {}
        #: messages sent but not yet delivered (id -> message); lets the
        #: invariant monitor skip blocks with traffic in flight and the
        #: watchdog dump what is stuck on the wire
        self._in_flight: dict[int, Message] = {}
        #: optional fault-injection hook, called once per send; may
        #: corrupt ``msg.words`` and returns extra delivery delay cycles
        self.fault_hook: Callable[[Message], int] | None = None
        #: event bus (repro.obs); None keeps send() to one attribute check
        self.bus = None

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Bind the message handler for a mesh node (one per node)."""
        if not 0 <= node < self.cfg.num_nodes:
            raise ValueError(f"node {node} outside mesh")
        if node in self._endpoints:
            raise ValueError(f"node {node} already registered")
        self._endpoints[node] = handler

    # -- transport -------------------------------------------------------
    def send(self, msg: Message, extra_delay: int = 0) -> None:
        """Account and deliver ``msg`` after its modeled latency.

        ``extra_delay`` lets a sender fold local processing time (e.g. an
        L2 array access) into the same scheduling step.
        """
        handler = self._endpoints.get(msg.dst)
        if handler is None:
            raise ValueError(f"no endpoint registered at node {msg.dst}")
        payload = msg.payload_bytes(self.block_bytes, self.cfg.control_msg_bytes)
        latency = self._entry(msg.src, msg.dst, payload,
                              msg.mtype.klass)
        bus = self.bus
        if bus is not None:
            bus.emit(Event(
                self.engine.now, EventKind.MSG, msg.src, msg.block_addr,
                msg.mtype.label, msg.mtype.klass.value, msg.dst,
            ))
        if self.fault_hook is not None:
            extra_delay += self.fault_hook(msg)
        in_flight = self._in_flight
        in_flight[id(msg)] = msg

        def deliver() -> None:
            del in_flight[id(msg)]
            handler(msg)

        self.engine.schedule(latency + extra_delay, deliver)

    def account_transfer(
        self, src: int, dst: int, data: bool,
        klass: MessageClass = MessageClass.OTHER,
    ) -> int:
        """Account an internal transfer (e.g. directory <-> L2 slice) and
        return its latency, without delivering a message object.  Used for
        hops the home agent orchestrates directly."""
        payload = (
            self.block_bytes + self.cfg.control_msg_bytes
            if data
            else self.cfg.control_msg_bytes
        )
        return self._entry(src, dst, payload, klass)

    def _entry(self, src: int, dst: int, payload: int,
               klass: MessageClass) -> int:
        """Account one transfer and return its latency (memoized route)."""
        key = (src, dst, payload)
        ent = self._route_memo.get(key)
        if ent is None:
            cfg, topo = self.cfg, self.topo
            flits = cfg.flits(payload)
            ent = (
                cfg.message_latency(src, dst, payload),
                flits,
                flits * topo.hops(src, dst),
                flits * topo.route_routers(src, dst),
            )
            self._route_memo[key] = ent
        self._class_counts[klass] += 1
        c = self._c
        c["messages"] += 1
        c["flits"] += ent[1]
        c["flit_hops"] += ent[2]
        c["router_traversals"] += ent[3]
        c["payload_bytes"] += payload
        return ent[0]

    # -- introspection -----------------------------------------------------
    def in_flight(self) -> list[Message]:
        """Messages currently on the wire (sent, not yet delivered)."""
        return list(self._in_flight.values())

    def blocks_in_flight(self) -> set[int]:
        """Block addresses with at least one undelivered message."""
        return {m.block_addr for m in self._in_flight.values()}

    # -- checkpoint layer --------------------------------------------------
    def snapshot(self) -> dict:
        """Restorable transport state: the per-class message counters.

        Requires an empty wire — an undelivered :class:`Message`'s
        ``deliver`` closure cannot round-trip, so checkpoints are only
        taken when nothing is in flight."""
        from repro.sim.engine import CheckpointUnsupported

        if self._in_flight:
            raise CheckpointUnsupported(
                f"{len(self._in_flight)} message(s) in flight; snapshot "
                "requires an empty network"
            )
        return {"class_counts": {k.value: n
                                 for k, n in self._class_counts.items()}}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state (the route memo is pure cache)."""
        counts = blob["class_counts"]
        self._class_counts = {klass: counts[klass.value]
                              for klass in MessageClass}
        self._in_flight = {}

    # -- reporting ---------------------------------------------------------
    def class_counts(self) -> dict[MessageClass, int]:
        """Per-class message counts (the Fig. 8 breakdown)."""
        return dict(self._class_counts)

    def finalize_stats(self) -> None:
        """Copy class counts into the stats tree for flattening."""
        for klass, n in self._class_counts.items():
            setattr(self.stats, f"msgs_{klass.value}", n)
