"""Phoenix ``linear_regression`` — the paper's headline workload.

Phoenix's pthread linear regression passes each thread a pointer to its
own ``lreg_args`` struct and the thread accumulates five statistics
(SX, SY, SXX, SYY, SXY) *directly into the struct* for every input
point.  The struct is 52 bytes — smaller than a 64-byte block — and the
structs are allocated contiguously, so neighbouring threads' accumulators
share cache blocks: textbook migratory false sharing (paper §4.2: >12 %
of stores miss on shared blocks, 9 % of loads on invalid blocks).

Inputs model the paper's 50 MB text file: (x, y) byte pairs with a
text-like skew toward small values, scaled down.

Output: the five global sums plus the fitted slope/intercept; error
metric MPE (Table 2).
"""
from __future__ import annotations

from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["LinearRegression"]

#: word offsets of the accumulator fields inside one lreg_args struct
_SX, _SY, _SXX, _SYY, _SXY = 8, 9, 10, 11, 12
#: struct size in words: 8 words of pointers/bookkeeping + 5 accumulators
#: = 52 bytes, deliberately NOT a divisor of the 64-byte block
_STRUCT_WORDS = 13
_MAC_COST = 4  # cycles for the three multiplies per point


class LinearRegression(Workload):
    """The Phoenix linear-regression workload (see module docstring)."""
    name = "linear_regression"
    suite = "Phoenix"
    domain = "Machine Learning"
    error_metric = "MPE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 n_points: int = 12288, padded: bool = False) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        #: pad each lreg_args struct to its own cache block — the classic
        #: source fix for the false sharing (and the layout §3.1's
        #: compiler padding would produce for annotated data)
        self.padded = padded
        self.n_points = self.scaled(n_points, minimum=num_threads)
        self.input_desc = f"{self.n_points} (x, y) byte pairs"
        # correlated byte pairs (y ~ 2x + 9 + noise), like the Phoenix
        # key-value input file: keeps the regression well-conditioned and
        # the increments small enough to exhibit Fig. 2's value similarity
        self.x_vals = np.minimum(
            self.rng.geometric(0.08, self.n_points), 100
        ).astype(np.int64)
        noise = self.rng.integers(-4, 5, self.n_points)
        self.y_vals = np.clip(2 * self.x_vals + 9 + noise, 0, 255)
        self._collected: list[float] | None = None

    # ------------------------------------------------------------------
    def _exact_sums(self) -> tuple[int, int, int, int, int]:
        x, y = self.x_vals, self.y_vals
        return (
            int(x.sum()), int(y.sum()), int((x * x).sum()),
            int((y * y).sum()), int((x * y).sum()),
        )

    @staticmethod
    def _fit(n: int, sx: float, sy: float, sxx: float, syy: float,
             sxy: float) -> tuple[float, float]:
        denom = n * sxx - sx * sx
        if denom == 0:
            return 0.0, 0.0
        slope = (n * sxy - sx * sy) / denom
        intercept = (sy - slope * sx) / n
        return slope, intercept

    def reference_output(self):
        sx, sy, sxx, syy, sxy = self._exact_sums()
        slope, intercept = self._fit(self.n_points, sx, sy, sxx, syy, sxy)
        return [sx, sy, sxx, syy, sxy, slope, intercept]

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    # ------------------------------------------------------------------
    def build(self, machine: Machine) -> None:
        mem = self.make_memory(machine)
        xs = mem.alloc_i32(self.n_points, "x", pad_to_block=True,
                           init=self.x_vals.tolist())
        ys = mem.alloc_i32(self.n_points, "y", pad_to_block=True,
                           init=self.y_vals.tolist())
        mem.block_gap()
        if self.padded:
            # one block-aligned struct per thread: no false sharing
            stride = 16  # words per 64-byte block
            args = mem.alloc_i32(self.num_threads * stride, "lreg_args",
                                 pad_to_block=True,
                                 init=[0] * (self.num_threads * stride))
        else:
            # the contiguous array of 52-byte lreg_args structs
            stride = _STRUCT_WORDS
            args = mem.alloc_i32(
                self.num_threads * _STRUCT_WORDS, "lreg_args",
                init=[0] * (self.num_threads * _STRUCT_WORDS),
            )
        barrier = machine.barrier(self.num_threads)
        collected: list[float] = [0.0] * 7
        self._collected = collected
        chunks = self.chunks(self.n_points)

        def field(tid: int, off: int) -> int:
            return tid * stride + off

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            yield ApproxBegin((args.byte_range(),))
            for i in chunks[tid]:
                x = yield from xs.load(i)
                y = yield from ys.load(i)
                yield Compute(_MAC_COST)
                yield from args.add(field(tid, _SX), x)
                yield from args.add(field(tid, _SY), y)
                yield from args.add(field(tid, _SXX), x * x)
                yield from args.add(field(tid, _SYY), y * y)
                yield from args.add(field(tid, _SXY), x * y)
            yield ApproxEnd((args.byte_range(),))
            yield BarrierWait(barrier)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                sums = [0, 0, 0, 0, 0]
                for t in range(self.num_threads):
                    for k, off in enumerate((_SX, _SY, _SXX, _SYY, _SXY)):
                        sums[k] += yield from args.load(field(t, off))
                slope, intercept = self._fit(self.n_points, *map(float, sums))
                collected[:5] = [float(s) for s in sums]
                collected[5] = slope
                collected[6] = intercept

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
