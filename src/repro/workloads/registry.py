"""Workload registry — the reproduction of Table 2.

Maps workload names to classes, carries the Table 2 metadata, and
provides factory helpers the harness and benchmarks use.
"""
from __future__ import annotations

from typing import Type

from repro.isa.compiled import ProgramCache
from repro.workloads.base import Workload
from repro.workloads.blackscholes import BlackScholes
from repro.workloads.histogram import Histogram
from repro.workloads.inversek2j import InverseK2J
from repro.workloads.jpeg import Jpeg
from repro.workloads.linear_regression import LinearRegression
from repro.workloads.microbench import (
    BadDotProduct, PrivateDotProduct, StoreThroughDotProduct,
)
from repro.workloads.pca import Pca

__all__ = [
    "PAPER_WORKLOADS", "MICROBENCHMARKS", "ALL_WORKLOADS", "PROGRAM_CACHE",
    "create", "table2_rows", "paper_input_desc",
]

#: process-wide compiled-program cache shared by every sweep point
#: (each ``--jobs`` worker process holds its own copy)
PROGRAM_CACHE = ProgramCache()

#: the six Table 2 applications, in the paper's order
PAPER_WORKLOADS: dict[str, Type[Workload]] = {
    "histogram": Histogram,
    "linear_regression": LinearRegression,
    "pca": Pca,
    "blackscholes": BlackScholes,
    "inversek2j": InverseK2J,
    "jpeg": Jpeg,
}

MICROBENCHMARKS: dict[str, Type[Workload]] = {
    "bad_dot_product": BadDotProduct,
    "private_dot_product": PrivateDotProduct,
    "store_through_dot_product": StoreThroughDotProduct,
}

ALL_WORKLOADS: dict[str, Type[Workload]] = {
    **PAPER_WORKLOADS, **MICROBENCHMARKS,
}

#: the paper's original input descriptions (Table 2), for documentation
_PAPER_INPUTS = {
    "histogram": "400MB image",
    "linear_regression": "50MB file",
    "pca": "4MB matrix",
    "blackscholes": "200K options",
    "inversek2j": "1000K points",
    "jpeg": "512x512 RGB",
}


def create(name: str, num_threads: int, d_distance: int = 4,
           seed: int = 12345, scale: float = 1.0, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    cls = ALL_WORKLOADS.get(name)
    if cls is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(ALL_WORKLOADS)}"
        )
    w = cls(num_threads=num_threads, d_distance=d_distance, seed=seed,
            scale=scale, **kwargs)
    # arm the program cache: the key base identifies the op stream up to
    # the per-machine knobs Workload.bind_program appends at bind time
    key = (name, num_threads, seed, scale, tuple(sorted(kwargs.items())))
    try:
        hash(key)
    except TypeError:
        return w  # unhashable extra params: run uncached
    w._program_cache = PROGRAM_CACHE
    w._program_key = key
    return w


def paper_input_desc(name: str) -> str:
    """The paper's original Table 2 input description for a workload."""
    return _PAPER_INPUTS.get(name, "-")


def table2_rows(num_threads: int = 24) -> list[tuple[str, str, str, str]]:
    """(application, domain, input, error-metric) rows, paper order.

    Input shows the paper's original size; the instantiated scaled size
    is reported by each workload's ``input_desc``.
    """
    rows = []
    for name, cls in PAPER_WORKLOADS.items():
        w = cls(num_threads=num_threads)
        rows.append((name, w.domain, paper_input_desc(name), w.error_metric))
    return rows
