"""AxBench ``inversek2j`` — inverse kinematics for a 2-joint arm.

The kernel tracks a slowly moving target trajectory over several frames:
every frame recomputes the joint angles for all targets and overwrites
the angle arrays.  Most targets are stationary between frames (only a
segment of the sweep moves), so most re-stores write the *identical*
bit pattern over the resident value — 0-distance similarity, the largest
bucket of the paper's Fig. 2 measurement ("silent stores").  Some
targets are also out of reach, clamping the elbow angle to exactly 0.

A fine-grained static schedule (4 consecutive points per grab) places
words owned by many threads in every output block, so the re-stores land
on S / tag-present-I blocks and Ghostwriter services them with GS/GI —
the moderate, between-linreg-and-blackscholes benefit the paper reports
for this application.

Error metric NRMSE over the final frame's angles (Table 2).
"""
from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["InverseK2J"]

_L1 = 0.5   # link lengths, as in AxBench
_L2 = 0.5
_POINT_COST = 40
_CHUNK = 4          # fine-grained schedule: 4 consecutive points per grab
_FRAMES = 2         # trajectory frames (frame 2 overwrites frame 1)
_MOVING_FRACTION = 0.35  # share of targets that move between frames


def _ik(x: float, y: float) -> tuple[float, float]:
    """Closed-form 2-joint inverse kinematics (elbow-down)."""
    d2 = x * x + y * y
    c2 = (d2 - _L1 * _L1 - _L2 * _L2) / (2 * _L1 * _L2)
    c2 = max(-1.0, min(1.0, c2))
    th2 = math.acos(c2)
    k1 = _L1 + _L2 * c2
    k2 = _L2 * math.sin(th2)
    th1 = math.atan2(y, x) - math.atan2(k2, k1)
    return th1, th2


class InverseK2J(Workload):
    """The AxBench 2-joint inverse-kinematics workload (see module docstring)."""
    name = "inversek2j"
    suite = "AxBench"
    domain = "Robotics"
    error_metric = "NRMSE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 n_points: int = 1536) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        self.n_points = self.scaled(n_points, minimum=num_threads)
        self.input_desc = (
            f"{self.n_points} 2D targets x {_FRAMES} frames"
        )
        t = np.linspace(0, 4 * math.pi, self.n_points)
        radius = 0.55 + 0.55 * np.abs(np.sin(t * 0.37))
        radius += self.rng.normal(0, 0.004, self.n_points)
        # frame 0 targets
        x0 = (radius * np.cos(t)).astype(np.float32)
        y0 = (radius * np.sin(t)).astype(np.float32)
        # frame 1: only a contiguous-ish subset of targets moves
        moving = self.rng.random(self.n_points) < _MOVING_FRACTION
        dx = np.where(moving, 0.01 * np.cos(3 * t), 0.0)
        dy = np.where(moving, 0.01 * np.sin(3 * t), 0.0)
        self.tx = np.stack([x0, (x0 + dx).astype(np.float32)])
        self.ty = np.stack([y0, (y0 + dy).astype(np.float32)])
        self._collected: list[float] | None = None

    def reference_output(self):
        out = []
        last = _FRAMES - 1
        frame = min(last, 1)
        for i in range(self.n_points):
            th1, th2 = _ik(float(self.tx[frame, i]), float(self.ty[frame, i]))
            out.append(float(np.float32(th1)))
            out.append(float(np.float32(th2)))
        return out

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    def _interleaved_indices(self, tid: int) -> list[int]:
        """Fine-grained static schedule: round-robin chunks of _CHUNK."""
        idx = []
        n_chunks = -(-self.n_points // _CHUNK)
        for c in range(tid, n_chunks, self.num_threads):
            idx.extend(
                range(c * _CHUNK, min((c + 1) * _CHUNK, self.n_points))
            )
        return idx

    def build(self, machine: Machine) -> None:
        mem = self.make_memory(machine)
        frames_x = [
            mem.alloc_f32(self.n_points, f"tx{f}", pad_to_block=True,
                          init=self.tx[min(f, 1)].tolist())
            for f in range(_FRAMES)
        ]
        frames_y = [
            mem.alloc_f32(self.n_points, f"ty{f}", pad_to_block=True,
                          init=self.ty[min(f, 1)].tolist())
            for f in range(_FRAMES)
        ]
        mem.block_gap()
        th1 = mem.alloc_f32(self.n_points, "theta1",
                            init=[0.0] * self.n_points)
        th2 = mem.alloc_f32(self.n_points, "theta2",
                            init=[0.0] * self.n_points)
        frame_done = [machine.barrier(self.num_threads)
                      for _ in range(_FRAMES)]
        collected = [0.0] * (2 * self.n_points)
        self._collected = collected
        my_indices = {
            tid: self._interleaved_indices(tid)
            for tid in range(self.num_threads)
        }

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            approx = (th1.byte_range(), th2.byte_range())
            yield ApproxBegin(approx)
            for f in range(_FRAMES):
                for i in my_indices[tid]:
                    x = yield from frames_x[f].load(i)
                    y = yield from frames_y[f].load(i)
                    yield Compute(_POINT_COST)
                    a1, a2 = _ik(x, y)
                    yield from th1.store(i, a1)
                    yield from th2.store(i, a2)
                yield BarrierWait(frame_done[f])
            yield ApproxEnd(approx)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                for i in range(self.n_points):
                    collected[2 * i] = yield from th1.load(i)
                    collected[2 * i + 1] = yield from th2.load(i)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
