"""AxBench ``jpeg`` — DCT + quantization image compression.

Threads grab 8x8 tiles round-robin, load the pixels through the caches,
run a 2D DCT, quantize, and store the 64 coefficients.  Two shared
structures give jpeg the paper's "mixture of migratory and
producer-consumer sharing" (§4.2):

* ``rate[tid]`` — per-thread output-byte counters in one packed array,
  updated after every tile: migratory false sharing (like lreg_args);
* ``nz_hist[k][tid]`` — per-thread partials of the per-frequency
  nonzero-coefficient histogram (the encoder's rate-statistics table),
  laid out frequency-major so every block interleaves words owned by
  many threads (the lreg_args pattern), with +1 increments that are
  almost always bit-similar: heavy GS/GI service, exact in the baseline.

Output is the reconstructed (dequantize + inverse-DCT) image *plus* the
encoder's rate metadata (per-thread byte counters and the merged
nonzero histogram), compared against the exact pipeline by NRMSE, so
both corrupted coefficients and dropped statistics updates show up as
output error.
"""
from __future__ import annotations

from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["Jpeg"]

_T = 8  # tile edge
_TILE_COST = 260  # cycles for the 2D DCT of one tile

# standard JPEG luminance quantization table
_QTABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


def _dct_matrix() -> np.ndarray:
    m = np.zeros((_T, _T))
    for k in range(_T):
        for n in range(_T):
            c = np.sqrt(1.0 / _T) if k == 0 else np.sqrt(2.0 / _T)
            m[k, n] = c * np.cos(np.pi * (2 * n + 1) * k / (2 * _T))
    return m


_DCT = _dct_matrix()


def dct2(tile: np.ndarray) -> np.ndarray:
    """Forward 2D DCT of one 8x8 tile."""
    return _DCT @ tile @ _DCT.T


def idct2(coefs: np.ndarray) -> np.ndarray:
    """Inverse 2D DCT of one coefficient tile."""
    return _DCT.T @ coefs @ _DCT


def quantize(coefs: np.ndarray) -> np.ndarray:
    """Quantize with the standard JPEG luminance table."""
    return np.round(coefs / _QTABLE).astype(np.int64)


def dequantize(q: np.ndarray) -> np.ndarray:
    """Invert :func:`quantize` (up to rounding)."""
    return q.astype(np.float64) * _QTABLE


class Jpeg(Workload):
    """The AxBench DCT+quantization workload (see module docstring)."""
    name = "jpeg"
    suite = "AxBench"
    domain = "Image Compression"
    error_metric = "NRMSE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 image_edge: int = 48) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        import math
        edge = self.scaled(image_edge, minimum=_T)
        # keep at least ~one tile per thread so the sharing structure
        # survives aggressive downscaling
        min_edge = _T * max(2, math.ceil(math.sqrt(num_threads)))
        edge = max(edge, min_edge)
        self.edge = (edge // _T) * _T  # multiple of the tile size
        self.input_desc = f"{self.edge}x{self.edge} image"
        # smooth synthetic photo: low-frequency gradients + mild noise
        yy, xx = np.mgrid[0:self.edge, 0:self.edge]
        img = (
            128
            + 70 * np.sin(xx / 9.0) * np.cos(yy / 13.0)
            + 25 * np.sin((xx + yy) / 23.0)
            + self.rng.normal(0, 3.0, (self.edge, self.edge))
        )
        self.image = np.clip(img, 0, 255).astype(np.int64)
        self.tiles_per_edge = self.edge // _T
        self.n_tiles = self.tiles_per_edge ** 2
        self._collected: list[float] | None = None
        self._ref: list[float] | None = None

    # ------------------------------------------------------------------
    def _tile_pixels(self, t: int) -> np.ndarray:
        ty, tx = divmod(t, self.tiles_per_edge)
        return self.image[ty * _T:(ty + 1) * _T, tx * _T:(tx + 1) * _T]

    def reference_output(self):
        if self._ref is None:
            recon = np.zeros((self.edge, self.edge))
            rate = [0] * self.num_threads
            hist = np.zeros(_T * _T, dtype=np.int64)
            for t in range(self.n_tiles):
                q = quantize(dct2(self._tile_pixels(t).astype(np.float64)))
                ty, tx = divmod(t, self.tiles_per_edge)
                recon[ty * _T:(ty + 1) * _T, tx * _T:(tx + 1) * _T] = (
                    idct2(dequantize(q))
                )
                nzmask = (q.ravel() != 0).astype(np.int64)
                hist += nzmask
                rate[t % self.num_threads] += 2 + int(nzmask.sum())
            self._ref = (
                [float(v) for v in recon.ravel()]
                + [float(v) for v in rate]
                + [float(v) for v in hist]
            )
        return self._ref

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    # ------------------------------------------------------------------
    def build(self, machine: Machine) -> None:
        mem = self.make_memory(machine)
        n_px = self.edge * self.edge
        pixels = mem.alloc_i32(n_px, "pixels", pad_to_block=True,
                               init=self.image.ravel().tolist())
        mem.block_gap()
        coefs = mem.alloc_i32(self.n_tiles * _T * _T, "coefs",
                              init=[0] * (self.n_tiles * _T * _T))
        # shared rate counters + per-thread histogram partials: the
        # contended structures
        rate = mem.alloc_i32(self.num_threads, "rate",
                             init=[0] * self.num_threads)
        nz_hist = mem.alloc_i32(self.num_threads * _T * _T, "nz_hist",
                                init=[0] * (self.num_threads * _T * _T))
        barrier = machine.barrier(self.num_threads)
        collected = [0.0] * (n_px + self.num_threads + _T * _T)
        self._collected = collected

        def px_index(t: int, r: int, c: int) -> int:
            ty, tx = divmod(t, self.tiles_per_edge)
            return (ty * _T + r) * self.edge + (tx * _T + c)

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            approx = (coefs.byte_range(), rate.byte_range(),
                      nz_hist.byte_range())
            yield ApproxBegin(approx)
            for t in range(tid, self.n_tiles, self.num_threads):
                tile = np.zeros((_T, _T))
                for r in range(_T):
                    for c in range(_T):
                        tile[r, c] = yield from pixels.load(px_index(t, r, c))
                yield Compute(_TILE_COST)
                q = quantize(dct2(tile))
                nz = 0
                for r in range(_T):
                    for c in range(_T):
                        v = int(q[r, c])
                        yield from coefs.store(t * _T * _T + r * _T + c, v)
                        if v != 0:
                            nz += 1
                            yield from nz_hist.add(
                                (r * _T + c) * self.num_threads + tid, 1
                            )
                yield from rate.add(tid, 2 + nz)  # crude byte estimate
            yield ApproxEnd(approx)
            yield BarrierWait(barrier)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                recon = np.zeros((self.edge, self.edge))
                for t in range(self.n_tiles):
                    q = np.zeros((_T, _T), dtype=np.int64)
                    for r in range(_T):
                        for c in range(_T):
                            q[r, c] = yield from coefs.load(
                                t * _T * _T + r * _T + c
                            )
                    ty, tx = divmod(t, self.tiles_per_edge)
                    recon[ty * _T:(ty + 1) * _T, tx * _T:(tx + 1) * _T] = (
                        idct2(dequantize(q))
                    )
                collected[:n_px] = [float(v) for v in recon.ravel()]
                for t_ in range(self.num_threads):
                    collected[n_px + t_] = float(
                        (yield from rate.load(t_))
                    )
                for k in range(_T * _T):
                    merged = 0
                    for t_ in range(self.num_threads):
                        merged += yield from nz_hist.load(
                            k * self.num_threads + t_
                        )
                    collected[n_px + self.num_threads + k] = float(merged)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
