"""AxBench ``blackscholes`` — European option pricing.

Each thread prices a contiguous chunk of options with the Black-Scholes
closed form and stores the price into the output array.  The access
pattern is embarrassingly parallel: inputs are read-shared, outputs are
written once to thread-private ranges (block sharing only at chunk
boundaries), so — as the paper reports — coherence misses are ~0.3 % and
Ghostwriter neither helps nor hurts.  The workload is compute-dominated,
which we model with a per-option compute charge.

Float values move through IEEE-754 bit patterns, so d-distance operates
on mantissa bits exactly as in the paper's hardware.  Error metric MPE.
"""
from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["BlackScholes"]

_RISK_FREE = 0.02
_OPTION_COST = 60  # cycles of FP math per option


def _cnd(x: float) -> float:
    """Cumulative standard normal (Abramowitz-Stegun, as AxBench uses)."""
    k = 1.0 / (1.0 + 0.2316419 * abs(x))
    poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
               + k * (-1.821255978 + k * 1.330274429))))
    w = 1.0 - 1.0 / math.sqrt(2 * math.pi) * math.exp(-0.5 * x * x) * poly
    return w if x >= 0 else 1.0 - w


def _bs_price(s: float, k: float, t: float, sigma: float) -> float:
    if t <= 0 or sigma <= 0:
        return max(s - k, 0.0)
    d1 = (math.log(s / k) + (_RISK_FREE + 0.5 * sigma * sigma) * t) / (
        sigma * math.sqrt(t))
    d2 = d1 - sigma * math.sqrt(t)
    return s * _cnd(d1) - k * math.exp(-_RISK_FREE * t) * _cnd(d2)


def _f32(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float32)


class BlackScholes(Workload):
    """The AxBench option-pricing workload (see module docstring)."""
    name = "blackscholes"
    suite = "AxBench"
    domain = "Financial Analysis"
    error_metric = "MPE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 n_options: int = 2048) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        self.n_options = self.scaled(n_options, minimum=num_threads)
        self.input_desc = f"{self.n_options} options"
        rng = self.rng
        self.spot = _f32(rng.uniform(20.0, 120.0, self.n_options))
        self.strike = _f32(rng.uniform(20.0, 120.0, self.n_options))
        self.expiry = _f32(rng.uniform(0.1, 2.0, self.n_options))
        self.vol = _f32(rng.uniform(0.1, 0.6, self.n_options))
        self._collected: list[float] | None = None

    def reference_output(self):
        return [
            float(np.float32(_bs_price(
                float(self.spot[i]), float(self.strike[i]),
                float(self.expiry[i]), float(self.vol[i]),
            )))
            for i in range(self.n_options)
        ]

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    def build(self, machine: Machine) -> None:
        mem = self.make_memory(machine)
        spot = mem.alloc_f32(self.n_options, "spot", pad_to_block=True,
                             init=self.spot.tolist())
        strike = mem.alloc_f32(self.n_options, "strike", pad_to_block=True,
                               init=self.strike.tolist())
        expiry = mem.alloc_f32(self.n_options, "expiry", pad_to_block=True,
                               init=self.expiry.tolist())
        vol = mem.alloc_f32(self.n_options, "vol", pad_to_block=True,
                            init=self.vol.tolist())
        mem.block_gap()
        prices = mem.alloc_f32(self.n_options, "prices",
                               init=[0.0] * self.n_options)
        barrier = machine.barrier(self.num_threads)
        collected = [0.0] * self.n_options
        self._collected = collected
        chunks = self.chunks(self.n_options)

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            yield ApproxBegin((prices.byte_range(),))
            for i in chunks[tid]:
                s = yield from spot.load(i)
                k = yield from strike.load(i)
                t = yield from expiry.load(i)
                sg = yield from vol.load(i)
                yield Compute(_OPTION_COST)
                yield from prices.store(i, _bs_price(s, k, t, sg))
            yield ApproxEnd((prices.byte_range(),))
            yield BarrierWait(barrier)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                for i in range(self.n_options):
                    collected[i] = yield from prices.load(i)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
