"""Workload abstraction.

A :class:`Workload` knows how to (1) allocate and initialize its data
structures in a machine's simulated memory, (2) bind one thread program
per core, (3) compute an exact reference output in plain Python, and
(4) report the output the simulated run actually produced (collected by
the threads themselves through simulated loads, so approximate execution
shows up in the output exactly as it would on the paper's hardware).

Workloads always emit the approximation pragmas; on a machine whose
Ghostwriter protocol is disabled the scribbles degrade to conventional
stores, so a single program serves both the baseline and the approximate
runs — the same way one binary runs on both machines in the paper.
"""
from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.analysis.errors import error_for_metric
from repro.common.config import SimConfig
from repro.isa.compiled import ProgramSpec
from repro.sim.machine import Machine
from repro.workloads.alloc import SharedMemory

__all__ = ["Workload", "WorkloadResult"]


class WorkloadResult:
    """Everything the harness needs from one finished run."""

    __slots__ = ("workload", "cycles", "stats", "machine", "output",
                 "reference", "error_pct")

    def __init__(self, workload: "Workload", machine: Machine,
                 cycles: int) -> None:
        self.workload = workload
        self.machine = machine
        self.cycles = cycles
        self.stats = machine.stats
        self.output = np.asarray(workload.collect_output(), dtype=np.float64)
        self.reference = np.asarray(workload.reference_output(),
                                    dtype=np.float64)
        self.error_pct = error_for_metric(
            workload.error_metric, self.reference, self.output
        )


class Workload(abc.ABC):
    """Base class for every benchmark (Table 2) and microbenchmark."""

    #: registry metadata (Table 2 columns)
    name: str = "?"
    suite: str = "?"
    domain: str = "?"
    input_desc: str = "?"
    error_metric: str = "MPE"  # or "NRMSE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0) -> None:
        if num_threads < 1:
            raise ValueError("need at least one thread")
        if not 0.0 < scale <= 64.0:
            raise ValueError("scale out of range")
        self.num_threads = num_threads
        self.d_distance = d_distance
        self.seed = seed
        self.scale = scale
        self.rng = np.random.default_rng(seed)
        self._built = False

    # ------------------------------------------------------------------
    # machinery subclasses implement
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self, machine: Machine) -> None:
        """Allocate inputs/outputs and bind one program per thread."""

    @abc.abstractmethod
    def reference_output(self) -> Sequence[float]:
        """Exact output, computed in plain Python."""

    @abc.abstractmethod
    def collect_output(self) -> Sequence[float]:
        """Output observed by the simulated application (post-run)."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def make_memory(self, machine: Machine) -> SharedMemory:
        """A shared-memory allocator bound to the machine's backing store."""
        return SharedMemory(machine.backing, machine.cfg.block_bytes)

    def scaled(self, n: int, minimum: int = 1) -> int:
        """Scale a nominal size by the workload's scale factor."""
        return max(minimum, int(round(n * self.scale)))

    def chunks(self, total: int) -> list[range]:
        """Contiguous per-thread ranges (OpenMP static schedule)."""
        per = -(-total // self.num_threads)
        return [
            range(t * per, min((t + 1) * per, total))
            for t in range(self.num_threads)
        ]

    def bind_program(self, machine: Machine, tid: int,
                     factory: Callable[[], object]) -> None:
        """Bind thread ``tid``'s program, through the program cache when
        the registry attached one to this instance.

        ``factory`` must produce a fresh generator per call (use
        ``functools.partial(self.worker, tid)``, not ``self.worker(tid)``)
        — the compiled layer rebuilds the generator for deoptimization
        and the end-of-run side-effect replay.  Without a cache (direct
        instantiation, unhashable params, ``compile_programs`` off) this
        degrades to the plain generator path.
        """
        cache = getattr(self, "_program_cache", None)
        key_base = getattr(self, "_program_key", None)
        if (cache is None or key_base is None
                or not machine.cfg.compile_programs):
            machine.add_thread(tid, factory())
            return
        # block size and d-distance shape the recorded op stream (block
        # alignment, the SetAprx operand); gi-timeout/protocol knobs do
        # not — cross-config divergence is caught by load validation
        key = (*key_base, machine.cfg.block_bytes,
               machine.cfg.ghostwriter.d_distance, tid)
        machine.add_thread(tid, ProgramSpec(factory, key, cache))

    # ------------------------------------------------------------------
    # one-stop runner
    # ------------------------------------------------------------------
    def prepare(self, cfg: SimConfig) -> Machine:
        """Build a ready-to-run machine: validate, allocate, bind threads.

        The first half of :meth:`run`, exposed separately so the
        checkpoint layer can interpose between construction and
        execution — the batch backend's fork path builds a machine this
        way, restores a :class:`~repro.sim.state.MachineCheckpoint` into
        it, and resumes instead of running from cycle 0.
        """
        if cfg.num_cores < self.num_threads:
            raise ValueError(
                f"{self.name}: {self.num_threads} threads > "
                f"{cfg.num_cores} cores"
            )
        if self._built:
            raise RuntimeError(
                f"{self.name}: a Workload instance can run only once "
                "(construct a fresh one per run)"
            )
        self._built = True
        # the machine config is the single source of truth for the
        # d-distance the programs program into the scribe units
        self.d_distance = cfg.ghostwriter.d_distance
        machine = Machine(cfg)
        self.build(machine)
        return machine

    def collect(self, machine: Machine, cfg: SimConfig) -> WorkloadResult:
        """Bundle a finished machine's results (second half of :meth:`run`)."""
        if cfg.verify.check_invariants:
            machine.check_quiescent()
            machine.check_coherence_invariants()
        # execution time is when the last thread finishes; the queue keeps
        # draining housekeeping events (e.g. a pending GI timeout) after
        # that, which must not count against the protocol
        cycles = max(machine.core_finish_cycles())
        return WorkloadResult(self, machine, cycles)

    def run(self, cfg: SimConfig, max_cycles: int = 500_000_000) -> WorkloadResult:
        """Build a machine with ``cfg``, run to completion, bundle results."""
        machine = self.prepare(cfg)
        machine.run(max_cycles=max_cycles)
        return self.collect(machine, cfg)
