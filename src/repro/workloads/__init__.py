"""repro.workloads subpackage."""
