"""Phoenix ``pca`` — row means + covariance of a matrix.

Phoenix's PCA runs two parallel phases over an N x M integer matrix:
each thread computes the means of its assigned rows, then entries of the
covariance matrix.  Writes land in shared result arrays whose adjacent
entries belong to different threads only at chunk boundaries, so — as the
paper reports (§4.2) — coherence misses are a tiny fraction of accesses
(0.1 %) and Ghostwriter's impact is negligible even though a good share
of the few store misses *are* serviceable by GI (3.7 % at d=4 jumping to
38.9 % at d=8, driven by the update-value distribution).

To model the covariance phase at tractable cost we compute a banded
covariance (each row with its next ``_BAND`` rows), preserving the
access pattern (every pair re-reads two full rows, accumulates into one
shared entry) without the full O(N^2 M) blow-up.  Error metric NRMSE.
"""
from __future__ import annotations

from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["Pca"]

_BAND = 2     # covariance band width (row r against rows r..r+_BAND-1)
_MAC_COST = 2


class Pca(Workload):
    """The Phoenix PCA workload (see module docstring)."""
    name = "pca"
    suite = "Phoenix"
    domain = "Machine Learning"
    error_metric = "NRMSE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 n_rows: int = 48, n_cols: int = 24) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        self.n_rows = self.scaled(n_rows, minimum=num_threads)
        self.n_cols = self.scaled(n_cols, minimum=4)
        self.input_desc = f"{self.n_rows}x{self.n_cols} matrix"
        self.matrix = self.rng.integers(
            0, 256, size=(self.n_rows, self.n_cols)
        ).astype(np.int64)
        self._collected: list[float] | None = None

    # ------------------------------------------------------------------
    def _exact(self) -> tuple[np.ndarray, np.ndarray]:
        # integer means (truncating), like the C code
        means = self.matrix.sum(axis=1) // self.n_cols
        cov = np.zeros((self.n_rows, _BAND), dtype=np.int64)
        for r in range(self.n_rows):
            for k in range(_BAND):
                r2 = r + k
                if r2 >= self.n_rows:
                    continue
                cov[r, k] = int(
                    ((self.matrix[r] - means[r])
                     * (self.matrix[r2] - means[r2])).sum()
                ) // self.n_cols
        return means, cov

    def reference_output(self):
        means, cov = self._exact()
        return [float(v) for v in means] + [float(v) for v in cov.ravel()]

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    # ------------------------------------------------------------------
    def build(self, machine: Machine) -> None:
        mem = self.make_memory(machine)
        mat = mem.alloc_i32(self.n_rows * self.n_cols, "matrix",
                            pad_to_block=True,
                            init=self.matrix.ravel().tolist())
        mem.block_gap()
        means = mem.alloc_i32(self.n_rows, "means", init=[0] * self.n_rows)
        cov = mem.alloc_i32(self.n_rows * _BAND, "cov",
                            init=[0] * (self.n_rows * _BAND))
        phase1 = machine.barrier(self.num_threads)
        phase2 = machine.barrier(self.num_threads)
        collected = [0.0] * (self.n_rows + self.n_rows * _BAND)
        self._collected = collected
        row_chunks = self.chunks(self.n_rows)

        def mat_idx(r: int, c: int) -> int:
            return r * self.n_cols + c

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            approx = (means.byte_range(), cov.byte_range())
            yield ApproxBegin(approx)
            # ---- phase 1: row means (local accumulator, one store per
            # row into the packed shared array, as Phoenix's C does) ----
            for r in row_chunks[tid]:
                acc = 0
                for c in range(self.n_cols):
                    v = yield from mat.load(mat_idx(r, c))
                    yield Compute(1)
                    acc += v
                yield from means.store(r, acc // self.n_cols)
            yield BarrierWait(phase1)
            # ---- phase 2: banded covariance (local accumulation, one
            # store per entry; means of neighbouring rows are re-read
            # through the caches) ----------------------------------------
            for r in row_chunks[tid]:
                mr = yield from means.load(r)
                for k in range(_BAND):
                    r2 = r + k
                    if r2 >= self.n_rows:
                        continue
                    m2 = yield from means.load(r2)
                    acc = 0
                    for c in range(self.n_cols):
                        a = yield from mat.load(mat_idx(r, c))
                        b = yield from mat.load(mat_idx(r2, c))
                        yield Compute(_MAC_COST)
                        acc += (a - mr) * (b - m2)
                    yield from cov.store(r * _BAND + k, acc // self.n_cols)
            yield ApproxEnd(approx)
            yield BarrierWait(phase2)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                for r in range(self.n_rows):
                    collected[r] = float((yield from means.load(r)))
                for i in range(self.n_rows * _BAND):
                    collected[self.n_rows + i] = float(
                        (yield from cov.load(i))
                    )

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
