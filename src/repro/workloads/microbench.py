"""The paper's dot-product microbenchmarks (Listings 1 & 2, Figs. 1, 12).

* :class:`BadDotProduct` — Listing 1: every thread accumulates directly
  into ``total[thread_id]``; the unpadded ``total`` array packs all
  accumulators into one or two cache blocks, so every store false-shares.
  Used for the Fig. 1 slowdown curve and the Fig. 12 timeout sweep (where
  the accumulators are annotated approximate).
* :class:`PrivateDotProduct` — Listing 2: each thread accumulates into a
  register and performs a single final store, eliminating the sharing.
"""
from __future__ import annotations

from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["BadDotProduct", "PrivateDotProduct", "StoreThroughDotProduct"]

_MUL_COST = 3  # cycles charged for the multiply-accumulate


class _DotProductBase(Workload):
    suite = "micro"
    domain = "Microbenchmark"
    error_metric = "MPE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 n_points: int = 4096, approximate: bool = True,
                 max_value: int = 255, flush_before_collect: bool = True) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        self.n_points = self.scaled(n_points, minimum=num_threads)
        self.approximate = approximate
        #: Listing 1 reads the totals straight after the loop, in the same
        #: function — no context switch, so no approximate-line flush.
        #: The real applications aggregate after a join (flush=True).
        self.flush_before_collect = flush_before_collect
        self.input_desc = f"{self.n_points} integers in [0, {max_value}]"
        self.a_vals = self.rng.integers(0, max_value + 1, self.n_points)
        self.b_vals = self.rng.integers(0, max_value + 1, self.n_points)
        self._collected: list[int] | None = None

    def reference_output(self):
        parts = []
        for chunk in self.chunks(self.n_points):
            parts.append(int(np.dot(
                self.a_vals[chunk.start:chunk.stop],
                self.b_vals[chunk.start:chunk.stop],
            )))
        return parts

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    def _setup_arrays(self, machine: Machine):
        mem = self.make_memory(machine)
        a = mem.alloc_i32(self.n_points, "a", pad_to_block=True,
                          init=self.a_vals.tolist())
        b = mem.alloc_i32(self.n_points, "b", pad_to_block=True,
                          init=self.b_vals.tolist())
        mem.block_gap()
        # Listing 1's int total[NUM_THREADS]: deliberately *packed*
        total = mem.alloc_i32(self.num_threads, "total",
                              init=[0] * self.num_threads)
        return a, b, total


class BadDotProduct(_DotProductBase):
    """Listing 1: false-sharing-prone parallel dot product."""

    name = "bad_dot_product"

    def build(self, machine: Machine) -> None:
        a, b, total = self._setup_arrays(machine)
        barrier = machine.barrier(self.num_threads)
        collected: list[int] = [0] * self.num_threads
        self._collected = collected
        chunks = self.chunks(self.n_points)

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            if self.approximate:
                yield ApproxBegin((total.byte_range(),))
            for i in chunks[tid]:
                av = yield from a.load(i)
                bv = yield from b.load(i)
                yield Compute(_MUL_COST)
                yield from total.add(tid, av * bv)
            if self.approximate:
                yield ApproxEnd((total.byte_range(),))
            yield BarrierWait(barrier)
            if tid == 0:
                if self.flush_before_collect:
                    # thread join / context switch: forfeit this core's
                    # approximate lines first (paper 3.5)
                    yield FlushApprox()
                for t in range(self.num_threads):
                    collected[t] = yield from total.load(t)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))


class PrivateDotProduct(_DotProductBase):
    """Listing 2: privatized accumulation, one store per thread."""

    name = "private_dot_product"

    def build(self, machine: Machine) -> None:
        a, b, total = self._setup_arrays(machine)
        barrier = machine.barrier(self.num_threads)
        collected: list[int] = [0] * self.num_threads
        self._collected = collected
        chunks = self.chunks(self.n_points)

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            acc = 0  # register-allocated local sum
            for i in chunks[tid]:
                av = yield from a.load(i)
                bv = yield from b.load(i)
                yield Compute(_MUL_COST)
                acc += av * bv
            yield from total.store(tid, acc)
            yield BarrierWait(barrier)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                for t in range(self.num_threads):
                    collected[t] = yield from total.load(t)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))


class StoreThroughDotProduct(_DotProductBase):
    """Listing 1 as an optimizing compiler emits it: the accumulator lives
    in a register and is *stored through* to ``total[thread_id]`` every
    iteration (for visibility), with a reload of the shared slot at
    loop-carried boundaries every ``reload_every`` iterations (register
    pressure / function-call spill points).

    This is the Fig. 12 driver: the store-through stream enters GI after
    each invalidation/timeout and keeps hitting it, so GI residency — and
    the amount of accumulation lost when a reload rebases the register to
    the stale coherent value — is bounded by the GI timeout period.
    """

    name = "store_through_dot_product"

    def __init__(self, *args, reload_every: int = 96, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reload_every = max(1, reload_every)

    def build(self, machine: Machine) -> None:
        a, b, total = self._setup_arrays(machine)
        barrier = machine.barrier(self.num_threads)
        collected: list[int] = [0] * self.num_threads
        self._collected = collected
        chunks = self.chunks(self.n_points)

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            if self.approximate:
                yield ApproxBegin((total.byte_range(),))
            acc = 0
            for k, i in enumerate(chunks[tid]):
                if k and k % self.reload_every == 0:
                    # spill boundary: rebase the register on the shared slot
                    acc = yield from total.load(tid)
                av = yield from a.load(i)
                bv = yield from b.load(i)
                yield Compute(_MUL_COST)
                acc += av * bv
                yield from total.store(tid, acc)
            if self.approximate:
                yield ApproxEnd((total.byte_range(),))
            yield BarrierWait(barrier)
            if tid == 0:
                if self.flush_before_collect:
                    yield FlushApprox()
                for t in range(self.num_threads):
                    collected[t] = yield from total.load(t)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
