"""Shared-memory allocator and typed array views for thread programs.

The allocator hands out word-aligned regions of the simulated address
space and initializes their contents directly in the backing store
(program inputs are "pre-loaded" — the load of input files is not part of
any measured kernel in the paper either).

Two layout modes matter for the paper:

* default (packed) — consecutive allocations and consecutive elements can
  share cache blocks.  This is what *creates* false sharing (e.g. the
  52-byte ``lreg_args`` structs of Phoenix linear_regression).
* ``pad_to_block=True`` — rounds the allocation up to block boundaries,
  modelling the compiler padding Ghostwriter requires so a block never
  mixes approximate and non-approximate data (§3.1).

Array views provide *generator* accessors (``yield from arr.load(i)``)
that emit ISA ops, so workload code reads like the C it mirrors.
"""
from __future__ import annotations

from typing import Generator, Iterable, Sequence

from repro.isa.instructions import Load, Store
from repro.mem.backing import BackingStore
from repro.scribe.similarity import (
    bits_to_float,
    bits_to_int,
    float_to_bits,
    int_to_bits,
)

__all__ = ["SharedMemory", "I32Array", "F32Array"]

_WORD = 4


class _ArrayBase:
    """Common machinery of the typed views."""

    __slots__ = ("mem", "base", "length", "name")

    def __init__(self, mem: "SharedMemory", base: int, length: int,
                 name: str) -> None:
        self.mem = mem
        self.base = base
        self.length = length
        self.name = name

    def addr(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name}[{index}] out of range")
        return self.base + index * _WORD

    def byte_range(self) -> tuple[int, int]:
        """(start, end) byte range for approx_begin annotations."""
        return self.base, self.base + self.length * _WORD

    def __len__(self) -> int:
        return self.length


class I32Array(_ArrayBase):
    """Signed 32-bit integer array in simulated memory."""

    __slots__ = ()

    # -- generator accessors (execute through the caches) --------------
    def load(self, index: int) -> Generator:
        """Yields a Load; returns the signed value (use ``yield from``)."""
        bits = yield Load(self.addr(index))
        return bits_to_int(bits)

    def store(self, index: int, value: int) -> Generator:
        """Yields a Store of a signed 32-bit value."""
        yield Store(self.addr(index), int_to_bits(value))

    def add(self, index: int, delta: int) -> Generator:
        """The ubiquitous read-modify-write (``arr[i] += delta``)."""
        cur = yield from self.load(index)
        yield from self.store(index, _wrap32(cur + delta))
        return _wrap32(cur + delta)

    # -- direct (functional, un-timed) access ----------------------------
    def init(self, values: Iterable[int]) -> None:
        """Pre-load initial contents straight into the backing store."""
        backing = self.mem.backing
        for i, v in enumerate(values):
            if i >= self.length:
                raise ValueError(f"too many initializers for {self.name}")
            backing.store_word(self.base + i * _WORD, int_to_bits(v))

    def read_back(self) -> list[int]:
        """Final globally-coherent contents (from the backing store via
        the caches' writebacks — call only after a run + drain)."""
        backing = self.mem.backing
        return [
            bits_to_int(backing.load_word(self.base + i * _WORD))
            for i in range(self.length)
        ]


class F32Array(_ArrayBase):
    """IEEE-754 binary32 array in simulated memory."""

    __slots__ = ()

    def load(self, index: int) -> Generator:
        """Yields a Load; returns the float value (use ``yield from``)."""
        bits = yield Load(self.addr(index))
        return bits_to_float(bits)

    def store(self, index: int, value: float) -> Generator:
        """Yields a Store of a binary32 value."""
        yield Store(self.addr(index), float_to_bits(value))

    def add(self, index: int, delta: float) -> Generator:
        """Read-modify-write through binary32 rounding."""
        cur = yield from self.load(index)
        new = float(bits_to_float(float_to_bits(cur + delta)))
        yield from self.store(index, new)
        return new

    def init(self, values: Iterable[float]) -> None:
        """Pre-load initial contents straight into the backing store."""
        backing = self.mem.backing
        for i, v in enumerate(values):
            if i >= self.length:
                raise ValueError(f"too many initializers for {self.name}")
            backing.store_word(self.base + i * _WORD, float_to_bits(v))

    def read_back(self) -> list[float]:
        """Final globally-coherent contents (post-run)."""
        backing = self.mem.backing
        return [
            bits_to_float(backing.load_word(self.base + i * _WORD))
            for i in range(self.length)
        ]


def _wrap32(value: int) -> int:
    """Two's-complement 32-bit wraparound (C int semantics)."""
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


class SharedMemory:
    """Bump allocator over the simulated address space."""

    def __init__(self, backing: BackingStore, block_bytes: int = 64,
                 base: int = 0x1000) -> None:
        self.backing = backing
        self.block_bytes = block_bytes
        self._cursor = base
        self._allocations: list[tuple[str, int, int]] = []

    # ------------------------------------------------------------------
    def _take(self, nbytes: int, name: str, pad_to_block: bool) -> int:
        if pad_to_block and self._cursor % self.block_bytes:
            self._cursor += self.block_bytes - self._cursor % self.block_bytes
        base = self._cursor
        size = nbytes
        if pad_to_block and size % self.block_bytes:
            size += self.block_bytes - size % self.block_bytes
        self._cursor += size
        self._allocations.append((name, base, size))
        return base

    def alloc_i32(self, length: int, name: str = "i32",
                  pad_to_block: bool = False,
                  init: Sequence[int] | None = None) -> I32Array:
        """Allocate a signed-int array; optionally block-pad and initialize."""
        if length < 1:
            raise ValueError("array length must be positive")
        base = self._take(length * _WORD, name, pad_to_block)
        arr = I32Array(self, base, length, name)
        if init is not None:
            arr.init(init)
        return arr

    def alloc_f32(self, length: int, name: str = "f32",
                  pad_to_block: bool = False,
                  init: Sequence[float] | None = None) -> F32Array:
        """Allocate a binary32 array; optionally block-pad and initialize."""
        if length < 1:
            raise ValueError("array length must be positive")
        base = self._take(length * _WORD, name, pad_to_block)
        arr = F32Array(self, base, length, name)
        if init is not None:
            arr.init(init)
        return arr

    def block_gap(self) -> None:
        """Force the next allocation onto a fresh cache block."""
        if self._cursor % self.block_bytes:
            self._cursor += self.block_bytes - self._cursor % self.block_bytes

    def allocations(self) -> list[tuple[str, int, int]]:
        """Every allocation as (name, base, padded size)."""
        return list(self._allocations)
