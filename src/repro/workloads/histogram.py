"""Phoenix ``histogram`` — per-channel pixel histograms of an image.

Phoenix's pthread histogram gives every thread a private partial
histogram and merges at the end; prior tools flagged latent false sharing
in its per-thread argument structures (``arg.blue``), but the paper
observed *very little* of it at runtime (§4.2: 0.2 % coherence misses)
and correspondingly no Ghostwriter benefit.  We mirror that structure:
per-thread partial bins packed contiguously (block-boundary sharing
only), a packed args array updated once per strip (the latent, rarely
contended structure), and a sequential merge.

Input models the paper's 400 MB bitmap: synthetic RGB bytes with smooth
spatial correlation, scaled down.  Error metric MPE over merged bins.
"""
from __future__ import annotations

from functools import partial

import numpy as np

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.machine import Machine
from repro.workloads.base import Workload

__all__ = ["Histogram"]

_BINS = 64          # scaled-down from 256 (documented in DESIGN.md)
_SHIFT = 2          # pixel byte -> bin index (256 / 64)
_STRIP = 64         # pixels per args-update strip
_ARGS_WORDS = 4     # per-thread progress/bookkeeping fields, packed


class Histogram(Workload):
    """The Phoenix per-channel histogram workload (see module docstring)."""
    name = "histogram"
    suite = "Phoenix"
    domain = "Image Processing"
    error_metric = "MPE"

    def __init__(self, num_threads: int, d_distance: int = 4,
                 seed: int = 12345, scale: float = 1.0,
                 n_pixels: int = 6144) -> None:
        super().__init__(num_threads, d_distance, seed, scale)
        self.n_pixels = self.scaled(n_pixels, minimum=num_threads)
        self.input_desc = f"{self.n_pixels}-pixel RGB image"
        # smooth image: random walk per channel, clipped to bytes
        steps = self.rng.integers(-6, 7, size=(3, self.n_pixels))
        img = np.clip(np.cumsum(steps, axis=1) + 128, 0, 255)
        self.pixels = img.astype(np.int64)  # [channel, pixel]
        self._collected: list[int] | None = None

    def reference_output(self):
        out = []
        for ch in range(3):
            bins = np.bincount(self.pixels[ch] >> _SHIFT, minlength=_BINS)
            out.extend(int(v) for v in bins[:_BINS])
        return out

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    def build(self, machine: Machine) -> None:
        mem = self.make_memory(machine)
        chan = [
            mem.alloc_i32(self.n_pixels, f"pix_{c}", pad_to_block=True,
                          init=self.pixels[c].tolist())
            for c in range(3)
        ]
        mem.block_gap()
        # per-thread partial bins, contiguous (boundary sharing only)
        part = mem.alloc_i32(self.num_threads * 3 * _BINS, "partial_bins",
                             init=[0] * (self.num_threads * 3 * _BINS))
        # the latent arg structs, packed like Phoenix's
        args = mem.alloc_i32(self.num_threads * _ARGS_WORDS, "args",
                             init=[0] * (self.num_threads * _ARGS_WORDS))
        mem.block_gap()
        merged = mem.alloc_i32(3 * _BINS, "merged_bins",
                               init=[0] * (3 * _BINS))
        barrier = machine.barrier(self.num_threads)
        collected: list[int] = [0] * (3 * _BINS)
        self._collected = collected
        chunks = self.chunks(self.n_pixels)

        def bin_index(tid: int, ch: int, b: int) -> int:
            return (tid * 3 + ch) * _BINS + b

        def worker(tid: int):
            yield SetAprx(self.d_distance)
            approx_ranges = (part.byte_range(), args.byte_range())
            yield ApproxBegin(approx_ranges)
            for k, i in enumerate(chunks[tid]):
                for ch in range(3):
                    px = yield from chan[ch].load(i)
                    yield Compute(1)
                    yield from part.add(bin_index(tid, ch, px >> _SHIFT), 1)
                if k % _STRIP == 0:
                    # Phoenix-style progress update on the packed struct
                    yield from args.add(tid * _ARGS_WORDS, 1)
            yield ApproxEnd(approx_ranges)
            yield BarrierWait(barrier)
            if tid == 0:
                # thread join / context switch: forfeit this core's
                # approximate lines before reading results (paper 3.5)
                yield FlushApprox()
                # sequential merge, as in Phoenix's final phase
                for ch in range(3):
                    for b in range(_BINS):
                        total = 0
                        for t in range(self.num_threads):
                            total += yield from part.load(bin_index(t, ch, b))
                        yield from merged.store(ch * _BINS + b, total)
                        collected[ch * _BINS + b] = total

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))
