"""repro.mem subpackage."""
