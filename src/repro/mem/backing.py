"""Functional backing store: the authoritative word-granular main memory.

Blocks are lazily materialized lists of 32-bit word patterns.  The store
is *functional only* — DRAM timing lives in :mod:`repro.mem.dram`.  L2
misses fetch copies of blocks from here; L2 dirty evictions write blocks
back.  (L1-level approximate updates in GS/GI are never propagated this
far — they die inside the L1, per the paper's loss semantics.)
"""
from __future__ import annotations

from repro.common.types import WORD_BYTES, WORD_MASK

__all__ = ["BackingStore"]


class BackingStore:
    """Sparse word-addressable memory image."""

    __slots__ = ("block_bytes", "words_per_block", "_blocks")

    def __init__(self, block_bytes: int = 64) -> None:
        if block_bytes % WORD_BYTES:
            raise ValueError("block size must be a multiple of the word size")
        self.block_bytes = block_bytes
        self.words_per_block = block_bytes // WORD_BYTES
        self._blocks: dict[int, list[int]] = {}

    # -- address helpers ----------------------------------------------
    def block_base(self, addr: int) -> int:
        """Block-aligned base address of ``addr``."""
        return addr - (addr % self.block_bytes)

    def _word_offset(self, addr: int) -> int:
        off = addr % self.block_bytes
        if off % WORD_BYTES:
            raise ValueError(f"unaligned word address {addr:#x}")
        return off // WORD_BYTES

    # -- block-granular interface (used by the cache hierarchy) --------
    def read_block(self, block_addr: int) -> list[int]:
        """A *copy* of the block's words (callers own their copies)."""
        if block_addr % self.block_bytes:
            raise ValueError(f"unaligned block address {block_addr:#x}")
        blk = self._blocks.get(block_addr)
        if blk is None:
            return [0] * self.words_per_block
        return blk.copy()

    def write_block(self, block_addr: int, words: list[int]) -> None:
        """Overwrite a whole block with the given words."""
        if block_addr % self.block_bytes:
            raise ValueError(f"unaligned block address {block_addr:#x}")
        if len(words) != self.words_per_block:
            raise ValueError(
                f"expected {self.words_per_block} words, got {len(words)}"
            )
        self._blocks[block_addr] = [w & WORD_MASK for w in words]

    # -- word-granular interface (allocator init, result readback) -----
    def load_word(self, addr: int) -> int:
        """Read one aligned 32-bit word (0 if never written)."""
        off = self._word_offset(addr)
        blk = self._blocks.get(self.block_base(addr))
        if blk is None:
            return 0
        return blk[off]

    def store_word(self, addr: int, value: int) -> None:
        """Write one aligned 32-bit word."""
        base = self.block_base(addr)
        blk = self._blocks.get(base)
        if blk is None:
            blk = [0] * self.words_per_block
            self._blocks[base] = blk
        blk[self._word_offset(addr)] = value & WORD_MASK

    # -- introspection ---------------------------------------------------
    def resident_blocks(self) -> int:
        """Number of blocks materialized so far."""
        return len(self._blocks)

    def memory_image(self) -> dict[int, list[int]]:
        """Deep copy of all resident blocks (test oracles, checkpoints)."""
        return {addr: blk.copy() for addr, blk in self._blocks.items()}

    def snapshot(self) -> dict[int, list[int]]:
        """Deprecated alias of :meth:`memory_image` — "snapshot" now
        refers to the restorable checkpoint layer."""
        import warnings

        warnings.warn(
            "BackingStore.snapshot() is deprecated; use memory_image() "
            "(or MachineCheckpoint for restorable state)",
            DeprecationWarning, stacklevel=2,
        )
        return self.memory_image()

    def restore(self, image: dict[int, list[int]]) -> None:
        """Adopt a :meth:`memory_image` (deep-copied in)."""
        self._blocks = {addr: list(blk) for addr, blk in image.items()}
