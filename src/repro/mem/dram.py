"""DRAM timing model.

A deliberately simple DDR3-class abstraction: fixed access latency plus
per-bank busy windows (address-interleaved banks).  A request to a busy
bank queues behind it.  Functional data comes from the
:class:`~repro.mem.backing.BackingStore`; this module only answers "when"
and counts accesses for the energy model.
"""
from __future__ import annotations

from typing import Callable

from repro.common.config import DramConfig
from repro.common.stats import StatGroup
from repro.sim.engine import Engine

__all__ = ["Dram"]


class Dram:
    """Bank-aware fixed-latency DRAM behind the L2 slices."""

    __slots__ = ("cfg", "engine", "stats", "block_bytes", "_bank_free_at")

    def __init__(self, cfg: DramConfig, engine: Engine, block_bytes: int,
                 stats: StatGroup | None = None) -> None:
        self.cfg = cfg
        self.engine = engine
        self.block_bytes = block_bytes
        self.stats = stats if stats is not None else StatGroup("dram")
        self._bank_free_at = [0] * cfg.num_banks

    def _bank(self, block_addr: int) -> int:
        return (block_addr // self.block_bytes) % self.cfg.num_banks

    def _access(self, block_addr: int, done: Callable[[], None]) -> None:
        bank = self._bank(block_addr)
        start = max(self.engine.now, self._bank_free_at[bank])
        queue_delay = start - self.engine.now
        self._bank_free_at[bank] = start + self.cfg.bank_busy_cycles
        self.stats.queue_cycles += queue_delay
        self.engine.schedule(queue_delay + self.cfg.access_latency, done)

    def read(self, block_addr: int, done: Callable[[], None]) -> None:
        """Schedule ``done`` when the block read completes."""
        self.stats.reads += 1
        self._access(block_addr, done)

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable timing state: per-bank busy horizons."""
        return {"bank_free_at": list(self._bank_free_at)}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self._bank_free_at = list(blob["bank_free_at"])

    def write(self, block_addr: int, done: Callable[[], None] | None = None) -> None:
        """Schedule a block writeback; ``done`` is optional (posted write)."""
        self.stats.writes += 1
        self._access(block_addr, done if done is not None else _noop)


def _noop() -> None:
    return None
