"""repro.cache subpackage."""
