"""Miss Status Holding Registers.

One entry per in-flight L1 transaction.  The L1 core interface is
one-outstanding-miss-per-core (in-order cores, as in the paper), but the
MSHR file is kept general: entries track what response is still expected
and carry the callback that retires the stalled memory operation.
"""
from __future__ import annotations

import enum
from typing import Callable

__all__ = ["MshrEntry", "MshrFile", "MshrKind"]


class MshrKind(enum.Enum):
    """What the outstanding transaction is waiting for."""

    LOAD = "load"        # GETS issued, waiting for DATA
    STORE = "store"      # GETX issued, waiting for DATA(+acks collected at dir)
    UPGRADE = "upgrade"  # UPGRADE issued, waiting for ACK (may morph to DATA)


class MshrEntry:
    """One in-flight transaction: what is awaited and how to retire it."""
    __slots__ = (
        "block_addr", "kind", "addr", "value", "is_scribble",
        "on_complete", "issued_at", "deferred", "fill_to_invalid",
    )

    def __init__(self, block_addr: int, kind: MshrKind, addr: int,
                 value: int | None, is_scribble: bool,
                 on_complete: Callable[[], None], issued_at: int) -> None:
        self.block_addr = block_addr
        self.kind = kind
        self.addr = addr               # word address of the stalled access
        self.value = value             # store value (None for loads)
        self.is_scribble = is_scribble
        self.on_complete = on_complete
        self.issued_at = issued_at
        #: forwards that overtook the fill and must be serviced right
        #: after the transaction retires
        self.deferred: list = []
        #: an INV arrived during IS_D (gem5's "IS_I"): acknowledge it at
        #: once, use the eventual fill for the single stalled load, and
        #: install the line as I instead of S
        self.fill_to_invalid = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MshrEntry({self.kind.value} @ {self.block_addr:#x}, "
            f"issued={self.issued_at})"
        )


class MshrFile:
    """Fixed-capacity map block_addr -> in-flight entry."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = capacity
        self._entries: dict[int, MshrEntry] = {}

    def full(self) -> bool:
        """True when no further entry can be allocated."""
        return len(self._entries) >= self.capacity

    def allocate(self, entry: MshrEntry) -> MshrEntry:
        """Register a new outstanding transaction (one per block)."""
        if entry.block_addr in self._entries:
            raise RuntimeError(
                f"duplicate outstanding transaction on {entry.block_addr:#x}"
            )
        if self.full():
            raise RuntimeError("MSHR file full")
        self._entries[entry.block_addr] = entry
        return entry

    def get(self, block_addr: int) -> MshrEntry | None:
        """The outstanding entry for a block, or None."""
        return self._entries.get(block_addr)

    def retire(self, block_addr: int) -> MshrEntry:
        """Remove and return the completed entry for a block."""
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            raise KeyError(f"no outstanding transaction on {block_addr:#x}")
        return entry

    def outstanding(self) -> int:
        """Number of in-flight transactions."""
        return len(self._entries)

    def entries(self) -> list[MshrEntry]:
        """All in-flight entries (for diagnostics and invariant checks)."""
        return list(self._entries.values())

    def __contains__(self, block_addr: int) -> bool:
        return block_addr in self._entries
