"""Set-associative SRAM array with tree pseudo-LRU replacement.

Shared by L1 and L2.  Each line carries functional data (the block's 16
words), a generic ``state`` slot owned by the controller using the array,
and a ``pinned`` flag so replacement never victimizes a line with an
outstanding transaction (MSHR semantics).
"""
from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.common.config import CacheConfig

__all__ = ["CacheLine", "CacheArray"]


class CacheLine:
    """One way of one set."""

    __slots__ = ("tag", "state", "words", "pinned", "aux")

    def __init__(self) -> None:
        self.tag: int | None = None    # block-aligned byte address
        self.state: Any = None          # controller-owned state object
        self.words: list[int] | None = None
        self.pinned = False             # outstanding transaction: not evictable
        self.aux: Any = None            # controller scratch (e.g. sharer set)

    @property
    def valid(self) -> bool:
        """True when the line holds a tag."""
        return self.tag is not None

    def clear(self) -> None:
        """Return the line to the empty state."""
        self.tag = None
        self.state = None
        self.words = None
        self.pinned = False
        self.aux = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f"{self.tag:#x}" if self.tag is not None else "-"
        return f"CacheLine(tag={tag}, state={self.state}, pinned={self.pinned})"


class _PlruTree:
    """Classic binary-tree pseudo-LRU for power-of-two associativity.

    ``bits[i] == 0`` means the *left* subtree is colder (next victim);
    touching a way flips the bits on its root path to point away from it.
    """

    __slots__ = ("assoc", "bits")

    def __init__(self, assoc: int) -> None:
        self.assoc = assoc
        self.bits = [0] * max(assoc - 1, 1)

    def touch(self, way: int) -> None:
        if self.assoc == 1:
            return
        node = 0
        span = self.assoc
        while span > 1:
            half = span // 2
            if way < half:
                self.bits[node] = 1            # point at the right (cold) side
                node = 2 * node + 1
            else:
                self.bits[node] = 0
                node = 2 * node + 2
                way -= half
            span = half

    def victim(self, evictable: Callable[[int], bool]) -> int | None:
        """PLRU-preferred evictable way, or None if nothing is evictable.

        Follows the PLRU path first; if that way is pinned, falls back to
        the lowest-numbered evictable way (hardware would stall — callers
        treat ``None`` as a structural stall).
        """
        if self.assoc == 1:
            return 0 if evictable(0) else None
        node = 0
        way = 0
        span = self.assoc
        while span > 1:
            half = span // 2
            if self.bits[node] == 0:
                node = 2 * node + 1
            else:
                node = 2 * node + 2
                way += half
            span = half
        if evictable(way):
            return way
        for w in range(self.assoc):
            if evictable(w):
                return w
        return None


class CacheArray:
    """The tag/data RAM of one cache: sets x ways of :class:`CacheLine`."""

    __slots__ = ("cfg", "_sets", "_plru", "_blk_shift", "_set_mask")

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        # geometry is power-of-two by construction (CacheConfig), so the
        # hot set_index is one shift + one mask; rows materialize lazily
        # — a run touching a fraction of a large L2 never allocates the
        # rest
        self._blk_shift = cfg.block_bytes.bit_length() - 1
        self._set_mask = cfg.num_sets - 1
        self._sets: list[list[CacheLine] | None] = [None] * cfg.num_sets
        self._plru: list[_PlruTree | None] = [None] * cfg.num_sets

    def _ways(self, idx: int) -> list[CacheLine]:
        """Fetch-or-materialize one set's ways (and its PLRU tree)."""
        ways = self._sets[idx]
        if ways is None:
            assoc = self.cfg.assoc
            ways = [CacheLine() for _ in range(assoc)]
            self._sets[idx] = ways
            self._plru[idx] = _PlruTree(assoc)
        return ways

    # -- lookup ---------------------------------------------------------
    def lookup(self, block_addr: int, touch: bool = True) -> CacheLine | None:
        """The line holding ``block_addr``, or None on tag miss."""
        idx = (block_addr >> self._blk_shift) & self._set_mask
        ways = self._sets[idx]
        if ways is None:
            return None
        for way, line in enumerate(ways):
            if line.tag == block_addr:
                if touch:
                    self._plru[idx].touch(way)
                return line
        return None

    def touch(self, block_addr: int) -> None:
        """Mark the block most-recently-used (PLRU update only)."""
        self.lookup(block_addr, touch=True)

    # -- allocation -------------------------------------------------------
    def find_free_or_victim(
        self, block_addr: int, evictable: Callable[[CacheLine], bool]
    ) -> CacheLine | None:
        """Line to place ``block_addr`` into: an invalid way if one exists,
        else the PLRU victim among lines passing ``evictable``.  The caller
        must handle the victim's current contents (writeback etc.) and then
        install the new tag.  Returns None when the set is fully pinned.
        """
        idx = (block_addr >> self._blk_shift) & self._set_mask
        ways = self._ways(idx)
        for line in ways:
            if not line.valid and not line.pinned:
                return line
        victim_way = self._plru[idx].victim(
            lambda w: not ways[w].pinned and evictable(ways[w])
        )
        return None if victim_way is None else ways[victim_way]

    def install(self, line: CacheLine, block_addr: int) -> None:
        """Claim a line for a new tag and mark it most-recently-used."""
        idx = (block_addr >> self._blk_shift) & self._set_mask
        ways = self._ways(idx)
        if line not in ways:
            raise ValueError("line does not belong to the target set")
        line.tag = block_addr
        self._plru[idx].touch(ways.index(line))

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Full placement state: every materialized set's lines (tag,
        state, words, pinned, aux) *and* its PLRU bits — way order and
        replacement history round-trip exactly, so a restored run makes
        bit-identical victim choices."""
        sets = []
        for idx, ways in enumerate(self._sets):
            if ways is None:
                continue
            lines = [
                (ln.tag, ln.state,
                 None if ln.words is None else list(ln.words),
                 ln.pinned, ln.aux)
                for ln in ways
            ]
            sets.append((idx, lines, list(self._plru[idx].bits)))
        return {"sets": sets}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state (unlisted sets dematerialize)."""
        self._sets = [None] * self.cfg.num_sets
        self._plru = [None] * self.cfg.num_sets
        for idx, lines, bits in blob["sets"]:
            ways = self._ways(idx)
            self._plru[idx].bits = list(bits)
            for ln, (tag, state, words, pinned, aux) in zip(ways, lines):
                ln.tag = tag
                ln.state = state
                ln.words = None if words is None else list(words)
                ln.pinned = pinned
                ln.aux = aux

    # -- iteration / introspection ------------------------------------
    def iter_lines(self) -> Iterator[CacheLine]:
        """Every materialized line, in set-major order.

        Unmaterialized sets hold no tags by definition, so skipping them
        is observationally identical to iterating empty lines for any
        caller that filters on validity/state.
        """
        for ways in self._sets:
            if ways is not None:
                yield from ways

    def iter_valid(self) -> Iterator[CacheLine]:
        """Every line currently holding a tag."""
        for line in self.iter_lines():
            if line.valid:
                yield line

    def set_of(self, block_addr: int) -> list[CacheLine]:
        """The ways of the set this block maps to."""
        return self._ways((block_addr >> self._blk_shift) & self._set_mask)

    def position_of(self, line: CacheLine, block_addr: int) -> tuple[int, int]:
        """``(set_index, way)`` of a resident line.

        Lines never migrate between ways once installed (allocation
        claims a way in place), so the position is stable until the line
        is evicted — the residency mirror caches it to emulate PLRU
        touches without per-op tag lookups.
        """
        idx = (block_addr >> self._blk_shift) & self._set_mask
        return idx, self._sets[idx].index(line)

    def plru_of(self, set_idx: int) -> _PlruTree:
        """The PLRU tree of one materialized set (fast-lane touch path)."""
        return self._plru[set_idx]

    def occupancy(self) -> int:
        """Number of valid lines in the array."""
        return sum(1 for _ in self.iter_valid())

    def state_arrays(self, state_code: Callable[[Any], int]):
        """Columnar snapshot of every valid line, sorted by tag.

        Returns ``(tags, states, words)`` numpy arrays — tags as int64
        block addresses, states as int8 codes via ``state_code`` (e.g.
        ``repro.coherence.transitions.STATE_CODES.get``), words as an
        (n, words_per_block) uint32 matrix.  Sorting by tag makes the
        snapshot canonical: two arrays holding the same blocks in the
        same states with the same data compare equal regardless of
        set/way placement history.  Used by the batch backend's tests to
        compare whole machine states across lanes in one vector op.
        """
        import numpy as np

        lines = sorted(self.iter_valid(), key=lambda ln: ln.tag)
        n = len(lines)
        wpb = self.cfg.block_bytes // 4
        tags = np.empty(n, dtype=np.int64)
        states = np.empty(n, dtype=np.int8)
        words = np.zeros((n, wpb), dtype=np.uint32)
        for i, ln in enumerate(lines):
            tags[i] = ln.tag
            states[i] = state_code(ln.state)
            if ln.words is not None:
                words[i] = ln.words
        return tags, states, words
