"""Shared L2 cache slices.

The paper's L2 is physically distributed (one 128 kB slice per core tile)
and logically shared; blocks are address-interleaved across slices.  Our
L2 is *non-inclusive*: it is a data cache between the directories and
DRAM, while the full-map directory (see
:mod:`repro.coherence.directory`) independently tracks every block with
L1 copies.  An L2 eviction therefore never needs to recall L1 copies —
dirty victims are written back to DRAM, and globally coherent data is
always reachable from L2-or-DRAM whenever the directory needs to supply
it (owners supply their own dirty data via forwards).
"""
from __future__ import annotations

from repro.cache.sram import CacheArray, CacheLine
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup
from repro.obs.events import Event, EventKind

__all__ = ["L2Slice", "EvictedBlock"]


class EvictedBlock:
    """A victim block handed back to the caller for DRAM writeback."""
    __slots__ = ("block_addr", "words", "dirty")

    def __init__(self, block_addr: int, words: list[int], dirty: bool) -> None:
        self.block_addr = block_addr
        self.words = words
        self.dirty = dirty


class L2Slice:
    """One address-interleaved slice of the shared L2."""

    __slots__ = ("node", "cfg", "array", "stats", "bus", "engine")

    def __init__(self, node: int, cfg: CacheConfig, stats: StatGroup) -> None:
        self.node = node
        self.cfg = cfg
        self.array = CacheArray(cfg)
        self.stats = stats
        #: event bus + engine (repro.obs); wired by Machine.attach_bus
        self.bus = None
        self.engine = None

    def probe(self, block_addr: int) -> list[int] | None:
        """Read the block if resident (a copy); counts a read access."""
        self.stats.reads += 1
        line = self.array.lookup(block_addr)
        bus = self.bus
        if bus is not None:
            bus.emit(Event(
                self.engine.now if self.engine is not None else 0,
                EventKind.L2, self.node, block_addr, "probe",
                "miss" if line is None else "hit",
            ))
        if line is None:
            self.stats.read_misses += 1
            return None
        self.stats.read_hits += 1
        return line.words.copy()

    def contains(self, block_addr: int) -> bool:
        """Tag-presence probe without statistics side effects."""
        return self.array.lookup(block_addr, touch=False) is not None

    def fill(
        self, block_addr: int, words: list[int], dirty: bool
    ) -> EvictedBlock | None:
        """Install/overwrite a block; returns the victim (if any) for the
        caller to write back to DRAM when dirty."""
        self.stats.writes += 1
        bus = self.bus
        if bus is not None:
            bus.emit(Event(
                self.engine.now if self.engine is not None else 0,
                EventKind.L2, self.node, block_addr, "fill",
                "dirty" if dirty else "clean",
            ))
        line = self.array.lookup(block_addr, touch=True)
        evicted: EvictedBlock | None = None
        if line is None:
            line = self.array.find_free_or_victim(block_addr, lambda _ln: True)
            if line is None:  # pragma: no cover - L2 lines are never pinned
                raise RuntimeError("L2 set fully pinned")
            if line.valid:
                evicted = EvictedBlock(
                    line.tag, line.words, bool(line.state)
                )
                self.stats.evictions += 1
                if evicted.dirty:
                    self.stats.dirty_evictions += 1
                line.clear()
            self.array.install(line, block_addr)
            line.words = words.copy()
            line.state = dirty
        else:
            line.words = words.copy()
            line.state = bool(line.state) or dirty
        return evicted

    def mark_clean(self, block_addr: int) -> None:
        """Clear the dirty bit (after the block reached DRAM)."""
        line = self.array.lookup(block_addr, touch=False)
        if line is not None:
            line.state = False

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return self.array.occupancy()

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable slice state (the array holds everything: tags,
        words, and the dirty bit in each line's ``state`` slot)."""
        return {"array": self.array.snapshot()}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state."""
        self.array.restore(blob["array"])

    def _line(self, block_addr: int) -> CacheLine | None:
        return self.array.lookup(block_addr, touch=False)
