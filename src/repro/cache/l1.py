"""Private L1 data-cache controller: protocol mechanism, policy injected.

This is the component the paper modifies (Fig. 3 / Fig. 6).  It owns:

* the L1 tag/data array (2-way, pseudo-LRU, functional word data),
* the MESI requestor-side finite-state machine, including the transient
  states of a blocking directory protocol (``IS_D``, ``IM_D``, ``SM_D``)
  and the classic races (invalidation overtaking a fill, forward
  overtaking a grant, writeback racing a forward),
* the Ghostwriter extension: the scribe comparator, approximate states
  ``GS``/``GI``, and the periodic GI timeout,
* a write-back buffer that retains evicted E/M data until the directory
  acknowledges the PUT, so in-flight forwards can always be served.

Stale-data semantics (the whole point of the paper): loads from ``GS``
and ``GI`` blocks return the *local* words, which may diverge from the
globally coherent value; locally scribbled updates are silently dropped
whenever the block leaves an approximate state.  Nothing in GS/GI is ever
written back.

Everything protocol-*variant*-specific — may a scribble enter GS/GI,
does an INV on GS invalidate or self-invalidate, MESI vs MOESI dirty
forwarding, write-update UPGRADEs — is decided by the injected
:class:`~repro.coherence.policy.ProtocolPolicy`; this controller keeps
only the mechanism.  The policy's decision bits are pre-resolved into
plain booleans at construction so the per-access hot path never touches
the policy object.
"""
from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cache.mshr import MshrEntry, MshrFile, MshrKind
from repro.cache.sram import CacheArray, CacheLine
from repro.coherence.messages import Message, ProtocolError
from repro.common.config import SimConfig
from repro.common.stats import StatGroup
from repro.common.types import AccessType, CoherenceState, MessageType
from repro.noc.network import Network
from repro.obs.events import Event, EventKind
from repro.scribe.scribe_unit import ScribeUnit
from repro.sim.engine import CheckpointUnsupported, Engine

__all__ = ["L1Controller"]

_S = CoherenceState
_RETRY_DELAY = 4  # cycles between structural-stall retries

#: stable states the hit-run fast lane may treat as resident: the lane's
#: residency mirror tracks exactly the blocks whose next access *cannot*
#: allocate, evict, or race a transient transaction.  I is excluded (a
#: scribble on I may transition to GI); transient states are excluded by
#: definition.
_MIRROR_STATES = frozenset((_S.S, _S.E, _S.M, _S.O, _S.GS, _S.GI))


class _WbEntry:
    """Evicted E/M block parked until the directory acks the PUT."""

    __slots__ = ("words", "dirty")

    def __init__(self, words: list[int], dirty: bool) -> None:
        self.words = words
        self.dirty = dirty


class L1Controller:
    """One private L1 D-cache + its coherence controller."""

    def __init__(
        self,
        node: int,
        cfg: SimConfig,
        engine: Engine,
        network: Network,
        stats: StatGroup,
        *,
        policy=None,
    ) -> None:
        self.node = node
        self.cfg = cfg
        self.gw = cfg.ghostwriter
        self.engine = engine
        self.network = network
        self.stats = stats
        # Machine resolves the policy once and passes it down; direct
        # constructions (unit tests) fall back to the config's resolution
        self.policy = cfg.policy if policy is None else policy
        # policy decision bits, pre-resolved for the per-access hot path
        self._allow_gs = self.policy.allows_gs
        self._allow_gi = self.policy.allows_gi
        self._approx = self.policy.approx
        self._moesi = self.policy.base == "moesi"
        self._gs_self_invalidate = (
            self.policy.remote_store_gs == "self-invalidate"
        )
        self._update_upgrades = self.policy.update_on_upgrade
        self._gs_fallback_getx = self.policy.gs_fallback_is_getx(self.gw)
        self.array = CacheArray(cfg.l1)
        self.mshrs = MshrFile(capacity=8)
        self.scribe = ScribeUnit(
            d_distance=cfg.ghostwriter.d_distance,
            enabled=False,
            stats=stats.child("scribe"),
            mode=cfg.ghostwriter.similarity_mode,
            node=node,
            engine=engine,
        )
        self._wb_buffer: dict[int, deque[_WbEntry]] = {}
        #: residency mirror (hit-run fast lane): block -> (line, set_idx,
        #: way) for every line in a stable hit-capable state (see
        #: ``_MIRROR_STATES``).  Maintained incrementally by
        #: ``_set_state``/``_evict`` and rebuilt wholesale by
        #: ``restore`` — never serialized.  A *missing* entry is always
        #: safe (the lane falls back to scalar); a stale entry never
        #: exists because every state change funnels through
        #: ``_set_state`` and every eviction through ``_evict``.
        self._mirror: dict[int, tuple[CacheLine, int, int]] = {}
        self._gi_blocks: set[int] = set()
        self._gi_timer_armed = False
        self._block_bytes = cfg.block_bytes
        self._home_memo: dict[int, int] = {}
        self._word_shift = 2  # 4-byte words
        self._off_mask = cfg.block_bytes - 1  # block size is power-of-two
        # hot-path bindings: the access path runs once per simulated
        # memory reference, so its counters are bumped through the live
        # counter dict (one item access each) rather than StatGroup's
        # attribute protocol, and the scribe entry points are pre-bound
        self._c = stats.counters(
            "loads", "load_hits", "load_misses", "load_miss_on_I",
            "approx_load_hits", "stores", "store_hits", "store_misses",
            "store_miss_on_S", "store_miss_on_I", "approx_store_hits",
            "gs_store_hits", "gi_store_hits", "gs_serviced", "gi_serviced",
            "budget_fallbacks", "structural_stalls", "misses_issued",
        )
        self._scribe_observe = self.scribe.observe
        self._scribe_check = self.scribe.check
        #: event bus (repro.obs); None keeps every emission site to a
        #: single attribute check
        self.bus = None
        #: optional observer: fn(cycle, node, block, old_state, new_state, why)
        self.transition_hook: Callable[..., None] | None = None
        #: optional observer of conventional-store commits:
        #: fn(block, words) is called whenever this L1 becomes the unique
        #: M copy with new data (store hit on E/M, fill+store, upgrade
        #: grant) — at that instant ``words`` *are* the globally coherent
        #: values (SWMR), which is what feeds the golden reference memory
        #: of the runtime invariant monitor (repro.verify).
        self.commit_hook: Callable[[int, list[int]], None] | None = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _block_base(self, addr: int) -> int:
        return addr & ~self._off_mask

    def _word_off(self, addr: int) -> int:
        return (addr & self._off_mask) >> self._word_shift

    def _set_state(self, line: CacheLine, new: CoherenceState, why: str) -> None:
        old = line.state
        line.state = new
        tag = line.tag
        if new in _MIRROR_STATES:
            mirror = self._mirror
            if tag not in mirror:
                idx, way = self.array.position_of(line, tag)
                mirror[tag] = (line, idx, way)
        else:
            self._mirror.pop(tag, None)
        if old is not new and old is not None:
            hook = self.transition_hook
            if hook is not None:
                hook(self.engine.now, self.node, line.tag, old, new, why)
            bus = self.bus
            if bus is not None:
                bus.emit(Event(
                    self.engine.now, EventKind.STATE, self.node, line.tag,
                    f"{old.value}->{new.value}", why,
                ))

    def _send(self, mtype: MessageType, block: int, dst: int, **kw) -> None:
        self.network.send(
            Message(mtype, block, src=self.node, dst=dst, **kw)
        )

    def _home(self, block: int) -> int:
        # memoized per block: the directory interleave is a pure function
        # of the address, and hot blocks resolve their home every message
        memo = self._home_memo
        home = memo.get(block)
        if home is None:
            home = memo[block] = self.cfg.home_directory(block)
        return home

    def _commit(self, line: CacheLine) -> None:
        """Publish a line's words to the commit observer (if any)."""
        hook = self.commit_hook
        if hook is not None:
            hook(line.tag, line.words)

    # ------------------------------------------------------------------
    # core-facing interface
    # ------------------------------------------------------------------
    def access(
        self,
        atype: AccessType,
        addr: int,
        value: int | None,
        on_done: Callable[[int | None], None],
        block: int | None = None,
        off: int | None = None,
    ) -> tuple[bool, int | None]:
        """Perform one memory reference.

        Returns ``(True, load_value)`` on a hit (the caller charges the L1
        hit latency itself, which lets cores batch hits without touching
        the event queue).  On a miss, returns ``(False, None)`` and calls
        ``on_done(load_value)`` when the transaction retires.  In-order
        cores issue at most one outstanding access, which the MSHR layout
        relies on.

        ``block``/``off`` accept the address decomposition when the
        caller already has it — the compiled interpreter passes the
        per-op columns its :class:`~repro.isa.compiled.HitRunPlan`
        precomputed, skipping the per-access shift/mask arithmetic.
        """
        if block is None:
            block = addr & ~self._off_mask
            off = (addr & self._off_mask) >> self._word_shift
        bus = self.bus
        if bus is None or not bus.wants(EventKind.ACCESS):
            return self._access(atype, addr, value, on_done, block, off)
        hit, val = self._access(atype, addr, value, on_done, block, off)
        bus.emit(Event(
            self.engine.now, EventKind.ACCESS, self.node, addr,
            atype.value, "hit" if hit else "miss", value or 0,
        ))
        return hit, val

    def _access(
        self,
        atype: AccessType,
        addr: int,
        value: int | None,
        on_done: Callable[[int | None], None],
        block: int,
        off: int,
    ) -> tuple[bool, int | None]:
        line = self.array.lookup(block)
        st = self._c

        if atype is AccessType.LOAD:
            st["loads"] += 1
            if line is not None and line.state.readable:
                st["load_hits"] += 1
                if line.state.approximate:
                    st["approx_load_hits"] += 1
                return True, line.words[off]
            if line is not None and line.state.transient:
                raise ProtocolError(
                    f"core {self.node} accessed block {block:#x} with an "
                    "outstanding transaction (cores are single-outstanding)"
                )
            if line is not None:  # tag present, state I
                st["load_miss_on_I"] += 1
            st["load_misses"] += 1
            self._start_miss(atype, addr, value, on_done)
            return False, None

        # stores and scribbles -----------------------------------------
        st["stores"] += 1
        if value is None:
            raise ValueError("store requires a value")
        if line is not None and line.words is not None:
            # Fig. 2 instrumentation: write value vs resident word,
            # irrespective of coherence state.
            self._scribe_observe(value, line.words[off])

        if line is not None and line.state.transient:
            raise ProtocolError(
                f"core {self.node} stored to block {block:#x} with an "
                "outstanding transaction"
            )

        if line is not None:
            state = line.state
            if state is _S.E:
                line.words[off] = value
                self._set_state(line, _S.M, "store hit on E")
                self._commit(line)
                st["store_hits"] += 1
                return True, None
            if state is _S.M:
                line.words[off] = value
                self._commit(line)
                st["store_hits"] += 1
                return True, None
            if state is _S.GS or state is _S.GI:
                # Scribbles re-check similarity in every state (§3.1: the
                # check applies "regardless of the coherence state",
                # otherwise "falling back to the conventional coherence
                # mechanisms").  A similar scribble — and any conventional
                # store (Fig. 3 self-loops) — hits locally.  A DISSIMILAR
                # scribble falls back: from GS it issues a real UPGRADE
                # (which publishes the locally accumulated block when
                # granted), from GI a real GETX.  This fallback is what
                # keeps application error bounded (Fig. 11) while the
                # adversarial microbenchmark (Fig. 12) still diverges.
                budget = self.gw.approx_write_budget
                over_budget = (
                    budget is not None
                    and atype is AccessType.SCRIBBLE
                    and (line.aux or 0) >= budget
                )
                if over_budget:
                    st["budget_fallbacks"] += 1
                if over_budget or (
                    atype is AccessType.SCRIBBLE and not self._scribe_check(
                        value, line.words[off], block, state
                    )
                ):
                    if state is _S.GS:
                        st["store_miss_on_S"] += 1
                    else:
                        st["store_miss_on_I"] += 1
                    st["store_misses"] += 1
                    self._start_miss(atype, addr, value, on_done)
                    return False, None
                # hit: these stores would have been coherence misses in
                # the baseline (the block would be ping-ponging through
                # S/I), so they count toward the Fig. 7 numerators.
                line.words[off] = value
                line.aux = (line.aux or 0) + 1  # per-episode write budget
                st["store_hits"] += 1
                st["approx_store_hits"] += 1
                if state is _S.GS:
                    st["gs_store_hits"] += 1
                else:
                    st["gi_store_hits"] += 1
                return True, None
            if state is _S.O:
                # MOESI Owned: dirty + shared, read-only.  Scribbles never
                # enter GS from O — the O copy is the globally coherent
                # master, and hiding updates in it (or dropping it on an
                # invalidation) would discard *committed* data, not an
                # approximation.  Stores take the conventional UPGRADE.
                st["store_miss_on_S"] += 1
                st["store_misses"] += 1
                self._start_miss(atype, addr, value, on_done)
                return False, None
            if state is _S.S:
                if (
                    atype is AccessType.SCRIBBLE
                    and self._allow_gs
                    and self._scribe_check(value, line.words[off], block,
                                           state)
                ):
                    line.words[off] = value
                    line.aux = 1  # first write of this approximate episode
                    self._set_state(line, _S.GS, "scribble serviced by GS")
                    st["store_hits"] += 1
                    st["gs_serviced"] += 1
                    return True, None
                st["store_miss_on_S"] += 1
                st["store_misses"] += 1
                self._start_miss(atype, addr, value, on_done)
                return False, None
            if state is _S.I:
                if (
                    atype is AccessType.SCRIBBLE
                    and self._allow_gi
                    and self._scribe_check(value, line.words[off], block,
                                           state)
                ):
                    line.words[off] = value
                    line.aux = 1  # first write of this approximate episode
                    self._set_state(line, _S.GI, "scribble serviced by GI")
                    self._enter_gi(block)
                    st["store_hits"] += 1
                    st["gi_serviced"] += 1
                    return True, None
                st["store_miss_on_I"] += 1
                st["store_misses"] += 1
                self._start_miss(atype, addr, value, on_done)
                return False, None
            raise ProtocolError(f"unhandled L1 state {state}")

        # tag miss entirely
        st["store_misses"] += 1
        self._start_miss(atype, addr, value, on_done)
        return False, None

    # ------------------------------------------------------------------
    # miss path
    # ------------------------------------------------------------------
    def _start_miss(
        self,
        atype: AccessType,
        addr: int,
        value: int | None,
        on_done: Callable[[int | None], None],
    ) -> None:
        block = self._block_base(addr)
        # A request for a block with an un-acked PUT in flight would let
        # the request overtake the writeback; hardware stalls, so do we.
        if block in self._wb_buffer or self.mshrs.full():
            self._c["structural_stalls"] += 1
            bus = self.bus
            if bus is not None:
                bus.emit(Event(
                    self.engine.now, EventKind.MSHR_STALL, self.node, block,
                    atype.value,
                    "wb-pending" if block in self._wb_buffer else "mshr-full",
                ))
            self.engine.schedule(
                _RETRY_DELAY, lambda: self._start_miss(atype, addr, value, on_done)
            )
            return

        line = self.array.lookup(block, touch=False)
        if line is None:
            line = self.array.find_free_or_victim(
                block, lambda ln: ln.state is not None and ln.state.stable
            )
            if line is None:
                # every way pinned (cannot normally happen with one
                # outstanding miss per core, but stay safe)
                self._c["structural_stalls"] += 1
                bus = self.bus
                if bus is not None:
                    bus.emit(Event(
                        self.engine.now, EventKind.MSHR_STALL, self.node,
                        block, atype.value, "set-pinned",
                    ))
                self.engine.schedule(
                    _RETRY_DELAY,
                    lambda: self._start_miss(atype, addr, value, on_done),
                )
                return
            if line.valid:
                self._evict(line)
            self.array.install(line, block)
            line.words = [0] * self.cfg.l1.words_per_block
            self._set_state(line, _S.I, "allocate")

        off = self._word_off(addr)
        if atype is AccessType.LOAD:
            kind = MshrKind.LOAD
            self._set_state(line, _S.IS_D, "load miss -> GETS")
            mtype = MessageType.GETS
        elif line.state is _S.S or line.state is _S.O:
            # an O owner upgrading keeps its dirty words; the grant makes
            # them the M copy
            kind = MshrKind.UPGRADE
            self._set_state(line, _S.SM_D, "store on S/O -> UPGRADE")
            mtype = MessageType.UPGRADE
        elif line.state is _S.GS:
            # Conventional fallback from a divergent GS copy.  Two designs
            # (the ``gs_fallback_getx`` ablation knob, which the policy
            # may override — update protocols force GETX, since an
            # in-place UPGRADE would leave divergent scribbled words in a
            # now-coherent S line):
            # * GETX: discard the divergent copy, fetch fresh data, apply
            #   only this store's word — publishes the thread's own
            #   accumulated word without clobbering other threads' words
            #   with the holder's stale view.
            # * UPGRADE (default): publish the whole locally-modified
            #   block in place (cheaper, no data transfer, but stale
            #   words of other threads become globally visible).
            if self._gs_fallback_getx:
                self.stats.approx_data_dropped += 1
                kind = MshrKind.STORE
                self._set_state(line, _S.IM_D,
                                "store fallback from GS -> GETX")
                mtype = MessageType.GETX
            else:
                kind = MshrKind.UPGRADE
                self._set_state(line, _S.SM_D,
                                "store fallback from GS -> UPGRADE")
                mtype = MessageType.UPGRADE
        else:
            if line.state is _S.GI:
                self._gi_blocks.discard(block)
            kind = MshrKind.STORE
            self._set_state(line, _S.IM_D, "store miss -> GETX")
            mtype = MessageType.GETX

        line.pinned = True
        entry = MshrEntry(
            block, kind, addr, value,
            is_scribble=(atype is AccessType.SCRIBBLE),
            on_complete=on_done, issued_at=self.engine.now,
        )
        self.mshrs.allocate(entry)
        self._c["misses_issued"] += 1
        if mtype is MessageType.UPGRADE and self._update_upgrades:
            # the home may fan this write out as UPDATEs to the other
            # sharers, so the request itself carries the written word
            self._send(mtype, block, self._home(block), requestor=self.node,
                       addr=addr, value=value)
        else:
            self._send(mtype, block, self._home(block), requestor=self.node)
        _ = off  # word offset re-derived at fill time

    def _evict(self, line: CacheLine) -> None:
        """Make room: run the eviction protocol for the victim line."""
        block = line.tag
        state = line.state
        st = self.stats
        st.evictions += 1
        if state is _S.M or state is _S.O:
            self._wb_buffer.setdefault(block, deque()).append(
                _WbEntry(line.words, dirty=True)
            )
            st.writebacks += 1
            self._send(MessageType.PUTM, block, self._home(block),
                       words=line.words.copy())
        elif state is _S.E:
            self._wb_buffer.setdefault(block, deque()).append(
                _WbEntry(line.words, dirty=False)
            )
            self._send(MessageType.PUTE, block, self._home(block))
        elif state is _S.S:
            self._send(MessageType.PUTS, block, self._home(block))
        elif state is _S.GS:
            # directory still lists us as an S sharer; approximate updates
            # are forfeited (paper 3.5)
            st.approx_data_dropped += 1
            self._send(MessageType.PUTS, block, self._home(block))
        elif state is _S.GI:
            # invisible to the directory: silent drop
            st.approx_data_dropped += 1
            self._gi_blocks.discard(block)
        elif state is _S.I:
            pass
        else:
            raise ProtocolError(f"evicting line in transient state {state}")
        if state is not _S.I:
            if self.transition_hook is not None:
                self.transition_hook(
                    self.engine.now, self.node, block, state, _S.I, "eviction"
                )
            bus = self.bus
            if bus is not None:
                bus.emit(Event(
                    self.engine.now, EventKind.STATE, self.node, block,
                    f"{state.value}->I", "eviction",
                ))
        self._mirror.pop(block, None)
        line.clear()

    # ------------------------------------------------------------------
    # Ghostwriter GI timeout
    # ------------------------------------------------------------------
    def _enter_gi(self, block: int) -> None:
        self._gi_blocks.add(block)
        if not self._gi_timer_armed:
            self._gi_timer_armed = True
            self.engine.schedule_tagged(
                self.gw.gi_timeout, self._gi_timeout_fire,
                ("gi_timer", self.node),
            )

    def _gi_timeout_fire(self) -> None:
        """Periodic controller timeout: flash-invalidate all GI blocks."""
        self._gi_timer_armed = False
        blocks, self._gi_blocks = self._gi_blocks, set()
        flashed = 0
        for block in blocks:
            line = self.array.lookup(block, touch=False)
            if line is not None and line.state is _S.GI:
                self._set_state(line, _S.I, "GI timeout")
                flashed += 1
        if flashed:
            self.stats.bulk_add("gi_timeout_invalidations", flashed)
            self.stats.bulk_add("approx_data_dropped", flashed)
        # a new timer is armed by the next GI entry

    # ------------------------------------------------------------------
    # network-facing interface
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        """Dispatch an incoming coherence message to its handler."""
        mtype = msg.mtype
        if (
            mtype is MessageType.DATA
            or mtype is MessageType.DATA_E
            or mtype is MessageType.FWD_DATA
        ):
            self._on_fill(msg)
        elif mtype is MessageType.ACK:
            self._on_ack(msg)
        elif mtype is MessageType.INV:
            self._on_inv(msg)
        elif mtype is MessageType.UPDATE:
            self._on_update(msg)
        elif mtype is MessageType.FWD_GETS or mtype is MessageType.FWD_GETX:
            self._on_fwd(msg)
        else:
            raise ProtocolError(f"L1 {self.node} cannot handle {msg}")

    # -- fills -----------------------------------------------------------
    def _on_fill(self, msg: Message) -> None:
        block = msg.block_addr
        entry = self.mshrs.get(block)
        if entry is None:
            raise ProtocolError(f"fill without MSHR: {msg}")
        line = self.array.lookup(block, touch=False)
        if line is None or not line.state.transient:
            raise ProtocolError(f"fill into non-transient line: {msg}")
        line.words = msg.words.copy()
        off = self._word_off(entry.addr)
        result: int | None
        if entry.kind is MshrKind.LOAD:
            if entry.fill_to_invalid:
                # an INV was acknowledged while we waited: consume the
                # fill once and keep the line invalid
                self._set_state(line, _S.I, "fill (use-once after INV)")
            else:
                exclusive = msg.mtype is MessageType.DATA_E
                self._set_state(
                    line, _S.E if exclusive else _S.S,
                    "fill (exclusive)" if exclusive else "fill (shared)",
                )
            result = line.words[off]
        else:
            # STORE, or an UPGRADE that was converted to a GETX by the
            # directory after our S copy was invalidated mid-flight.
            line.words[off] = entry.value
            self._set_state(line, _S.M, "fill + store")
            self._commit(line)
            result = None
        line.pinned = False
        self.mshrs.retire(block)
        self.stats.miss_latency_cycles += self.engine.now - entry.issued_at
        self._run_deferred(line, entry)
        cb = entry.on_complete
        self.engine.schedule(0, lambda: cb(result))

    def _on_ack(self, msg: Message) -> None:
        block = msg.block_addr
        entry = self.mshrs.get(block)
        if entry is not None:
            if entry.kind is not MshrKind.UPGRADE:
                raise ProtocolError(f"unexpected ACK for {entry}")
            line = self.array.lookup(block, touch=False)
            if line is None or line.state is not _S.SM_D:
                raise ProtocolError(f"ACK without SM_D line: {msg}")
            off = self._word_off(entry.addr)
            line.words[off] = entry.value
            if msg.shared:
                # write-update hybrid: the home pushed our write to the
                # surviving sharers instead of invalidating them, so the
                # grant leaves us a (coherent) sharer rather than owner
                self._set_state(line, _S.S, "upgrade granted (sharers updated)")
            else:
                self._set_state(line, _S.M, "upgrade granted")
            # an UPGRADE grant from a divergent GS copy publishes the
            # whole locally-modified block, so commit all of it
            self._commit(line)
            line.pinned = False
            self.mshrs.retire(block)
            self.stats.miss_latency_cycles += self.engine.now - entry.issued_at
            self._run_deferred(line, entry)
            cb = entry.on_complete
            self.engine.schedule(0, lambda: cb(None))
            return
        # otherwise: directory acking one of our PUTs
        queue = self._wb_buffer.get(block)
        if not queue:
            raise ProtocolError(f"ACK with no MSHR and no writeback: {msg}")
        queue.popleft()
        if not queue:
            del self._wb_buffer[block]

    # -- invalidations ----------------------------------------------------
    def _on_inv(self, msg: Message) -> None:
        block = msg.block_addr
        line = self.array.lookup(block, touch=False)
        st = self.stats
        if line is None or line.state is _S.I:
            # our PUTS/eviction raced the invalidation: ack unconditionally
            st.stray_invs += 1
        elif line.state is _S.S:
            self._set_state(line, _S.I, "invalidated")
            st.invalidations += 1
        elif line.state is _S.O:
            # MOESI: a sharer won an upgrade race; its copy is identical
            # to ours, so dropping the dirty O data is safe
            self._set_state(line, _S.I, "O invalidated by sharer upgrade")
            st.invalidations += 1
        elif line.state is _S.GS:
            if self._gs_self_invalidate:
                # self-invalidation variant: keep the (now stale) copy
                # as GI instead of dropping it — the holder reads its
                # local view until the GI timeout flash-invalidates it.
                # The INV is still acknowledged, and the directory
                # forgets us, so the demoted copy is invisible exactly
                # like any other GI block.
                self._set_state(line, _S.GI, "GS self-invalidates to GI")
                self._enter_gi(block)
                st.invalidations += 1
                st.self_invalidations += 1
            else:
                # remote conventional store reclaims the block; local
                # approximate updates are forfeited (paper 3.2/3.5)
                self._set_state(line, _S.I, "GS invalidated")
                self._note_gs_loss()
                st.invalidations += 1
        elif line.state is _S.GI:
            # the directory does not track GI copies, so this is a stale
            # invalidation from our earlier S era; drop to I conservatively
            self._set_state(line, _S.I, "stale INV on GI")
            self._gi_blocks.discard(block)
            self._note_gs_loss()
            st.stray_invs += 1
        elif line.state is _S.SM_D:
            # our UPGRADE lost the race; the directory will answer with
            # data instead of an ack
            entry = self.mshrs.get(block)
            if entry is None:
                raise ProtocolError(f"SM_D without MSHR on {msg}")
            entry.kind = MshrKind.STORE
            self._set_state(line, _S.IM_D, "INV during UPGRADE")
            st.invalidations += 1
        elif line.state is _S.IS_D:
            # Either the INV overtook our fill, or it targets a stale era
            # (we evicted and re-requested; our GETS is still queued behind
            # the invalidating transaction).  Deferring the ack can
            # deadlock the directory, so acknowledge now and downgrade the
            # eventual fill to use-once (gem5's IS_I transient): the load
            # completes with the fill data but the line installs as I.
            entry = self.mshrs.get(block)
            if entry is None:
                raise ProtocolError(f"IS_D without MSHR on {msg}")
            entry.fill_to_invalid = True
            st.deferred_invs += 1
        elif line.state is _S.IM_D:
            st.stray_invs += 1
        else:
            raise ProtocolError(f"INV in state {line.state}: {msg}")
        self._send(MessageType.INV_ACK, block, msg.src)

    def _note_gs_loss(self) -> None:
        self.stats.approx_data_dropped += 1

    # -- pushed updates (write-update hybrid) -----------------------------
    def _on_update(self, msg: Message) -> None:
        """The home pushed a freshly written block to its sharers.

        Apply it to any shared-era copy.  The home collects our INV_ACK
        before completing the update transaction, which is what makes a
        *stale* UPDATE to a live S copy impossible: any later fill we
        could have received dispatches only after that completion.  A
        copy that already left the sharer set (evicted, or re-requesting
        in IS_D/IM_D) ignores the push — the eventual fill carries
        post-update data — but still acknowledges it.
        """
        block = msg.block_addr
        line = self.array.lookup(block, touch=False)
        st = self.stats
        state = None if line is None else line.state
        if state is _S.S:
            line.words[:] = msg.words
            st.updates_applied += 1
        elif state is _S.GS:
            # a remote store reclaims the block: under the update hybrid
            # the pushed data replaces the local scribbles (re-cohered)
            line.words[:] = msg.words
            self._set_state(line, _S.S, "UPDATE re-coheres GS")
            self._note_gs_loss()
            st.updates_applied += 1
        elif state is _S.SM_D:
            # our own UPGRADE is queued at the home behind the pusher's;
            # refresh the base copy so our grant publishes current data
            line.words[:] = msg.words
            st.updates_applied += 1
        elif state in (_S.E, _S.M, _S.O):
            # cannot happen (see docstring): ownership requires a prior
            # transaction, which requires our update ack first
            raise ProtocolError(f"UPDATE to owner state {state}: {msg}")
        else:
            # I/GI/IS_D/IM_D or no tag: no longer a live sharer copy
            st.stray_updates += 1
        self._send(MessageType.INV_ACK, block, msg.src)

    # -- forwards ---------------------------------------------------------
    def _on_fwd(self, msg: Message) -> None:
        block = msg.block_addr
        line = self.array.lookup(block, touch=False)
        if line is not None and line.state is _S.SM_D:
            # MOESI: we are the O owner and our UPGRADE is queued at the
            # home *behind* the forwarded request (per-channel FIFO rules
            # out the forward overtaking a grant).  Our line still holds
            # the valid owned data, so serve now — deferring would
            # deadlock the directory against our own queued upgrade.
            self._send(MessageType.FWD_DATA, block, msg.requestor,
                       words=line.words.copy())
            if msg.mtype is MessageType.FWD_GETS:
                # we remain the (upgrading) owner
                self._send(MessageType.CHAIN_ACK_OWNED, block, msg.src)
            else:  # FWD_GETX: ownership moves; our upgrade will be
                # promoted to a GETX by the directory
                self._send(MessageType.CHAIN_ACK, block, msg.src)
                self._set_state(line, _S.IM_D, "Fwd_GETX during UPGRADE")
            self.stats.fwds_serviced += 1
            return
        if line is not None and line.state.transient:
            # forward overtook our grant/fill: service after completion
            entry = self.mshrs.get(block)
            if entry is None:
                raise ProtocolError(f"transient line without MSHR: {msg}")
            entry.deferred.append(msg)
            self.stats.deferred_fwds += 1
            return
        if line is not None and line.state in (_S.E, _S.M, _S.O):
            self._service_fwd_from_line(line, msg)
            return
        # we must have evicted: the write-back buffer retains the data
        queue = self._wb_buffer.get(block)
        if not queue:
            raise ProtocolError(
                f"L1 {self.node} got {msg.mtype.label} but owns nothing"
            )
        entry = queue[-1]
        self._send(MessageType.FWD_DATA, block, msg.requestor,
                   words=entry.words.copy())
        if msg.mtype is MessageType.FWD_GETS and entry.dirty:
            # even under MOESI: the block is evicted here, so ownership
            # cannot be retained — chain the data home instead
            self._send(MessageType.CHAIN_DATA, block, msg.src,
                       words=entry.words.copy())
        else:
            self._send(MessageType.CHAIN_ACK, block, msg.src)
        self.stats.fwds_from_wb_buffer += 1

    def _service_fwd_from_line(self, line: CacheLine, msg: Message) -> None:
        block = msg.block_addr
        dirty = line.state is _S.M or line.state is _S.O
        self._send(MessageType.FWD_DATA, block, msg.requestor,
                   words=line.words.copy())
        if msg.mtype is MessageType.FWD_GETS:
            if dirty and self._moesi:
                # MOESI: keep supplying data from O; no home writeback
                self._send(MessageType.CHAIN_ACK_OWNED, block, msg.src)
                self._set_state(line, _S.O, "kept Owned on Fwd_GETS")
            elif dirty:
                self._send(MessageType.CHAIN_DATA, block, msg.src,
                           words=line.words.copy())
                self._set_state(line, _S.S, "downgraded by Fwd_GETS")
            else:
                self._send(MessageType.CHAIN_ACK, block, msg.src)
                self._set_state(line, _S.S, "downgraded by Fwd_GETS")
        else:  # FWD_GETX
            self._send(MessageType.CHAIN_ACK, block, msg.src)
            self._set_state(line, _S.I, "invalidated by Fwd_GETX")
        self.stats.fwds_serviced += 1

    # -- deferred messages --------------------------------------------------
    def _run_deferred(self, line: CacheLine, entry: MshrEntry) -> None:
        deferred: list[Message] = entry.deferred
        for msg in deferred:
            if msg.mtype is MessageType.INV:
                if line.state in (_S.S, _S.E, _S.M, _S.GS):
                    self._set_state(line, _S.I, "deferred INV")
                self._send(MessageType.INV_ACK, msg.block_addr, msg.src)
            elif msg.mtype in (MessageType.FWD_GETS, MessageType.FWD_GETX):
                if line.state not in (_S.E, _S.M):
                    raise ProtocolError(
                        f"deferred forward in state {line.state}"
                    )
                self._service_fwd_from_line(line, msg)
            else:
                raise ProtocolError(f"cannot defer {msg}")
        deferred.clear()

    # ------------------------------------------------------------------
    # ISA hooks (setaprx / endaprx)
    # ------------------------------------------------------------------
    def flush_approx(self) -> None:
        """Context switch / join (paper 3.5): approximate blocks cannot be
        migrated, so every GS/GI line drops to I and its updates are
        forfeited.  GS lines stay on the directory's sharer list, which is
        safe: a later INV to a non-holder is acknowledged unconditionally.
        """
        flushed = 0
        for line in self.array.iter_valid():
            if line.state is _S.GS or line.state is _S.GI:
                if line.state is _S.GI:
                    self._gi_blocks.discard(line.tag)
                self._set_state(line, _S.I, "context-switch flush")
                flushed += 1
        if flushed:
            self.stats.bulk_add("approx_data_dropped", flushed)
            self.stats.bulk_add("flush_invalidations", flushed)

    def set_approx(self, d_distance: int) -> None:
        """``setaprx``: program and enable the scribe comparator."""
        if self._approx:
            self.scribe.program(d_distance)

    def end_approx(self) -> None:
        """``endaprx``: disable approximate coherence transitions."""
        self.scribe.disable()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def state_of(self, addr: int) -> CoherenceState | None:
        """Coherence state of the block holding ``addr`` (None if absent)."""
        line = self.array.lookup(self._block_base(addr), touch=False)
        return None if line is None else line.state

    def peek_word(self, addr: int) -> int | None:
        """Functional value of ``addr`` in this cache, without side effects."""
        line = self.array.lookup(self._block_base(addr), touch=False)
        if line is None or line.words is None:
            return None
        return line.words[self._word_off(addr)]

    def quiescent(self) -> bool:
        """True when no transactions or writebacks are outstanding."""
        return self.mshrs.outstanding() == 0 and not self._wb_buffer

    def wb_buffer_occupancy(self) -> dict[int, int]:
        """Blocks parked in the write-back buffer -> entry count (for the
        watchdog's diagnostic dump and the invariant monitor's skip set)."""
        return {block: len(q) for block, q in self._wb_buffer.items()}

    def wb_buffer_snapshot(self) -> dict[int, int]:
        """Deprecated alias of :meth:`wb_buffer_occupancy` — "snapshot"
        now refers to the restorable checkpoint layer."""
        import warnings

        warnings.warn(
            "L1Controller.wb_buffer_snapshot() is deprecated; use "
            "wb_buffer_occupancy() (or MachineCheckpoint for restorable "
            "state)", DeprecationWarning, stacklevel=2,
        )
        return self.wb_buffer_occupancy()

    # ------------------------------------------------------------------
    # checkpoint layer
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Restorable controller state.

        Requires :meth:`quiescent` for the MSHR file (entries hold
        ``on_complete`` closures that cannot round-trip); the write-back
        buffer *is* captured — its entries are plain data, and though a
        checkpoint safe point implies it is empty, snapshotting it keeps
        this method honest for direct unit-test use.
        """
        if self.mshrs.outstanding():
            raise CheckpointUnsupported(
                f"L1 {self.node} has outstanding MSHRs; snapshot requires "
                "a quiescent controller"
            )
        return {
            "array": self.array.snapshot(),
            "wb_buffer": {
                block: [(list(e.words), e.dirty) for e in q]
                for block, q in self._wb_buffer.items()
            },
            "gi_blocks": sorted(self._gi_blocks),
            "gi_timer_armed": self._gi_timer_armed,
            "scribe": self.scribe.snapshot(),
        }

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state.  The GI timer *event* (if armed)
        is rebuilt by the engine restore; this only restores the flag."""
        self.array.restore(blob["array"])
        self._wb_buffer = {
            block: deque(_WbEntry(list(words), dirty)
                         for words, dirty in entries)
            for block, entries in blob["wb_buffer"].items()
        }
        self._gi_blocks = set(blob["gi_blocks"])
        self._gi_timer_armed = blob["gi_timer_armed"]
        self.scribe.restore(blob["scribe"])
        self._rebuild_mirror()

    def _rebuild_mirror(self) -> None:
        """Recompute the residency mirror from the canonical array (the
        mirror is derived state and is never serialized)."""
        mirror = self._mirror
        mirror.clear()
        for line in self.array.iter_valid():
            if line.state in _MIRROR_STATES:
                idx, way = self.array.position_of(line, line.tag)
                mirror[line.tag] = (line, idx, way)
