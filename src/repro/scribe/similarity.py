"""Bit-wise value similarity (d-distance).

The paper (§2) quantifies similarity with *d-distance* [Wong et al.,
HPCA'16]: two values are *d-distance similar* when they are identical in
all bits above the ``d`` least-significant bits — equivalently, when
``x ^ y < 2**d``.  The minimal d-distance of a pair is therefore the bit
length of their XOR.

Both scalar (hot simulator path) and vectorized-numpy (trace analysis,
Fig. 2) forms are provided.  All functions operate on 32-bit *bit
patterns*; floats must be converted with :func:`float_to_bits` first, so
the hardware XNOR-comparator semantics of the paper's scribe unit are
preserved exactly (e.g. -1 vs 0 is 32-distance even though arithmetically
close — §3.4 discusses exactly this limitation).
"""
from __future__ import annotations

import struct

import numpy as np

from repro.common.types import WORD_BITS, WORD_MASK

__all__ = [
    "d_distance",
    "is_similar",
    "is_similar_arithmetic",
    "similarity_mask",
    "SIMILARITY_MASKS",
    "d_distance_array",
    "similarity_cdf",
    "float_to_bits",
    "bits_to_float",
    "int_to_bits",
    "bits_to_int",
]

#: memoized comparator masks: ``SIMILARITY_MASKS[d]`` keeps the upper
#: ``32 - d`` bits — exactly the bits the paper's XNOR comparator bank
#: (Fig. 6) compares under d-distance ``d``.  Two words are d-similar
#: iff ``(a ^ b) & SIMILARITY_MASKS[d] == 0``.  Precomputing the 33
#: masks once removes the shift + range check from the per-store path.
SIMILARITY_MASKS: tuple[int, ...] = tuple(
    WORD_MASK ^ ((1 << d) - 1) for d in range(WORD_BITS + 1)
)


def similarity_mask(d: int) -> int:
    """The memoized comparator mask for d-distance ``d`` (see
    :data:`SIMILARITY_MASKS`)."""
    if not 0 <= d <= WORD_BITS:
        raise ValueError(f"d-distance must be in [0, {WORD_BITS}], got {d}")
    return SIMILARITY_MASKS[d]


def d_distance(a: int, b: int) -> int:
    """Minimal d such that ``a`` and ``b`` are d-distance similar.

    0 means bit-identical (a silent store); 32 means the values differ in
    the most significant bit.
    """
    return ((a ^ b) & WORD_MASK).bit_length()


def is_similar(a: int, b: int, d: int) -> bool:
    """True when ``a`` and ``b`` differ only in the ``d`` low bits.

    This is the check the paper's scribe comparator performs (Fig. 6):
    the upper ``32 - d`` bits must match exactly — reference semantics
    ``((a ^ b) & WORD_MASK) >> d == 0``, realized via the memoized mask
    table (``tests/scribe/test_similarity_properties.py`` pins the two
    forms to each other).
    """
    if not 0 <= d <= WORD_BITS:
        raise ValueError(f"d-distance must be in [0, {WORD_BITS}], got {d}")
    return (a ^ b) & SIMILARITY_MASKS[d] == 0


def is_similar_arithmetic(a: int, b: int, d: int) -> bool:
    """Arithmetic-distance similarity: |a - b| < 2**d on signed values.

    The paper's §3.4 notes that bit-wise d-distance misclassifies pairs
    like -1/0 (arithmetically adjacent, 32-distance apart) and leaves
    richer comparators as future work; this is that comparator.
    """
    if not 0 <= d <= WORD_BITS:
        raise ValueError(f"d-distance must be in [0, {WORD_BITS}], got {d}")
    if d == WORD_BITS:
        return True
    sa = bits_to_int(a)
    sb = bits_to_int(b)
    return abs(sa - sb) < (1 << d)


def d_distance_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized :func:`d_distance` over uint32 arrays (for Fig. 2).

    Implemented as ``bit_length(a ^ b)`` via the exponent trick: casting
    the XOR to float64 is exact for 32-bit ints, and ``frexp`` yields the
    bit length directly — no Python-level loop.
    """
    xor = (np.asarray(a, dtype=np.uint32) ^ np.asarray(b, dtype=np.uint32))
    out = np.zeros(xor.shape, dtype=np.int64)
    nz = xor != 0
    # frexp(x) = (m, e) with x = m * 2**e, 0.5 <= m < 1  =>  e == bit_length
    _, exp = np.frexp(xor[nz].astype(np.float64))
    out[nz] = exp
    return out


def similarity_cdf(distances: np.ndarray, max_d: int = WORD_BITS) -> np.ndarray:
    """Fraction of samples with d-distance <= k for k in 0..max_d."""
    distances = np.asarray(distances)
    if distances.size == 0:
        return np.zeros(max_d + 1)
    counts = np.bincount(np.clip(distances, 0, max_d), minlength=max_d + 1)
    return np.cumsum(counts[: max_d + 1]) / distances.size


# --- bit-pattern conversions -------------------------------------------

def float_to_bits(value: float) -> int:
    """IEEE-754 binary32 bit pattern of a float (as unsigned int)."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return struct.unpack("<f", struct.pack("<I", bits & WORD_MASK))[0]


def int_to_bits(value: int) -> int:
    """Two's-complement 32-bit pattern of a (possibly negative) int."""
    if not -(2**31) <= value < 2**32:
        raise OverflowError(f"{value} does not fit in 32 bits")
    return value & WORD_MASK


def bits_to_int(bits: int) -> int:
    """Signed interpretation of a 32-bit pattern."""
    bits &= WORD_MASK
    return bits - (1 << WORD_BITS) if bits & 0x80000000 else bits
