"""The scribe comparator module of the modified cache controller (Fig. 6).

In hardware this is a bank of XNOR equality comparators sitting beside the
data RAM: on a scribble, the incoming write word (W) is compared against
the resident block word (B) under the currently-programmed d-distance, and
the ``approx`` signal enables the approximate coherence transitions.  The
module is (re)programmed by the ``setaprx`` instruction and disabled by
``endaprx``.

We model it as a small stateful object owned by each L1 controller.  It
also keeps the instrumentation the evaluation needs: a histogram of
observed store d-distances (Fig. 2) and pass/fail counts.
"""
from __future__ import annotations

from repro.common.stats import StatGroup
from repro.common.types import WORD_BITS
from repro.scribe.similarity import d_distance, is_similar, is_similar_arithmetic

__all__ = ["ScribeUnit"]


class ScribeUnit:
    """Per-L1 comparator state + instrumentation."""

    __slots__ = ("d_distance", "enabled", "mode", "stats", "_hist")

    def __init__(self, d_distance: int = 0, enabled: bool = False,
                 stats: StatGroup | None = None,
                 mode: str = "bitwise") -> None:
        if not 0 <= d_distance <= WORD_BITS:
            raise ValueError(f"d-distance out of range: {d_distance}")
        if mode not in ("bitwise", "arithmetic"):
            raise ValueError(f"unknown similarity mode {mode!r}")
        self.d_distance = d_distance
        self.enabled = enabled
        self.mode = mode
        self.stats = stats if stats is not None else StatGroup("scribe")
        self._hist = self.stats.histogram("store_d_distance")

    # -- setaprx / endaprx --------------------------------------------
    def program(self, d: int) -> None:
        """``setaprx d`` — reprogram the comparator and enable it."""
        if not 0 <= d <= WORD_BITS:
            raise ValueError(f"d-distance out of range: {d}")
        self.d_distance = d
        self.enabled = True
        self.stats.reprograms += 1

    def disable(self) -> None:
        """``endaprx`` — disable approximate transitions."""
        self.enabled = False

    # -- per-store checks ---------------------------------------------
    def observe(self, write_word: int, block_word: int) -> None:
        """Record a store's d-distance for Fig. 2 value-similarity profiling
        ("irrespective of coherence state")."""
        self._hist.add(d_distance(write_word, block_word))

    def check(self, write_word: int, block_word: int) -> bool:
        """The ``approx`` output signal: True when the scribble may be
        serviced approximately under the programmed d-distance."""
        if not self.enabled:
            return False
        if self.mode == "arithmetic":
            ok = is_similar_arithmetic(write_word, block_word,
                                       self.d_distance)
        else:
            ok = is_similar(write_word, block_word, self.d_distance)
        if ok:
            self.stats.passes += 1
        else:
            self.stats.fails += 1
        return ok
