"""The scribe comparator module of the modified cache controller (Fig. 6).

In hardware this is a bank of XNOR equality comparators sitting beside the
data RAM: on a scribble, the incoming write word (W) is compared against
the resident block word (B) under the currently-programmed d-distance, and
the ``approx`` signal enables the approximate coherence transitions.  The
module is (re)programmed by the ``setaprx`` instruction and disabled by
``endaprx``.

We model it as a small stateful object owned by each L1 controller.  It
also keeps the instrumentation the evaluation needs: a histogram of
observed store d-distances (Fig. 2) and pass/fail counts.
"""
from __future__ import annotations

from repro.common.stats import StatGroup
from repro.common.types import WORD_BITS, WORD_MASK
from repro.obs.events import Event, EventKind
from repro.scribe.similarity import is_similar_arithmetic, similarity_mask

__all__ = ["ScribeUnit"]


class ScribeUnit:
    """Per-L1 comparator state + instrumentation.

    Hot-path layout: the comparator mask for the programmed d-distance
    is memoized at (re)program time, the Fig. 2 histogram's bucket dict
    and the pass/fail counters are bound directly, so the per-store
    ``observe``/``check`` calls do one XOR + mask compare and one dict
    increment each — no attribute-protocol dispatch, no allocation.
    """

    __slots__ = ("d_distance", "enabled", "mode", "stats", "_hist",
                 "_mask", "_hist_counts", "_counters", "node", "engine",
                 "bus", "probe")

    def __init__(self, d_distance: int = 0, enabled: bool = False,
                 stats: StatGroup | None = None,
                 mode: str = "bitwise", node: int = -1,
                 engine=None) -> None:
        if not 0 <= d_distance <= WORD_BITS:
            raise ValueError(f"d-distance out of range: {d_distance}")
        if mode not in ("bitwise", "arithmetic"):
            raise ValueError(f"unknown similarity mode {mode!r}")
        self.d_distance = d_distance
        self.enabled = enabled
        self.mode = mode
        self.stats = stats if stats is not None else StatGroup("scribe")
        self._hist = self.stats.histogram("store_d_distance")
        self._hist_counts = self._hist.counts
        self._mask = similarity_mask(d_distance)
        self._counters = self.stats.counters("passes", "fails", "reprograms")
        self.node = node
        self.engine = engine
        #: event bus (repro.obs); None on the enabled-check path keeps
        #: the comparator emission to one attribute check
        self.bus = None
        #: decision-trace probe (repro.sim.batch): a list that records
        #: every comparator decision as
        #: ``(write_word, block_word, programmed_d, line_state, ok, cycle)``
        #: (cycle is -1 when no engine is attached); None keeps the hot
        #: path to a single attribute check
        self.probe = None

    # -- setaprx / endaprx --------------------------------------------
    def program(self, d: int) -> None:
        """``setaprx d`` — reprogram the comparator and enable it."""
        self._mask = similarity_mask(d)  # validates d
        self.d_distance = d
        self.enabled = True
        self._counters["reprograms"] += 1

    def disable(self) -> None:
        """``endaprx`` — disable approximate transitions."""
        self.enabled = False

    # -- per-store checks ---------------------------------------------
    def observe(self, write_word: int, block_word: int) -> None:
        """Record a store's d-distance for Fig. 2 value-similarity profiling
        ("irrespective of coherence state")."""
        self._hist_counts[
            ((write_word ^ block_word) & WORD_MASK).bit_length()
        ] += 1

    def observe_bulk(self, buckets) -> None:
        """Vectorized :meth:`observe`: fold per-bucket counts into the
        Fig. 2 histogram in one pass.

        ``buckets`` is a ``d_distance_array`` output (one d-distance per
        observed store); the fast lane hands a whole hit run's worth at
        once instead of one dict increment per store.
        """
        import numpy as np

        counts = np.bincount(buckets)
        hist = self._hist_counts
        for d, n in enumerate(counts.tolist()):
            if n:
                hist[d] += n

    def count_passes(self, n: int) -> None:
        """Vectorized pass accounting: ``n`` comparator checks passed.

        The fast lane only merges scribbles whose checks *pass* (a
        failing check is a run break executed scalar), so its bulk
        update is always on the pass counter.
        """
        self._counters["passes"] += n

    def check(self, write_word: int, block_word: int,
              block: int = -1, state=None) -> bool:
        """The ``approx`` output signal: True when the scribble may be
        serviced approximately under the programmed d-distance.

        ``state`` is the coherence state of the resident line at check
        time; it is unused by the comparator itself but recorded by the
        batch backend's decision-trace probe.
        """
        if not self.enabled:
            return False
        if self.mode == "arithmetic":
            ok = is_similar_arithmetic(write_word, block_word,
                                       self.d_distance)
        else:
            ok = (write_word ^ block_word) & self._mask == 0
        self._counters["passes" if ok else "fails"] += 1
        if self.probe is not None:
            self.probe.append(
                (write_word, block_word, self.d_distance, state, ok,
                 self.engine.now if self.engine is not None else -1)
            )
        bus = self.bus
        if bus is not None:
            bus.emit(Event(
                self.engine.now if self.engine is not None else 0,
                EventKind.SCRIBBLE, self.node, block,
                "accept" if ok else "reject", "",
                ((write_word ^ block_word) & WORD_MASK).bit_length(),
            ))
        return ok

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable comparator state (the mask is derived; the stats
        live in the machine's StatGroup tree and restore there)."""
        return {"d_distance": self.d_distance, "enabled": self.enabled}

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state without counting a reprogram."""
        self.d_distance = blob["d_distance"]
        self._mask = similarity_mask(self.d_distance)
        self.enabled = blob["enabled"]
