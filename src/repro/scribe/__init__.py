"""repro.scribe subpackage."""
