"""Ghostwriter: an approximate cache coherence protocol — reproduction.

Reproduces Kao, San Miguel & Enright Jerger, *Ghostwriter: A Cache
Coherence Protocol for Error-Tolerant Applications* (ICPP Workshops
2021) as a self-contained Python library: an execution-driven multicore
simulator with functional data, baseline MESI + the Ghostwriter GS/GI
extension, mesh NoC, energy models, the paper's benchmarks, and a
harness regenerating every table and figure.

Common entry points::

    from repro import Machine, default_config, run_pair

    cfg = default_config().with_ghostwriter(d_distance=8)
    machine = Machine(cfg)            # build your own thread programs, or
    base, gw = run_pair("jpeg", d_distance=8)   # run a paper workload

See README.md for a tour, DESIGN.md for the architecture, and
EXPERIMENTS.md for measured-vs-paper results.
"""
from repro.common.config import (
    CacheConfig,
    DramConfig,
    GhostwriterConfig,
    NocConfig,
    SimConfig,
    default_config,
    small_config,
)
from repro.common.types import AccessType, CoherenceState, MessageClass
from repro.harness.experiment import (
    experiment_config,
    run_pair,
    run_workload,
)
from repro.harness.options import RunOptions
from repro.sim.machine import Machine
from repro.workloads.alloc import SharedMemory
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.registry import ALL_WORKLOADS, PAPER_WORKLOADS, create

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimConfig", "CacheConfig", "NocConfig", "DramConfig",
    "GhostwriterConfig", "default_config", "small_config",
    "experiment_config",
    # machine & types
    "Machine", "AccessType", "CoherenceState", "MessageClass",
    # workloads
    "Workload", "WorkloadResult", "SharedMemory",
    "ALL_WORKLOADS", "PAPER_WORKLOADS", "create",
    # runners
    "run_workload", "run_pair", "RunOptions",
]
