"""Lockstep batched multi-point execution (the batch backend's engine).

A sweep grid — d-distance, GI-timeout — is many *almost identical*
simulations: every point runs the same compiled program on the same
machine, and the swept parameter reaches the simulation through exactly
two narrow interfaces:

* ``d_distance`` is consumed **only** by the scribe comparator
  (:meth:`repro.scribe.scribe_unit.ScribeUnit.check`, reached from the
  three scribble sites in :mod:`repro.cache.l1`) after the workload
  programs it via ``SetAprx``;
* ``gi_timeout`` is consumed **only** when an L1 arms the GI
  flash-invalidate timer (``L1Controller._enter_gi``).

So instead of re-interpreting every point, this module advances a whole
group of points ("lanes") in lockstep through **one** serial
*representative* run whose scribe units carry a decision-trace probe.
The probe records every comparator decision; a numpy pass over the
trace (:func:`repro.analysis.ddistance.within_distance_array` for the
bitwise mode) then *predicts* each other lane's decision at every check
at once.  A lane whose predicted decision vector equals the
representative's recorded decisions — and whose GI timeout either
matches the representative's or provably never mattered because the
timer was never armed — would have executed a bit-identical simulation,
so the representative's finished machine **is** that lane's result.
Lanes that disagree anywhere *peel*: they drop out of the batch and
recurse with a new representative, ultimately falling back to the
ordinary per-point ``Core._step`` interpreter — the same
validate-and-deoptimize shape the compiled-program layer uses inside a
single run.

Soundness of the substitution rule (why a passed prediction can never
share a wrong result): at a recorded check with programmed distance
``p``, the lane's scribe is programmed with the lane's swept value
``d_lane`` if the site's ``SetAprx`` operand was the swept parameter,
and with ``p`` itself if the operand was hardcoded.  Records with
``p != d_rep`` are necessarily hardcoded, so the lane decides exactly
as recorded.  Records with ``p == d_rep`` are predicted under
``d_lane``; if the prediction matches the recorded outcome then *both*
possible programmings agree with the representative — the swept case by
the prediction, the hardcoded-coincident case because it replays the
recorded decision verbatim.  A failed prediction at a
hardcoded-coincident site merely peels a lane that could have shared:
wasted work, never a wrong result.

The grid-level orchestration (grouping ``run_grid`` points, building
``RunRow``s, the trust-but-verify serial sample) lives in
:mod:`repro.harness.batch`; this module is the generic engine, also
driven directly by the fuzzer's batch differential
(:func:`repro.verify.fuzz.run_trace_batch`).
"""
from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.analysis.ddistance import within_distance_array
from repro.coherence.transitions import STATE_CODES, scribble_table_arrays
from repro.sim.machine import machine_hook

__all__ = [
    "DecisionTrace", "Lane", "RepRun", "probe_hook", "run_group",
    "share_split", "gi_never_armed", "classify_divergence",
]

_CODE_TO_STATE = {code: state for state, code in STATE_CODES.items()}


def probe_hook(records: list):
    """A :func:`~repro.sim.machine.machine_hook` context that attaches
    ``records`` as the decision-trace probe of every L1 scribe unit of
    machines constructed while the context is active.

    Each comparator decision appends
    ``(write_word, block_word, programmed_d, line_state, ok, cycle)``
    (older 5-tuple producers without the cycle stamp remain accepted —
    their records simply carry no fork anchor).

    Composition with the hit-run fast lane (:mod:`repro.core.hitrun`):
    the lane stays enabled under the batch backend, but an attached
    probe demotes every approximate-state scribble to a *dynamic run
    break* — the lane refuses to merge comparator checks it cannot
    replay record-for-record, so the breaking scribble executes on the
    scalar path at its scalar dispatch cycle and the probe tuples
    (values, states, ``cycle`` stamps) stay byte-identical to a
    lane-off run.  Precise-state hits before the break still vectorize.
    """
    def attach(machine) -> None:
        for l1 in machine.l1s:
            l1.scribe.probe = records

    return machine_hook(attach)


class DecisionTrace:
    """Columnar form of one run's comparator decisions at swept sites.

    Only records whose programmed distance equals ``swept_d`` (the
    representative's configured d-distance) are kept — every other
    record came from a hardcoded ``SetAprx`` operand and replays
    identically in every lane (see the module docstring's substitution
    rule).  ``decisions(d)`` re-evaluates all kept checks under an
    alternative threshold in one vector op; ``agrees(d)`` is the lane
    sharing predicate.
    """

    __slots__ = ("mode", "n_checks", "write_words", "block_words",
                 "states", "ok", "cycles", "_cache")

    def __init__(self, records: Iterable[tuple], swept_d: int,
                 mode: str = "bitwise") -> None:
        if mode not in ("bitwise", "arithmetic"):
            raise ValueError(f"unknown similarity mode {mode!r}")
        records = list(records)
        self.mode = mode
        self.n_checks = len(records)
        # records are 6-tuples (..., cycle) from the live probe, or
        # legacy 5-tuples; a missing/unknown cycle becomes -1, which
        # divergence_cycle treats as "no fork anchor"
        swept = [r for r in records if r[2] == swept_d]
        n = len(swept)
        self.write_words = np.fromiter(
            (r[0] & 0xFFFFFFFF for r in swept), dtype=np.uint32, count=n)
        self.block_words = np.fromiter(
            (r[1] & 0xFFFFFFFF for r in swept), dtype=np.uint32, count=n)
        self.states = np.fromiter(
            (STATE_CODES.get(r[3], -1) for r in swept), dtype=np.int8,
            count=n)
        self.ok = np.fromiter((r[4] for r in swept), dtype=bool, count=n)
        self.cycles = np.fromiter(
            (r[5] if len(r) > 5 else -1 for r in swept), dtype=np.int64,
            count=n)
        self._cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return int(self.ok.size)

    def decisions(self, d: int) -> np.ndarray:
        """Every kept check's outcome under threshold ``d`` (vectorized;
        bit-exact with the scalar comparator of the serial path)."""
        cached = self._cache.get(d)
        if cached is not None:
            return cached
        if self.mode == "arithmetic":
            # mirror is_similar_arithmetic: signed |a - b| < 2**d, with
            # d == 32 accepting everything
            if d >= 32:
                out = np.ones(self.ok.size, dtype=bool)
            else:
                a = self.write_words.view(np.int32).astype(np.int64)
                b = self.block_words.view(np.int32).astype(np.int64)
                out = np.abs(a - b) < (np.int64(1) << d)
        else:
            out = within_distance_array(self.write_words,
                                        self.block_words, d)
        out = np.asarray(out, dtype=bool)
        out.setflags(write=False)
        self._cache[d] = out
        return out

    def agrees(self, d: int) -> bool:
        """True when a lane with threshold ``d`` provably makes every
        comparator decision the representative made."""
        return bool(np.array_equal(self.decisions(d), self.ok))

    def divergence_cycle(self, d: int) -> int | None:
        """Cycle of the *first* comparator decision threshold ``d``
        decides differently than the representative did, or ``None``
        when the lane agrees everywhere.

        Every decision strictly before this cycle is provably identical
        under ``d`` — the fork-at-divergence anchor: a checkpoint taken
        before it is a valid starting state for the lane.  Returns
        ``-1`` when the first divergent record carries no cycle stamp
        (legacy 5-tuple probe) — callers must treat that as
        "unanchorable", not as cycle −1.
        """
        diff = self.decisions(d) != self.ok
        if not diff.any():
            return None
        return int(self.cycles[int(np.argmax(diff))])


@dataclass(frozen=True, slots=True)
class Lane:
    """One grid point's view of a lockstep group.

    ``d`` is the lane's d-distance *label* (its effective comparator
    threshold — callers only group lanes whose enablement bucket
    matches, so labels are directly comparable); ``gi`` its GI timeout;
    ``payload`` an opaque caller handle (e.g. the grid index).
    """

    d: int
    gi: int
    payload: Any = None


@dataclass(frozen=True, slots=True)
class RepRun:
    """A finished representative run: the reusable result, the config it
    ran under, and its decision trace.

    ``checkpoints`` (a :class:`repro.sim.state.CheckpointRecorder`) and
    ``records`` (the raw probe tuples) are optional fork-at-divergence
    material — absent, peeled lanes always fall back to serial runs.
    """

    result: Any          # repro.workloads.base.WorkloadResult (or similar)
    cfg: Any             # SimConfig
    trace: DecisionTrace
    checkpoints: Any = None   # CheckpointRecorder of the rep's machine
    records: Any = None       # raw probe records (6-tuples)


def gi_never_armed(stats) -> bool:
    """True when a run provably never armed the GI flash timer, making
    its result independent of ``gi_timeout``.

    ``_enter_gi`` has exactly two call sites, bumping ``gi_serviced``
    and ``self_invalidations`` respectively — both zero means the timer
    (the only ``gi_timeout`` consumer) was never scheduled.
    """
    l1 = stats.child("l1")
    return (l1.total("gi_serviced") == 0
            and l1.total("self_invalidations") == 0)


def share_split(trace: DecisionTrace, rep: Lane, lanes: Iterable[Lane], *,
                rep_armed_gi: bool) -> tuple[list[Lane], list[Lane]]:
    """Partition ``lanes`` into (shared, peeled) against a
    representative's decision trace.

    A lane shares when (a) its GI timeout matches the representative's,
    or the representative never armed the timer, and (b) its threshold
    reproduces every recorded decision (``trace.agrees``).
    """
    shared: list[Lane] = []
    peeled: list[Lane] = []
    for lane in lanes:
        if lane.gi != rep.gi and rep_armed_gi:
            peeled.append(lane)
            continue
        if lane.d == rep.d or trace.agrees(lane.d):
            shared.append(lane)
        else:
            peeled.append(lane)
    return shared, peeled


def run_group(lanes: Iterable[Lane],
              run_rep: Callable[[Lane], Any], *,
              fork: Callable[[Lane, RepRun, Lane], Any] | None = None
              ) -> Iterator[tuple[Lane, Any, list[Lane]]]:
    """The recursive representative loop over one lockstep group.

    ``run_rep(lane)`` executes a lane serially and returns a
    :class:`RepRun` (success) or anything else (failure — yielded
    through unchanged).  Yields ``(rep, outcome, shared)`` triples:
    every lane appears exactly once, either as a representative or in
    some representative's ``shared`` list.  Lanes that fail the sharing
    predicate peel back into the pool and seed the next iteration — the
    lane-level deoptimization.

    ``fork(prev_rep, prev_out, lane)`` — when given — accelerates the
    peel recursion: each round after the first may run its
    representative by *forking* the previous representative at the
    point their decisions first diverge (resuming from a checkpoint
    instead of re-simulating the common prefix).  A non-``None`` return
    must be that lane's finished outcome — a full :class:`RepRun`
    (prefix-seeded trace included) lets the forked run serve as the
    round's representative and share with its own equivalence class;
    any other outcome is yielded for the lane directly.  ``None`` falls
    back to ``run_rep`` as before.
    """
    remaining = list(lanes)
    prev: tuple[Lane, RepRun] | None = None
    while remaining:
        rep, rest = remaining[0], remaining[1:]
        out = None
        if fork is not None and prev is not None:
            out = fork(prev[0], prev[1], rep)
        if out is None:
            out = run_rep(rep)
        if not isinstance(out, RepRun):
            yield rep, out, []
            remaining = rest
            continue
        armed = not gi_never_armed(out.result.stats)
        shared, remaining = share_split(out.trace, rep, rest,
                                       rep_armed_gi=armed)
        yield rep, out, shared
        prev = (rep, out)


def classify_divergence(trace: DecisionTrace, d: int,
                        protocol: str = "ghostwriter") -> Counter:
    """Why threshold ``d`` peels from this trace, as protocol-table
    transitions.

    Maps every disagreeing check through the vectorized scribble
    next-state arrays (:func:`~repro.coherence.transitions.
    scribble_table_arrays`) and returns a Counter over
    ``(line_state, rep_next_state, lane_next_state)`` triples — empty
    when the lane shares.  States are
    :class:`~repro.common.types.CoherenceState` members (``None`` for
    checks whose recorded state was not a stable coherence state).
    """
    pred = trace.decisions(d)
    diff = pred != trace.ok
    out: Counter = Counter()
    if not diff.any():
        return out
    similar, dissimilar = scribble_table_arrays(protocol)
    states = trace.states[diff]
    valid = states >= 0
    safe = np.where(valid, states, 0)
    rep_next = np.where(trace.ok[diff], similar[safe], dissimilar[safe])
    lane_next = np.where(pred[diff], similar[safe], dissimilar[safe])
    for s, rn, ln, v in zip(states.tolist(), rep_next.tolist(),
                            lane_next.tolist(), valid.tolist()):
        if v:
            out[(_CODE_TO_STATE[s],
                 _CODE_TO_STATE.get(rn), _CODE_TO_STATE.get(ln))] += 1
        else:
            out[(None, None, None)] += 1
    return out
