"""Top-level simulated machine: wires every component together.

``Machine`` owns the engine, the functional backing store, the DRAM
model, the NoC, the L2 slices, the directory agents at the mesh corners
and one (L1, core) pair per core node, and provides the run loop plus
the post-run statistics bundle the harness consumes.

Directory nodes coincide with core tiles (corners host both an L1 and a
directory controller), so each mesh endpoint demultiplexes incoming
messages by type: requests/responses addressed to the home go to the
agent, everything else to the L1.  The two message sets are disjoint by
construction.
"""
from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.cache.l1 import L1Controller
from repro.cache.l2 import L2Slice
from repro.coherence.directory import DirectoryAgent
from repro.coherence.messages import Message, ProtocolError
from repro.common.config import SimConfig
from repro.common.stats import StatGroup
from repro.common.types import MessageType
from repro.core.core import Core
from repro.core.sync import Barrier, Lock
from repro.isa.compiled import CompiledProgram, ProgramSpec
from repro.faults.injector import FaultInjector
from repro.mem.backing import BackingStore
from repro.mem.dram import Dram
from repro.noc.network import Network
from repro.obs.events import EventBus, EventRecorder, FlightRecorder
from repro.obs.timeline import MetricsTimeline
from repro.sim.engine import Engine, SimulationError
from repro.verify.monitor import (InvariantMonitor, InvariantViolation,
                                  check_block_structure)
from repro.verify.watchdog import ProgressWatchdog, diagnostic_dump

__all__ = ["Machine", "machine_hook"]

#: construction hooks: each callable runs with the freshly-built machine
#: at the end of ``Machine.__init__`` (before any threads are bound).
#: The batch backend uses this to attach decision-trace probes to a run
#: it does not construct itself; install via :func:`machine_hook`.
_CONSTRUCTION_HOOKS: list = []


@contextmanager
def machine_hook(fn):
    """Temporarily install ``fn(machine)`` as a construction hook."""
    _CONSTRUCTION_HOOKS.append(fn)
    try:
        yield fn
    finally:
        _CONSTRUCTION_HOOKS.remove(fn)

_DIRECTORY_TYPES = frozenset(
    {
        MessageType.GETS, MessageType.GETX, MessageType.UPGRADE,
        MessageType.PUTS, MessageType.PUTE, MessageType.PUTM,
        MessageType.INV_ACK, MessageType.CHAIN_DATA, MessageType.CHAIN_ACK,
        MessageType.CHAIN_ACK_OWNED,
    }
)


class Machine:
    """A configured multicore machine ready to run thread programs."""

    def __init__(self, cfg: SimConfig) -> None:
        self.cfg = cfg
        # resolve the protocol policy exactly once (the legacy-spelling
        # shim warns per resolution) and inject it into every controller
        self.policy = cfg.policy
        self.engine = Engine()
        self.stats = StatGroup("")
        self.backing = BackingStore(cfg.block_bytes)
        self.dram = Dram(
            cfg.dram, self.engine, cfg.block_bytes, self.stats.child("dram")
        )
        self.network = Network(
            cfg.noc, self.engine, cfg.block_bytes, self.stats.child("noc")
        )
        #: the machine's route/latency model (repro.noc.topologies) —
        #: the same memoized instance the network resolved from cfg.noc
        self.topology = self.network.topo
        self.l2_slices = [
            L2Slice(node, cfg.l2, self.stats.child("l2").child(f"slice{node}"))
            for node in range(cfg.num_cores)
        ]
        self.agents: dict[int, DirectoryAgent] = {
            node: DirectoryAgent(
                node, cfg, self.engine, self.network, self.l2_slices,
                self.backing, self.dram,
                self.stats.child("dir").child(f"d{node}"),
                policy=self.policy,
            )
            for node in cfg.noc.directory_nodes
        }
        self.l1s = [
            L1Controller(
                node, cfg, self.engine, self.network,
                self.stats.child("l1").child(f"c{node}"),
                policy=self.policy,
            )
            for node in range(cfg.num_cores)
        ]
        self.cores: list[Core | None] = [None] * cfg.num_cores
        # creation-order sync-object tables: compiled programs reference
        # barriers/locks as ("kind", creation index), which these resolve
        # (creation order is deterministic for a given workload build)
        self._barriers: list[Barrier] = []
        self._locks: list[Lock] = []
        for node in range(cfg.noc.num_nodes):
            self.network.register(node, self._make_endpoint(node))
        # verification-and-faults layer (all off by default; see
        # VerifyConfig / FaultConfig)
        self.monitor: InvariantMonitor | None = None
        if cfg.verify.monitor_period:
            self.monitor = InvariantMonitor(
                self, cfg.verify.monitor_period,
                check_values=cfg.verify.check_values,
                policy=cfg.faults.policy,
            )
        self.watchdog: ProgressWatchdog | None = None
        if cfg.verify.watchdog_interval:
            self.watchdog = ProgressWatchdog(
                self, cfg.verify.watchdog_interval, cfg.verify.watchdog_stalls
            )
        self.injector: FaultInjector | None = None
        if cfg.faults.active:
            self.injector = FaultInjector(self, cfg.faults)
        # observability layer (all off by default; see ObsConfig)
        self.bus: EventBus | None = None
        self.recorder: EventRecorder | None = None
        self.flight: FlightRecorder | None = None
        self.timeline: MetricsTimeline | None = None
        obs = cfg.obs
        if obs.bus_active:
            bus = self.attach_bus()
            if obs.trace_events:
                self.recorder = EventRecorder()
                bus.subscribe(self.recorder.record)
            if obs.flight_depth:
                self.flight = FlightRecorder(obs.flight_depth)
                bus.subscribe(self.flight.record)
        if obs.timeline_interval:
            self.timeline = MetricsTimeline(self, obs.timeline_interval)
        # checkpoint layer (off by default; see VerifyConfig)
        self.checkpoint_recorder = None
        if cfg.verify.checkpoint_period:
            from repro.sim.state import CheckpointRecorder  # avoid cycle

            self.checkpoint_recorder = CheckpointRecorder(
                cfg.verify.checkpoint_period
            )
        self._ran = False
        for hook in _CONSTRUCTION_HOOKS:
            hook(self)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_bus(self) -> EventBus:
        """Fetch-or-create the machine's event bus and wire it into every
        emitting component (idempotent).  Consumers — recorders, the
        flight ring, test probes — subscribe to the returned bus."""
        if self.bus is None:
            self.bus = EventBus()
            self.network.bus = self.bus
            for l1 in self.l1s:
                l1.bus = self.bus
                l1.scribe.bus = self.bus
            for slc in self.l2_slices:
                slc.bus = self.bus
                slc.engine = self.engine
            for agent in self.agents.values():
                agent.bus = self.bus
        return self.bus

    # ------------------------------------------------------------------
    def _make_endpoint(self, node: int):
        agent = self.agents.get(node)
        l1 = self.l1s[node] if node < self.cfg.num_cores else None

        def dispatch(msg: Message) -> None:
            if msg.mtype in _DIRECTORY_TYPES:
                if agent is None:
                    raise ProtocolError(f"no directory at node {node}: {msg}")
                agent.receive(msg)
            else:
                if l1 is None:
                    raise ProtocolError(f"no L1 at node {node}: {msg}")
                l1.receive(msg)

        return dispatch

    # ------------------------------------------------------------------
    # program setup
    # ------------------------------------------------------------------
    def add_thread(
        self, core_id: int,
        program: "Iterator | ProgramSpec | CompiledProgram",
    ) -> Core:
        """Bind a thread program to a core (one program per core).

        Accepts a plain op generator, a pre-lowered
        :class:`~repro.isa.compiled.CompiledProgram`, or a
        :class:`~repro.isa.compiled.ProgramSpec` (factory + program-cache
        slot — the form :meth:`repro.workloads.base.Workload.bind_program`
        produces).  With ``cfg.compile_programs`` off, a spec is unwrapped
        to its generator so the machine runs the legacy path.
        """
        if not 0 <= core_id < self.cfg.num_cores:
            raise ValueError(f"core {core_id} out of range")
        if self.cores[core_id] is not None:
            raise ValueError(f"core {core_id} already has a thread")
        if isinstance(program, ProgramSpec) and not self.cfg.compile_programs:
            program = program.factory()
        core = Core(
            core_id, self.engine, self.l1s[core_id], program,
            self.stats.child("core").child(f"c{core_id}"),
            quantum=self.cfg.core_quantum,
            sync_tables=(self._barriers, self._locks),
        )
        self.cores[core_id] = core
        return core

    def barrier(self, parties: int) -> Barrier:
        """A scheduler-level barrier bound to this machine's engine."""
        b = Barrier(self.engine, parties)
        self._barriers.append(b)
        return b

    def lock(self) -> Lock:
        """A scheduler-level FIFO mutex bound to this machine's engine."""
        lk = Lock(self.engine)
        self._locks.append(lk)
        return lk

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 500_000_000) -> int:
        """Start every bound core and drain the event queue.

        Returns the cycle at which the last event executed.  Raises if a
        core never finished (protocol deadlock or malformed program).
        With ``cfg.verify.checkpoint_period`` set, the queue is drained
        in period-sized windows and a :class:`~repro.sim.state.
        MachineCheckpoint` is captured at every safe window boundary;
        fatal simulation errors then carry the most recent checkpoint on
        their ``.checkpoint`` attribute.
        """
        if self._ran:
            raise SimulationError("Machine.run() may only be called once")
        self._ran = True
        active = [c for c in self.cores if c is not None]
        if not active:
            raise SimulationError("no thread programs bound")
        self.engine.timeout_hook = self._timeout_context
        if self.monitor is not None:
            self.monitor.start()
        if self.watchdog is not None:
            self.watchdog.start()
        if self.injector is not None:
            self.injector.start()
        if self.timeline is not None:
            self.timeline.start()
        for core in active:
            core.start()
        try:
            end = self._drain(max_cycles)
            return self._finalize(active, end)
        except (SimulationError, InvariantViolation) as exc:
            self._attach_checkpoint(exc)
            raise

    def resume(self, max_cycles: int = 500_000_000) -> int:
        """Drain the queue of a machine re-animated from a checkpoint.

        The restored event queue already carries every pending service
        and core-step event, so unlike :meth:`run` nothing is started —
        execution simply continues from the checkpoint cycle.  Callable
        exactly once, in place of :meth:`run`.
        """
        if self._ran:
            raise SimulationError(
                "Machine.resume() on a machine that already ran")
        self._ran = True
        active = [c for c in self.cores if c is not None]
        if not active:
            raise SimulationError("no thread programs bound")
        self.engine.timeout_hook = self._timeout_context
        try:
            end = self._drain(max_cycles)
            return self._finalize(active, end)
        except (SimulationError, InvariantViolation) as exc:
            self._attach_checkpoint(exc)
            raise

    #: after an unsafe window boundary, keep trying for this many more
    #: cycle-batches before giving the window up — misses cluster, so a
    #: safe point is often a handful of cycles past the boundary
    _SAFE_POINT_SEARCH = 32

    def _drain(self, max_cycles: int) -> int:
        """Drain the event queue, checkpointing at safe window
        boundaries when a recorder is attached.

        Pausing between cycle batches never reorders events, so the
        chunked drain is bit-identical to ``Engine.run`` — checkpoints
        only change *where the simulator looks*, not what it executes.
        """
        rec = self.checkpoint_recorder
        eng = self.engine
        if rec is None:
            return eng.run(max_cycles=max_cycles)
        queue = eng._queue
        while queue:
            nxt = queue[0][0]
            if nxt > max_cycles:
                # delegate so the timeout message (and its diagnostics)
                # is byte-identical to the unchunked path
                return eng.run(max_cycles=max_cycles)
            period = rec.period  # re-read: adaptive recorders grow it
            cap = min(((nxt // period) + 1) * period, max_cycles)
            eng.run_until(cap, advance_clock=False)
            tries = self._SAFE_POINT_SEARCH
            while queue and queue[0][0] <= max_cycles:
                if rec.maybe_capture(self) is not None or tries == 0:
                    break
                tries -= 1
                eng.run_until(queue[0][0], advance_clock=False)
        return eng.now

    def _finalize(self, active: list[Core], end: int) -> int:
        """Post-drain bookkeeping shared by :meth:`run`/:meth:`resume`."""
        for core in active:
            if not core.done:
                raise SimulationError(
                    f"core {core.cid} never finished (deadlock?)\n"
                    + diagnostic_dump(self)
                )
        if self.timeline is not None:
            self.timeline.finish()
        self.network.finalize_stats()
        self.stats.total_cycles = end
        return end

    def _attach_checkpoint(self, exc: BaseException) -> None:
        """Attach the most recent checkpoint to a fatal error (when a
        recorder is armed and the error does not already carry one)."""
        if (self.checkpoint_recorder is not None
                and getattr(exc, "checkpoint", None) is None):
            exc.checkpoint = self.checkpoint_recorder.latest()

    def _timeout_context(self) -> str:
        """Context appended to SimulationTimeout messages: per-core finish
        status plus the full diagnostic dump."""
        status = ", ".join(
            f"core {c.cid}: "
            + (f"done @ {c.finish_cycle}" if c.done else "UNFINISHED")
            for c in self.cores if c is not None
        )
        return f"core status: [{status}]\n{diagnostic_dump(self)}"

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Current simulated cycle."""
        return self.engine.now

    def core_finish_cycles(self) -> list[int]:
        """Finish cycle of every bound core (post-run)."""
        return [
            c.finish_cycle for c in self.cores
            if c is not None and c.finish_cycle is not None
        ]

    def check_quiescent(self) -> None:
        """Post-run invariant: no outstanding transactions anywhere."""
        for l1 in self.l1s:
            if not l1.quiescent():
                raise ProtocolError(f"L1 {l1.node} not quiescent after run")
        for agent in self.agents.values():
            if not agent.quiescent():
                raise ProtocolError(f"directory {agent.node} not quiescent")

    def check_coherence_invariants(self) -> None:
        """Structural protocol invariants, checkable whenever the system
        is quiescent (see :func:`repro.verify.monitor.check_block_structure`
        for the invariant list — the runtime monitor applies the same
        checks mid-run, restricted to block-quiescent blocks).  When a
        runtime monitor is attached, its data-value invariant runs too.
        """
        from repro.common.types import CoherenceState as CS

        holders: dict[int, dict[int, CS]] = {}
        for l1 in self.l1s:
            for line in l1.array.iter_valid():
                if line.state is not CS.I:
                    holders.setdefault(line.tag, {})[l1.node] = line.state

        for block, by_node in holders.items():
            check_block_structure(self, block, by_node)
        if self.monitor is not None:
            self.monitor.check()
