"""repro.sim subpackage."""
