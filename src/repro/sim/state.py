"""Unified snapshotable machine state: whole-machine checkpoint/restore.

Every stateful component exposes the same two-method surface —
``snapshot() -> StateBlob`` returning plain picklable data, and
``restore(blob)`` adopting it — and this module composes them into one
:class:`MachineCheckpoint`: engine clock + tagged event queue, cores,
L1/L2 arrays and write-back buffers, directory entries, DRAM bank
timing, backing memory, NoC counters, scribe programming, sync objects,
fault-injector RNG stream, and the full :class:`~repro.common.stats`
counter tree.

**Safe points.**  Most event-queue entries are anonymous closures (an
in-flight coherence transaction's continuation) that cannot be rebuilt
from data.  A checkpoint is therefore only capturable at a *safe point*:
every queued event carries a restorable tag (see
``Engine.schedule_tagged``), the NoC has nothing in flight, every L1 has
no outstanding MSHR, and every directory agent is quiescent.  Any
component that is mid-transaction raises
:class:`~repro.sim.engine.CheckpointUnsupported`; the
:class:`CheckpointRecorder` treats that as "try again at the next
boundary", never as an error.  Untagged events *block* capture by
construction, so a newly added periodic service that forgets to tag
itself degrades checkpointing gracefully instead of corrupting it.

**Fingerprints.**  Each checkpoint is stamped with a BLAKE2b digest of
the machine's observable state (every counter, the backing-memory image,
each L1's canonical array arrays) — the same payload the protocol
fuzzer's differential oracle compares — so a restore can be verified and
two machines can be compared for bit-identity in O(1).

Layering: this module knows only the duck-typed component surface; it
never imports :mod:`repro.sim.machine` (the machine lazily imports the
recorder instead), so there is no import cycle.
"""
from __future__ import annotations

import argparse
import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

from repro.sim.engine import CheckpointUnsupported

__all__ = [
    "StateBlob", "Snapshotable", "CheckpointUnsupported",
    "fingerprint_payload", "machine_fingerprint",
    "MachineCheckpoint", "CheckpointRecorder",
]

#: every component snapshot is a plain dict of picklable builtins
StateBlob = dict


@runtime_checkable
class Snapshotable(Protocol):
    """The uniform two-method surface every stateful component exposes."""

    def snapshot(self) -> StateBlob:
        """Restorable copy of all mutable state, as picklable builtins
        and numpy arrays (never aliasing live state)."""
        ...

    def restore(self, blob: StateBlob) -> None:
        """Adopt a :meth:`snapshot` blob, leaving this component
        bit-identical to the captured one; never mutates ``blob``."""
        ...


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def fingerprint_payload(machine) -> dict:
    """Complete observable state of a machine: every counter, the
    backing-memory image, and each L1's canonical array snapshot
    (:meth:`repro.cache.sram.CacheArray.state_arrays`).

    This is the payload the fuzzer's differential oracle compares
    field-by-field; :func:`machine_fingerprint` folds it into one hash.
    """
    from repro.coherence.transitions import STATE_CODES

    caches = []
    for l1 in machine.l1s:
        tags, states, words = l1.array.state_arrays(
            lambda s: STATE_CODES.get(s, -1))
        caches.append((tags.tobytes(), states.tobytes(), words.tobytes()))
    return {
        "stats": machine.stats.flatten(),
        "memory": machine.backing.memory_image(),
        "caches": caches,
    }


def machine_fingerprint(machine) -> str:
    """BLAKE2b hex digest over the canonically-ordered
    :func:`fingerprint_payload` — equal digests ⇔ bit-identical
    observable machines."""
    payload = fingerprint_payload(machine)
    h = hashlib.blake2b(digest_size=16)
    for name, value in sorted(payload["stats"].items()):
        h.update(name.encode())
        h.update(b"=")
        h.update(repr(value).encode())
        h.update(b";")
    for addr in sorted(payload["memory"]):
        h.update(repr((addr, payload["memory"][addr])).encode())
    for tags_b, states_b, words_b in payload["caches"]:
        h.update(tags_b)
        h.update(states_b)
        h.update(words_b)
    return h.hexdigest()


# ----------------------------------------------------------------------
# tag resolution
# ----------------------------------------------------------------------
def _resolve_tag(machine, tag: tuple):
    """Map a restorable event tag back to a live callback on ``machine``.

    The tag inventory (one entry per ``schedule_tagged`` call site):

    ========================  =========================================
    ``("core_step", cid)``    ``machine.cores[cid]._step``
    ``("gi_timer", node)``    ``machine.l1s[node]._gi_timeout_fire``
    ``("monitor",)``          ``machine.monitor._fire``
    ``("watchdog",)``         ``machine.watchdog._fire``
    ``("timeline",)``         ``machine.timeline._fire``
    ``("flip_lottery",)``     ``machine.injector._flip_lottery``
    ========================  =========================================
    """
    kind = tag[0]
    if kind == "core_step":
        core = machine.cores[tag[1]]
        if core is None:
            raise ValueError(f"checkpoint event for unbound core {tag[1]}")
        return core._step
    if kind == "gi_timer":
        return machine.l1s[tag[1]]._gi_timeout_fire
    if kind == "monitor":
        if machine.monitor is None:
            raise ValueError("checkpoint has monitor events but the "
                             "machine has no invariant monitor")
        return machine.monitor._fire
    if kind == "watchdog":
        if machine.watchdog is None:
            raise ValueError("checkpoint has watchdog events but the "
                             "machine has no watchdog")
        return machine.watchdog._fire
    if kind == "timeline":
        if machine.timeline is None:
            raise ValueError("checkpoint has timeline events but the "
                             "machine has no metrics timeline")
        return machine.timeline._fire
    if kind == "flip_lottery":
        if machine.injector is None:
            raise ValueError("checkpoint has fault-lottery events but "
                             "the machine has no fault injector")
        return machine.injector._flip_lottery
    raise ValueError(f"unknown checkpoint event tag {tag!r}")


#: optional per-service components, in capture order: (blob key,
#: machine attribute).  Presence must match between checkpoint and
#: machine — a config mismatch fails loudly at restore time.
_OPTIONAL_SERVICES = (
    ("monitor", "monitor"),
    ("watchdog", "watchdog"),
    ("injector", "injector"),
    ("timeline", "timeline"),
)


# ----------------------------------------------------------------------
# the checkpoint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineCheckpoint:
    """One restorable whole-machine state, stamped and fingerprinted.

    ``blob`` maps component names to their :meth:`snapshot` output; the
    engine blob additionally carries the tagged event queue.  Capture
    with :meth:`capture`, re-animate with :meth:`restore_into`, persist
    with :meth:`save`/:meth:`load` (pickle, or ``.npz``-wrapped pickle
    when the path ends in ``.npz``).
    """

    cycle: int
    fingerprint: str
    blob: StateBlob

    # -- capture -------------------------------------------------------
    @classmethod
    def capture(cls, machine) -> "MachineCheckpoint":
        """Snapshot every component of ``machine`` at the current cycle.

        Raises :class:`CheckpointUnsupported` when the machine is not at
        a safe point (untagged queued event, in-flight NoC message,
        outstanding MSHR, busy directory entry, or a core state the
        program layer cannot rebuild).
        """
        # cheap O(components) precheck before any state is copied —
        # the recorder probes unsafe boundaries far more often than it
        # captures, so rejection must not cost a memory-image copy
        if not machine.engine.all_tagged():
            raise CheckpointUnsupported("untagged event in queue")
        if machine.network.in_flight():
            raise CheckpointUnsupported("NoC message in flight")
        for l1 in machine.l1s:
            if l1.mshrs.outstanding():
                raise CheckpointUnsupported(f"L1 {l1.node} has MSHRs")
        for agent in machine.agents.values():
            if not agent.quiescent():
                raise CheckpointUnsupported(f"directory {agent.node} busy")
        blob: StateBlob = {
            "engine": machine.engine.snapshot(),
            "network": machine.network.snapshot(),
            "l1s": [l1.snapshot() for l1 in machine.l1s],
            "dirs": {node: agent.snapshot()
                     for node, agent in machine.agents.items()},
            "l2": [slc.snapshot() for slc in machine.l2_slices],
            "dram": machine.dram.snapshot(),
            "memory": machine.backing.memory_image(),
            "cores": {cid: core.snapshot()
                      for cid, core in enumerate(machine.cores)
                      if core is not None},
            "barriers": [b.snapshot() for b in machine._barriers],
            "locks": [lk.snapshot() for lk in machine._locks],
            "stats": machine.stats.snapshot(),
        }
        for key, attr in _OPTIONAL_SERVICES:
            component = getattr(machine, attr)
            if component is not None:
                blob[key] = component.snapshot()
        return cls(
            cycle=machine.engine.now,
            fingerprint=machine_fingerprint(machine),
            blob=blob,
        )

    # -- restore -------------------------------------------------------
    def restore_into(self, machine, verify: bool = False) -> None:
        """Adopt this checkpoint's state on ``machine``.

        The machine must be *shape-compatible*: built from the same
        config and the same deterministic workload build (same cores
        bound, same sync objects created in the same order) — the
        program layer replays generators from the workload's own
        factories, so a mismatched build fails loudly.  With
        ``verify=True`` the restored machine's fingerprint is checked
        against the captured one.
        """
        blob = self.blob
        if len(blob["l1s"]) != len(machine.l1s):
            raise ValueError(
                f"checkpoint has {len(blob['l1s'])} L1s, "
                f"machine has {len(machine.l1s)}")
        if set(blob["dirs"]) != set(machine.agents):
            raise ValueError(
                f"checkpoint directory nodes {sorted(blob['dirs'])} != "
                f"machine directory nodes {sorted(machine.agents)}")
        if len(blob["l2"]) != len(machine.l2_slices):
            raise ValueError("checkpoint/machine L2 slice count mismatch")
        bound = {cid for cid, c in enumerate(machine.cores) if c is not None}
        if set(blob["cores"]) != bound:
            raise ValueError(
                f"checkpoint cores {sorted(blob['cores'])} != "
                f"machine's bound cores {sorted(bound)}")
        if (len(blob["barriers"]) != len(machine._barriers)
                or len(blob["locks"]) != len(machine._locks)):
            raise ValueError("checkpoint/machine sync-object mismatch "
                             "(different workload build?)")
        for key, attr in _OPTIONAL_SERVICES:
            if (key in blob) != (getattr(machine, attr) is not None):
                raise ValueError(
                    f"checkpoint/machine {key} presence mismatch "
                    "(different verify/faults/obs config?)")

        machine.network.restore(blob["network"])
        for l1, sub in zip(machine.l1s, blob["l1s"]):
            l1.restore(sub)
        for node, sub in blob["dirs"].items():
            machine.agents[node].restore(sub)
        for slc, sub in zip(machine.l2_slices, blob["l2"]):
            slc.restore(sub)
        machine.dram.restore(blob["dram"])
        machine.backing.restore(blob["memory"])
        for cid, sub in blob["cores"].items():
            machine.cores[cid].restore(sub)

        def wake_for(owner: int):
            return machine.cores[owner]._wake

        for barrier, sub in zip(machine._barriers, blob["barriers"]):
            barrier.restore(sub, wake_for)
        for lock, sub in zip(machine._locks, blob["locks"]):
            lock.restore(sub, wake_for)
        machine.stats.restore(blob["stats"])
        for key, attr in _OPTIONAL_SERVICES:
            if key in blob:
                getattr(machine, attr).restore(blob[key])
        # the engine goes last: tag resolution needs every component
        # above already re-animated (core _step closures, GI timers)
        machine.engine.restore(
            blob["engine"], lambda tag: _resolve_tag(machine, tag))

        if verify:
            got = machine_fingerprint(machine)
            if got != self.fingerprint:
                raise ValueError(
                    f"restored machine fingerprint {got} does not match "
                    f"checkpoint fingerprint {self.fingerprint}")

    # -- persistence ---------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist to ``path``.  Plain pickle by default; a ``.npz``
        suffix wraps the pickled bytes in a compressed numpy archive
        (key ``checkpoint``) for parity with the trace/timeline
        formats."""
        path = Path(path)
        payload = pickle.dumps(
            {"cycle": self.cycle, "fingerprint": self.fingerprint,
             "blob": self.blob},
            protocol=pickle.HIGHEST_PROTOCOL)
        if path.suffix == ".npz":
            import numpy as np
            np.savez_compressed(
                path, checkpoint=np.frombuffer(payload, dtype=np.uint8))
        else:
            path.write_bytes(payload)

    @classmethod
    def load(cls, path: str | Path) -> "MachineCheckpoint":
        """Load a checkpoint saved with :meth:`save`."""
        path = Path(path)
        if path.suffix == ".npz":
            import numpy as np
            with np.load(path) as data:
                payload = data["checkpoint"].tobytes()
        else:
            payload = path.read_bytes()
        raw = pickle.loads(payload)
        return cls(cycle=raw["cycle"], fingerprint=raw["fingerprint"],
                   blob=raw["blob"])


# ----------------------------------------------------------------------
# the recorder
# ----------------------------------------------------------------------
class CheckpointRecorder:
    """Collects periodic checkpoints while ``Machine.run`` drains the
    queue in ``period``-cycle windows (see ``VerifyConfig.
    checkpoint_period``).

    The machine calls :meth:`maybe_capture` at each window boundary; a
    boundary that is not a safe point is *skipped* (counted in
    :attr:`skipped`), never fatal — transient unsafe states (a core
    blocked mid-miss across the boundary) simply thin the checkpoint
    stream.  ``max_keep`` bounds memory by dropping the oldest.

    ``growth > 0`` makes the window adaptive: after each capture the
    period grows to ``now // growth``, so checkpoint spacing stays
    proportional to elapsed time (a geometric train, ~``growth``
    checkpoints per doubling of the run length).  Short runs get anchors
    a few hundred cycles apart while multi-million-cycle runs pay for
    only a few dozen captures — the shape the batch backend's
    fork-at-divergence wants, where the run length is unknown up
    front."""

    def __init__(self, period: int, max_keep: int | None = None,
                 growth: int = 0) -> None:
        if period < 1:
            raise ValueError("checkpoint period must be >= 1 cycle")
        if max_keep is not None and max_keep < 1:
            raise ValueError("max_keep must be >= 1")
        if growth < 0:
            raise ValueError("growth must be >= 0")
        self.period = period
        self._base_period = period
        self.growth = growth
        self.max_keep = max_keep
        self.checkpoints: list[MachineCheckpoint] = []
        #: capture attempts that found the machine unsafe (the machine
        #: retries a few cycle-batches past each boundary, so this
        #: counts attempts, not window boundaries)
        self.skipped = 0

    def __len__(self) -> int:
        return len(self.checkpoints)

    def maybe_capture(self, machine) -> MachineCheckpoint | None:
        """Capture if the machine is at a safe point; None otherwise."""
        if (self.checkpoints
                and self.checkpoints[-1].cycle == machine.engine.now):
            return None  # nothing executed since the last capture
        try:
            ckpt = MachineCheckpoint.capture(machine)
        except CheckpointUnsupported:
            self.skipped += 1
            return None
        self.checkpoints.append(ckpt)
        if self.max_keep is not None and len(self.checkpoints) > self.max_keep:
            del self.checkpoints[0]
        if self.growth:
            self.period = max(self._base_period,
                              machine.engine.now // self.growth)
        return ckpt

    def latest(self) -> MachineCheckpoint | None:
        """Most recent checkpoint, or None."""
        return self.checkpoints[-1] if self.checkpoints else None

    def latest_before(self, cycle: int) -> MachineCheckpoint | None:
        """Most recent checkpoint captured strictly before ``cycle``."""
        best = None
        for ckpt in self.checkpoints:
            if ckpt.cycle < cycle:
                best = ckpt
            else:
                break
        return best


# ----------------------------------------------------------------------
# CLI: run a workload with checkpointing armed and dump the result
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """``python -m repro.sim.state --workload histogram
    --dump-checkpoint ckpt.npz`` — run a workload with periodic
    checkpointing and save the last safe-point checkpoint."""
    from dataclasses import replace

    from repro.harness.experiment import experiment_config
    from repro.workloads.registry import create

    ap = argparse.ArgumentParser(
        description="Run one workload with checkpointing armed and dump "
                    "the most recent safe-point checkpoint.")
    ap.add_argument("--workload", required=True)
    ap.add_argument("--dump-checkpoint", required=True, metavar="PATH",
                    help="output path (.npz wraps pickle in numpy)")
    ap.add_argument("--d-distance", type=int, default=4)
    ap.add_argument("--num-threads", type=int, default=8)
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument("--seed", type=int, default=12345)
    ap.add_argument("--checkpoint-period", type=int, default=50_000)
    ap.add_argument("--protocol", default=None)
    ap.add_argument("--topology", default=None)
    args = ap.parse_args(argv)

    cfg = experiment_config(
        enabled=args.d_distance > 0,
        d_distance=max(args.d_distance, 1),
        num_cores=args.num_threads,
        protocol=args.protocol,
        topology=args.topology,
    )
    cfg = replace(cfg, verify=replace(
        cfg.verify, checkpoint_period=args.checkpoint_period))
    workload = create(args.workload, num_threads=args.num_threads,
                      d_distance=args.d_distance, seed=args.seed,
                      scale=args.scale)
    machine = workload.prepare(cfg)
    machine.run()
    workload.collect(machine, cfg)
    rec = machine.checkpoint_recorder
    ckpt = rec.latest()
    if ckpt is None:
        print(f"no safe-point checkpoint captured "
              f"({rec.skipped} boundaries skipped); try a smaller "
              f"--checkpoint-period")
        return 1
    ckpt.save(args.dump_checkpoint)
    print(f"checkpoint @ cycle {ckpt.cycle} "
          f"(fingerprint {ckpt.fingerprint}, "
          f"{len(rec)} kept / {rec.skipped} skipped) "
          f"-> {args.dump_checkpoint}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
