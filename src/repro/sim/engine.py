"""Deterministic discrete-event simulation kernel.

A single binary-heap event queue keyed by ``(cycle, seq)``; ``seq`` is a
monotonically increasing tie-breaker so same-cycle events fire in the
order they were scheduled, which makes every run bit-reproducible.

The engine knows nothing about caches or cores — components schedule
callbacks.  Long runs are bounded by ``max_cycles`` (deadlock insurance);
exceeding it raises :class:`SimulationTimeout` rather than spinning.
"""
from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["Engine", "SimulationTimeout", "SimulationError",
           "CheckpointUnsupported"]


class SimulationError(RuntimeError):
    """Generic fatal simulator condition.

    When the failing machine had a checkpoint recorder attached,
    ``Machine.run`` sets :attr:`checkpoint` to the most recent
    :class:`~repro.sim.state.MachineCheckpoint` before re-raising, so
    the failure window can be replayed from just before it."""

    checkpoint = None


class SimulationTimeout(SimulationError):
    """The event queue outlived ``max_cycles`` — almost always a protocol
    deadlock or a thread program that never finishes."""


class CheckpointUnsupported(SimulationError):
    """The machine is not at a state the checkpoint layer can capture —
    e.g. the event queue holds an untagged closure (an in-flight
    coherence transaction's continuation).  Callers treat this as "not a
    safe point" and try again later, never as a fatal error."""


class Engine:
    """Minimal event-driven scheduler with a global cycle clock."""

    __slots__ = ("_queue", "_seq", "now", "events_executed", "_running",
                 "timeout_hook", "run_limit", "until_active", "_merged")

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self.events_executed = 0
        self._running = False
        #: optional context provider appended to timeout diagnostics —
        #: the machine installs one reporting per-core finish status
        self.timeout_hook: Callable[[], str] | None = None
        #: the active run()'s max_cycles bound; the hit-run fast lane
        #: refuses to merge a step past it so the timeout fires at the
        #: same cycle as scalar execution
        self.run_limit: int | None = None
        #: True while run_until() is dispatching.  Bounded windows place
        #: an implicit event horizon at the cap cycle that the fast
        #: lane's queue peek cannot see, so the lane disables itself
        #: whenever this is set (checkpoint recorder, drain windows).
        self.until_active = False
        self._merged = 0

    def absorb_merged_events(self, n: int) -> None:
        """Account for ``n`` events executed vectorially, not via the queue.

        The hit-run fast lane collapses a chain of ``n + 1`` core-step
        events into one vector application plus one real scheduled
        event.  Bumping ``_seq`` and the merged-event counter here keeps
        ``snapshot()``'s seq and ``events_executed`` — and therefore
        checkpoint fingerprints — bit-identical to scalar execution.
        """
        self._seq += n
        self._merged += n

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))

    def schedule_at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute cycle (>= now)."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule at absolute cycle {cycle}: it is in the "
                f"past (current cycle is {self.now})"
            )
        self.schedule(cycle - self.now, callback)

    # -- tagged scheduling (checkpoint layer) -------------------------
    # Tagged events carry a picklable identity alongside the callback so
    # the queue can round-trip through a checkpoint: snapshot() stores
    # (cycle, seq, tag), restore() re-binds each tag to a fresh callback.
    # Kept as separate methods (a 4th tuple element, not a kwarg on
    # schedule()) so the untagged hot path stays byte-identical; mixed
    # 3-/4-tuples coexist safely in the heap because seq is unique and
    # tuple comparison never reaches the callback slot.

    def schedule_tagged(self, delay: int, callback: Callable[[], None],
                        tag: tuple) -> None:
        """:meth:`schedule`, with a restorable identity for ``callback``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue,
                       (self.now + delay, self._seq, callback, tag))

    def schedule_at_tagged(self, cycle: int, callback: Callable[[], None],
                           tag: tuple) -> None:
        """:meth:`schedule_at`, with a restorable identity."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule at absolute cycle {cycle}: it is in the "
                f"past (current cycle is {self.now})"
            )
        self.schedule_tagged(cycle - self.now, callback, tag)

    def all_tagged(self) -> bool:
        """True when every queued event carries a restorable tag."""
        return all(len(ev) == 4 for ev in self._queue)

    def snapshot(self) -> dict:
        """Restorable queue state: clock, seq counter, tagged events.

        Raises :class:`CheckpointUnsupported` if any queued event is an
        anonymous closure (untagged) — those are in-flight transaction
        continuations the checkpoint layer cannot rebuild.
        """
        events = []
        for ev in sorted(self._queue):
            if len(ev) != 4:
                raise CheckpointUnsupported(
                    f"untagged event at cycle {ev[0]} (seq {ev[1]}): "
                    "not a checkpointable safe point"
                )
            events.append((ev[0], ev[1], ev[3]))
        return {
            "now": self.now,
            "seq": self._seq,
            "events_executed": self.events_executed,
            "events": events,
        }

    def restore(self, blob: dict, resolve: Callable[[tuple], Callable]) -> None:
        """Rebuild the queue from :meth:`snapshot` output.

        ``resolve(tag)`` maps each event tag back to a live callback
        bound to the restoring machine.  Stale events — recorded cycle
        before the snapshot clock — are rejected deterministically with
        ``ValueError`` (the same contract as :meth:`schedule_at`), so a
        corrupted or hand-edited checkpoint fails loudly instead of
        replaying an event into the past.
        """
        now = blob["now"]
        events = []
        for cycle, seq, tag in blob["events"]:
            if cycle < now:
                raise ValueError(
                    f"cannot restore event {tag!r} at absolute cycle "
                    f"{cycle}: it is in the past (checkpoint clock is {now})"
                )
            events.append((cycle, seq, resolve(tag), tag))
        self.now = now
        self._seq = blob["seq"]
        self.events_executed = blob["events_executed"]
        self._queue = events
        heapq.heapify(self._queue)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, max_cycles: int = 500_000_000, max_events: int | None = None) -> int:
        """Drain the queue; returns the final cycle count.

        Re-entrant calls are rejected — a callback must schedule follow-up
        events, never call :meth:`run`.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        self.run_limit = max_cycles
        merged0 = self._merged
        try:
            queue = self._queue
            pop = heapq.heappop
            executed = self.events_executed
            while queue:
                # batch dispatch: advance the clock once per distinct
                # cycle, then drain every event at that cycle (including
                # zero-delay events the callbacks add) in seq order —
                # the limit checks and clock writes leave the per-event
                # inner loop, which is the simulator's hottest path
                cycle = queue[0][0]
                if cycle > max_cycles:
                    self.events_executed = executed
                    raise SimulationTimeout(self._timeout_message(
                        f"simulation exceeded {max_cycles} cycles"
                    ))
                self.now = cycle
                if max_events is None:
                    while queue and queue[0][0] == cycle:
                        executed += 1
                        pop(queue)[2]()
                else:
                    while queue and queue[0][0] == cycle:
                        executed += 1
                        if executed + (self._merged - merged0) > max_events:
                            self.events_executed = executed
                            raise SimulationTimeout(self._timeout_message(
                                f"simulation exceeded {max_events} events"
                            ))
                        pop(queue)[2]()
        finally:
            # merged fast-lane steps count as executed events so the
            # externally visible tally matches scalar execution
            self.events_executed = executed + (self._merged - merged0)
            self._running = False
            self.run_limit = None
        return self.now

    def _timeout_message(self, what: str) -> str:
        """Timeout diagnostics: cycle, event and queue counts, plus
        whatever context the installed :attr:`timeout_hook` provides."""
        msg = (
            f"{what} at cycle {self.now} "
            f"({self.events_executed} events executed, "
            f"{len(self._queue)} events still pending); "
            "likely deadlock or unfinished thread program"
        )
        if self.timeout_hook is not None:
            try:
                msg += "\n" + self.timeout_hook()
            except Exception as exc:  # diagnostics must never mask the timeout
                msg += f"\n(timeout hook failed: {exc!r})"
        return msg

    def run_until(self, cycle: int, max_events: int | None = None, *,
                  advance_clock: bool = True) -> int:
        """Execute events up to and including ``cycle``; later events stay
        queued.  Useful for stepping tests through protocol epochs.

        Dispatches with the same same-cycle batching as :meth:`run` and
        shares its diagnostics: ``max_events`` bounds the number of
        events executed by *this call*, raising :class:`SimulationTimeout`
        through :meth:`_timeout_message` (including any installed
        ``timeout_hook`` context) when exceeded — insurance against a
        zero-delay self-rescheduling loop that would otherwise spin
        forever inside one cycle.

        ``advance_clock=False`` leaves ``now`` at the last executed
        event's cycle instead of forcing it to ``cycle`` — the checkpoint
        recorder steps the run this way so an interrupted run's final
        clock (and every checkpoint stamp) matches the uninterrupted
        run bit for bit.
        """
        if self._running:
            raise SimulationError("Engine.run_until() is not re-entrant")
        self._running = True
        self.until_active = True
        executed = self.events_executed
        budget = None if max_events is None else executed + max_events
        try:
            queue = self._queue
            pop = heapq.heappop
            while queue and queue[0][0] <= cycle:
                evc = queue[0][0]
                self.now = evc
                while queue and queue[0][0] == evc:
                    executed += 1
                    if budget is not None and executed > budget:
                        self.events_executed = executed
                        raise SimulationTimeout(self._timeout_message(
                            f"run_until exceeded {max_events} events"
                        ))
                    pop(queue)[2]()
            if advance_clock and self.now < cycle:
                self.now = cycle
        finally:
            self.events_executed = executed
            self._running = False
            self.until_active = False
        return self.now
