"""repro.core subpackage."""
