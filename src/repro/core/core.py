"""In-order core model.

A core drives one thread program (a generator of ISA ops) against its
private L1.  Hits and compute are executed in batches of up to
``core_quantum`` L1-hit-equivalents without touching the event queue (the
dominant simulator-performance optimization — see the HPC guide's
"measure, then remove the bottleneck"); any miss, sync op, or exhausted
quantum yields back to the scheduler.  The resulting event-order skew is
bounded by the quantum (default 8 ops = 16 cycles) and is configurable
down to 1 for strictly ordered runs.
"""
from __future__ import annotations

from typing import Generator, Iterator

from repro.cache.l1 import L1Controller
from repro.common.stats import StatGroup
from repro.common.types import AccessType
from repro.isa.approx import ApproxManager
from repro.isa import instructions as isa
from repro.sim.engine import Engine

__all__ = ["Core", "ThreadProgram"]

#: A thread program yields ISA ops and receives load values via ``send``.
ThreadProgram = Generator["isa.Op", "int | None", None]

_PRAGMA_COST = 1  # cycles charged for setaprx/endaprx/region pragmas


class Core:
    """One in-order core executing one thread program."""

    def __init__(
        self,
        cid: int,
        engine: Engine,
        l1: L1Controller,
        program: Iterator,
        stats: StatGroup,
        quantum: int = 8,
    ) -> None:
        self.cid = cid
        self.engine = engine
        self.l1 = l1
        self.program = program
        self.stats = stats
        self.quantum_cycles = max(1, quantum) * l1.cfg.l1.hit_latency
        self.approx = ApproxManager()
        self.done = False
        self.finish_cycle: int | None = None
        self._pending_send: int | None = None
        self._started = False
        self._blocked_since = 0
        #: description of the op this core is currently blocked on
        #: (None while running) — read by the watchdog's diagnostic dump
        self.blocked_op: str | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the core's first step at cycle 0."""
        if self._started:
            raise RuntimeError(f"core {self.cid} already started")
        self._started = True
        self.engine.schedule(0, self._step)

    def _resume_with(self, value: int | None) -> None:
        """Continuation for miss completion / sync wakeup."""
        self.stats.stall_cycles += self.engine.now - self._blocked_since
        self.blocked_op = None
        self._pending_send = value
        self._step()

    # ------------------------------------------------------------------
    def _step(self) -> None:
        """Run ops until a blocking op or the quantum is exhausted."""
        if self.done:
            return
        budget = self.quantum_cycles
        elapsed = 0
        hit_latency = self.l1.cfg.l1.hit_latency
        program = self.program
        st = self.stats

        while elapsed < budget:
            try:
                if self._pending_send is not None:
                    value, self._pending_send = self._pending_send, None
                    op = program.send(value)
                else:
                    op = next(program)
            except StopIteration:
                self.done = True
                self.finish_cycle = self.engine.now + elapsed
                st.finish_cycle = self.finish_cycle
                return

            cls = type(op)
            if cls is isa.Load:
                st.mem_ops += 1
                hit, val = self.l1.access(
                    AccessType.LOAD, op.addr, None, self._resume_with
                )
                if hit:
                    elapsed += hit_latency
                    self._pending_send = val
                    continue
                self._blocked_since = self.engine.now
                self.blocked_op = f"LOAD {op.addr:#x}"
                return
            if cls is isa.Store or cls is isa.Scribble:
                st.mem_ops += 1
                atype = AccessType.SCRIBBLE if (
                    cls is isa.Scribble or self.approx.is_approx(op.addr)
                ) else AccessType.STORE
                hit, _ = self.l1.access(
                    atype, op.addr, op.value, self._resume_with
                )
                if hit:
                    elapsed += hit_latency
                    # stores produce no value; send(None) ~ next()
                    continue
                self._blocked_since = self.engine.now
                self.blocked_op = (
                    f"{atype.value.upper()} {op.addr:#x} = {op.value:#x}"
                )
                return
            if cls is isa.Compute:
                st.compute_cycles += op.cycles
                elapsed += op.cycles
                continue
            if cls is isa.BarrierWait:
                self._blocked_since = self.engine.now
                self.blocked_op = "BARRIER_WAIT"
                op.barrier.arrive(lambda: self._resume_with(None))
                st.barrier_waits += 1
                return
            if cls is isa.Acquire:
                self._blocked_since = self.engine.now
                self.blocked_op = "ACQUIRE"
                op.lock.acquire(self.cid, lambda: self._resume_with(None))
                return
            if cls is isa.Release:
                op.lock.release(self.cid)
                elapsed += _PRAGMA_COST
                continue
            if cls is isa.SetAprx:
                self.l1.set_approx(op.d_distance)
                elapsed += _PRAGMA_COST
                continue
            if cls is isa.EndAprx:
                self.l1.end_approx()
                elapsed += _PRAGMA_COST
                continue
            if cls is isa.ApproxBegin:
                self.approx.begin(op.ranges)
                elapsed += _PRAGMA_COST
                continue
            if cls is isa.ApproxEnd:
                self.approx.end(op.ranges)
                elapsed += _PRAGMA_COST
                continue
            if cls is isa.FlushApprox:
                self.l1.flush_approx()
                elapsed += _PRAGMA_COST
                continue
            raise TypeError(f"thread program yielded {op!r}")

        # quantum exhausted: let other events interleave
        st.quantum_yields += 1
        self.engine.schedule(elapsed, self._step)
