"""In-order core model.

A core drives one thread program against its private L1.  A program
arrives in one of three forms (see :mod:`repro.isa.compiled`):

* a plain generator of ISA ops — the legacy path, executed through a
  ``send``/``next`` round-trip and ``type(op)`` dispatch per op;
* a :class:`~repro.isa.compiled.ProgramSpec` — a generator factory plus
  a program-cache slot.  On a cache miss the generator runs with a
  :class:`~repro.isa.compiled.ProgramRecorder` tee that lowers the
  retired op stream to columnar arrays; on a hit the core executes the
  arrays directly (no generator, no op objects) and validates every
  executed load value against the recording, *deoptimizing* back to a
  resynchronized generator on the first mismatch;
* a :class:`~repro.isa.compiled.CompiledProgram` — pre-lowered arrays
  (trace replay), executed directly with validation off.

Hits and compute are executed in batches of up to ``core_quantum``
L1-hit-equivalents without touching the event queue (the dominant
simulator-performance optimization — see the HPC guide's "measure, then
remove the bottleneck"); any miss, sync op, or exhausted quantum yields
back to the scheduler.  The resulting event-order skew is bounded by the
quantum and is configurable down to 1 for strictly ordered runs.  The
compiled fast loop preserves the generator path's budget accounting,
stat updates and ``engine.schedule`` pattern op for op, so the two modes
produce bit-identical simulations (pinned by the equivalence suite).
"""
from __future__ import annotations

from typing import Generator, Iterator

from repro.cache.l1 import L1Controller
from repro.common.stats import StatGroup
from repro.common.types import AccessType
from repro.isa.approx import ApproxManager
from repro.isa import instructions as isa
from repro.core import hitrun as _hitrun
from repro.core.hitrun import try_hit_run
from repro.isa.compiled import (
    CompiledProgram, ProgramRecorder, ProgramSpec, replay_to_completion,
    resync_generator,
)
from repro.sim.engine import CheckpointUnsupported, Engine

__all__ = ["Core", "ThreadProgram"]

#: A thread program yields ISA ops and receives load values via ``send``.
ThreadProgram = Generator["isa.Op", "int | None", None]

_PRAGMA_COST = 1  # cycles charged for setaprx/endaprx/region pragmas

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE
_SCRIBBLE = AccessType.SCRIBBLE


def _prog_blob(prog: CompiledProgram) -> dict:
    """Picklable column form of a compiled program (checkpoint layer)."""
    return {
        "op": prog.op, "addr": prog.addr, "value": prog.value,
        "cycles": prog.cycles, "objs": dict(prog.objs),
        "ranges": dict(prog.ranges), "validate": prog.validate_loads,
    }


def _prog_from_blob(blob: dict) -> CompiledProgram:
    """Rebuild a compiled program from :func:`_prog_blob` columns.

    Columns are copied so checkpoint consumers (the batch backend's
    fork-at-divergence substitution) may mutate them freely without
    aliasing the cached program."""
    return CompiledProgram(
        blob["op"].copy(), blob["addr"].copy(), blob["value"].copy(),
        blob["cycles"].copy(), dict(blob["objs"]), dict(blob["ranges"]),
        validate_loads=blob["validate"],
    )


class Core:
    """One in-order core executing one thread program."""

    def __init__(
        self,
        cid: int,
        engine: Engine,
        l1: L1Controller,
        program: "Iterator | ProgramSpec | CompiledProgram",
        stats: StatGroup,
        quantum: int = 8,
        sync_tables: tuple[list, list] | None = None,
    ) -> None:
        self.cid = cid
        self.engine = engine
        self.l1 = l1
        self.stats = stats
        self._hit_latency = l1.cfg.l1.hit_latency
        self.quantum_cycles = max(1, quantum) * self._hit_latency
        #: hit-run fast lane enable (config knob; tracing/hooks disable
        #: it dynamically per attempt — see repro.core.hitrun)
        self._lane = getattr(l1.cfg, "fast_lane", True)
        self.approx = ApproxManager()
        self.done = False
        self.finish_cycle: int | None = None
        self._pending_send: int | None = None
        self._started = False
        self._blocked_since = 0
        #: description of the op this core is currently blocked on
        #: (None while running) — read by the watchdog's diagnostic dump
        self.blocked_op: str | None = None
        # hot counters are bumped through the live counter dict (one item
        # access each) rather than StatGroup's attribute protocol; both
        # spell the same underlying values
        self._c = stats.counters(
            "mem_ops", "compute_cycles", "barrier_waits", "quantum_yields",
            "stall_cycles",
        )
        self._sync_tables = sync_tables
        # restorable identity of this core's self-reschedule events
        # (start and quantum yields) — see repro.sim.state
        self._step_tag = ("core_step", cid)
        self._deopted = False
        # program-form resolution (see module docstring)
        self.program: Iterator | None = None
        self._compiled: CompiledProgram | None = None
        self._recorder: ProgramRecorder | None = None
        self._spec_factory = None
        self._spec_cache = None
        self._spec_key = None
        self._cpc = 0                 # compiled-mode program counter
        self._awaiting_load = False   # compiled load miss outstanding
        self._needs_replay = False    # side-effect replay due at finish
        self._ops: list[int] = []
        self._addrs: list[int] = []
        self._vals: list[int] = []
        self._cycs: list[int] = []
        self._objs: dict[int, object] = {}
        self._plan = None             # HitRunPlan of the bound program
        self._blks: list[int] = []    # plan's block column (list view)
        self._wofs: list[int] = []    # plan's word-offset column
        self._lane_skip = 0           # steps left in lane-attempt backoff
        self._lane_penalty = 1        # next backoff span (doubles to 32)
        if isinstance(program, CompiledProgram):
            self._bind_compiled(program)
        elif isinstance(program, ProgramSpec):
            self._spec_factory = program.factory
            cached = None
            if program.cache is not None and program.key is not None:
                self._spec_cache = program.cache
                self._spec_key = program.key
                cached = program.cache.get(program.key)
            if cached is not None and self._bind_compiled(cached):
                self._needs_replay = True
            else:
                self.program = program.factory()
                if self._spec_cache is not None:
                    self._recorder = ProgramRecorder(sync_tables)
        else:
            self.program = program

    def _bind_compiled(self, prog: CompiledProgram) -> bool:
        """Adopt a compiled program; False if its sync handles don't
        resolve against this machine (caller falls back to the factory).
        Sync resolution is re-run at :meth:`start` because workloads may
        create barriers after binding threads."""
        self._compiled = prog
        self._ops, self._addrs, self._vals, self._cycs = prog.lists()
        # compile-time address decomposition + run-break/cost tables,
        # memoized per geometry on the program (shared across a sweep)
        self._plan = prog.hit_plan(self.l1.cfg.block_bytes,
                                   self._hit_latency)
        self._blks = self._plan.block_list
        self._wofs = self._plan.woff_list
        return self._resolve_objs()

    def _resolve_objs(self) -> bool:
        prog = self._compiled
        if prog is None or not prog.objs:
            return True
        if self._sync_tables is None:
            self._compiled = None
            return False
        barriers, locks = self._sync_tables
        objs: dict[int, object] = {}
        for pc, (kind, idx) in prog.objs.items():
            table = barriers if kind == "barrier" else locks
            if kind not in ("barrier", "lock") or idx >= len(table):
                self._compiled = None
                return False
            objs[pc] = table[idx]
        self._objs = objs
        return True

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the core's first step at cycle 0."""
        if self._started:
            raise RuntimeError(f"core {self.cid} already started")
        self._started = True
        if self._compiled is not None and not self._resolve_objs():
            # sync tables changed shape since binding: run the generator
            if self._spec_factory is None:
                raise RuntimeError(
                    f"core {self.cid}: compiled program references sync "
                    "objects this machine does not have"
                )
            self._needs_replay = False
            self.program = self._spec_factory()
        self.engine.schedule_tagged(0, self._step, self._step_tag)

    def _resume_with(self, value: int | None) -> None:
        """Continuation for miss completion / sync wakeup."""
        self._c["stall_cycles"] += self.engine.now - self._blocked_since
        self.blocked_op = None
        self._pending_send = value
        self._step()

    def _wake(self) -> None:
        self._resume_with(None)

    # ------------------------------------------------------------------
    def _deoptimize(self, actual: int) -> None:
        """A validated load diverged from the recording: resynchronize a
        fresh generator through the compiled prefix and continue there.

        Every op before ``_cpc`` executed with a load value equal to the
        recording, so the value-driven prefix replay follows the same
        path (and re-executes the program's Python side effects for the
        prefix); the divergent load's actual value is delivered to the
        live generator by the caller's next ``send``.
        """
        gen = resync_generator(self._spec_factory, self._compiled,
                               self._cpc + 1)
        self.program = gen
        self._compiled = None
        self._needs_replay = False
        self._deopted = True
        self._pending_send = actual

    def _finish(self, elapsed: int) -> None:
        self.done = True
        self.finish_cycle = self.engine.now + elapsed
        self.stats.finish_cycle = self.finish_cycle
        if self._needs_replay:
            # the run never touched the program's Python body: replay it
            # once, fed with the validated value column, so result
            # collection happens in this workload instance
            self._needs_replay = False
            replay_to_completion(self._spec_factory, self._compiled)
        rec = self._recorder
        if rec is not None:
            self._recorder = None
            if rec.cacheable:
                self._spec_cache.put(self._spec_key, rec.finalize())

    # ------------------------------------------------------------------
    # checkpoint layer (see repro.sim.state)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Restorable execution state, capturable at safe points only
        (no outstanding load — implied by empty MSHRs).

        Three shapes round-trip: pristine compiled execution (columns +
        pc; the restored run replays side effects at finish), recorder-
        mode generator execution (recorded prefix + count; the restored
        run resynchronizes a fresh generator through it), and a finished
        core with a replayable recording.  A deoptimized or plain-
        generator core raises :class:`CheckpointUnsupported` — its
        continuation lives in an opaque generator frame."""
        if self._awaiting_load:
            raise CheckpointUnsupported(
                f"core {self.cid} has an outstanding load"
            )
        if self._spec_factory is None:
            raise CheckpointUnsupported(
                f"core {self.cid} has no program factory for replay"
            )
        base = {
            "started": self._started,
            "pending_send": self._pending_send,
            "blocked_since": self._blocked_since,
            "blocked_op": self.blocked_op,
            "approx": self.approx.snapshot(),
        }
        if self.done:
            prog = None if self._deopted else self._compiled
            if (prog is None and not self._deopted
                    and self._spec_cache is not None
                    and self._spec_key is not None):
                prog = self._spec_cache.get(self._spec_key)
            if prog is None:
                raise CheckpointUnsupported(
                    f"finished core {self.cid} has no replayable recording"
                )
            base.update(mode="done", finish_cycle=self.finish_cycle,
                        prog=_prog_blob(prog))
            return base
        if self._compiled is not None:
            base.update(mode="compiled", cpc=self._cpc,
                        needs_replay=self._needs_replay,
                        prog=_prog_blob(self._compiled))
            return base
        rec = self._recorder
        if rec is not None:
            base.update(
                mode="recorded",
                ops=list(rec.ops), addrs=list(rec.addrs),
                vals=list(rec.vals), cycs=list(rec.cycs),
                objs=dict(rec.objs), ranges=dict(rec.ranges),
                cacheable=rec.cacheable, last_load=rec._last_load,
            )
            return base
        raise CheckpointUnsupported(
            f"core {self.cid} is deoptimized or runs a plain generator"
        )

    def restore(self, blob: dict) -> None:
        """Adopt :meth:`snapshot` state.  The core must come from the
        same deterministic workload build: ``_spec_factory`` supplies
        the generators for replay/deoptimization and the machine's sync
        tables resolve the recorded handles."""
        if self._spec_factory is None:
            raise CheckpointUnsupported(
                f"core {self.cid} has no program factory to restore into"
            )
        self._started = blob["started"]
        self._pending_send = blob["pending_send"]
        self._blocked_since = blob["blocked_since"]
        self.blocked_op = blob["blocked_op"]
        self.approx.restore(blob["approx"])
        self._awaiting_load = False
        self._deopted = False
        self._recorder = None
        mode = blob["mode"]
        if mode == "done":
            self.done = True
            self.finish_cycle = blob["finish_cycle"]
            self.program = None
            self._compiled = None
            self._needs_replay = False
            # the interrupted run already replayed (or live-executed)
            # the program's side effects — but into *its* workload
            # instance; redo the value-driven pass into this one
            replay_to_completion(self._spec_factory,
                                 _prog_from_blob(blob["prog"]))
            return
        self.done = False
        self.finish_cycle = None
        if mode == "compiled":
            if not self._bind_compiled(_prog_from_blob(blob["prog"])):
                raise CheckpointUnsupported(
                    f"core {self.cid}: checkpointed sync handles do not "
                    "resolve against this machine"
                )
            self.program = None
            self._cpc = blob["cpc"]
            self._needs_replay = blob["needs_replay"]
            return
        if mode == "recorded":
            rec = ProgramRecorder(self._sync_tables)
            rec.ops = list(blob["ops"])
            rec.addrs = list(blob["addrs"])
            rec.vals = list(blob["vals"])
            rec.cycs = list(blob["cycs"])
            rec.objs = dict(blob["objs"])
            rec.ranges = dict(blob["ranges"])
            rec.cacheable = blob["cacheable"]
            rec._last_load = blob["last_load"]
            prefix = rec.finalize()
            self.program = resync_generator(self._spec_factory, prefix,
                                            len(rec.ops))
            self._recorder = rec
            self._compiled = None
            self._needs_replay = False
            self._cpc = 0
            self._ops, self._addrs, self._vals = [], [], []
            self._cycs, self._objs = [], {}
            self._plan, self._blks, self._wofs = None, [], []
            return
        raise ValueError(f"unknown core snapshot mode {mode!r}")

    # ------------------------------------------------------------------
    def _step(self) -> None:
        """Run ops until a blocking op or the quantum is exhausted."""
        if self.done:
            return
        budget = self.quantum_cycles
        elapsed = 0
        hit_latency = self.l1.cfg.l1.hit_latency
        st = self._c
        engine = self.engine
        access = self.l1.access

        if self._compiled is not None:
            # -- hit-run fast lane: vectorize the pending run when every
            # op in it is a guaranteed L1 hit (repro.core.hitrun); falls
            # through to the scalar loop otherwise.  The inline horizon
            # gate (same bound try_hit_run re-checks) keeps contended
            # quantum-1 phases — where the next queued event is cycles
            # away and no merge can fit — at plain-int cost per step.
            if self._lane and not self._awaiting_load:
                if self._lane_skip:
                    self._lane_skip -= 1
                else:
                    if (not engine.until_active
                            and (not (q := engine._queue)
                                 or q[0][0] - engine.now - 1 + budget
                                 >= _hitrun.MIN_RUN * hit_latency)
                            and try_hit_run(self)):
                        self._lane_penalty = 1
                        return
                    # no merge this step (horizon closed, window
                    # active, or a failed attempt that paid for
                    # classification): back off deterministically so
                    # contended phases stay near scalar cost — at most
                    # 32 ops of merge latency, against MIN_RUN-sized
                    # merges when a private streak opens up
                    penalty = self._lane_penalty
                    self._lane_skip = penalty
                    if penalty < 32:
                        self._lane_penalty = penalty * 2
            # -- compiled fast loop: no generator, no op objects --------
            ops = self._ops
            addrs = self._addrs
            vals = self._vals
            cycs = self._cycs
            objs = self._objs
            blks = self._blks
            wofs = self._wofs
            n = len(ops)
            pc = self._cpc
            validate = self._compiled.validate_loads
            l1 = self.l1
            resume = self._resume_with
            while elapsed < budget:
                if self._awaiting_load:
                    # a missed load retired; the delivered value must
                    # match the recording (deopt trigger)
                    self._awaiting_load = False
                    value, self._pending_send = self._pending_send, None
                    if validate and value != vals[pc]:
                        self._deoptimize(value)
                        break
                    pc += 1
                if pc == n:
                    self._cpc = pc
                    self._finish(elapsed)
                    return
                opc = ops[pc]
                if opc == 0:  # LOAD
                    st["mem_ops"] += 1
                    hit, val = access(_LOAD, addrs[pc], None, resume,
                                      blks[pc], wofs[pc])
                    if hit:
                        elapsed += hit_latency
                        if validate and val != vals[pc]:
                            self._cpc = pc
                            self._deoptimize(val)
                            break
                        pc += 1
                        continue
                    self._cpc = pc
                    self._awaiting_load = True
                    self._blocked_since = engine.now
                    self.blocked_op = f"LOAD {addrs[pc]:#x}"
                    return
                if opc == 1 or opc == 2:  # STORE / SCRIBBLE (pre-resolved)
                    st["mem_ops"] += 1
                    atype = _STORE if opc == 1 else _SCRIBBLE
                    hit, _ = access(atype, addrs[pc], vals[pc], resume,
                                    blks[pc], wofs[pc])
                    if hit:
                        elapsed += hit_latency
                        pc += 1
                        continue
                    self._blocked_since = engine.now
                    self.blocked_op = (
                        f"{atype.value.upper()} {addrs[pc]:#x} = "
                        f"{vals[pc]:#x}"
                    )
                    self._cpc = pc + 1  # resume past the store
                    return
                if opc == 3:  # COMPUTE
                    st["compute_cycles"] += cycs[pc]
                    elapsed += cycs[pc]
                    pc += 1
                    continue
                if opc == 4:  # BARRIER
                    self._blocked_since = engine.now
                    self.blocked_op = "BARRIER_WAIT"
                    self._cpc = pc + 1
                    objs[pc].arrive(self._wake, self.cid)
                    st["barrier_waits"] += 1
                    return
                if opc == 5:  # ACQUIRE
                    self._blocked_since = engine.now
                    self.blocked_op = "ACQUIRE"
                    self._cpc = pc + 1
                    objs[pc].acquire(self.cid, self._wake)
                    return
                if opc == 6:  # RELEASE
                    objs[pc].release(self.cid)
                    elapsed += _PRAGMA_COST
                    pc += 1
                    continue
                if opc == 7:  # SETAPRX
                    l1.set_approx(cycs[pc])
                    elapsed += _PRAGMA_COST
                    pc += 1
                    continue
                if opc == 8:  # ENDAPRX
                    l1.end_approx()
                    elapsed += _PRAGMA_COST
                    pc += 1
                    continue
                if opc == 9:  # APPROX_BEGIN
                    self.approx.begin(self._compiled.ranges[pc])
                    elapsed += _PRAGMA_COST
                    pc += 1
                    continue
                if opc == 10:  # APPROX_END
                    self.approx.end(self._compiled.ranges[pc])
                    elapsed += _PRAGMA_COST
                    pc += 1
                    continue
                if opc == 11:  # FLUSH
                    l1.flush_approx()
                    elapsed += _PRAGMA_COST
                    pc += 1
                    continue
                raise TypeError(f"compiled program holds opcode {opc}")
            if self._compiled is not None:
                # quantum exhausted (a deopt breaks with _compiled None
                # and falls through to the generator loop below)
                self._cpc = pc
                st["quantum_yields"] += 1
                engine.schedule_tagged(elapsed, self._step, self._step_tag)
                return

        program = self.program
        rec = self._recorder
        while elapsed < budget:
            try:
                if self._pending_send is not None:
                    value, self._pending_send = self._pending_send, None
                    if rec is not None:
                        # loads are the only ops that receive a value
                        rec.patch_load(value)
                    op = program.send(value)
                else:
                    op = next(program)
            except StopIteration:
                self._finish(elapsed)
                return

            cls = type(op)
            if cls is isa.Load:
                st["mem_ops"] += 1
                if rec is not None:
                    rec.record_load(op.addr)
                hit, val = access(_LOAD, op.addr, None, self._resume_with)
                if hit:
                    elapsed += hit_latency
                    self._pending_send = val
                    continue
                self._blocked_since = engine.now
                self.blocked_op = f"LOAD {op.addr:#x}"
                return
            if cls is isa.Store or cls is isa.Scribble:
                st["mem_ops"] += 1
                atype = _SCRIBBLE if (
                    cls is isa.Scribble or self.approx.is_approx(op.addr)
                ) else _STORE
                if rec is not None:
                    rec.record(1 if atype is _STORE else 2, op.addr, op.value)
                hit, _ = access(atype, op.addr, op.value, self._resume_with)
                if hit:
                    elapsed += hit_latency
                    # stores produce no value; send(None) ~ next()
                    continue
                self._blocked_since = engine.now
                self.blocked_op = (
                    f"{atype.value.upper()} {op.addr:#x} = {op.value:#x}"
                )
                return
            if cls is isa.Compute:
                st["compute_cycles"] += op.cycles
                elapsed += op.cycles
                if rec is not None:
                    rec.record(3, 0, 0, op.cycles)
                continue
            if cls is isa.BarrierWait:
                self._blocked_since = engine.now
                self.blocked_op = "BARRIER_WAIT"
                if rec is not None:
                    rec.record_sync(4, op.barrier)
                op.barrier.arrive(lambda: self._resume_with(None), self.cid)
                st["barrier_waits"] += 1
                return
            if cls is isa.Acquire:
                self._blocked_since = engine.now
                self.blocked_op = "ACQUIRE"
                if rec is not None:
                    rec.record_sync(5, op.lock)
                op.lock.acquire(self.cid, lambda: self._resume_with(None))
                return
            if cls is isa.Release:
                op.lock.release(self.cid)
                elapsed += _PRAGMA_COST
                if rec is not None:
                    rec.record_sync(6, op.lock)
                continue
            if cls is isa.SetAprx:
                self.l1.set_approx(op.d_distance)
                elapsed += _PRAGMA_COST
                if rec is not None:
                    rec.record(7, 0, 0, op.d_distance)
                continue
            if cls is isa.EndAprx:
                self.l1.end_approx()
                elapsed += _PRAGMA_COST
                if rec is not None:
                    rec.record(8)
                continue
            if cls is isa.ApproxBegin:
                self.approx.begin(op.ranges)
                elapsed += _PRAGMA_COST
                if rec is not None:
                    rec.record_ranges(9, op.ranges)
                continue
            if cls is isa.ApproxEnd:
                self.approx.end(op.ranges)
                elapsed += _PRAGMA_COST
                if rec is not None:
                    rec.record_ranges(10, op.ranges)
                continue
            if cls is isa.FlushApprox:
                self.l1.flush_approx()
                elapsed += _PRAGMA_COST
                if rec is not None:
                    rec.record(11)
                continue
            raise TypeError(f"thread program yielded {op!r}")

        # quantum exhausted: let other events interleave
        st["quantum_yields"] += 1
        engine.schedule_tagged(elapsed, self._step, self._step_tag)
