"""Scheduler-level synchronization primitives.

Barriers and locks are runtime services rather than memory-based
spinlocks (see DESIGN.md substitution 5): the paper's figures measure the
kernels' *data* accesses, and modelling pthread internals would only add
unrelated traffic.  Both primitives are deterministic: waiters are
released in arrival order.
"""
from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import CheckpointUnsupported, Engine

__all__ = ["Barrier", "Lock"]

#: cycles between the releasing event and a waiter resuming
_WAKE_LATENCY = 1


class Barrier:
    """Reusable (generation-counted) barrier for ``parties`` cores."""

    __slots__ = ("engine", "parties", "_waiting", "generation")

    def __init__(self, engine: Engine, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.engine = engine
        self.parties = parties
        #: blocked arrivals as (resume, owner) — owner is the arriving
        #: core id (None for anonymous callers), which is what lets a
        #: checkpoint rebuild the waiter list against a fresh machine
        self._waiting: list[tuple[Callable[[], None], int | None]] = []
        self.generation = 0

    def arrive(self, resume: Callable[[], None],
               owner: int | None = None) -> None:
        """Register arrival; ``resume`` fires when the last party arrives."""
        self._waiting.append((resume, owner))
        if len(self._waiting) > self.parties:
            raise RuntimeError("more arrivals than barrier parties")
        if len(self._waiting) == self.parties:
            waiters, self._waiting = self._waiting, []
            self.generation += 1
            for cb, _ in waiters:
                self.engine.schedule(_WAKE_LATENCY, cb)

    @property
    def waiting(self) -> int:
        """Number of parties currently blocked."""
        return len(self._waiting)

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable state: generation count plus blocked owner ids
        (arrival order preserved — release order determines wake seq)."""
        for _, owner in self._waiting:
            if owner is None:
                raise CheckpointUnsupported(
                    "barrier has an anonymous waiter (no owner id)"
                )
        return {"generation": self.generation,
                "waiting": [owner for _, owner in self._waiting]}

    def restore(self, blob: dict,
                wake_for: Callable[[int], Callable[[], None]]) -> None:
        """Rebuild waiters; ``wake_for(owner)`` supplies each resume."""
        self.generation = blob["generation"]
        self._waiting = [(wake_for(owner), owner)
                         for owner in blob["waiting"]]


class Lock:
    """FIFO mutex."""

    __slots__ = ("engine", "_held", "_queue", "owner")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._held = False
        self._queue: deque[tuple[int, Callable[[], None]]] = deque()
        self.owner: int | None = None

    def acquire(self, holder: int, resume: Callable[[], None]) -> None:
        """Take the lock or queue; ``resume`` fires once granted."""
        if not self._held:
            self._held = True
            self.owner = holder
            self.engine.schedule(_WAKE_LATENCY, resume)
        else:
            self._queue.append((holder, resume))

    def release(self, holder: int) -> None:
        """Release the lock, waking the next queued acquirer (FIFO)."""
        if not self._held:
            raise RuntimeError("release of an unheld lock")
        if self.owner != holder:
            raise RuntimeError(
                f"core {holder} released a lock held by core {self.owner}"
            )
        if self._queue:
            self.owner, resume = self._queue.popleft()
            self.engine.schedule(_WAKE_LATENCY, resume)
        else:
            self._held = False
            self.owner = None

    @property
    def held(self) -> bool:
        """True while some core holds the lock."""
        return self._held

    # -- checkpoint layer ---------------------------------------------
    def snapshot(self) -> dict:
        """Restorable state: holder plus queued acquirers (FIFO order)."""
        return {"held": self._held, "owner": self.owner,
                "queue": [holder for holder, _ in self._queue]}

    def restore(self, blob: dict,
                wake_for: Callable[[int], Callable[[], None]]) -> None:
        """Rebuild the queue; ``wake_for(holder)`` supplies each resume."""
        self._held = blob["held"]
        self.owner = blob["owner"]
        self._queue = deque(
            (holder, wake_for(holder)) for holder in blob["queue"]
        )
