"""The hit-run fast lane: vectorized execution of guaranteed-hit op runs.

The compiled interpreter (:meth:`repro.core.core.Core._step`) retires one
op per Python dispatch.  In the regime the paper's workloads live in —
long private-hit streaks between coherence events — every op in a run is
an L1 hit whose effects are *locally* determined: no message leaves the
core, no state machine advances, no other component can observe the
intermediate states.  This module executes such runs as numpy kernels,
bit-identical to scalar stepping.

Identity argument (the contract the differential suite pins):

* **Which ops?**  Only ops that scalar execution would retire as pure L1
  hits with no externally visible side effect: loads on readable stable
  states, stores on E/M (the E->M transition is invisible when no
  transition hook, commit hook, or event bus is attached), stores on
  GS/GI (unconditional approximate hits), and — in bitwise mode with no
  probe/bus/budget — scribbles on GS/GI whose comparator check *passes*.
  Residency and state come from the L1's residency mirror
  (:attr:`repro.cache.l1.L1Controller._mirror`), which tracks exactly
  the stable hit-capable lines; a missing entry conservatively breaks
  the run.
* **Which cycles?**  Scalar execution chops a run into quanta by the
  greedy rule "retire while ``elapsed < quantum_cycles``" and schedules
  the next step at ``now + elapsed``.  The lane reproduces the exact
  boundaries from the plan's cost prefix-sum (``searchsorted`` instead
  of the loop), merges only *complete* quanta, and always schedules the
  first unmerged step as a real tagged event at its scalar dispatch
  cycle — so the op that misses, blocks, deoptimizes, or finishes the
  program always executes inside a real step with a scalar-identical
  ``engine.now``.
* **Which horizon?**  A merged step must not be overtaken by a foreign
  event: merging stops before the earliest queued event's cycle (strict
  — at a tie the queued event has the smaller seq and fires first in
  scalar execution) and before the engine's ``run_limit`` so timeouts
  fire at the same cycle.  While ``run_until`` is active the lane is
  disabled entirely: bounded windows have an implicit horizon at the
  cap cycle that the queue peek cannot see (this also keeps the
  checkpoint recorder's safe-point search scalar).
* **Which counters?**  Every StatGroup bump the scalar path performs per
  op is applied in bulk: L1 load/store/approx counters, the scribe's
  Fig. 2 observe histogram (``d_distance_array`` over write/previous
  word pairs) and pass counts, core ``mem_ops``/``compute_cycles``, and
  one ``quantum_yields`` per merged quantum.  The engine absorbs the
  merged steps' seq numbers and event count
  (:meth:`repro.sim.engine.Engine.absorb_merged_events`), so checkpoint
  fingerprints — which include the engine's seq — match scalar runs.
* **Which data?**  Loads are simulated against the evolving word values
  (a grouped forward-fill over (block, word) keys) so load validation
  and scribble checks see exactly the values scalar execution would;
  the first validation mismatch or failing check truncates the run
  *before* that op.  The last write per word lands in ``line.words``;
  per-block approximate write budgets (``aux``) advance by the write
  count; E lines that received a write flip to M; PLRU trees replay the
  per-access touch sequence (collapsed to last-touch-wins for the
  ubiquitous 2-way arrays).

Anything else — tracing bus attached, transition/commit hooks armed,
arithmetic similarity mode, decision-trace probe, write budgets on
scribbles, values that overflow int64 — disables or truncates the lane;
the scalar path is always the semantics of record.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import CoherenceState
from repro.scribe.similarity import d_distance_array

__all__ = ["try_hit_run", "MIN_RUN"]

_S = CoherenceState

#: minimum merged-op count worth the kernel's fixed overhead; runs
#: shorter than this execute scalar (pure perf heuristic — correctness
#: never depends on it, which is how the differential tests shrink it)
MIN_RUN = 32

#: safety cap on merged quanta per attempt; the first unmerged step
#: simply re-enters the lane
_MAX_QUANTA = 1 << 14


def try_hit_run(core) -> bool:
    """Attempt to vectorize the pending op run of ``core``.

    Returns True when a run was merged (effects applied, next step
    scheduled); False means "execute scalar" with no state touched.
    """
    l1 = core.l1
    if (l1.bus is not None or l1.transition_hook is not None
            or l1.commit_hook is not None):
        return False
    engine = core.engine
    if engine.until_active:
        return False
    plan = core._plan
    if plan is None:
        return False

    pc = core._cpc
    n = len(core._ops)
    qc = core.quantum_cycles
    hl = core._hit_latency
    t0 = engine.now

    # merge horizon: strictly before the earliest queued event, and never
    # past the active run()'s cycle limit
    queue = engine._queue
    limit = engine.run_limit
    if queue:
        max_dispatch = queue[0][0] - 1
        if limit is not None and limit < max_dispatch:
            max_dispatch = limit
    else:
        max_dispatch = limit
    if max_dispatch is not None:
        avail = max_dispatch - t0
        # cheap pre-gate for contended multi-core phases: a horizon too
        # close to fit MIN_RUN memory ops cannot produce a useful merge
        if avail + qc < MIN_RUN * hl:
            return False
    else:
        avail = None

    end = plan.run_end(pc)
    if end - pc < MIN_RUN:
        return False

    cum = plan.cum
    cum_base = int(cum[pc - 1]) if pc else 0
    if avail is not None:
        hi = int(np.searchsorted(cum, cum_base + avail + qc)) + 1
        W = min(end, hi, n)
    else:
        W = min(end, n)
    if W - pc < MIN_RUN:
        return False

    prog = core._compiled
    ops_w = prog.op[pc:W]
    mem_idx = np.flatnonzero(ops_w < 3)
    if mem_idx.size == 0:
        return False
    blocks_w = plan.block[pc:W]
    ub, binv = np.unique(blocks_w[mem_idx], return_inverse=True)
    binv = binv.reshape(-1)

    # classify each touched block from the residency mirror:
    # 0 absent/unusable, 1 readable-only (S/O), 2 precise-writable (E/M),
    # 3 GS, 4 GI
    mirror = l1._mirror
    nb = len(ub)
    ub_cls = np.zeros(nb, dtype=np.int8)
    ub_lines: list = [None] * nb
    ub_set = np.zeros(nb, dtype=np.int64)
    ub_way = np.zeros(nb, dtype=np.int64)
    for i, b in enumerate(ub.tolist()):
        ent = mirror.get(b)
        if ent is None:
            continue
        line, sidx, way = ent
        if line.words is None:
            continue
        state = line.state
        if state is _S.E or state is _S.M:
            ub_cls[i] = 2
        elif state is _S.GS:
            ub_cls[i] = 3
        elif state is _S.GI:
            ub_cls[i] = 4
        else:  # S or O: loads hit, stores fall back
            ub_cls[i] = 1
        ub_lines[i] = line
        ub_set[i] = sidx
        ub_way[i] = way

    scribe = l1.scribe
    gw_scribbles = (
        scribe.enabled and scribe.mode == "bitwise"
        and scribe.probe is None and scribe.bus is None
        and l1.gw.approx_write_budget is None
    )

    # per-mem-op hit guarantee; the first violator bounds the run
    mops = ops_w[mem_idx]
    mcls = ub_cls[binv]
    is_load = mops == 0
    approx = mcls >= 3
    ok = np.where(
        is_load, mcls >= 1,
        (mcls == 2) | (approx & ((mops == 1) | gw_scribbles)),
    )
    bad = np.flatnonzero(~ok)
    lstar = int(mem_idx[bad[0]]) if bad.size else W - pc
    if lstar < MIN_RUN:
        return False

    m_in = mem_idx < lstar
    sel = mem_idx[m_in]
    kb = binv[m_in]
    opm = mops[m_in]
    is_wr = opm != 0
    wpb = l1.cfg.l1.words_per_block
    woffs = plan.woff[pc:W][sel]
    vals_m = prog.value[pc:W][sel]
    validate = prog.validate_loads
    scr_mask = (opm == 2) & (mcls[m_in] >= 3)

    # simulate the evolving word values when anything needs them: load
    # validation, scribble checks, the observe histogram (every write)
    prev = None
    any_wr = bool(is_wr.any())
    if (validate and bool((~is_wr).any())) or any_wr:
        base = np.empty(nb * wpb, dtype=np.int64)
        try:
            for i, line in enumerate(ub_lines):
                if line is not None:
                    base[i * wpb:(i + 1) * wpb] = line.words
        except (OverflowError, ValueError):
            return False  # words hold >int64 values: scalar territory
        key = kb * wpb + woffs
        order = np.argsort(key, kind="stable")
        k_s = key[order]
        v_s = vals_m[order]
        w_s = is_wr[order]
        m = len(order)
        grp_start = np.empty(m, dtype=bool)
        grp_start[0] = True
        grp_start[1:] = k_s[1:] != k_s[:-1]
        seg = np.cumsum(grp_start) - 1
        big = m + 1
        idx = np.arange(m, dtype=np.int64)
        lw = np.maximum.accumulate(np.where(w_s, idx + seg * big, -1))
        has_w = lw >= seg * big
        wpos = lw - seg * big
        prev_has = np.zeros(m, dtype=bool)
        prev_pos = np.zeros(m, dtype=np.int64)
        prev_has[1:] = has_w[:-1] & ~grp_start[1:]
        prev_pos[1:] = wpos[:-1]
        prev_s = np.where(
            prev_has, v_s[np.clip(prev_pos, 0, None)], base[k_s])
        prev = np.empty(m, dtype=np.int64)
        prev[order] = prev_s

        # dynamic truncation: the first load whose simulated value
        # diverges from the recording (scalar would deoptimize there)
        # and the first scribble whose comparator check fails (scalar
        # would miss there) both execute inside the real step
        if validate:
            mism = np.flatnonzero((~is_wr) & (prev != vals_m))
            if mism.size:
                lstar = min(lstar, int(sel[mism[0]]))
        if gw_scribbles and bool(scr_mask.any()):
            fails = np.flatnonzero(
                scr_mask
                & (((vals_m ^ prev) & np.int64(scribe._mask)) != 0))
            if fails.size:
                lstar = min(lstar, int(sel[fails[0]]))
        if lstar < MIN_RUN:
            return False

    # scalar-identical quantum boundaries over [pc, pc + lstar)
    k_steps = 0
    merged = 0
    e = 0
    cumw = cum[pc:W]
    n_rem = n - pc
    pure_mem = not bool((ops_w[:lstar] == 3).any())
    if pure_mem:
        # uniform cost: closed-form chain (the dominant shape)
        per = -(-qc // hl)          # ops per quantum
        adv = per * hl              # elapsed per quantum
        k_steps = min(lstar, n_rem - 1) // per
        if avail is not None:
            k_steps = min(k_steps, avail // adv + 1)
        k_steps = min(k_steps, _MAX_QUANTA)
        merged = k_steps * per
        e = k_steps * adv
    else:
        search = np.searchsorted
        while k_steps < _MAX_QUANTA:
            if k_steps and avail is not None and e > avail:
                break
            jg = int(search(cumw, cum_base + e + qc))
            end_rel = jg + 1
            if jg >= W - pc or end_rel > lstar or end_rel >= n_rem:
                break
            k_steps += 1
            merged = end_rel
            e = int(cumw[jg]) - cum_base
    if k_steps == 0 or merged < MIN_RUN:
        return False

    # ---- apply effects for ops [pc, pc + merged) ---------------------
    mc = sel < merged
    kbc = kb[mc]
    opc = opm[mc]
    clsc = ub_cls[kbc]
    wrm = opc != 0
    loads_n = int((~wrm).sum())
    wr_n = int(wrm.sum())
    gs_wr = int((wrm & (clsc == 3)).sum())
    gi_wr = int((wrm & (clsc == 4)).sum())
    approx_loads = int(((~wrm) & (clsc >= 3)).sum())

    stats = l1.stats
    if loads_n:
        stats.bulk_add("loads", loads_n)
        stats.bulk_add("load_hits", loads_n)
        if approx_loads:
            stats.bulk_add("approx_load_hits", approx_loads)
    if wr_n:
        stats.bulk_add("stores", wr_n)
        stats.bulk_add("store_hits", wr_n)
        if gs_wr or gi_wr:
            stats.bulk_add("approx_store_hits", gs_wr + gi_wr)
            if gs_wr:
                stats.bulk_add("gs_store_hits", gs_wr)
            if gi_wr:
                stats.bulk_add("gi_store_hits", gi_wr)

        valc = vals_m[mc]
        prevc = prev[mc]
        # Fig. 2 observe histogram: every write against the resident word
        scribe.observe_bulk(d_distance_array(
            valc[wrm].astype(np.uint32), prevc[wrm].astype(np.uint32)))
        passes = int((scr_mask[mc]).sum())
        if passes:
            scribe.count_passes(passes)

        # last write per word wins
        kw = (kbc * wpb + woffs[mc])[wrm]
        vw = valc[wrm]
        ukeys, last_rev = np.unique(kw[::-1], return_index=True)
        lastvals = vw[::-1][last_rev]
        for k, v in zip(ukeys.tolist(), lastvals.tolist()):
            ub_lines[k // wpb].words[k % wpb] = v

        wcounts = np.bincount(kbc[wrm], minlength=nb)
        for i in np.flatnonzero(wcounts).tolist():
            line = ub_lines[i]
            state = line.state
            if state is _S.E:
                # invisible E->M upgrade (hooks and bus are None here);
                # M stays in the mirror so no mirror update is needed
                line.state = _S.M
            elif state is _S.GS or state is _S.GI:
                # per-episode write budget accounting
                line.aux = (line.aux or 0) + int(wcounts[i])

    # PLRU: replay the touch sequence (dedup consecutive repeats; a
    # repeated touch of the same way is idempotent)
    sid = ub_set[kbc]
    assoc = l1.cfg.l1.assoc
    if assoc > 1 and len(sid):
        comb = sid * assoc + ub_way[kbc]
        keep = np.empty(len(comb), dtype=bool)
        keep[0] = True
        keep[1:] = comb[1:] != comb[:-1]
        seq = comb[keep]
        array = l1.array
        if assoc == 2:
            # one PLRU bit per set: last touch wins
            usets, last_rev = np.unique((seq >> 1)[::-1], return_index=True)
            lastway = (seq & 1)[::-1][last_rev]
            for s, w in zip(usets.tolist(), lastway.tolist()):
                array.plru_of(s).bits[0] = 1 if w == 0 else 0
        else:
            for c in seq.tolist():
                array.plru_of(c // assoc).touch(c % assoc)

    st = core._c
    st["mem_ops"] += loads_n + wr_n
    total_cycles = int(cumw[merged - 1]) - cum_base
    compute_cycles = total_cycles - (loads_n + wr_n) * hl
    if compute_cycles:
        st["compute_cycles"] += compute_cycles
    st["quantum_yields"] += k_steps

    # the merged steps' schedule/pop pairs never touched the queue;
    # account for them so seq and events_executed stay scalar-identical
    engine.absorb_merged_events(k_steps - 1)
    core._cpc = pc + merged
    engine.schedule_tagged(e, core._step, core._step_tag)
    return True
