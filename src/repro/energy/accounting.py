"""Dynamic-energy accounting over a finished run (Fig. 9's inputs).

Walks a machine's statistics tree and applies the CACTI-like and
DSENT-like models.  The paper's "memory hierarchy" bucket is L1 + L2 +
DRAM; the NoC is reported separately and Fig. 9 plots their sum's
savings against the baseline run.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SimConfig
from repro.energy.cacti import CacheEnergyModel, DramEnergyModel
from repro.energy.dsent import NocEnergyModel
from repro.sim.machine import Machine

__all__ = ["EnergyReport", "EnergyAccountant"]


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Per-component dynamic energy of one run, in picojoules."""

    l1_pj: float
    l2_pj: float
    dram_pj: float
    noc_pj: float

    @property
    def memory_pj(self) -> float:
        """The paper's 'memory hierarchy': L1 + L2 + main memory."""
        return self.l1_pj + self.l2_pj + self.dram_pj

    @property
    def total_pj(self) -> float:
        """Memory hierarchy plus NoC."""
        return self.memory_pj + self.noc_pj

    def savings_vs(self, baseline: "EnergyReport") -> "EnergySavings":
        """Percent dynamic energy saved relative to a baseline run."""
        return EnergySavings(
            memory_pct=_savings(baseline.memory_pj, self.memory_pj),
            noc_pct=_savings(baseline.noc_pj, self.noc_pj),
            total_pct=_savings(baseline.total_pj, self.total_pj),
        )


@dataclass(frozen=True, slots=True)
class EnergySavings:
    """Fig. 9 bars: percent dynamic energy saved vs the MESI baseline."""

    memory_pct: float
    noc_pct: float
    total_pct: float


def _savings(base: float, ours: float) -> float:
    if base <= 0:
        return 0.0
    return (base - ours) / base * 100.0


class EnergyAccountant:
    """Applies the energy models to a machine's counters."""

    def __init__(self, cfg: SimConfig) -> None:
        self.cfg = cfg
        self.l1_model = CacheEnergyModel.from_config(cfg.l1)
        self.l2_model = CacheEnergyModel.from_config(cfg.l2)
        self.dram_model = DramEnergyModel.from_config(cfg.dram)
        self.noc_model = NocEnergyModel.from_config(cfg.noc)

    def report(self, machine: Machine) -> EnergyReport:
        """Compute the per-component dynamic energy of a finished run."""
        stats = machine.stats
        # --- L1: every access probes tag+data; stores and fills write ---
        l1 = stats.child("l1")
        l1_reads = l1.total("loads") + l1.total("stores")
        l1_writes = l1.total("store_hits") + l1.total("misses_issued")
        l1_pj = self.l1_model.access_energy_pj(l1_reads, l1_writes)

        # --- L2 slices -------------------------------------------------
        l2 = stats.child("l2")
        l2_pj = self.l2_model.access_energy_pj(
            l2.total("reads"), l2.total("writes")
        )

        # --- DRAM ------------------------------------------------------
        dram = stats.child("dram")
        dram_pj = self.dram_model.access_energy_pj(
            dram.total("reads"), dram.total("writes")
        )

        # --- NoC ---------------------------------------------------------
        noc = stats.child("noc")
        noc_pj = self.noc_model.energy_pj(
            noc.total("router_traversals"), noc.total("flit_hops")
        )
        return EnergyReport(l1_pj=l1_pj, l2_pj=l2_pj, dram_pj=dram_pj,
                            noc_pj=noc_pj)
