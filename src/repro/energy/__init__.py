"""repro.energy subpackage."""
