"""CACTI-style analytical SRAM/DRAM energy model.

The paper models cache and DRAM energy with CACTI 6.0 [33].  CACTI is a
large circuit-level tool; what Fig. 9 actually needs from it is a
per-access dynamic energy for each structure that scales sensibly with
capacity and associativity, at magnitudes representative of a ~32 nm
node.  We use the well-known first-order model:

* energy per access grows ~sqrt(capacity) (bitline/wordline length),
* each probed way adds tag+data array energy (parallel-read set-assoc),
* writes cost slightly more than reads (bitline full-swing),
* DRAM accesses cost ~three orders of magnitude more than SRAM.

Anchor points (32 nm-class, from published CACTI 6.x tables): a 32 kB
2-way cache read ~= 20 pJ; a 128 kB 8-way read ~= 60 pJ; a DRAM block
access ~= 20 nJ.  Absolute joules never appear in the paper's figures —
Fig. 9 is *percent savings* — so only the ratios matter; the anchors keep
reported joules plausible.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.config import CacheConfig, DramConfig

__all__ = ["CacheEnergyModel", "DramEnergyModel"]

# calibration constants (picojoules)
_BASE_PJ = 2.2           # fixed decode/sense overhead per access
_CAP_COEF = 0.085        # pJ per sqrt(byte) of capacity
_WAY_COEF = 0.18         # extra fraction per additional probed way
_WRITE_FACTOR = 1.15     # writes vs reads
_TAG_FRACTION = 0.08     # tag array share of a probe
_DRAM_READ_PJ = 20_000.0
_DRAM_WRITE_PJ = 22_000.0
_DRAM_BACKGROUND_PJ_PER_CYCLE = 0.0  # dynamic-energy figure only


@dataclass(frozen=True, slots=True)
class CacheEnergyModel:
    """Per-access dynamic energies for one cache structure."""

    read_pj: float
    write_pj: float
    tag_probe_pj: float

    @classmethod
    def from_config(cls, cfg: CacheConfig) -> "CacheEnergyModel":
        """Derive per-access energies from the cache geometry."""
        cap_term = _CAP_COEF * math.sqrt(cfg.size_bytes)
        way_term = 1.0 + _WAY_COEF * (cfg.assoc - 1)
        read = (_BASE_PJ + cap_term) * way_term
        return cls(
            read_pj=read,
            write_pj=read * _WRITE_FACTOR,
            tag_probe_pj=read * _TAG_FRACTION,
        )

    def access_energy_pj(self, reads: float, writes: float,
                         tag_probes: float = 0.0) -> float:
        """Total dynamic energy for the given access counts."""
        return (
            reads * self.read_pj
            + writes * self.write_pj
            + tag_probes * self.tag_probe_pj
        )


@dataclass(frozen=True, slots=True)
class DramEnergyModel:
    read_pj: float = _DRAM_READ_PJ
    write_pj: float = _DRAM_WRITE_PJ

    @classmethod
    def from_config(cls, cfg: DramConfig) -> "DramEnergyModel":
        """Anchor per-access energies (capacity has second-order impact)."""
        # capacity has second-order impact on per-access dynamic energy;
        # we keep the anchor values for any configured size
        return cls()

    def access_energy_pj(self, reads: float, writes: float) -> float:
        """Total dynamic energy for the given access counts."""
        return reads * self.read_pj + writes * self.write_pj
