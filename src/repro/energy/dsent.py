"""DSENT-style NoC dynamic-energy model.

The paper models NoC energy with DSENT [53].  A flit's dynamic energy
decomposes into router traversals (buffer write + crossbar + arbitration)
and link traversals; total NoC energy is then

    E = E_router * (flit router-traversals) + E_link * (flit link-hops)

The network layer already accounts exactly those two quantities
(``router_traversals``, ``flit_hops``), so the model here is two
calibrated constants.  Anchors: ~0.6 pJ/flit/router and ~0.9 pJ/flit/mm
link at 32 nm with ~1 mm tile span — DSENT-class magnitudes for a 128-bit
datapath mesh.  As with the CACTI model, Fig. 9 reports *relative*
savings, so ratios are what matter.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import NocConfig

__all__ = ["NocEnergyModel"]

_ROUTER_PJ_PER_FLIT = 0.62
_LINK_PJ_PER_FLIT_HOP = 0.91


@dataclass(frozen=True, slots=True)
class NocEnergyModel:
    router_pj_per_flit: float = _ROUTER_PJ_PER_FLIT
    link_pj_per_flit_hop: float = _LINK_PJ_PER_FLIT_HOP

    @classmethod
    def from_config(cls, cfg: NocConfig) -> "NocEnergyModel":
        """Scale the per-flit constants to the configured flit width."""
        # wider flits would scale both constants linearly; the default
        # 16-byte flit matches the calibration anchors
        scale = cfg.flit_bytes / 16.0
        return cls(
            router_pj_per_flit=_ROUTER_PJ_PER_FLIT * scale,
            link_pj_per_flit_hop=_LINK_PJ_PER_FLIT_HOP * scale,
        )

    def energy_pj(self, router_traversals: float, flit_hops: float) -> float:
        """Total NoC dynamic energy for the given traffic counts."""
        return (
            router_traversals * self.router_pj_per_flit
            + flit_hops * self.link_pj_per_flit_hop
        )
