"""Parallel sweep executor: fan grid points out over a process pool.

Every sensitivity study in the harness — the figure sweeps, the ablation
grids, the fault-rate tables — is a list of *independent* simulator runs
that were, until this module, replayed serially through one Python event
loop.  ``fan_out``/``run_grid`` execute such a grid across a
``multiprocessing`` worker pool while preserving the property the whole
verification story rests on: **the aggregated results are bit-identical
to a serial run** (see ``tests/harness/test_parallel.py``).

Design points:

* *Chunked job queue* — jobs are submitted in contiguous chunks
  (``chunk_size``, default ~4 chunks per worker) so per-job IPC overhead
  amortizes while stragglers still rebalance across the pool.
* *Per-job seed derivation* — grid points that do not pin their own
  ``seed`` get one derived deterministically from ``(base_seed, index)``
  via :func:`derive_seed` (a keyed blake2b hash, *not* Python's
  process-salted ``hash()``), so results never depend on worker
  scheduling or ``PYTHONHASHSEED``.
* *Crash isolation* — a grid point that raises (e.g. a
  :class:`~repro.verify.watchdog.DeadlockError` from a genuinely
  deadlocking configuration, or a crash under fault injection) is
  reported as a :class:`GridFailure` row at its index; sibling points
  complete normally.  A worker process dying outright only fails the
  chunk it was running.
* *Ordered aggregation* — results come back keyed by submission index
  and are returned in input order, so callers can ``zip`` them with
  their parameter values exactly as in the serial code path.

``jobs=1`` executes inline in the calling process (no pool, no pickling)
and is the reference path the parallel path is tested against.
"""
from __future__ import annotations

import hashlib
import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.harness.experiment import RunRow, run_workload

__all__ = [
    "GridPoint",
    "GridFailure",
    "derive_seed",
    "fan_out",
    "run_grid",
    "default_chunk_size",
]

#: modulus for derived seeds: keep them positive 31-bit ints so every
#: consumer (numpy included) accepts them
_SEED_SPACE = 1 << 31


def derive_seed(base_seed: int, *key: Any) -> int:
    """Deterministic per-job seed: blake2b over ``(base_seed, *key)``.

    Stable across processes, platforms and Python invocations —
    deliberately *not* built on ``hash()``, which is salted per process.
    """
    text = repr((int(base_seed),) + tuple(key)).encode("utf-8")
    digest = hashlib.blake2b(text, digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE


@dataclass(frozen=True, slots=True)
class GridPoint:
    """One unit of sweep work: a workload plus its run kwargs.

    ``kwargs`` are passed verbatim to
    :func:`repro.harness.experiment.run_workload`; a missing ``seed`` is
    filled in by :func:`run_grid` from its ``base_seed`` (when given).
    ``label`` is free-form context echoed into failure reports.
    """

    workload: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True, slots=True)
class GridFailure:
    """A grid point that raised instead of producing a row."""

    index: int
    error_type: str
    message: str
    label: str = ""

    def __bool__(self) -> bool:  # failed rows are falsy for easy filtering
        return False

    def render(self) -> str:
        """One-line human-readable form for sweep tables."""
        where = f" [{self.label}]" if self.label else ""
        return f"FAILED{where} ({self.error_type}: {self.message})"


def default_chunk_size(n_items: int, jobs: int) -> int:
    """~4 chunks per worker: amortize IPC, keep stragglers rebalancing."""
    return max(1, -(-n_items // (max(1, jobs) * 4)))


def _guarded(fn: Callable[[Any], Any], index: int, item: Any) -> Any:
    """Run one job, converting an exception into a :class:`GridFailure`."""
    try:
        return fn(item)
    except Exception as exc:
        label = getattr(item, "label", "") or getattr(item, "workload", "")
        return GridFailure(index=index, error_type=type(exc).__name__,
                           message=str(exc), label=str(label))


def _run_chunk(fn: Callable[[Any], Any], start: int,
               chunk: Sequence[Any]) -> list[tuple[int, Any]]:
    """Worker-side entry point: execute one contiguous chunk of jobs."""
    return [(start + k, _guarded(fn, start + k, item))
            for k, item in enumerate(chunk)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits the imported simulator) where the
    platform offers it; fall back to the portable ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def fan_out(fn: Callable[[Any], Any], items: Sequence[Any], *,
            jobs: int = 1, chunk_size: int | None = None) -> list[Any]:
    """Apply ``fn`` to every item, optionally across a process pool.

    Returns one outcome per item, **in input order**: ``fn``'s return
    value, or a :class:`GridFailure` if that item raised.  ``jobs=1``
    (the default) runs inline — same guard, no processes — which is the
    serial reference path.  ``fn`` and the items must be picklable when
    ``jobs > 1``.
    """
    items = list(items)
    jobs = max(1, int(jobs))
    if jobs == 1 or len(items) <= 1:
        return [_guarded(fn, i, item) for i, item in enumerate(items)]

    if chunk_size is None:
        chunk_size = default_chunk_size(len(items), jobs)
    chunks = [(start, items[start:start + chunk_size])
              for start in range(0, len(items), chunk_size)]
    results: list[Any] = [None] * len(items)
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks)),
                             mp_context=_pool_context()) as pool:
        future_chunk = {
            pool.submit(_run_chunk, fn, start, chunk): (start, chunk)
            for start, chunk in chunks
        }
        pending = set(future_chunk)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                start, chunk = future_chunk[fut]
                try:
                    pairs = fut.result()
                except Exception as exc:
                    # the worker process itself died (OOM, signal): fail
                    # this chunk's rows, keep the rest of the grid alive
                    pairs = [
                        (start + k,
                         GridFailure(index=start + k,
                                     error_type=type(exc).__name__,
                                     message=str(exc),
                                     label=str(getattr(item, "label", ""))))
                        for k, item in enumerate(chunk)
                    ]
                for index, outcome in pairs:
                    results[index] = outcome
    return results


def _run_point(point: GridPoint) -> RunRow:
    """Execute one grid point (module-level so it pickles to workers)."""
    return run_workload(point.workload, **dict(point.kwargs))


def run_grid(points: Sequence[GridPoint], *, jobs: int = 1,
             chunk_size: int | None = None,
             base_seed: int | None = None) -> list[RunRow | GridFailure]:
    """Run a grid of workload points; one ``RunRow`` (or ``GridFailure``)
    per point, in input order.

    When ``base_seed`` is given, any point whose kwargs omit ``seed``
    receives ``derive_seed(base_seed, index)`` — the same seed whether
    the grid runs serially or across a pool.
    """
    resolved: list[GridPoint] = []
    for index, point in enumerate(points):
        kwargs = dict(point.kwargs)
        if base_seed is not None and "seed" not in kwargs:
            kwargs["seed"] = derive_seed(base_seed, index)
        resolved.append(GridPoint(point.workload, kwargs, point.label))
    return fan_out(_run_point, resolved, jobs=jobs, chunk_size=chunk_size)
