"""Durable, supervised parallel sweep executor.

Every sensitivity study in the harness — the figure sweeps, the ablation
grids, the fault-rate tables — is a list of *independent* simulator runs
that were, until this module, replayed serially through one Python event
loop.  ``fan_out``/``run_grid`` execute such a grid across a
``multiprocessing`` worker pool while preserving the property the whole
verification story rests on: **the aggregated results are bit-identical
to a serial run** (see ``tests/harness/test_parallel.py``).

Design points:

* *Chunked job queue* — jobs are submitted in contiguous chunks
  (``chunk_size``, default ~4 chunks per worker) so per-job IPC overhead
  amortizes while stragglers still rebalance across the pool.
* *Per-job seed derivation* — grid points that do not pin their own
  ``seed`` get one derived deterministically from ``(base_seed, index)``
  via :func:`derive_seed` (a keyed blake2b hash, *not* Python's
  process-salted ``hash()``), so results never depend on worker
  scheduling or ``PYTHONHASHSEED``.
* *Crash isolation with a failure taxonomy* — a grid point that raises
  becomes a :class:`GridFailure` row at its index; sibling points
  complete normally.  Failures are classified **permanent**
  (deterministic model/config errors: a genuinely deadlocking
  configuration's :class:`~repro.verify.watchdog.DeadlockError`, a
  :class:`~repro.coherence.messages.ProtocolError`, bad arguments) or
  **transient** (worker death, OOM, wall-clock timeouts, injected
  faults): only transient failures are retried, and only permanent ones
  are committed to a result store.
* *Per-point retry, timeout and backoff* — a :class:`RetryPolicy` gives
  each point a wall-clock budget (enforced in the worker via
  ``SIGALRM``) and bounded retries with exponential backoff plus
  deterministic jitter (the jitter comes from :func:`derive_seed`, so a
  retried sweep remains reproducible).
* *Pool supervision* — a worker that dies outright
  (``BrokenProcessPool``: segfault, OOM-kill) no longer takes the sweep
  down: the supervisor respawns the pool, resubmits only the work that
  had not finished, and degrades the affected items to
  :class:`GridFailure` rows once their retry budget is spent.  Hung
  workers that outlive their deadline are terminated the same way.
* *Durability* — given a :class:`~repro.store.ResultStore`,
  :func:`run_grid` looks every point up by its content address before
  fanning out and commits each outcome atomically as it lands, so a
  killed sweep resumes from what is committed (``--resume``) with
  results bit-identical to a cold run.
* *Ordered aggregation* — results come back keyed by submission index
  and are returned in input order, so callers can ``zip`` them with
  their parameter values exactly as in the serial code path.

``jobs=1`` executes inline in the calling process (no pool, no pickling)
and is the reference path the parallel path is tested against.
"""
from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import signal
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.harness.experiment import RunRow, run_workload
from repro.harness.options import RunOptions

__all__ = [
    "GridPoint",
    "GridFailure",
    "RetryPolicy",
    "PointTimeout",
    "PERMANENT_ERRORS",
    "is_permanent_failure",
    "derive_seed",
    "fan_out",
    "run_grid",
    "default_chunk_size",
]

#: modulus for derived seeds: keep them positive 31-bit ints so every
#: consumer (numpy included) accepts them
_SEED_SPACE = 1 << 31


def derive_seed(base_seed: int, *key: Any) -> int:
    """Deterministic per-job seed: blake2b over ``(base_seed, *key)``.

    Stable across processes, platforms and Python invocations —
    deliberately *not* built on ``hash()``, which is salted per process.
    """
    text = repr((int(base_seed),) + tuple(key)).encode("utf-8")
    digest = hashlib.blake2b(text, digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE


@dataclass(frozen=True, slots=True)
class GridPoint:
    """One unit of sweep work: a workload plus its run kwargs.

    ``kwargs`` are passed verbatim to
    :func:`repro.harness.experiment.run_workload`; a missing ``seed`` is
    filled in by :func:`run_grid` from its ``base_seed`` (when given).
    ``label`` is free-form context echoed into failure reports.
    """

    workload: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""


# ---------------------------------------------------------------------
# failure taxonomy
# ---------------------------------------------------------------------
#: Exception type names that identify a *deterministic* failure: the
#: same configuration fails the same way every time, so retrying burns
#: cycles and a result store may commit the failure as final.  Anything
#: else — worker death, OOM, timeouts, I/O hiccups, crashes under
#: injected faults — is treated as transient and eligible for retry.
PERMANENT_ERRORS = frozenset({
    "DeadlockError",        # genuinely deadlocking configuration
    "ProtocolError",        # coherence model rejected the run
    "InvariantViolation",   # end-of-run verification failed
    "SimulationTimeout",    # cycle-budget (not wall-clock) exhaustion
    "ValueError", "TypeError", "KeyError", "AssertionError",
})


def is_permanent_failure(error_type: str) -> bool:
    """Whether an exception type name denotes a deterministic failure."""
    return error_type in PERMANENT_ERRORS


class PointTimeout(Exception):
    """A grid point exceeded its per-point wall-clock budget.

    Raised inside the worker by the ``SIGALRM`` timer that
    :class:`RetryPolicy.timeout` arms; classified transient, so the
    point is retried (the stall may be scheduler noise, not the model).
    """


@dataclass(frozen=True, slots=True)
class GridFailure:
    """A grid point that raised instead of producing a row.

    Beyond the exception itself, the failure carries the point's
    identity — ``workload``/``protocol``/``seed`` — and the tail of the
    worker-side traceback, so a sweep summary line is enough to
    reproduce and diagnose the point without re-running the grid.
    ``permanent`` marks deterministic failures (see
    :data:`PERMANENT_ERRORS`); ``attempts`` counts executions consumed,
    including retries.
    """

    index: int
    error_type: str
    message: str
    label: str = ""
    workload: str = ""
    protocol: str = ""
    seed: int | None = None
    traceback: str = ""
    permanent: bool = False
    attempts: int = 1

    def __bool__(self) -> bool:  # failed rows are falsy for easy filtering
        return False

    def render(self) -> str:
        """One-line human-readable form for sweep tables."""
        where = f" [{self.label}]" if self.label else ""
        ident = [f"workload={self.workload}" if self.workload else "",
                 f"protocol={self.protocol}" if self.protocol else "",
                 f"seed={self.seed}" if self.seed is not None else ""]
        ident = " ".join(p for p in ident if p)
        key = f" {{{ident}}}" if ident else ""
        tries = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        kind = "permanent" if self.permanent else "transient"
        tb = f" | {self.traceback}" if self.traceback else ""
        return (f"FAILED{where}{key} ({self.error_type}: {self.message}; "
                f"{kind}{tries}){tb}")


def _point_identity(item: Any) -> tuple[str, str, int | None]:
    """(workload, protocol, seed) of a grid point, best effort.

    Falls back to empty strings / ``None`` for plain ``fan_out`` items
    that are not :class:`GridPoint`-shaped.
    """
    workload = str(getattr(item, "workload", "") or "")
    kwargs = getattr(item, "kwargs", None) or {}
    protocol = kwargs.get("protocol")
    options = kwargs.get("options")
    if protocol is None and options is not None:
        protocol = getattr(options, "protocol", None)
    seed = kwargs.get("seed")
    return (workload, str(protocol or ""),
            seed if isinstance(seed, int) else None)


def _traceback_tail(limit: int = 3) -> str:
    """The last ``limit`` lines of the active traceback, one line."""
    lines = [ln.strip() for ln in traceback.format_exc().splitlines()
             if ln.strip()]
    return " ; ".join(lines[-limit:])


def _failure_from(exc: Exception, index: int, item: Any, *,
                  tb: str = "") -> GridFailure:
    """Build the :class:`GridFailure` row for one raised grid point."""
    workload, protocol, seed = _point_identity(item)
    label = getattr(item, "label", "") or workload
    error_type = type(exc).__name__
    return GridFailure(
        index=index, error_type=error_type, message=str(exc),
        label=str(label), workload=workload, protocol=protocol, seed=seed,
        traceback=tb, permanent=is_permanent_failure(error_type),
    )


# ---------------------------------------------------------------------
# retry / timeout / backoff policy
# ---------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-point execution budget: wall-clock timeout and bounded retry.

    ``retries`` is the number of *re*-executions granted to a transient
    failure (a point runs at most ``retries + 1`` times); permanent
    failures never retry.  ``timeout`` is seconds of wall clock per
    point, enforced inside the worker via ``SIGALRM`` (0 disables).
    Backoff before retry *k* is ``backoff_base * backoff_factor**(k-1)``
    capped at ``backoff_max``, plus up to ``jitter`` of itself — the
    jitter is *deterministic* (derived from :func:`derive_seed` over the
    point index and attempt), so retried sweeps stay reproducible.
    """

    retries: int = 2
    timeout: float = 0.0
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries cannot be negative")
        if self.timeout < 0 or self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("timeouts/backoffs cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, *key: Any) -> float:
        """Seconds to back off before re-running after ``attempt``
        failed executions (deterministic per ``(attempt, *key)``)."""
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))
        frac = derive_seed(attempt, *key) / _SEED_SPACE
        return base * (1.0 + self.jitter * frac)


#: the legacy behavior: no retries, no timeout — still pool-supervised
_NO_RETRY = RetryPolicy(retries=0, timeout=0.0, backoff_base=0.0)


def default_chunk_size(n_items: int, jobs: int) -> int:
    """~4 chunks per worker: amortize IPC, keep stragglers rebalancing."""
    return max(1, -(-n_items // (max(1, jobs) * 4)))


# ---------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------
def _alarm_handler(signum, frame):  # pragma: no cover - fires async
    raise PointTimeout("point exceeded its wall-clock budget")


def _guarded(fn: Callable[[Any], Any], index: int, item: Any,
             timeout: float = 0.0) -> Any:
    """Run one job, converting an exception into a :class:`GridFailure`.

    A positive ``timeout`` arms a per-point ``SIGALRM`` wall-clock
    budget; exceeding it raises :class:`PointTimeout` (a transient
    failure).  Platforms or threads without ``SIGALRM`` simply skip the
    budget — supervision still bounds hung *workers* via the pool
    deadline.
    """
    armed = False
    previous = None
    if timeout > 0 and hasattr(signal, "SIGALRM"):
        try:
            previous = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout)
            armed = True
        except ValueError:      # not the main thread: no alarm available
            pass
    try:
        return fn(item)
    except Exception as exc:
        return _failure_from(exc, index, item, tb=_traceback_tail())
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def _run_chunk(fn: Callable[[Any], Any], start: int, chunk: Sequence[Any],
               timeout: float = 0.0) -> list[tuple[int, Any]]:
    """Worker-side entry point: execute one contiguous chunk of jobs."""
    return [(start + k, _guarded(fn, start + k, item, timeout))
            for k, item in enumerate(chunk)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits the imported simulator) where the
    platform offers it; fall back to the portable ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ---------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------
#: seconds of slack past a chunk's worker-side alarm budget before the
#: supervisor declares the worker hung and replaces the pool
_DEADLINE_GRACE = 5.0


@dataclass
class _Unit:
    """One in-flight piece of work: a contiguous slice of the grid.

    Initial units are chunks; retry units are always single items so a
    culprit is isolated from innocent chunk-mates.  ``attempt`` counts
    executions already *started* for these items; ``not_before`` delays
    resubmission for backoff.
    """

    start: int
    items: tuple
    attempt: int = 1
    not_before: float = 0.0
    #: this unit was in flight when a pool broke: it re-runs *alone*
    #: (quarantine), so a repeat breakage unambiguously identifies the
    #: culprit and innocents never degrade collaterally
    suspect: bool = False


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, terminating live workers.

    Used when a worker hangs past its deadline: ``shutdown`` alone would
    wait for the hung task forever.  Reaches into the executor's process
    table (no public API exists); failures to terminate are ignored —
    the replacement pool works regardless.
    """
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:       # already dead, or platform says no
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class _Supervisor:
    """Run units across a replaceable process pool until all finalize.

    The loop invariant: every grid index is either finalized in
    ``results`` or present in exactly one queued/in-flight unit.  Pools
    are disposable — ``BrokenProcessPool`` or a blown deadline discards
    the pool, re-queues unfinished units (transient-failure accounting
    applied to the suspects), and a fresh pool picks the queue back up.
    """

    def __init__(self, fn, items, jobs, chunk_size, policy, on_result):
        self.fn = fn
        self.items = list(items)
        self.jobs = jobs
        self.policy = policy
        self.on_result = on_result
        self.results: list[Any] = [None] * len(self.items)
        self.remaining = len(self.items)
        self.queue: deque[_Unit] = deque(
            _Unit(start, tuple(self.items[start:start + chunk_size]))
            for start in range(0, len(self.items), chunk_size)
        )
        self.inflight: dict[Any, tuple[_Unit, float | None]] = {}
        self.pool: ProcessPoolExecutor | None = None
        self.respawns = 0
        # a generous global budget: every *item* may break a pool once
        # per retry (chunks split into singleton suspects after a
        # breakage), plus slack — beyond this something is systemically
        # wrong and remaining work degrades to failure rows
        self.max_respawns = max(4, 2 * len(self.items) * (policy.retries + 1))

    # -- bookkeeping ---------------------------------------------------
    def _finalize(self, index: int, outcome: Any) -> None:
        self.results[index] = outcome
        self.remaining -= 1
        if self.on_result is not None:
            self.on_result(index, outcome)

    def _settle(self, unit: _Unit, pairs: list[tuple[int, Any]]) -> None:
        """Record a unit's outcomes, re-queueing retryable failures."""
        for index, outcome in pairs:
            retryable = (isinstance(outcome, GridFailure)
                         and not outcome.permanent
                         and unit.attempt <= self.policy.retries)
            if retryable:
                delay = self.policy.delay(unit.attempt, index)
                self.queue.append(_Unit(index, (self.items[index],),
                                        unit.attempt + 1,
                                        time.monotonic() + delay))
                continue
            if isinstance(outcome, GridFailure):
                outcome = dataclasses.replace(outcome, attempts=unit.attempt)
            self._finalize(index, outcome)

    def _settle_broken(self, unit: _Unit, exc: BaseException, *,
                       guilty: bool) -> None:
        """A unit's worker died (or hung): quarantine, retry or degrade.

        ``guilty`` means the breakage is attributable to this *unit*
        alone (it was the only unit in flight, or it blew its own
        deadline).  Guilt is only actionable on a **single-item** unit:
        a guilty chunk still cannot say which of its items killed the
        worker, so it splits into singleton suspects instead of
        degrading innocents wholesale.  A guilty singleton is charged
        retry budget, and once that is spent it degrades to a transient
        :class:`GridFailure` row.  A non-guilty unit was collateral
        damage of someone else's breakage — it re-queues without being
        charged, marked ``suspect`` so the quarantine in
        :meth:`_submit_eligible` runs it solo and guilt can be assigned
        next time.
        """
        guilty = guilty and len(unit.items) == 1
        if guilty and unit.attempt > self.policy.retries:
            for k, item in enumerate(unit.items):
                workload, protocol, seed = _point_identity(item)
                self._finalize(unit.start + k, GridFailure(
                    index=unit.start + k, error_type=type(exc).__name__,
                    message=str(exc) or "worker process died",
                    label=str(getattr(item, "label", "") or workload),
                    workload=workload, protocol=protocol, seed=seed,
                    permanent=False, attempts=unit.attempt,
                ))
            return
        next_attempt = unit.attempt + 1 if guilty else unit.attempt
        delay = (self.policy.delay(unit.attempt, unit.start)
                 if guilty else 0.0)
        for k, item in enumerate(unit.items):
            self.queue.append(_Unit(unit.start + k, (item,), next_attempt,
                                    time.monotonic() + delay, suspect=True))

    def _degrade_everything(self, reason: str) -> None:
        """Respawn budget exhausted: fail whatever is still pending."""
        pending = [u for u, _d in self.inflight.values()] + list(self.queue)
        self.inflight.clear()
        self.queue.clear()
        for unit in pending:
            for k, item in enumerate(unit.items):
                workload, protocol, seed = _point_identity(item)
                self._finalize(unit.start + k, GridFailure(
                    index=unit.start + k, error_type="RuntimeError",
                    message=reason,
                    label=str(getattr(item, "label", "") or workload),
                    workload=workload, protocol=protocol, seed=seed,
                    permanent=False, attempts=unit.attempt,
                ))

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(
                max_workers=max(1, self.jobs),
                mp_context=_pool_context(),
            )
        return self.pool

    def _discard_pool(self, *, kill: bool) -> None:
        self.respawns += 1
        if self.pool is not None:
            if kill:
                _kill_pool(self.pool)
            else:
                self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    def _pop_eligible(self, now: float, *,
                      suspects_only: bool = False) -> _Unit | None:
        """The first queued unit whose backoff delay has elapsed."""
        for _ in range(len(self.queue)):
            unit = self.queue.popleft()
            if unit.not_before <= now and (unit.suspect
                                           or not suspects_only):
                return unit
            self.queue.append(unit)
        return None

    def _gating_units(self) -> list[_Unit]:
        """The queued units eligible to be submitted next (suspects
        quarantine the queue: while any exist, only they may run)."""
        suspects = [u for u in self.queue if u.suspect]
        return suspects if suspects else list(self.queue)

    def _submit_one(self, unit: _Unit, now: float) -> None:
        pool = self._ensure_pool()
        future = pool.submit(_run_chunk, self.fn, unit.start, unit.items,
                             self.policy.timeout)
        deadline = None
        if self.policy.timeout > 0:
            # the worker-side alarm should fire first; the deadline is a
            # backstop for a worker stuck ignoring signals
            budget = self.policy.timeout * len(unit.items)
            deadline = now + budget + _DEADLINE_GRACE
        self.inflight[future] = (unit, deadline)

    def _submit_eligible(self) -> None:
        """Fill the pool up to ``jobs`` in-flight units.

        Capping in-flight submissions at the worker count keeps the
        suspect set small when a pool breaks: only units actually handed
        to a worker can have caused it.  While suspect units exist they
        run strictly **alone** — the quarantine that turns "some worker
        died" into "this unit kills workers".
        """
        now = time.monotonic()
        while self.queue and len(self.inflight) < self.jobs:
            if any(u.suspect for u in self.queue):
                if self.inflight:
                    break       # quarantine: wait for the pool to drain
                unit = self._pop_eligible(now, suspects_only=True)
                if unit is not None:
                    self._submit_one(unit, now)
                break           # solo: exactly one suspect in flight
            unit = self._pop_eligible(now)
            if unit is None:
                break
            self._submit_one(unit, now)

    # -- the loop ------------------------------------------------------
    def run(self) -> list[Any]:
        """Execute every unit; the ordered outcome list."""
        try:
            while self.remaining:
                self._submit_eligible()
                if not self.inflight:
                    # everything submittable is backoff-delayed; sleep
                    # until the gating set (suspects first) is eligible
                    now = time.monotonic()
                    soonest = min(u.not_before for u in self._gating_units())
                    time.sleep(max(0.0, soonest - now))
                    continue
                self._turn()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
                self.pool = None
        return self.results

    def _wait_timeout(self) -> float | None:
        """How long the next ``wait`` may block: until the nearest
        in-flight deadline or queued-backoff expiry, else forever."""
        now = time.monotonic()
        marks = [d for _u, d in self.inflight.values() if d is not None]
        if len(self.inflight) < self.jobs:
            marks += [u.not_before for u in self.queue if u.not_before > now]
        if not marks:
            return None
        return max(0.01, min(marks) - now)

    def _turn(self) -> None:
        # a break fails *every* in-flight future; guilt is attributable
        # only when a single unit was in flight (the quarantine ensures
        # repeat offenders end up in exactly that situation)
        solo = len(self.inflight) == 1
        done, _pending = wait(set(self.inflight),
                              timeout=self._wait_timeout(),
                              return_when=FIRST_COMPLETED)
        if not done:
            self._reap_hung()
            return
        broken = False
        broken_exc: BaseException = BrokenProcessPool(
            "worker process pool broke")
        for future in done:
            unit, _deadline = self.inflight.pop(future)
            try:
                pairs = future.result()
            except BaseException as exc:
                broken = True
                broken_exc = exc
                self._settle_broken(unit, exc, guilty=solo)
            else:
                self._settle(unit, pairs)
        if broken:
            self._on_pool_broken(broken_exc)

    def _reap_hung(self) -> None:
        """``wait`` timed out: kill hung workers, re-queue the rest."""
        now = time.monotonic()
        expired = {f for f, (_u, d) in self.inflight.items()
                   if d is not None and now >= d}
        if not expired:
            return              # woke up for a backoff expiry — harmless
        # the pool cannot cancel a running task: replace the pool, treat
        # expired units as transient timeouts, re-queue the innocents
        self._discard_pool(kill=True)
        for future, (unit, _deadline) in list(self.inflight.items()):
            if future in expired:
                # a blown deadline is per-unit evidence: guilty
                self._settle_broken(
                    unit, PointTimeout(
                        f"worker exceeded {self.policy.timeout:.1f}s "
                        "point budget and was terminated"),
                    guilty=True)
            else:
                self.queue.append(dataclasses.replace(unit, not_before=0.0))
        self.inflight.clear()
        self._check_respawn_budget()

    def _on_pool_broken(self, exc: BaseException) -> None:
        """Drain doomed futures, then replace the pool."""
        # once the pool is broken the executor fails every outstanding
        # future promptly; drain them so their units re-queue
        for future in list(self.inflight):
            unit, _deadline = self.inflight.pop(future)
            try:
                pairs = future.result(timeout=30.0)
            except BaseException:
                self._settle_broken(unit, exc, guilty=False)
            else:
                self._settle(unit, pairs)
        self._discard_pool(kill=False)
        self._check_respawn_budget()

    def _check_respawn_budget(self) -> None:
        if self.respawns > self.max_respawns:
            self._degrade_everything(
                f"worker pool replaced {self.respawns} times; "
                "giving up on the remaining points")


def fan_out(fn: Callable[[Any], Any], items: Sequence[Any], *,
            jobs: int = 1, chunk_size: int | None = None,
            retry: RetryPolicy | None = None,
            on_result: Callable[[int, Any], None] | None = None
            ) -> list[Any]:
    """Apply ``fn`` to every item, optionally across a supervised pool.

    Returns one outcome per item, **in input order**: ``fn``'s return
    value, or a :class:`GridFailure` if that item raised (after any
    retries granted by ``retry`` — by default there are none).
    ``on_result`` is called in the parent as ``(index, outcome)`` the
    moment each item finalizes, in completion (not input) order — the
    hook a result store uses for per-point commits.  ``jobs=1`` (the
    default) runs inline — same guard, same retry policy, no processes —
    which is the serial reference path.  ``fn`` and the items must be
    picklable when ``jobs > 1``.
    """
    items = list(items)
    jobs = max(1, int(jobs))
    policy = retry if retry is not None else _NO_RETRY
    if jobs == 1 or len(items) <= 1:
        results = []
        for index, item in enumerate(items):
            outcome = _attempt_serial(fn, index, item, policy)
            if on_result is not None:
                on_result(index, outcome)
            results.append(outcome)
        return results
    if chunk_size is None:
        chunk_size = default_chunk_size(len(items), jobs)
    return _Supervisor(fn, items, jobs, chunk_size, policy, on_result).run()


def _attempt_serial(fn: Callable[[Any], Any], index: int, item: Any,
                    policy: RetryPolicy) -> Any:
    """The inline path: guard + retry/backoff, no pool."""
    attempt = 1
    while True:
        outcome = _guarded(fn, index, item, policy.timeout)
        if not isinstance(outcome, GridFailure):
            return outcome
        if outcome.permanent or attempt > policy.retries:
            return dataclasses.replace(outcome, attempts=attempt)
        time.sleep(policy.delay(attempt, index))
        attempt += 1


# ---------------------------------------------------------------------
# the grid front end
# ---------------------------------------------------------------------
def _run_point(point: GridPoint) -> RunRow:
    """Execute one grid point (module-level so it pickles to workers)."""
    return run_workload(point.workload, **dict(point.kwargs))


def retry_from_options(options: RunOptions | None) -> RetryPolicy | None:
    """The :class:`RetryPolicy` a ``RunOptions`` implies (None = legacy
    no-retry behavior when no retry knob is set)."""
    if options is None:
        return None
    if (options.point_retries == 0 and options.point_timeout == 0.0):
        return None
    return RetryPolicy(retries=options.point_retries,
                       timeout=options.point_timeout,
                       backoff_base=options.point_backoff)


def _point_traced(point: GridPoint) -> bool:
    """Whether this point produces an observability capture (captures
    are run-local, so traced points bypass store lookups)."""
    options = point.kwargs.get("options")
    return bool(options is not None and getattr(options, "tracing", False))


def _commit(store, key: str, point: GridPoint, outcome: Any) -> None:
    """Commit one finalized outcome: rows always (obs stripped),
    failures only when permanent — transient failures stay uncommitted
    so a resume retries them."""
    workload, protocol, seed = _point_identity(point)
    if isinstance(outcome, RunRow):
        if outcome.obs is not None:
            outcome = dataclasses.replace(outcome, obs=None)
        store.put(key, outcome, kind="row", workload=workload,
                  protocol=protocol, seed=seed)
    elif isinstance(outcome, GridFailure) and outcome.permanent:
        store.put(key, outcome, kind="failure", workload=workload,
                  protocol=protocol, seed=seed)


def run_point_stored(point: GridPoint, store: Any, *,
                     resume: bool = True) -> RunRow:
    """Run one grid point through a result store, serially.

    Serves a committed ``RunRow`` when ``resume`` allows; otherwise runs
    the point and commits the outcome.  Unlike :func:`run_grid`, an
    exception **propagates** to the caller (after committing a
    permanent-failure record) — this is the durable twin of calling
    :func:`~repro.harness.experiment.run_workload` directly, used by the
    serial figure path.  A committed permanent failure is *not* served:
    the point re-runs so the caller sees the real exception.
    """
    from repro.store import point_key

    key = point_key(point.workload, point.kwargs)
    if resume and not _point_traced(point):
        hit = store.get(key)
        if isinstance(hit, RunRow):
            return hit
    try:
        row = run_workload(point.workload, **dict(point.kwargs))
    except Exception as exc:
        failure = _failure_from(exc, 0, point, tb=_traceback_tail())
        if failure.permanent:
            _commit(store, key, point, failure)
        raise
    _commit(store, key, point, row)
    return row


def run_grid(points: Sequence[GridPoint], *, jobs: int = 1,
             chunk_size: int | None = None,
             base_seed: int | None = None,
             options: RunOptions | None = None,
             store: Any | None = None,
             retry: RetryPolicy | None = None
             ) -> list[RunRow | GridFailure]:
    """Run a grid of workload points; one ``RunRow`` (or ``GridFailure``)
    per point, in input order.

    When ``base_seed`` is given, any point whose kwargs omit ``seed``
    receives ``derive_seed(base_seed, index)`` — the same seed whether
    the grid runs serially or across a pool.

    ``options`` supplies the durability/robustness knobs: a
    ``store`` path turns on the content-addressed result store
    (committed points are served without re-running when
    ``options.resume`` is true, and every finalized point commits
    atomically as it lands), and the ``point_retries`` /
    ``point_timeout`` / ``point_backoff`` fields become the
    :class:`RetryPolicy`.  Explicit ``store=`` (an open
    :class:`~repro.store.ResultStore`) and ``retry=`` arguments
    override the options-derived ones.  Resumed and cold grids are
    bit-identical (see ``tests/store/test_resume.py``).
    """
    resolved: list[GridPoint] = []
    for index, point in enumerate(points):
        kwargs = dict(point.kwargs)
        if base_seed is not None and "seed" not in kwargs:
            kwargs["seed"] = derive_seed(base_seed, index)
        resolved.append(GridPoint(point.workload, kwargs, point.label))

    if retry is None:
        retry = retry_from_options(options)
    own_store = False
    if store is None and options is not None and options.store:
        from repro.store import open_store

        store = open_store(options.store)
        own_store = True
    resume = options.resume if options is not None else True
    backend = options.backend if options is not None else "serial"

    try:
        return _run_grid_stored(resolved, jobs=jobs, chunk_size=chunk_size,
                                store=store, resume=resume, retry=retry,
                                backend=backend)
    finally:
        if own_store and store is not None:
            store.close()


def _run_grid_stored(resolved: list[GridPoint], *, jobs: int,
                     chunk_size: int | None, store: Any | None,
                     resume: bool, retry: RetryPolicy | None,
                     backend: str = "serial"
                     ) -> list[RunRow | GridFailure]:
    """Grid execution with optional store lookup/commit around it.

    ``backend="batch"`` routes the pending points through the lockstep
    lane executor (:func:`repro.harness.batch.batch_fan_out`) — an
    in-process path that shares representative runs across d/gi-swept
    points and honors the same outcome/on_result contract as
    :func:`fan_out` — so store lookups and per-point commits compose
    identically, and served rows simply never become lanes.
    """
    if backend == "batch":
        from repro.harness.batch import batch_fan_out

        def execute(subset, on_result=None):
            return batch_fan_out(subset, retry=retry, on_result=on_result)
    else:
        def execute(subset, on_result=None):
            return fan_out(_run_point, subset, jobs=jobs,
                           chunk_size=chunk_size, retry=retry,
                           on_result=on_result)

    if store is None:
        return execute(resolved)

    from repro.store import point_key

    keys = [point_key(p.workload, p.kwargs) for p in resolved]
    results: list[Any] = [None] * len(resolved)
    pending: list[int] = []
    for i, point in enumerate(resolved):
        hit = None
        if resume and not _point_traced(point):
            hit = store.get(keys[i])
        if hit is None:
            pending.append(i)
        else:
            if isinstance(hit, GridFailure):
                hit = dataclasses.replace(hit, index=i)
            results[i] = hit

    if pending:
        subset = [resolved[i] for i in pending]

        def commit(local_index: int, outcome: Any) -> None:
            i = pending[local_index]
            _commit(store, keys[i], resolved[i], outcome)

        outcomes = execute(subset, on_result=commit)
        for local_index, outcome in enumerate(outcomes):
            i = pending[local_index]
            if isinstance(outcome, GridFailure):
                outcome = dataclasses.replace(outcome, index=i)
            results[i] = outcome
    return results
