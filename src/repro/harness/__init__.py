"""repro.harness subpackage."""
