"""repro.harness subpackage.

The one public import most callers need is :class:`RunOptions` — the
consolidated run-configuration value accepted by ``experiment_config``,
``run_workload``, ``run_pair``, ``SweepCache``, ``faults.sweep`` and the
figures CLI.
"""
from repro.harness.options import RunOptions, resolve_options

__all__ = ["RunOptions", "resolve_options"]
