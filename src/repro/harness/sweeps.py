"""Parameterized sweep helpers.

Library-level building blocks for sensitivity studies beyond the fixed
figure set: sweep thread counts, d-distances, or GI timeouts over any
registered workload and get back aligned result rows.

Every sweep accepts ``jobs=N`` to fan its grid points out over a process
pool (see :mod:`repro.harness.parallel`); results are aggregated in
parameter order and are bit-identical to a serial run.  A point that
raises — e.g. a configuration that genuinely deadlocks — becomes a
:class:`~repro.harness.parallel.GridFailure` row; sibling points still
complete.

Passing ``options=RunOptions(store=...)`` makes the sweep durable:
every completed point commits to a content-addressed result store and a
re-run (or a crashed sweep restarted with ``resume``) serves committed
points from the store instead of recomputing them, with bit-identical
results.  ``point_retries``/``point_timeout`` in the same options add
bounded retry with backoff and per-point wall-clock budgets.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.harness.experiment import DEFAULT_SCALE, DEFAULT_THREADS, RunRow
from repro.harness.options import RunOptions
from repro.harness.parallel import GridFailure, GridPoint, run_grid

__all__ = ["SweepResult", "sweep_d_distance", "sweep_threads",
           "sweep_gi_timeout", "sweep_protocols", "sweep_topology_scale"]


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Rows of a 1-D sweep, aligned with its parameter values.

    A row is either a :class:`RunRow` or, when that grid point crashed
    in isolation, a :class:`GridFailure`.
    """

    parameter: str
    values: tuple
    rows: tuple[RunRow | GridFailure, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.rows):
            raise ValueError("values/rows length mismatch")

    def failures(self) -> list[tuple[object, GridFailure]]:
        """(parameter value, failure) for every crashed grid point."""
        return [(v, r) for v, r in zip(self.values, self.rows)
                if isinstance(r, GridFailure)]

    def ok_rows(self) -> list[RunRow]:
        """The successful rows, in parameter order."""
        return [r for r in self.rows if not isinstance(r, GridFailure)]

    def series(self, attr: str) -> list[float]:
        """Extract one column, e.g. ``series('cycles')``; a failed grid
        point contributes ``nan``."""
        return [
            math.nan if isinstance(r, GridFailure) else float(getattr(r, attr))
            for r in self.rows
        ]

    def speedups_vs_first(self) -> list[float]:
        """Cycle-count speedup of each point relative to the first."""
        first = self.rows[0]
        if isinstance(first, GridFailure):
            raise ValueError(
                f"cannot normalize speedups: first sweep point "
                f"({self.parameter}={self.values[0]!r}) failed "
                f"({first.error_type}: {first.message})"
            )
        base = first.cycles
        return [
            math.nan if isinstance(r, GridFailure) else base / r.cycles
            for r in self.rows
        ]

    def render(self) -> str:
        """One-line-per-point text summary."""
        lines = [f"sweep over {self.parameter}"]
        for v, r in zip(self.values, self.rows):
            if isinstance(r, GridFailure):
                lines.append(f"  {self.parameter}={v!r:>6}: {r.render()}")
                continue
            lines.append(
                f"  {self.parameter}={v!r:>6}: cycles={r.cycles:>9} "
                f"error={r.error_pct:8.3f}% GS%={r.gs_serviced_pct:5.1f} "
                f"GI%={r.gi_serviced_pct:5.1f}"
            )
        return "\n".join(lines)


def _sweep(parameter: str, values: Sequence, points: list[GridPoint], *,
           jobs: int, options: RunOptions | None) -> SweepResult:
    if options is not None:
        points = [
            GridPoint(p.workload, {"options": options, **p.kwargs}, p.label)
            for p in points
        ]
        if jobs == 1:
            jobs = options.jobs
    # options also carries the durability/robustness knobs: the result
    # store path and the per-point retry/timeout policy
    rows = run_grid(points, jobs=jobs, options=options)
    return SweepResult(parameter, tuple(values), tuple(rows))


def sweep_d_distance(workload: str, d_values: Sequence[int] = (0, 2, 4, 8, 16),
                     *, num_threads: int = DEFAULT_THREADS,
                     scale: float = DEFAULT_SCALE, seed: int = 12345,
                     jobs: int = 1, options: RunOptions | None = None,
                     **kwargs) -> SweepResult:
    """Accuracy/benefit trade-off curve over the d-distance knob
    (``d=0`` runs baseline MESI)."""
    points = [
        GridPoint(workload, dict(d_distance=d, num_threads=num_threads,
                                 scale=scale, seed=seed, **kwargs),
                  label=f"d_distance={d}")
        for d in d_values
    ]
    return _sweep("d_distance", d_values, points, jobs=jobs, options=options)


def sweep_threads(workload: str, thread_counts: Sequence[int] = (1, 2, 4, 8),
                  *, d_distance: int = 0, scale: float = DEFAULT_SCALE,
                  seed: int = 12345, jobs: int = 1,
                  options: RunOptions | None = None,
                  **kwargs) -> SweepResult:
    """Scalability curve (the Fig. 1 methodology, for any workload)."""
    points = [
        GridPoint(workload, dict(d_distance=d_distance, num_threads=t,
                                 scale=scale, seed=seed, **kwargs),
                  label=f"threads={t}")
        for t in thread_counts
    ]
    return _sweep("threads", thread_counts, points, jobs=jobs,
                  options=options)


def sweep_gi_timeout(workload: str,
                     timeouts: Sequence[int] = (128, 512, 1024),
                     *, d_distance: int = 4,
                     num_threads: int = DEFAULT_THREADS,
                     scale: float = DEFAULT_SCALE, seed: int = 12345,
                     jobs: int = 1, options: RunOptions | None = None,
                     **kwargs) -> SweepResult:
    """The Fig. 12 methodology, for any workload."""
    points = [
        GridPoint(workload, dict(d_distance=d_distance, gi_timeout=t,
                                 num_threads=num_threads, scale=scale,
                                 seed=seed, **kwargs),
                  label=f"gi_timeout={t}")
        for t in timeouts
    ]
    return _sweep("gi_timeout", timeouts, points, jobs=jobs, options=options)


def sweep_protocols(workload: str = "bad_dot_product",
                    protocols: Sequence[str] | None = None,
                    *, d_distance: int = 4,
                    num_threads: int = DEFAULT_THREADS,
                    scale: float = DEFAULT_SCALE, seed: int = 12345,
                    jobs: int = 1, options: RunOptions | None = None,
                    **kwargs) -> SweepResult:
    """One run per registered protocol variant on the same workload.

    Approximation-capable variants run at ``d_distance``; precise
    variants run at ``d=0`` (their policy has no GS/GI to parameterize,
    and ``d>0`` would re-enter the legacy base-protocol spelling).
    """
    from repro.coherence.policy import available_protocols, get_protocol

    if protocols is None:
        protocols = available_protocols()
    points = [
        GridPoint(workload,
                  dict(d_distance=d_distance if get_protocol(p).approx else 0,
                       num_threads=num_threads, scale=scale, seed=seed,
                       protocol=p, **kwargs),
                  label=f"protocol={p}")
        for p in protocols
    ]
    return _sweep("protocol", tuple(protocols), points, jobs=jobs,
                  options=options)


def sweep_topology_scale(workload: str = "bad_dot_product",
                         topologies: Sequence[str] | None = None,
                         core_counts: Sequence[int] = (24, 64, 128, 256),
                         *, d_distance: int = 4, gi_timeout: int = 1024,
                         scale: float = DEFAULT_SCALE, seed: int = 12345,
                         jobs: int = 1, options: RunOptions | None = None,
                         **kwargs) -> SweepResult:
    """One run per (topology, core count) — the ``fig_topology`` grid.

    Sweeps the interconnect shape (every registered topology by
    default) against core count, so GI-timeout flash rate, GS
    acceptance, and hop-weighted flit traffic can be read against the
    growing NoC distance to the directory.  Sweep values are
    ``(topology, cores)`` pairs, in that nesting order.
    """
    from repro.noc.topologies import available_topologies

    if topologies is None:
        topologies = available_topologies()
    values = [(t, c) for t in topologies for c in core_counts]
    points = [
        GridPoint(workload,
                  dict(d_distance=d_distance, gi_timeout=gi_timeout,
                       num_threads=c, topology=t, scale=scale, seed=seed,
                       **kwargs),
                  label=f"topology={t} cores={c}")
        for t, c in values
    ]
    return _sweep("topology_scale", tuple(values), points, jobs=jobs,
                  options=options)
