"""Parameterized sweep helpers.

Library-level building blocks for sensitivity studies beyond the fixed
figure set: sweep thread counts, d-distances, or GI timeouts over any
registered workload and get back aligned result rows.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.harness.experiment import (
    DEFAULT_SCALE, DEFAULT_THREADS, RunRow, run_workload,
)

__all__ = ["SweepResult", "sweep_d_distance", "sweep_threads",
           "sweep_gi_timeout"]


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Rows of a 1-D sweep, aligned with its parameter values."""

    parameter: str
    values: tuple
    rows: tuple[RunRow, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.rows):
            raise ValueError("values/rows length mismatch")

    def series(self, attr: str) -> list[float]:
        """Extract one column, e.g. ``series('cycles')``."""
        return [float(getattr(r, attr)) for r in self.rows]

    def speedups_vs_first(self) -> list[float]:
        """Cycle-count speedup of each point relative to the first."""
        base = self.rows[0].cycles
        return [base / r.cycles for r in self.rows]

    def render(self) -> str:
        """One-line-per-point text summary."""
        lines = [f"sweep over {self.parameter}"]
        for v, r in zip(self.values, self.rows):
            lines.append(
                f"  {self.parameter}={v!r:>6}: cycles={r.cycles:>9} "
                f"error={r.error_pct:8.3f}% GS%={r.gs_serviced_pct:5.1f} "
                f"GI%={r.gi_serviced_pct:5.1f}"
            )
        return "\n".join(lines)


def sweep_d_distance(workload: str, d_values: Sequence[int] = (0, 2, 4, 8, 16),
                     *, num_threads: int = DEFAULT_THREADS,
                     scale: float = DEFAULT_SCALE, seed: int = 12345,
                     **kwargs) -> SweepResult:
    """Accuracy/benefit trade-off curve over the d-distance knob
    (``d=0`` runs baseline MESI)."""
    rows = tuple(
        run_workload(workload, d_distance=d, num_threads=num_threads,
                     scale=scale, seed=seed, **kwargs)
        for d in d_values
    )
    return SweepResult("d_distance", tuple(d_values), rows)


def sweep_threads(workload: str, thread_counts: Sequence[int] = (1, 2, 4, 8),
                  *, d_distance: int = 0, scale: float = DEFAULT_SCALE,
                  seed: int = 12345, **kwargs) -> SweepResult:
    """Scalability curve (the Fig. 1 methodology, for any workload)."""
    rows = tuple(
        run_workload(workload, d_distance=d_distance, num_threads=t,
                     scale=scale, seed=seed, **kwargs)
        for t in thread_counts
    )
    return SweepResult("threads", tuple(thread_counts), rows)


def sweep_gi_timeout(workload: str,
                     timeouts: Sequence[int] = (128, 512, 1024),
                     *, d_distance: int = 4,
                     num_threads: int = DEFAULT_THREADS,
                     scale: float = DEFAULT_SCALE, seed: int = 12345,
                     **kwargs) -> SweepResult:
    """The Fig. 12 methodology, for any workload."""
    rows = tuple(
        run_workload(workload, d_distance=d_distance, gi_timeout=t,
                     num_threads=num_threads, scale=scale, seed=seed,
                     **kwargs)
        for t in timeouts
    )
    return SweepResult("gi_timeout", tuple(timeouts), rows)
