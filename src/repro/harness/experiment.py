"""Experiment runner: one (workload, protocol-config) -> one result row.

Defines the *experiment machine*: the paper's Table 1 machine with the
cache capacities scaled down in proportion to our scaled-down inputs
(DESIGN.md substitution 2).  The paper streams tens of megabytes through
32 kB L1s; our inputs are ~100x smaller, so the experiment machine uses
2 kB L1s / 8 kB L2 slices to preserve the stream-to-cache ratio that
drives eviction pressure and bounds approximate-state lifetimes.  All
other Table 1 parameters (cores, mesh, latencies, GI timeout) are kept.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.config import SimConfig, default_config, noc_for_topology
from repro.common.types import MessageClass
from repro.energy.accounting import EnergyAccountant, EnergyReport
from repro.harness.options import RunOptions, resolve_options
from repro.obs.capture import ObsCapture
from repro.workloads.base import WorkloadResult
from repro.workloads.registry import create

__all__ = ["experiment_config", "RunRow", "run_workload",
           "run_workload_result", "row_from_result", "run_pair",
           "DEFAULT_THREADS", "DEFAULT_SCALE", "WATCHDOG_INTERVAL"]

DEFAULT_THREADS = 24
DEFAULT_SCALE = 0.5


#: watchdog cadence for experiment runs: generous against the slowest
#: workload phase, but orders of magnitude tighter than the blind
#: ``max_cycles`` abort it replaces
WATCHDOG_INTERVAL = 100_000


def experiment_config(*, enabled: bool, d_distance: int = 4,
                      gi_timeout: int = 1024,
                      num_cores: int = DEFAULT_THREADS,
                      protocol: str | None = None,
                      topology: str | None = None,
                      options: RunOptions | None = None,
                      check_invariants: bool | None = None,
                      fault_rate: float | None = None,
                      fault_seed: int | None = None,
                      fault_policy: str | None = None) -> SimConfig:
    """The scaled experiment machine (see module docstring).

    Run-shaping knobs — invariant checking, fault injection, event
    tracing, the coherence ``protocol``, the NoC ``topology`` — come in
    through ``options`` (:class:`RunOptions`); the individual
    ``check_invariants``/``fault_*`` keywords are deprecated shims.  An
    explicit ``protocol``/``topology`` argument overrides the matching
    ``options`` field (legacy base-protocol spellings like ``"moesi"``
    still resolve through the registry shim, which warns).  The default
    mesh at paper core counts is Table 1's machine exactly; a
    non-default topology — or more cores than the 6x4 mesh holds —
    rebuilds the NoC through
    :func:`~repro.common.config.noc_for_topology`.  The progress
    watchdog is always armed so a deadlocked experiment fails in ~2x
    ``WATCHDOG_INTERVAL`` cycles with a diagnostic dump instead of
    spinning to ``max_cycles``.
    """
    opts = resolve_options(
        options, who="experiment_config", check_invariants=check_invariants,
        fault_rate=fault_rate, fault_seed=fault_seed,
        fault_policy=fault_policy,
    )
    if protocol is None:
        protocol = opts.protocol
    if topology is None:
        topology = opts.topology
    # The experiment machine is the paper's Table 1 machine, unmodified:
    # with the self-limiting scribble-fallback semantics the approximate
    # dynamics do not depend on cache-capacity pressure, so no scaling of
    # the hierarchy is needed despite the scaled-down inputs.
    cfg = default_config().with_ghostwriter(
        enabled=enabled, d_distance=d_distance, gi_timeout=gi_timeout,
    )
    # noc and num_cores must land in the same replace: validation runs
    # per replace, and a non-default topology sized for few cores would
    # reject Table 1's 24 cores (and vice versa) mid-update
    noc = cfg.noc
    if topology != "mesh" or num_cores > noc.num_nodes:
        noc = noc_for_topology(topology, num_cores)
    return replace(
        cfg, num_cores=num_cores, noc=noc, protocol=protocol,
        fast_lane=opts.fast_lane,
        verify=opts.verify_config(watchdog_interval=WATCHDOG_INTERVAL),
        faults=opts.fault_config(),
        obs=opts.obs_config(),
    )


@dataclass(frozen=True, slots=True)
class RunRow:
    """Everything the figure drivers need from one run."""

    workload: str
    d_distance: int           # 0 encodes "baseline MESI" (Fig. 8 x-axis)
    cycles: int
    error_pct: float
    energy: EnergyReport
    traffic: dict[MessageClass, int]
    gs_serviced: int          # transitions into GS
    gi_serviced: int          # transitions into GI
    gs_store_hits: int        # store hits while in GS
    gi_store_hits: int        # store hits while in GI
    store_miss_on_s: int
    store_miss_on_i: int
    loads: int
    stores: int
    load_misses: int
    store_misses: int
    #: coherence protocol variant the run used (registry name)
    protocol: str = "ghostwriter"
    #: hop-weighted flit traffic (the NoC's ``flit_hops`` counter) —
    #: the distance-sensitive traffic metric of ``fig_topology``
    flit_hops: int = 0
    #: flits injected, for per-flit hop averages
    flits: int = 0
    #: GI flash invalidations fired by the timeout sweeper
    #: (``gi_timeout_invalidations``) — the staleness-bound metric
    gi_flashes: int = 0
    #: observability capture of the run (None unless tracing was on);
    #: excluded from comparisons so serial-vs-parallel row equality is
    #: about the simulated results, not the capture objects
    obs: ObsCapture | None = field(default=None, compare=False, repr=False)

    @property
    def gs_serviced_pct(self) -> float:
        """Fig. 7a: share of would-miss stores on S serviced by GS."""
        num = self.gs_serviced + self.gs_store_hits
        den = num + self.store_miss_on_s
        return 100.0 * num / den if den else 0.0

    @property
    def gi_serviced_pct(self) -> float:
        """Fig. 7b: share of would-miss stores on I serviced by GI."""
        num = self.gi_serviced + self.gi_store_hits
        den = num + self.store_miss_on_i
        return 100.0 * num / den if den else 0.0

    @property
    def total_traffic(self) -> int:
        """All coherence messages of the run."""
        return sum(self.traffic.values())

    @property
    def hops_per_flit(self) -> float:
        """Mean hops a flit traveled — distance cost of the topology."""
        return self.flit_hops / self.flits if self.flits else 0.0

    @property
    def gi_flashes_per_kcycle(self) -> float:
        """GI flash-invalidation rate, per thousand cycles."""
        return 1000.0 * self.gi_flashes / self.cycles if self.cycles else 0.0


def row_from_result(name: str, d_label: int, result: WorkloadResult,
                    cfg: SimConfig) -> RunRow:
    """Summarize a finished run into the :class:`RunRow` the figures use.

    ``d_label`` is the row's reported d-distance (0 encodes the MESI
    baseline even though the machine ran with ``d_distance=1`` disabled);
    ``cfg`` supplies the protocol tag and the energy model parameters.
    """
    return _row_from_result(name, d_label, result, cfg)


def _row_from_result(name: str, d_label: int, result: WorkloadResult,
                     cfg: SimConfig) -> RunRow:
    machine = result.machine
    l1 = result.stats.child("l1")
    noc = result.stats.child("noc")
    energy = EnergyAccountant(cfg).report(machine)
    return RunRow(
        flit_hops=int(noc.total("flit_hops")),
        flits=int(noc.total("flits")),
        gi_flashes=int(l1.total("gi_timeout_invalidations")),
        obs=ObsCapture.from_machine(machine),
        protocol=cfg.protocol,
        workload=name,
        d_distance=d_label,
        cycles=result.cycles,
        error_pct=result.error_pct,
        energy=energy,
        traffic=machine.network.class_counts(),
        gs_serviced=int(l1.total("gs_serviced")),
        gi_serviced=int(l1.total("gi_serviced")),
        gs_store_hits=int(l1.total("gs_store_hits")),
        gi_store_hits=int(l1.total("gi_store_hits")),
        store_miss_on_s=int(l1.total("store_miss_on_S")),
        store_miss_on_i=int(l1.total("store_miss_on_I")),
        loads=int(l1.total("loads")),
        stores=int(l1.total("stores")),
        load_misses=int(l1.total("load_misses")),
        store_misses=int(l1.total("store_misses")),
    )


def run_workload(name: str, *, d_distance: int,
                 num_threads: int = DEFAULT_THREADS,
                 scale: float = DEFAULT_SCALE, seed: int = 12345,
                 gi_timeout: int = 1024, protocol: str | None = None,
                 topology: str | None = None,
                 options: RunOptions | None = None,
                 check_invariants: bool | None = None,
                 fault_rate: float | None = None,
                 fault_seed: int | None = None,
                 fault_policy: str | None = None,
                 **workload_kwargs) -> RunRow:
    """Run one workload once.  ``d_distance=0`` disables approximation.

    The coherence protocol comes from ``options.protocol`` unless the
    ``protocol`` keyword overrides it.  ``options`` also carries the
    other run-shaping knobs (:class:`RunOptions`); the
    individual ``check_invariants``/``fault_*`` keywords are deprecated
    shims.  When the options enable tracing, the returned row's ``obs``
    field holds the run's :class:`~repro.obs.capture.ObsCapture`.
    """
    opts = resolve_options(
        options, who="run_workload", check_invariants=check_invariants,
        fault_rate=fault_rate, fault_seed=fault_seed,
        fault_policy=fault_policy,
    )
    result, cfg = run_workload_result(
        name, d_distance=d_distance, num_threads=num_threads, scale=scale,
        seed=seed, gi_timeout=gi_timeout, protocol=protocol,
        topology=topology, options=opts, **workload_kwargs,
    )
    return _row_from_result(name, d_distance, result, cfg)


def run_workload_result(
    name: str, *, d_distance: int, num_threads: int = DEFAULT_THREADS,
    scale: float = DEFAULT_SCALE, seed: int = 12345, gi_timeout: int = 1024,
    protocol: str | None = None, topology: str | None = None,
    options: RunOptions | None = None,
    **workload_kwargs,
) -> tuple[WorkloadResult, SimConfig]:
    """:func:`run_workload` up to — but not including — row extraction.

    Returns the raw ``(WorkloadResult, SimConfig)`` pair so callers that
    need the live machine (the batch backend rebuilds one representative
    run into many lanes' rows) can inspect it before
    :func:`row_from_result` summarizes it away.
    """
    enabled = d_distance > 0
    cfg = experiment_config(
        enabled=enabled, d_distance=max(d_distance, 1),
        gi_timeout=gi_timeout, num_cores=num_threads, protocol=protocol,
        topology=topology, options=options,
    )
    w = create(name, num_threads=num_threads, seed=seed, scale=scale,
               **workload_kwargs)
    return w.run(cfg), cfg


def run_pair(name: str, *, d_distance: int,
             num_threads: int = DEFAULT_THREADS,
             scale: float = DEFAULT_SCALE, seed: int = 12345,
             options: RunOptions | None = None,
             jobs: int | None = None, **kwargs) -> tuple[RunRow, RunRow]:
    """(baseline, ghostwriter) rows for one workload and d setting.

    ``options.jobs >= 2`` runs the two legs concurrently via the parallel
    executor (:mod:`repro.harness.parallel`); the rows are bit-identical
    to the serial path either way.  ``options.store`` makes both legs
    durable: committed legs are served from the result store instead of
    re-running.  The bare ``jobs`` keyword is a deprecated shim.
    """
    opts = resolve_options(options, who="run_pair", jobs=jobs)
    if opts.jobs > 1 or opts.store:
        # local import: parallel builds on this module's run_workload
        from repro.harness.parallel import GridFailure, GridPoint, run_grid
        points = [
            GridPoint(name, dict(d_distance=d, num_threads=num_threads,
                                 scale=scale, seed=seed, options=opts,
                                 **kwargs),
                      label=f"d_distance={d}")
            for d in (0, d_distance)
        ]
        base, gw = run_grid(points, jobs=opts.jobs, options=opts)
        for row in (base, gw):
            if isinstance(row, GridFailure):
                raise RuntimeError(
                    f"run_pair leg failed: {row.render()}"
                )
        return base, gw
    base = run_workload(name, d_distance=0, num_threads=num_threads,
                        scale=scale, seed=seed, options=opts, **kwargs)
    gw = run_workload(name, d_distance=d_distance, num_threads=num_threads,
                      scale=scale, seed=seed, options=opts, **kwargs)
    return base, gw
