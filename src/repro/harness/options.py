"""One value object for every run-shaping knob the harness accepts.

PR 1 and PR 2 threaded ``check_invariants``/``fault_rate``/``fault_seed``/
``fault_policy``/``jobs`` by hand through every harness entry point, and
the observability layer would have added three more.  :class:`RunOptions`
consolidates them: ``experiment_config``, ``run_workload``, ``run_pair``,
``SweepCache``, ``faults.sweep`` and the CLI all take one frozen options
value.  The old keyword signatures still work through
:func:`resolve_options`, which emits a :class:`DeprecationWarning` naming
the caller and the legacy keys.
"""
from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any

from repro.common.config import FaultConfig, ObsConfig, VerifyConfig

__all__ = ["RunOptions", "resolve_options", "LEGACY_KWARGS"]

_POLICIES = ("abort", "log", "recover")

#: The pre-PR 3 keyword spellings the harness entry points still accept,
#: mapped to the :class:`RunOptions` field that replaced each one.  This
#: is THE shim table: :func:`resolve_options` validates against it and
#: quotes the new spelling in its warning, and the batch backend's
#: serial-fallback set (``repro.harness.batch``) derives from it.
LEGACY_KWARGS = {
    "check_invariants": "RunOptions.check_invariants",
    "fault_rate": "RunOptions.fault_rate",
    "fault_seed": "RunOptions.fault_seed",
    "fault_policy": "RunOptions.fault_policy",
    "jobs": "RunOptions.jobs",
}


@dataclass(frozen=True, slots=True)
class RunOptions:
    """Run-shaping knobs shared by every harness entry point.

    Frozen and slotted so it can be hashed into sweep-cache keys and
    pickled across the ``--jobs N`` worker boundary unchanged.
    """

    #: End-of-run quiescence + coherence checks (see VerifyConfig).
    check_invariants: bool = True
    #: Cache bit-flips per million cycles (see FaultConfig.cache_rate).
    fault_rate: float = 0.0
    #: RNG seed of the fault injector.
    fault_seed: int = 1
    #: Monitor reaction to caught corruption: abort / log / recover.
    fault_policy: str = "abort"
    #: Worker processes for sweep fan-out (1 = in-process serial).
    jobs: int = 1
    #: Record every protocol event (see ObsConfig.trace_events).
    trace_events: bool = False
    #: Timeline sampling period in cycles; 0 disables sampling.
    timeline_interval: int = 0
    #: Flight-recorder ring depth; 0 defers to ObsConfig's default
    #: (armed automatically whenever ``trace_events`` is on).
    flight_recorder: int = 0
    #: Coherence protocol variant, one of
    #: :func:`repro.coherence.policy.available_protocols`.
    protocol: str = "ghostwriter"
    #: Path of the durable, content-addressed sweep-result store
    #: (SQLite; see :mod:`repro.store`).  ``None`` disables durability.
    store: str | None = None
    #: Serve grid points already committed to ``store`` instead of
    #: re-running them (``--no-resume`` forces recompute-and-overwrite).
    #: Meaningless without ``store``.
    resume: bool = True
    #: Wall-clock seconds granted to each grid point (0 = unlimited);
    #: exceeding it is a *transient* failure, eligible for retry.
    point_timeout: float = 0.0
    #: Re-executions granted to a transiently failing grid point
    #: (worker death, timeout, crash under injected faults); permanent
    #: failures — DeadlockError, ProtocolError — never retry.
    point_retries: int = 0
    #: Base of the exponential retry backoff, in seconds.
    point_backoff: float = 0.25
    #: NoC topology of the simulated machine, one of
    #: :func:`repro.noc.topologies.available_topologies` ("mesh" — the
    #: paper's 6x4 2D mesh — "ring", "crossbar", "chiplet").  The
    #: default is byte-identical to the pre-topology-layer machine and
    #: is elided from store fingerprints (see
    #: :data:`repro.store.keys.NEUTRAL_DEFAULTS`).
    topology: str = "mesh"
    #: Sweep execution backend: ``"serial"`` runs every grid point
    #: through the per-point interpreter; ``"batch"`` lets ``run_grid``
    #: advance groups of points that share a compiled program in
    #: lockstep (:mod:`repro.sim.batch`), falling back per-point where
    #: sharing is unsound.  Results are bit-identical either way.
    backend: str = "serial"
    #: Vectorized hit-run fast lane (:mod:`repro.core.hitrun`): execute
    #: guaranteed-L1-hit op runs as numpy kernels.  Bit-identical to the
    #: scalar event path — an execution-only knob (excluded from store
    #: fingerprints, see :data:`repro.store.keys.EXECUTION_FIELDS`),
    #: kept togglable for the equivalence suite and A/B debugging.
    fast_lane: bool = True

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "batch"):
            raise ValueError(
                f"backend must be 'serial' or 'batch', got {self.backend!r}"
            )
        if self.fault_rate < 0:
            raise ValueError("fault_rate cannot be negative")
        if self.fault_policy not in _POLICIES:
            raise ValueError(
                f"fault_policy must be one of {_POLICIES}, "
                f"got {self.fault_policy!r}"
            )
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.timeline_interval < 0 or self.flight_recorder < 0:
            raise ValueError("obs intervals/depths cannot be negative")
        if self.point_timeout < 0 or self.point_backoff < 0:
            raise ValueError("point timeout/backoff cannot be negative")
        if self.point_retries < 0:
            raise ValueError("point_retries cannot be negative")
        # registry import is deferred so options stays importable from
        # contexts that never touch the coherence layer
        from repro.coherence.policy import available_protocols

        if self.protocol not in available_protocols():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; registered: "
                f"{', '.join(available_protocols())}"
            )
        from repro.noc.topologies import available_topologies

        if self.topology not in available_topologies():
            raise ValueError(
                f"unknown topology {self.topology!r}; registered: "
                f"{', '.join(available_topologies())}"
            )

    # -- derived views -------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when this run produces any observability capture."""
        return (self.trace_events or self.timeline_interval > 0
                or self.flight_recorder > 0)

    def replace(self, **changes: Any) -> "RunOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def verify_config(self, *, watchdog_interval: int = 0) -> VerifyConfig:
        """The VerifyConfig these options imply."""
        return VerifyConfig(check_invariants=self.check_invariants,
                            watchdog_interval=watchdog_interval)

    def fault_config(self) -> FaultConfig:
        """The FaultConfig these options imply."""
        return FaultConfig(cache_rate=self.fault_rate, seed=self.fault_seed,
                           policy=self.fault_policy)

    def obs_config(self) -> ObsConfig:
        """The ObsConfig these options imply."""
        return ObsConfig(trace_events=self.trace_events,
                         timeline_interval=self.timeline_interval,
                         flight_recorder=self.flight_recorder)


def resolve_options(options: RunOptions | None = None, *, who: str,
                    **legacy: Any) -> RunOptions:
    """Merge an options value with legacy keyword arguments.

    ``legacy`` holds the caller's old-style kwargs, each ``None`` when
    not supplied.  Passing any non-``None`` legacy kwarg emits one
    :class:`DeprecationWarning` naming ``who`` and the keys; the values
    override the corresponding ``options`` fields (so mixed calls keep
    their historical meaning during migration).
    """
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if supplied:
        unknown = sorted(set(supplied) - set(LEGACY_KWARGS))
        if unknown:
            raise TypeError(
                f"{who}: unexpected legacy keyword(s) {unknown}; the shim "
                f"only spells {sorted(LEGACY_KWARGS)}"
            )
        renames = ", ".join(
            f"{k} (use {LEGACY_KWARGS[k]})" for k in sorted(supplied)
        )
        warnings.warn(
            f"{who}: keyword(s) {renames} are deprecated; pass "
            "repro.harness.RunOptions instead",
            DeprecationWarning, stacklevel=3,
        )
    base = options if options is not None else RunOptions()
    return dataclasses.replace(base, **supplied) if supplied else base
