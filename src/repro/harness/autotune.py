"""Quality-target auto-tuning of the d-distance knob.

The paper (§3.5) points at PGO/auto-tuning frameworks (Green, SAGE,
dynamic knobs) for selecting the d-distance that meets "an output
quality target specified by the user".  This module implements that
loop for the reproduction: profile-guided search over d for the largest
setting whose measured output error stays within the target.

Error is monotone (non-decreasing) in d for these workloads — enforced
by the test suite — so a binary search over the discrete knob suffices.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiment import (
    DEFAULT_SCALE, DEFAULT_THREADS, RunRow, run_workload,
)

__all__ = ["TuneResult", "tune_d_distance"]


@dataclass(frozen=True, slots=True)
class TuneResult:
    """Outcome of an auto-tuning session."""

    workload: str
    error_target_pct: float
    chosen_d: int
    chosen_row: RunRow
    baseline_cycles: int
    #: every (d, error%) pair evaluated during the search
    evaluations: tuple[tuple[int, float], ...]

    @property
    def speedup_pct(self) -> float:
        """Speedup of the chosen setting vs baseline MESI."""
        return (self.baseline_cycles / self.chosen_row.cycles - 1.0) * 100.0

    def render(self) -> str:
        """Human-readable tuning session summary."""
        evals = ", ".join(f"d={d}: {e:.3f}%" for d, e in self.evaluations)
        return (
            f"auto-tune {self.workload} for error <= "
            f"{self.error_target_pct}%:\n"
            f"  chose d={self.chosen_d} "
            f"(error {self.chosen_row.error_pct:.3f}%, "
            f"speedup {self.speedup_pct:+.2f}%)\n"
            f"  evaluated: {evals}"
        )


def tune_d_distance(
    workload: str,
    error_target_pct: float,
    *,
    d_candidates: tuple[int, ...] = (1, 2, 4, 8, 12, 16),
    num_threads: int = DEFAULT_THREADS,
    scale: float = DEFAULT_SCALE,
    seed: int = 12345,
    **workload_kwargs,
) -> TuneResult:
    """Largest d whose measured error meets the target (0 if none does).

    Runs the baseline once (for the speedup denominator), then binary
    searches the sorted candidate list, profiling one run per probe.
    """
    if error_target_pct < 0:
        raise ValueError("error target must be non-negative")
    candidates = tuple(sorted(set(d_candidates)))
    if not candidates or candidates[0] < 1 or candidates[-1] > 32:
        raise ValueError("d candidates must be within [1, 32]")

    baseline = run_workload(workload, d_distance=0, num_threads=num_threads,
                            scale=scale, seed=seed, **workload_kwargs)

    evaluations: list[tuple[int, float]] = []
    rows: dict[int, RunRow] = {}
    lo, hi = 0, len(candidates) - 1
    best: int | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        d = candidates[mid]
        row = run_workload(workload, d_distance=d, num_threads=num_threads,
                           scale=scale, seed=seed, **workload_kwargs)
        rows[d] = row
        evaluations.append((d, row.error_pct))
        if row.error_pct <= error_target_pct:
            best = d
            lo = mid + 1
        else:
            hi = mid - 1

    if best is None:
        return TuneResult(
            workload=workload, error_target_pct=error_target_pct,
            chosen_d=0, chosen_row=baseline,
            baseline_cycles=baseline.cycles,
            evaluations=tuple(evaluations),
        )
    return TuneResult(
        workload=workload, error_target_pct=error_target_pct,
        chosen_d=best, chosen_row=rows[best],
        baseline_cycles=baseline.cycles,
        evaluations=tuple(evaluations),
    )
