"""Batched grid execution: the ``backend="batch"`` path of ``run_grid``.

Groups a grid's points into lockstep *lane groups* — points that differ
only in the swept ``d_distance`` / ``gi_timeout`` knobs — and drives
each group through the :mod:`repro.sim.batch` engine: one serial
representative run per decision-equivalence class, every provably
identical lane served from it, disagreeing lanes peeled back to the
ordinary per-point interpreter.  The contract is exactly
:func:`repro.harness.parallel.fan_out` over ``_run_point``: one outcome
(``RunRow`` or ``GridFailure``) per point in input order, ``on_result``
fired as each point finalizes — so the store/resume/commit machinery of
``run_grid`` composes unchanged.

Trust-but-verify: for every share event, :data:`VERIFY_SHARED_SAMPLE`
of the shared lanes re-run through the serial interpreter and their
rows are compared against the batch-built rows.  A mismatch (which the
soundness argument says cannot happen — this is the backstop for that
argument) degrades the *whole* share set to serial execution, so the
backend can mispredict performance but never results.

Points that cannot be grouped — no integer ``d_distance``, tracing
enabled (obs captures are run-local), deprecated shim kwargs,
unhashable extras — simply run serially, as do singleton groups.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.experiment import (
    DEFAULT_THREADS, experiment_config, row_from_result,
    run_workload_result,
)
from repro.harness.options import LEGACY_KWARGS
from repro.harness.parallel import (
    _NO_RETRY, GridFailure, GridPoint, RetryPolicy, _attempt_serial,
    _failure_from, _run_point, _traceback_tail,
)
from repro.sim.batch import Lane, DecisionTrace, RepRun, probe_hook, run_group
from repro.store.keys import canonical_point

__all__ = ["BatchReport", "batch_fan_out", "group_key",
           "VERIFY_SHARED_SAMPLE"]

#: shared lanes per share event that re-run serially as an end-to-end
#: cross-check of the sharing proof (0 disables the backstop)
VERIFY_SHARED_SAMPLE = 1

#: deprecated run_workload shim kwargs: points still using them are not
#: worth teaching the batch path about — they fall back to serial.
#: Derived from the one shim table in :mod:`repro.harness.options`.
_SHIM_KWARGS = frozenset(LEGACY_KWARGS)


@dataclass
class BatchReport:
    """What the batch executor actually did, for tests and diagnostics.

    ``reps + verified + serial + degraded`` is the number of full serial
    simulations executed; ``shared`` lanes were served without one.
    """

    groups: int = 0      #: lockstep groups executed
    lanes: int = 0       #: points that entered a lockstep group
    serial: int = 0      #: points run serially (unbatchable/singleton)
    reps: int = 0        #: representative runs (includes peel recursion)
    shared: int = 0      #: lanes served from a representative's machine
    verified: int = 0    #: shared lanes re-run as the serial cross-check
    degraded: int = 0    #: lanes forced serial after a failed cross-check
    divergences: list = field(default_factory=list)  #: (index, why)


def group_key(point: GridPoint):
    """The lockstep-group key of a grid point, or ``None`` when the
    point must run serially.

    Two points share a group exactly when their kwargs agree on
    everything but ``d_distance``/``gi_timeout`` *and* they sit on the
    same side of the approximation on/off switch (``d_distance == 0``
    resolves a different effective protocol, so it never groups with
    enabled lanes).
    """
    kwargs = dict(point.kwargs)
    d = kwargs.get("d_distance")
    if not isinstance(d, int) or isinstance(d, bool):
        return None
    gi = kwargs.get("gi_timeout", 1024)
    if not isinstance(gi, int) or isinstance(gi, bool):
        return None
    if _SHIM_KWARGS & kwargs.keys():
        return None
    options = kwargs.get("options")
    if options is not None and getattr(options, "tracing", False):
        return None
    kwargs.pop("d_distance", None)
    kwargs.pop("gi_timeout", None)
    try:
        key = (canonical_point(point.workload, kwargs), d > 0)
        hash(key)
    except Exception:
        return None
    return key


def _lane_cfg(kwargs: dict):
    """The SimConfig :func:`~repro.harness.experiment.run_workload`
    would build for this point — the per-lane config shared lanes use
    to rebuild their own rows (protocol tag, energy model, d label)."""
    d = kwargs["d_distance"]
    return experiment_config(
        enabled=d > 0, d_distance=max(d, 1),
        gi_timeout=kwargs.get("gi_timeout", 1024),
        num_cores=kwargs.get("num_threads", DEFAULT_THREADS),
        protocol=kwargs.get("protocol"),
        topology=kwargs.get("topology"),
        options=kwargs.get("options"),
    )


def _rep_run(point: GridPoint) -> RepRun:
    """Run one representative serially with the decision probe armed."""
    records: list = []
    with probe_hook(records):
        result, cfg = run_workload_result(point.workload,
                                          **dict(point.kwargs))
    gw = cfg.ghostwriter
    trace = DecisionTrace(records, swept_d=gw.d_distance,
                          mode=gw.similarity_mode)
    return RepRun(result=result, cfg=cfg, trace=trace)


def _shared_row(point: GridPoint, out: RepRun):
    """Rebuild a lane's ``RunRow`` from the representative's machine,
    under the lane's own config and d label."""
    kwargs = dict(point.kwargs)
    cfg = _lane_cfg(kwargs)
    return row_from_result(point.workload, kwargs["d_distance"],
                           out.result, cfg)


def batch_fan_out(points, *, retry: RetryPolicy | None = None,
                  on_result=None, report: BatchReport | None = None):
    """``fan_out(_run_point, points)`` with lockstep lane sharing.

    Runs in-process (representatives are serial runs; the parallelism
    is *across lanes of one run*, not across processes).  Outcomes are
    returned in input order; failures carry the local index, exactly as
    ``fan_out`` reports them.
    """
    points = list(points)
    policy = retry if retry is not None else _NO_RETRY
    rpt = report if report is not None else BatchReport()
    results: list = [None] * len(points)

    def emit(i: int, outcome) -> None:
        results[i] = outcome
        if on_result is not None:
            on_result(i, outcome)

    groups: dict = {}
    serial: list[int] = []
    for i, point in enumerate(points):
        key = group_key(point)
        if key is None:
            serial.append(i)
        else:
            groups.setdefault(key, []).append(i)
    # a singleton group has nothing to share with: plain serial run
    for key in [k for k, idxs in groups.items() if len(idxs) == 1]:
        serial.extend(groups.pop(key))
    rpt.serial += len(serial)
    for i in sorted(serial):
        emit(i, _attempt_serial(_run_point, i, points[i], policy))

    for idxs in groups.values():
        rpt.groups += 1
        rpt.lanes += len(idxs)
        _run_lockstep_group(points, idxs, policy, emit, rpt)
    return results


def _run_lockstep_group(points, idxs, policy, emit, rpt) -> None:
    lanes = []
    for i in idxs:
        kwargs = dict(points[i].kwargs)
        lanes.append(Lane(d=kwargs["d_distance"],
                          gi=kwargs.get("gi_timeout", 1024), payload=i))

    def run_rep(lane: Lane):
        rpt.reps += 1
        return _attempt_serial(_rep_run, lane.payload,
                               points[lane.payload], policy)

    for rep, out, shared in run_group(lanes, run_rep):
        if not isinstance(out, RepRun):
            # representative failed: its outcome is its own (a
            # GridFailure); nobody shared it, the rest re-seeded
            emit(rep.payload, out)
            continue
        try:
            emit(rep.payload, _shared_row(points[rep.payload], out))
        except Exception as exc:
            emit(rep.payload, _failure_from(exc, rep.payload,
                                            points[rep.payload],
                                            tb=_traceback_tail()))
        # trust-but-verify: sample lanes re-run serially; a mismatch
        # degrades every remaining shared lane to serial execution
        sample = shared[:VERIFY_SHARED_SAMPLE]
        rest = shared[VERIFY_SHARED_SAMPLE:]
        diverged = False
        for lane in sample:
            rpt.verified += 1
            serial_out = _attempt_serial(_run_point, lane.payload,
                                         points[lane.payload], policy)
            try:
                batch_row = _shared_row(points[lane.payload], out)
            except Exception:
                batch_row = None
            if batch_row is not None and serial_out == batch_row:
                rpt.shared += 1
                emit(lane.payload, batch_row)
            else:
                diverged = True
                rpt.divergences.append(
                    (lane.payload, "serial cross-check mismatch"))
                emit(lane.payload, serial_out)
        for lane in rest:
            if diverged:
                rpt.degraded += 1
                emit(lane.payload,
                     _attempt_serial(_run_point, lane.payload,
                                     points[lane.payload], policy))
                continue
            try:
                emit(lane.payload, _shared_row(points[lane.payload], out))
                rpt.shared += 1
            except Exception as exc:
                emit(lane.payload,
                     _failure_from(exc, lane.payload, points[lane.payload],
                                   tb=_traceback_tail()))
