"""Batched grid execution: the ``backend="batch"`` path of ``run_grid``.

Groups a grid's points into lockstep *lane groups* — points that differ
only in the swept ``d_distance`` / ``gi_timeout`` knobs — and drives
each group through the :mod:`repro.sim.batch` engine: one serial
representative run per decision-equivalence class, every provably
identical lane served from it, disagreeing lanes peeled back to the
ordinary per-point interpreter.  The contract is exactly
:func:`repro.harness.parallel.fan_out` over ``_run_point``: one outcome
(``RunRow`` or ``GridFailure``) per point in input order, ``on_result``
fired as each point finalizes — so the store/resume/commit machinery of
``run_grid`` composes unchanged.

Trust-but-verify: for every share event, :data:`VERIFY_SHARED_SAMPLE`
of the shared lanes re-run through the serial interpreter and their
rows are compared against the batch-built rows.  A mismatch (which the
soundness argument says cannot happen — this is the backstop for that
argument) degrades the *whole* share set to serial execution, so the
backend can mispredict performance but never results.

Points that cannot be grouped — no integer ``d_distance``, tracing
enabled (obs captures are run-local), deprecated shim kwargs,
unhashable extras — simply run serially, as do singleton groups.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.experiment import (
    DEFAULT_SCALE, DEFAULT_THREADS, experiment_config, row_from_result,
    run_workload_result,
)
from repro.harness.options import LEGACY_KWARGS
from repro.harness.parallel import (
    _NO_RETRY, GridFailure, GridPoint, RetryPolicy, _attempt_serial,
    _failure_from, _run_point, _traceback_tail,
)
from repro.isa.compiled import OP_SETAPRX
from repro.sim.batch import Lane, DecisionTrace, RepRun, probe_hook, run_group
from repro.sim.machine import machine_hook
from repro.sim.state import CheckpointRecorder, MachineCheckpoint
from repro.store.keys import canonical_point
from repro.workloads.registry import create

__all__ = ["BatchReport", "batch_fan_out", "group_key",
           "VERIFY_SHARED_SAMPLE", "FORK_CHECKPOINT_PERIOD"]

#: shared lanes per share event that re-run serially as an end-to-end
#: cross-check of the sharing proof (0 disables the backstop)
VERIFY_SHARED_SAMPLE = 1

#: base checkpoint window armed on every representative run (cycles);
#: peeled lanes fork from the last safe-point checkpoint before their
#: first divergent decision instead of re-simulating from cycle 0.
#: 0 disables forking (every peeled lane seeds a fresh serial
#: representative).
FORK_CHECKPOINT_PERIOD = 256

#: adaptive growth of the window (see ``CheckpointRecorder``): spacing
#: grows to ``now // FORK_CHECKPOINT_GROWTH``, keeping the capture count
#: logarithmic in the (unknown) run length
FORK_CHECKPOINT_GROWTH = 6

#: minimum fraction of the previous representative's run the anchor
#: must skip for a fork to be worth taking.  A fork still simulates
#: everything after the anchor *and* (for the first fork of a group)
#: pays a full serial cross-check, so an early anchor makes the
#: shortcut a net loss — the sweep benches regress — while a late one
#: amortizes: resuming at 25% saves nothing after the cross-check, at
#: 75% it beats a fresh representative even including it.
FORK_MIN_FRACTION = 0.25

#: deprecated run_workload shim kwargs: points still using them are not
#: worth teaching the batch path about — they fall back to serial.
#: Derived from the one shim table in :mod:`repro.harness.options`.
_SHIM_KWARGS = frozenset(LEGACY_KWARGS)


@dataclass
class BatchReport:
    """What the batch executor actually did, for tests and diagnostics.

    ``reps + verified + serial + degraded + fork_verified`` is the
    number of full serial simulations executed; ``shared`` lanes were
    served without one and ``forked`` representatives with only a
    partial one (resumed from the previous representative's checkpoint
    at the divergence point, then sharing with their own class as
    usual).
    """

    groups: int = 0      #: lockstep groups executed
    lanes: int = 0       #: points that entered a lockstep group
    serial: int = 0      #: points run serially (unbatchable/singleton)
    reps: int = 0        #: full representative runs (peel recursion)
    shared: int = 0      #: lanes served from a representative's machine
    verified: int = 0    #: shared lanes re-run as the serial cross-check
    degraded: int = 0    #: lanes forced serial after a failed cross-check
    forked: int = 0      #: representatives resumed from a checkpoint
    fork_verified: int = 0  #: forked reps re-run as the serial cross-check
    divergences: list = field(default_factory=list)  #: (index, why)


def group_key(point: GridPoint):
    """The lockstep-group key of a grid point, or ``None`` when the
    point must run serially.

    Two points share a group exactly when their kwargs agree on
    everything but ``d_distance``/``gi_timeout`` *and* they sit on the
    same side of the approximation on/off switch (``d_distance == 0``
    resolves a different effective protocol, so it never groups with
    enabled lanes).
    """
    kwargs = dict(point.kwargs)
    d = kwargs.get("d_distance")
    if not isinstance(d, int) or isinstance(d, bool):
        return None
    gi = kwargs.get("gi_timeout", 1024)
    if not isinstance(gi, int) or isinstance(gi, bool):
        return None
    if _SHIM_KWARGS & kwargs.keys():
        return None
    options = kwargs.get("options")
    if options is not None and getattr(options, "tracing", False):
        return None
    kwargs.pop("d_distance", None)
    kwargs.pop("gi_timeout", None)
    try:
        key = (canonical_point(point.workload, kwargs), d > 0)
        hash(key)
    except Exception:
        return None
    return key


def _lane_cfg(kwargs: dict):
    """The SimConfig :func:`~repro.harness.experiment.run_workload`
    would build for this point — the per-lane config shared lanes use
    to rebuild their own rows (protocol tag, energy model, d label)."""
    d = kwargs["d_distance"]
    return experiment_config(
        enabled=d > 0, d_distance=max(d, 1),
        gi_timeout=kwargs.get("gi_timeout", 1024),
        num_cores=kwargs.get("num_threads", DEFAULT_THREADS),
        protocol=kwargs.get("protocol"),
        topology=kwargs.get("topology"),
        options=kwargs.get("options"),
    )


def _rep_run(point: GridPoint) -> RepRun:
    """Run one representative serially with the decision probe armed
    and a checkpoint recorder attached (the fork-at-divergence
    anchors)."""
    records: list = []
    recorders: list = []

    def attach(machine) -> None:
        machine.checkpoint_recorder = CheckpointRecorder(
            FORK_CHECKPOINT_PERIOD, growth=FORK_CHECKPOINT_GROWTH)
        recorders.append(machine.checkpoint_recorder)

    if FORK_CHECKPOINT_PERIOD:
        hooks = machine_hook(attach)
    else:  # forking disabled: plain probe-only representative
        from contextlib import nullcontext
        hooks = nullcontext()
    with probe_hook(records), hooks:
        result, cfg = run_workload_result(point.workload,
                                          **dict(point.kwargs))
    gw = cfg.ghostwriter
    trace = DecisionTrace(records, swept_d=gw.d_distance,
                          mode=gw.similarity_mode)
    return RepRun(result=result, cfg=cfg, trace=trace,
                  checkpoints=recorders[-1] if recorders else None,
                  records=records)


# ---------------------------------------------------------------------
# fork-at-divergence: resume a peeled lane from a representative's
# checkpoint taken before the lanes' first divergent decision
# ---------------------------------------------------------------------

#: point kwargs consumed by :func:`_lane_cfg` (the rest go to the
#: workload constructor, mirroring ``run_workload_result``)
_CFG_KWARGS = ("d_distance", "gi_timeout", "protocol", "topology",
               "options")


def _blob_total(stats_blob: dict, key: str) -> float:
    """Sum of counter ``key`` over a ``StatGroup.snapshot`` tree."""
    total = stats_blob["values"].get(key, 0) or 0
    for kid in stats_blob["children"].values():
        total += _blob_total(kid, key)
    return total


def _gi_clean(ckpt: MachineCheckpoint) -> bool:
    """True when, at capture time, the GI flash timer had provably never
    been armed — making the checkpointed prefix independent of
    ``gi_timeout`` (the ``gi_never_armed`` argument, evaluated on the
    checkpoint's own counters instead of the finished run's)."""
    for l1b in ckpt.blob["l1s"]:
        if l1b["gi_timer_armed"] or l1b["gi_blocks"]:
            return False
    stats = ckpt.blob["stats"]
    return (_blob_total(stats, "gi_serviced") == 0
            and _blob_total(stats, "self_invalidations") == 0)


def _substitute_core_d(core_blob: dict, rep_d: int, lane_d: int) -> dict:
    """A copy of one core's snapshot with swept ``SetAprx`` operands
    rewritten ``rep_d`` -> ``lane_d`` (the operand lives in the compiled
    ``cycles`` column / the recorder's ``cycs`` list)."""
    out = dict(core_blob)
    prog = out.get("prog")
    if prog is not None:
        mask = (prog["op"] == OP_SETAPRX) & (prog["cycles"] == rep_d)
        if mask.any():
            prog = dict(prog)
            cycles = prog["cycles"].copy()
            cycles[mask] = lane_d
            prog["cycles"] = cycles
            out["prog"] = prog
    if out.get("mode") == "recorded":
        out["cycs"] = [
            lane_d if (op == OP_SETAPRX and cyc == rep_d) else cyc
            for op, cyc in zip(out["ops"], out["cycs"])
        ]
    return out


def _substitute_d(ckpt: MachineCheckpoint, rep_d: int,
                  lane_d: int) -> MachineCheckpoint:
    """The representative's checkpoint re-expressed for a lane: every
    swept d-distance programming — live scribe thresholds and pending
    ``SetAprx`` operands in core programs — rewritten to the lane's.

    Same caveat as the sharing substitution rule: a *hardcoded*
    ``SetAprx`` operand coincidentally equal to ``rep_d`` is rewritten
    too, which would mis-simulate the lane — the per-group fork
    cross-check (run serially before any unverified fork row is
    trusted) is the backstop, degrading the group to serial peeling.
    Never mutates the input (blob arrays may alias the program cache).
    """
    if lane_d == rep_d:
        return ckpt
    blob = dict(ckpt.blob)
    l1s = []
    for l1b in blob["l1s"]:
        scribe = dict(l1b["scribe"])
        if scribe.get("d_distance") == rep_d:
            scribe["d_distance"] = lane_d
            l1b = dict(l1b)
            l1b["scribe"] = scribe
        l1s.append(l1b)
    blob["l1s"] = l1s
    blob["cores"] = {
        cid: _substitute_core_d(core_blob, rep_d, lane_d)
        for cid, core_blob in blob["cores"].items()
    }
    return MachineCheckpoint(cycle=ckpt.cycle,
                             fingerprint=ckpt.fingerprint, blob=blob)


def _fork_lane(point: GridPoint, rep_lane: Lane, out: RepRun,
               lane: Lane) -> RepRun | None:
    """Run ``lane`` as a *forked representative*: resume from the
    previous representative's last checkpoint before their first
    divergent decision, with the decision probe seeded with the
    provably shared prefix — the result is a full :class:`RepRun`
    (trace, recorder and all) that can anchor sharing and further
    forks for its own equivalence class.  ``None`` when no valid
    anchor exists (the caller falls back to a fresh serial
    representative).

    Sound because every comparator decision strictly before the
    divergence cycle is provably identical under the lane's threshold
    (``DecisionTrace.divergence_cycle``), so the checkpointed prefix is
    a prefix of the *lane's* own serial run; d-dependent residue in the
    captured state (scribe programming, pending ``SetAprx`` operands)
    is rewritten by :func:`_substitute_d`, and a GI-timeout difference
    is only accepted while the checkpoint provably predates any timer
    arming (:func:`_gi_clean`).
    """
    if out.checkpoints is None or out.records is None:
        return None
    div = out.trace.divergence_cycle(lane.d)
    if div is None or div < 0:
        # agrees (gi-only peel) or no cycle anchor: when the timer was
        # armed we cannot place the gi divergence in time — fall back
        return None
    ckpt = out.checkpoints.latest_before(div)
    if ckpt is None:
        return None
    if ckpt.cycle < FORK_MIN_FRACTION * out.result.cycles:
        return None  # anchor too early: resuming saves too little
    if lane.gi != rep_lane.gi and not _gi_clean(ckpt):
        return None
    kwargs = dict(point.kwargs)
    cfg = _lane_cfg(kwargs)
    rep_d = out.cfg.ghostwriter.d_distance
    lane_d = cfg.ghostwriter.d_distance
    # seed the probe with the prefix the lane provably replays: every
    # rep decision up to the anchor, swept thresholds relabeled to the
    # lane's (outcomes unchanged — that is what "before the divergence
    # cycle" means).  Unstamped records (engine-less probes) cannot be
    # placed relative to the anchor, so they veto the fork.
    records: list = []
    for r in out.records:
        if len(r) < 6 or r[5] < 0:
            return None
        if r[5] > ckpt.cycle:
            continue
        if r[2] == rep_d:
            r = (r[0], r[1], lane_d, r[3], r[4], r[5])
        records.append(r)
    ckpt = _substitute_d(ckpt, rep_d, lane_d)
    for key in _CFG_KWARGS:
        kwargs.pop(key, None)
    workload = create(
        point.workload,
        num_threads=kwargs.pop("num_threads", DEFAULT_THREADS),
        seed=kwargs.pop("seed", 12345),
        scale=kwargs.pop("scale", DEFAULT_SCALE),
        **kwargs,
    )
    recorders: list = []

    def attach(machine) -> None:
        machine.checkpoint_recorder = CheckpointRecorder(
            FORK_CHECKPOINT_PERIOD, growth=FORK_CHECKPOINT_GROWTH)
        recorders.append(machine.checkpoint_recorder)

    with probe_hook(records), machine_hook(attach):
        machine = workload.prepare(cfg)
    ckpt.restore_into(machine)
    rec = recorders[-1]
    # the anchor is a valid checkpoint of *this* lane (post
    # substitution), so later lanes may chain from it; restart the
    # adaptive window where the clock actually is
    rec.checkpoints.append(ckpt)
    if rec.growth:
        rec.period = max(rec.period, ckpt.cycle // rec.growth)
    machine.resume()
    result = workload.collect(machine, cfg)
    trace = DecisionTrace(records, swept_d=lane_d,
                          mode=cfg.ghostwriter.similarity_mode)
    return RepRun(result=result, cfg=cfg, trace=trace,
                  checkpoints=rec, records=records)


def _shared_row(point: GridPoint, out: RepRun):
    """Rebuild a lane's ``RunRow`` from the representative's machine,
    under the lane's own config and d label."""
    kwargs = dict(point.kwargs)
    cfg = _lane_cfg(kwargs)
    return row_from_result(point.workload, kwargs["d_distance"],
                           out.result, cfg)


def batch_fan_out(points, *, retry: RetryPolicy | None = None,
                  on_result=None, report: BatchReport | None = None):
    """``fan_out(_run_point, points)`` with lockstep lane sharing.

    Runs in-process (representatives are serial runs; the parallelism
    is *across lanes of one run*, not across processes).  Outcomes are
    returned in input order; failures carry the local index, exactly as
    ``fan_out`` reports them.
    """
    points = list(points)
    policy = retry if retry is not None else _NO_RETRY
    rpt = report if report is not None else BatchReport()
    results: list = [None] * len(points)

    def emit(i: int, outcome) -> None:
        results[i] = outcome
        if on_result is not None:
            on_result(i, outcome)

    groups: dict = {}
    serial: list[int] = []
    for i, point in enumerate(points):
        key = group_key(point)
        if key is None:
            serial.append(i)
        else:
            groups.setdefault(key, []).append(i)
    # a singleton group has nothing to share with: plain serial run
    for key in [k for k, idxs in groups.items() if len(idxs) == 1]:
        serial.extend(groups.pop(key))
    rpt.serial += len(serial)
    for i in sorted(serial):
        emit(i, _attempt_serial(_run_point, i, points[i], policy))

    for idxs in groups.values():
        rpt.groups += 1
        rpt.lanes += len(idxs)
        _run_lockstep_group(points, idxs, policy, emit, rpt)
    return results


def _run_lockstep_group(points, idxs, policy, emit, rpt) -> None:
    lanes = []
    for i in idxs:
        kwargs = dict(points[i].kwargs)
        lanes.append(Lane(d=kwargs["d_distance"],
                          gi=kwargs.get("gi_timeout", 1024), payload=i))

    def run_rep(lane: Lane):
        rpt.reps += 1
        return _attempt_serial(_rep_run, lane.payload,
                               points[lane.payload], policy)

    # trust-but-verify, fork edition: the first forked representative
    # of the group also runs serially; a row mismatch returns the
    # serial row for that lane and degrades every later peel to full
    # serial representatives
    fork_state = {"verified": False, "disabled": not FORK_CHECKPOINT_PERIOD}

    def fork(rep_lane: Lane, out: RepRun, lane: Lane):
        if fork_state["disabled"]:
            return None
        point = points[lane.payload]
        try:
            forked = _fork_lane(point, rep_lane, out, lane)
        except Exception:
            forked = None  # any fork failure is just a missed shortcut
        if forked is None:
            return None
        if not fork_state["verified"]:
            fork_state["verified"] = True
            serial_out = _attempt_serial(_run_point, lane.payload, point,
                                         policy)
            try:
                row = _shared_row(point, forked)
            except Exception:
                row = None
            if row is None or serial_out != row:
                fork_state["disabled"] = True
                rpt.divergences.append(
                    (lane.payload, "fork cross-check mismatch"))
                return serial_out
            rpt.fork_verified += 1
        rpt.forked += 1
        return forked

    for rep, out, shared in run_group(lanes, run_rep, fork=fork):
        if not isinstance(out, RepRun):
            # representative failed: its outcome is its own (a
            # GridFailure); nobody shared it, the rest re-seeded
            emit(rep.payload, out)
            continue
        try:
            emit(rep.payload, _shared_row(points[rep.payload], out))
        except Exception as exc:
            emit(rep.payload, _failure_from(exc, rep.payload,
                                            points[rep.payload],
                                            tb=_traceback_tail()))
        # trust-but-verify: sample lanes re-run serially; a mismatch
        # degrades every remaining shared lane to serial execution
        sample = shared[:VERIFY_SHARED_SAMPLE]
        rest = shared[VERIFY_SHARED_SAMPLE:]
        diverged = False
        for lane in sample:
            rpt.verified += 1
            serial_out = _attempt_serial(_run_point, lane.payload,
                                         points[lane.payload], policy)
            try:
                batch_row = _shared_row(points[lane.payload], out)
            except Exception:
                batch_row = None
            if batch_row is not None and serial_out == batch_row:
                rpt.shared += 1
                emit(lane.payload, batch_row)
            else:
                diverged = True
                rpt.divergences.append(
                    (lane.payload, "serial cross-check mismatch"))
                emit(lane.payload, serial_out)
        for lane in rest:
            if diverged:
                rpt.degraded += 1
                emit(lane.payload,
                     _attempt_serial(_run_point, lane.payload,
                                     points[lane.payload], policy))
                continue
            try:
                emit(lane.payload, _shared_row(points[lane.payload], out))
                rpt.shared += 1
            except Exception as exc:
                emit(lane.payload,
                     _failure_from(exc, lane.payload, points[lane.payload],
                                   tb=_traceback_tail()))
