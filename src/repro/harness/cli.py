"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    ghostwriter-figures table1
    ghostwriter-figures fig8 --scale 0.25 --threads 8
    ghostwriter-figures all

``--scale`` shrinks the workload inputs (faster, noisier); ``--threads``
shrinks the simulated machine.  Defaults reproduce the shapes reported
in EXPERIMENTS.md.
"""
from __future__ import annotations

import argparse
import sys
import time

from repro.harness import figures as F

__all__ = ["main"]

_SWEEP_FIGS = ("fig7", "fig8", "fig9", "fig10", "fig11")
_ALL = ("table1", "table2", "fig1", "fig2") + _SWEEP_FIGS + ("fig12",)


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ghostwriter-figures",
        description="Regenerate the paper's tables and figures.",
    )
    p.add_argument("figure", choices=_ALL + ("all",),
                   help="which table/figure to regenerate")
    p.add_argument("--threads", type=int, default=F.DEFAULT_THREADS,
                   help="simulated cores / workload threads")
    p.add_argument("--scale", type=float, default=F.DEFAULT_SCALE,
                   help="input-size scale factor")
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument("--out", metavar="DIR", default=None,
                   help="also export each figure as CSV + JSON under DIR")
    p.add_argument("--protocol", choices=("mesi", "moesi"), default="mesi",
                   help="baseline protocol for the sweep figures")
    return p


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the requested figures, print/export them."""
    args = _build_parser().parse_args(argv)
    wanted = _ALL if args.figure == "all" else (args.figure,)
    cache = F.SweepCache(num_threads=args.threads, scale=args.scale,
                         seed=args.seed, protocol=args.protocol)
    for name in wanted:
        t0 = time.time()
        if name == "table1":
            result = F.table1()
        elif name == "table2":
            result = F.table2(args.threads)
        elif name == "fig1":
            counts = tuple(
                t for t in (1, 2, 4, 8, 16, 24) if t <= args.threads
            )
            result = F.fig1(thread_counts=counts, seed=args.seed)
        elif name == "fig2":
            result = F.fig2(num_threads=args.threads, scale=args.scale,
                            seed=args.seed)
        elif name == "fig7":
            result = F.fig7(cache)
        elif name == "fig8":
            result = F.fig8(cache)
        elif name == "fig9":
            result = F.fig9(cache)
        elif name == "fig10":
            result = F.fig10(cache)
        elif name == "fig11":
            result = F.fig11(cache)
        elif name == "fig12":
            result = F.fig12(num_threads=args.threads, seed=args.seed)
        else:  # pragma: no cover - argparse restricts choices
            raise AssertionError(name)
        print(result.render())
        if args.out is not None:
            from repro.harness.export import export_result
            paths = export_result(name, result, args.out)
            print(f"[exported {', '.join(str(p) for p in paths)}]")
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
