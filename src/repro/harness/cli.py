"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    ghostwriter-figures table1
    ghostwriter-figures fig8 --scale 0.25 --threads 8
    ghostwriter-figures all

``--scale`` shrinks the workload inputs (faster, noisier); ``--threads``
shrinks the simulated machine.  Defaults reproduce the shapes reported
in EXPERIMENTS.md.
"""
from __future__ import annotations

import argparse
import sys
import time

from repro.coherence.policy import available_protocols
from repro.harness import figures as F
from repro.harness.options import RunOptions
from repro.noc.topologies import available_topologies
from repro.obs.timeline import DEFAULT_TIMELINE_INTERVAL

__all__ = ["main"]

_SWEEP_FIGS = ("fig7", "fig8", "fig9", "fig10", "fig11")
# "protocols" (the cross-variant comparison) and "topology" (the
# interconnect/scale sensitivity grid) are opt-in, not part of "all":
# they run every registered variant and exist for ablation studies
_ALL = ("table1", "table2", "fig1", "fig2") + _SWEEP_FIGS + ("fig12",)
_EXTRA_FIGS = ("protocols", "topology")

#: core counts the "topology" figure sweeps, clipped to --threads/--cores
_TOPOLOGY_CORES = (24, 64, 128, 256)


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ghostwriter-figures",
        description="Regenerate the paper's tables and figures.",
    )
    p.add_argument("figure", choices=_ALL + _EXTRA_FIGS + ("all",),
                   help="which table/figure to regenerate ('protocols' "
                        "compares every registered coherence variant)")
    p.add_argument("--threads", type=int, default=F.DEFAULT_THREADS,
                   help="simulated cores / workload threads")
    p.add_argument("--cores", type=int, default=None, metavar="N",
                   help="alias for --threads (the topology sweeps speak "
                        "core counts); also raises the ceiling of the "
                        "'topology' figure's 24/64/128/256 grid")
    p.add_argument("--topology", choices=available_topologies(),
                   default="mesh",
                   help="NoC topology of the simulated machine (see "
                        "repro.noc.topologies); 'mesh' is the paper's "
                        "6x4 machine, byte-identical to the historic "
                        "hardwired NoC")
    p.add_argument("--scale", type=float, default=F.DEFAULT_SCALE,
                   help="input-size scale factor")
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument("--out", metavar="DIR", default=None,
                   help="also export each figure as CSV + JSON under DIR")
    p.add_argument("--protocol", choices=available_protocols(),
                   default="ghostwriter",
                   help="coherence-protocol variant for the sweep figures "
                        "(see repro.coherence.policy)")
    p.add_argument("--check-invariants", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="verify quiescence + coherence invariants after "
                        "every run (default on; --no-check-invariants "
                        "to skip)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   metavar="FLIPS_PER_MCYCLE",
                   help="inject seeded cache bit flips at this rate "
                        "(flips per million cycles; see repro.faults)")
    p.add_argument("--fault-seed", type=int, default=1,
                   help="PRNG seed for the fault injector")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan independent sweep points out over N worker "
                        "processes (results are bit-identical to --jobs 1; "
                        "see repro.harness.parallel)")
    p.add_argument("--backend", choices=("serial", "batch"),
                   default="serial",
                   help="sweep execution backend: 'batch' advances "
                        "d/gi-swept points in lockstep over shared "
                        "representative runs (bit-identical results; see "
                        "repro.sim.batch)")
    p.add_argument("--store", metavar="DB", default=None,
                   help="durable result store (SQLite): commit every sweep "
                        "point as it lands and serve committed points on "
                        "re-runs; inspect with 'python -m repro.store' "
                        "(see repro.store)")
    p.add_argument("--resume", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="serve points already committed to --store "
                        "(--no-resume recomputes and overwrites them)")
    p.add_argument("--retries", type=int, default=0, metavar="K",
                   help="re-executions granted to transiently failing "
                        "sweep points (worker death, wall-clock timeout); "
                        "deterministic failures never retry")
    p.add_argument("--point-timeout", type=float, default=0.0,
                   metavar="SEC",
                   help="wall-clock budget per sweep point, in seconds "
                        "(0 = unlimited); a blown budget is a transient "
                        "failure, eligible for --retries")
    p.add_argument("--trace-events", action="store_true",
                   help="record every coherence event of the sweep runs "
                        "(see repro.obs); export with --trace-out")
    p.add_argument("--timeline-interval", type=int, default=0,
                   metavar="CYCLES",
                   help="sample a metrics timeline every CYCLES cycles "
                        "(0 = off unless --trace-events, which defaults "
                        f"it to {DEFAULT_TIMELINE_INTERVAL})")
    p.add_argument("--trace-out", metavar="DIR", default=None,
                   help="write the merged events.jsonl / timeline.npz / "
                        "report.txt bundle of the traced sweep under DIR")
    p.add_argument("--profile", type=int, default=0, metavar="N",
                   help="run under cProfile and print the top-N functions "
                        "by cumulative time after the figures finish "
                        "(0 = off)")
    return p


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the requested figures, print/export them."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.cores is not None:
        if args.cores < 1:
            parser.error(f"--cores must be >= 1, got {args.cores}")
        args.threads = args.cores
    if args.fault_rate < 0:
        parser.error(f"--fault-rate must be >= 0, got {args.fault_rate:g}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.timeline_interval < 0:
        parser.error(f"--timeline-interval must be >= 0, "
                     f"got {args.timeline_interval}")
    if args.profile < 0:
        parser.error(f"--profile must be >= 0, got {args.profile}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.point_timeout < 0:
        parser.error(f"--point-timeout must be >= 0, "
                     f"got {args.point_timeout:g}")
    if args.trace_out is not None and not (args.trace_events
                                           or args.timeline_interval):
        parser.error("--trace-out needs --trace-events and/or "
                     "--timeline-interval")
    interval = args.timeline_interval
    if args.trace_events and not interval:
        interval = DEFAULT_TIMELINE_INTERVAL
    options = RunOptions(check_invariants=args.check_invariants,
                         fault_rate=args.fault_rate,
                         fault_seed=args.fault_seed, jobs=args.jobs,
                         trace_events=args.trace_events,
                         timeline_interval=interval,
                         protocol=args.protocol,
                         topology=args.topology,
                         store=args.store, resume=args.resume,
                         point_retries=args.retries,
                         point_timeout=args.point_timeout,
                         backend=args.backend)
    wanted = _ALL if args.figure == "all" else (args.figure,)
    cache = F.SweepCache(num_threads=args.threads, scale=args.scale,
                         seed=args.seed, options=options)
    sweep_wanted = [f for f in wanted if f in _SWEEP_FIGS]
    if (args.jobs > 1 or args.store) and sweep_wanted:
        # warm the shared sweep across the pool before the per-figure
        # drivers read it; fig7 alone only needs the d in {4, 8} legs
        ds = (4, 8) if sweep_wanted == ["fig7"] else (0, 4, 8)
        t0 = time.time()
        cache.prefetch(ds=ds)
        print(f"[sweep prefetch x{args.jobs} jobs: "
              f"{time.time() - t0:.1f}s]\n")
        store = cache.result_store()
        if store is not None:
            print(f"[store {args.store}: {store.stats.render()}]\n")
    if args.profile:
        # profile exactly the figure work (not argument parsing or the
        # export tail) so hot-path hunts don't need ad-hoc scripts
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            crashed = _run_figures(wanted, args, cache)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(args.profile)
    else:
        crashed = _run_figures(wanted, args, cache)
    if args.trace_out is not None:
        from repro.harness.export import export_captures
        labeled = [(f"{app}.d{d}", row.obs)
                   for (app, d), row in sorted(cache.rows().items())
                   if row.obs is not None]
        if labeled:
            paths = export_captures(labeled, args.trace_out)
            print(f"[trace: {', '.join(str(p) for p in paths)}]")
        else:
            print("[trace: no traced sweep runs to export]")
    return 1 if crashed else 0


def _run_figures(wanted, args, cache) -> int:
    """Run each requested figure; returns the crashed-figure count."""
    crashed = 0
    for name in wanted:
        t0 = time.time()
        try:
            result = _run_figure(name, args, cache)
        except Exception as exc:
            if args.fault_rate <= 0:
                # say which figure died before the traceback: "all" runs
                # many figures and the traceback alone doesn't name one
                print(f"[{name}: failed: {type(exc).__name__}: {exc}]",
                      file=sys.stderr)
                raise
            # injected faults legitimately crash runs when they corrupt
            # control data; report and keep sweeping the other figures
            print(f"[{name}: crashed under fault injection: {exc!r}]\n")
            crashed += 1
            continue
        print(result.render())
        if args.out is not None:
            from repro.harness.export import export_result
            paths = export_result(name, result, args.out)
            print(f"[exported {', '.join(str(p) for p in paths)}]")
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return crashed


def _run_figure(name, args, cache):
    if name == "table1":
        return F.table1()
    if name == "table2":
        return F.table2(args.threads)
    if name == "fig1":
        counts = tuple(t for t in (1, 2, 4, 8, 16, 24) if t <= args.threads)
        return F.fig1(thread_counts=counts, seed=args.seed)
    if name == "fig2":
        return F.fig2(num_threads=args.threads, scale=args.scale,
                      seed=args.seed)
    if name == "fig7":
        return F.fig7(cache)
    if name == "fig8":
        return F.fig8(cache)
    if name == "fig9":
        return F.fig9(cache)
    if name == "fig10":
        return F.fig10(cache)
    if name == "fig11":
        return F.fig11(cache)
    if name == "fig12":
        return F.fig12(num_threads=args.threads, seed=args.seed,
                       jobs=args.jobs, options=cache.options)
    if name == "protocols":
        return F.fig_protocols(num_threads=args.threads, seed=args.seed,
                               jobs=args.jobs, options=cache.options)
    if name == "topology":
        # default --topology sweeps every registered shape; an explicit
        # non-default choice restricts the grid to that one
        topologies = None if args.topology == "mesh" else (args.topology,)
        counts = tuple(c for c in _TOPOLOGY_CORES if c <= args.threads)
        if not counts:
            counts = (args.threads,)
        return F.fig_topology(topologies, counts, seed=args.seed,
                              jobs=args.jobs, options=cache.options)
    raise AssertionError(name)  # pragma: no cover - argparse restricts


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
