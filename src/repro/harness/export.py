"""Tabular export of figure results (CSV + JSON).

Each figure result is flattened into a list of records (one dict per
plotted point/bar), so downstream plotting tools can regenerate the
paper's graphics from files instead of re-running simulations.
"""
from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.harness import figures as F

__all__ = ["records_for", "write_csv", "write_json", "export_result"]


def records_for(name: str, result: Any) -> list[dict[str, Any]]:
    """Flatten one figure/table result into row records."""
    if name in ("table1", "table2"):
        return [dict(zip(result.headers, row)) for row in result.rows]
    if name == "fig1":
        return [
            {"threads": t, "naive_speedup": n, "private_speedup": p}
            for t, n, p in zip(result.thread_counts, result.naive_speedup,
                               result.private_speedup)
        ]
    if name == "fig2":
        return [
            {"app": app, "d": d, "cum_fraction": frac}
            for app, prof in result.profiles.items()
            for d, frac in prof.rows()
        ]
    if name == "fig7":
        return [
            {"app": app, "d": d, "gs_serviced_pct": result.gs_pct[(app, d)],
             "gi_serviced_pct": result.gi_pct[(app, d)]}
            for (app, d) in sorted(result.gs_pct)
        ]
    if name == "fig8":
        return [
            {"app": app, "d": d,
             **{k.value: v for k, v in split.items()},
             "total": result.total(app, d)}
            for (app, d), split in sorted(result.normalized.items())
        ]
    if name == "fig9":
        return [
            {"app": app, "d": d,
             "noc_saved_pct": result.noc_pct[(app, d)],
             "memory_saved_pct": result.memory_pct[(app, d)],
             "total_saved_pct": result.combined_pct[(app, d)]}
            for (app, d) in sorted(result.noc_pct)
        ]
    if name == "fig10":
        return [
            {"app": app, "d": d, "speedup_pct": v}
            for (app, d), v in sorted(result.speedup_pct.items())
        ]
    if name == "fig11":
        return [
            {"app": app, "d": d, "error_pct": v}
            for (app, d), v in sorted(result.error_pct.items())
        ]
    if name == "fig12":
        return [
            {"timeout_cycles": t, "gi_serviced_pct": g, "error_mpe_pct": e}
            for t, g, e in zip(result.timeouts, result.gi_serviced_pct,
                               result.error_pct)
        ]
    raise KeyError(f"no exporter for {name!r}")


def write_csv(records: list[dict[str, Any]], path: Path) -> None:
    """Write records as CSV (union of keys as the header)."""
    if not records:
        raise ValueError("nothing to export")
    fields: list[str] = []
    for rec in records:
        for key in rec:
            if key not in fields:
                fields.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(records)


def write_json(records: list[dict[str, Any]], path: Path) -> None:
    """Write records as a JSON array."""
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2, default=str)
        fh.write("\n")


def export_result(name: str, result: Any, out_dir: str | Path) -> list[Path]:
    """Write ``<name>.csv`` and ``<name>.json`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    records = records_for(name, result)
    csv_path = out / f"{name}.csv"
    json_path = out / f"{name}.json"
    write_csv(records, csv_path)
    write_json(records, json_path)
    return [csv_path, json_path]
