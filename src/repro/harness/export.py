"""Tabular export of figure results and observability captures.

Each figure result is flattened into a list of records (one dict per
plotted point/bar), so downstream plotting tools can regenerate the
paper's graphics from files instead of re-running simulations.

The writer layer is symmetric: :func:`export_records` writes any record
list in any subset of the supported formats (CSV, JSON, JSONL, npz), and
both the figure exporter (:func:`export_result`) and the trace/timeline
exporter (:func:`export_captures`) delegate to it.
"""
from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.obs.capture import ObsCapture
from repro.obs.report import render_report
from repro.obs.timeline import save_merged

__all__ = ["records_for", "write_csv", "write_json", "write_jsonl",
           "write_npz", "export_records", "export_result",
           "export_captures"]


def records_for(name: str, result: Any) -> list[dict[str, Any]]:
    """Flatten one figure/table result into row records."""
    if name in ("table1", "table2"):
        return [dict(zip(result.headers, row)) for row in result.rows]
    if name == "fig1":
        return [
            {"threads": t, "naive_speedup": n, "private_speedup": p}
            for t, n, p in zip(result.thread_counts, result.naive_speedup,
                               result.private_speedup)
        ]
    if name == "fig2":
        return [
            {"app": app, "d": d, "cum_fraction": frac}
            for app, prof in result.profiles.items()
            for d, frac in prof.rows()
        ]
    if name == "fig7":
        return [
            {"app": app, "d": d, "gs_serviced_pct": result.gs_pct[(app, d)],
             "gi_serviced_pct": result.gi_pct[(app, d)]}
            for (app, d) in sorted(result.gs_pct)
        ]
    if name == "fig8":
        return [
            {"app": app, "d": d,
             **{k.value: v for k, v in split.items()},
             "total": result.total(app, d)}
            for (app, d), split in sorted(result.normalized.items())
        ]
    if name == "fig9":
        return [
            {"app": app, "d": d,
             "noc_saved_pct": result.noc_pct[(app, d)],
             "memory_saved_pct": result.memory_pct[(app, d)],
             "total_saved_pct": result.combined_pct[(app, d)]}
            for (app, d) in sorted(result.noc_pct)
        ]
    if name == "fig10":
        return [
            {"app": app, "d": d, "speedup_pct": v}
            for (app, d), v in sorted(result.speedup_pct.items())
        ]
    if name == "fig11":
        return [
            {"app": app, "d": d, "error_pct": v}
            for (app, d), v in sorted(result.error_pct.items())
        ]
    if name == "fig12":
        return [
            {"timeout_cycles": t, "gi_serviced_pct": g, "error_mpe_pct": e}
            for t, g, e in zip(result.timeouts, result.gi_serviced_pct,
                               result.error_pct)
        ]
    if name == "protocols":
        base = result.baseline_cycles()
        return [
            {"protocol": p, "cycles": row.cycles,
             "speedup_vs_first": base / row.cycles,
             "traffic": row.total_traffic, "error_pct": row.error_pct,
             "gs_serviced_pct": row.gs_serviced_pct,
             "gi_serviced_pct": row.gi_serviced_pct}
            for p, row in zip(result.protocols, result.rows)
        ]
    raise KeyError(f"no exporter for {name!r}")


def write_csv(records: list[dict[str, Any]], path: Path) -> None:
    """Write records as CSV (union of keys as the header)."""
    if not records:
        raise ValueError("nothing to export")
    fields: list[str] = []
    for rec in records:
        for key in rec:
            if key not in fields:
                fields.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(records)


def write_json(records: list[dict[str, Any]], path: Path) -> None:
    """Write records as a JSON array."""
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2, default=str)
        fh.write("\n")


def write_jsonl(records: list[dict[str, Any]], path: Path) -> None:
    """Write records as JSON Lines (one compact object per line)."""
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, separators=(",", ":"), default=str))
            fh.write("\n")


def write_npz(records: list[dict[str, Any]], path: Path) -> None:
    """Write uniformly-keyed records as columnar compressed ``.npz``."""
    if not records:
        raise ValueError("nothing to export")
    fields = list(records[0])
    for rec in records[1:]:
        if list(rec) != fields:
            raise ValueError("npz export requires uniformly-keyed records")
    np.savez_compressed(
        path, **{f: np.asarray([rec[f] for rec in records]) for f in fields}
    )


_WRITERS = {
    "csv": write_csv,
    "json": write_json,
    "jsonl": write_jsonl,
    "npz": write_npz,
}


def export_records(records: list[dict[str, Any]], name: str,
                   out_dir: str | Path,
                   formats: Sequence[str] = ("csv", "json")) -> list[Path]:
    """Write ``<name>.<fmt>`` under ``out_dir`` for each format."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for fmt in formats:
        writer = _WRITERS.get(fmt)
        if writer is None:
            raise KeyError(
                f"unknown export format {fmt!r}; "
                f"available: {sorted(_WRITERS)}"
            )
        path = out / f"{name}.{fmt}"
        writer(records, path)
        paths.append(path)
    return paths


def export_result(name: str, result: Any, out_dir: str | Path) -> list[Path]:
    """Write ``<name>.csv`` and ``<name>.json`` under ``out_dir``."""
    return export_records(records_for(name, result), name, out_dir)


def export_captures(labeled: Sequence[tuple[str, ObsCapture]],
                    out_dir: str | Path) -> list[Path]:
    """Write the merged observability bundle of a traced sweep.

    Produces up to three files under ``out_dir``: ``events.jsonl``
    (every run's event records, each tagged with its run label),
    ``timeline.npz`` (all timelines merged via
    :func:`repro.obs.timeline.save_merged`) and ``report.txt`` (the
    per-phase breakdown of every capture).  Labels are emitted in the
    given order, so a sorted ``labeled`` makes the files byte-identical
    regardless of how the runs were scheduled.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    event_records = [
        {"run": label, **rec}
        for label, cap in labeled for rec in cap.events
    ]
    if event_records:
        path = out / "events.jsonl"
        write_jsonl(event_records, path)
        paths.append(path)
    timelines = [(label, cap.timeline) for label, cap in labeled
                 if cap.timeline is not None]
    if timelines:
        path = out / "timeline.npz"
        save_merged(timelines, path)
        paths.append(path)
    if labeled:
        path = out / "report.txt"
        blocks = [f"=== {label} ===\n{render_report(cap)}"
                  for label, cap in labeled]
        path.write_text("\n\n".join(blocks) + "\n")
        paths.append(path)
    return paths
