"""Per-figure experiment drivers.

One driver per table/figure of the paper (see DESIGN.md §4).  Each
returns a small result object with the figure's rows/series plus a
``render()`` producing the text table the benchmarks and the CLI print.
Figures 7-11 share one underlying sweep (six apps x d in {0, 4, 8}),
which :class:`SweepCache` memoizes so regenerating all figures costs 18
runs, not 90.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.ddistance import SimilarityProfile, machine_store_histogram
from repro.common.config import default_config, table1_rows
from repro.common.types import MessageClass
from repro.harness.experiment import (
    DEFAULT_SCALE, DEFAULT_THREADS, RunRow, experiment_config, run_workload,
)
from repro.harness.options import RunOptions, resolve_options
from repro.workloads.base import WorkloadResult
from repro.workloads.registry import PAPER_WORKLOADS, create, table2_rows

__all__ = [
    "SweepCache", "fig1", "fig2", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig_protocols", "fig_topology", "table1", "table2",
]

_APPS = list(PAPER_WORKLOADS)
_D_SWEEP = (0, 4, 8)
_SHORT = {
    "histogram": "hist", "linear_regression": "linreg", "pca": "pca",
    "blackscholes": "blksch", "inversek2j": "invk2j", "jpeg": "jpeg",
}


def _fmt_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


class SweepCache:
    """Memoized (app, d) -> RunRow over the main evaluation sweep.

    ``jobs > 1`` makes :meth:`prefetch` fan the uncached grid points out
    over a process pool (:mod:`repro.harness.parallel`); the cached rows
    are bit-identical to serial runs.

    ``options.store`` makes the sweep *durable*: every completed row
    commits to a content-addressed result store
    (:mod:`repro.store`), and both :meth:`row` and :meth:`prefetch`
    serve committed points from the store instead of re-running them —
    a killed figure run restarted with ``resume`` picks up exactly
    where the committed work left off, bit-identically.
    """

    def __init__(self, num_threads: int = DEFAULT_THREADS,
                 scale: float = DEFAULT_SCALE, seed: int = 12345,
                 protocol: str | None = None,
                 options: RunOptions | None = None,
                 check_invariants: bool | None = None,
                 fault_rate: float | None = None,
                 fault_seed: int | None = None,
                 jobs: int | None = None) -> None:
        self.num_threads = num_threads
        self.scale = scale
        self.seed = seed
        opts = resolve_options(
            options, who="SweepCache", check_invariants=check_invariants,
            fault_rate=fault_rate, fault_seed=fault_seed, jobs=jobs,
        )
        self.protocol = protocol if protocol is not None else opts.protocol
        if opts.fault_rate:
            # faulty sweeps log-and-continue so every row completes
            opts = opts.replace(fault_policy="log")
        self.options = opts
        self._rows: dict[tuple[str, int], RunRow] = {}
        self._store = None      # lazily opened ResultStore handle

    # -- legacy read-only views (pre-RunOptions attribute names) -------
    @property
    def jobs(self) -> int:
        """Worker processes used by :meth:`prefetch`."""
        return self.options.jobs

    @property
    def check_invariants(self) -> bool:
        """End-of-run invariant checking (see :class:`RunOptions`)."""
        return self.options.check_invariants

    @property
    def fault_rate(self) -> float:
        """Cache fault rate (see :class:`RunOptions`)."""
        return self.options.fault_rate

    @property
    def fault_seed(self) -> int:
        """Fault-injector seed (see :class:`RunOptions`)."""
        return self.options.fault_seed

    def _run_kwargs(self, app: str, d: int) -> dict:
        return dict(
            d_distance=d, num_threads=self.num_threads,
            scale=self.scale, seed=self.seed, protocol=self.protocol,
            options=self.options,
        )

    def result_store(self):
        """The lazily opened durable result store (None when disabled)."""
        if self._store is None and self.options.store:
            from repro.store import open_store
            self._store = open_store(self.options.store)
        return self._store

    def row(self, app: str, d: int) -> RunRow:
        """Memoized run of (app, d); ``d=0`` is baseline MESI.

        With a configured result store, a point already committed there
        is served without re-running (unless ``options.resume`` is
        off); a freshly run point commits before being returned.
        """
        key = (app, d)
        if key not in self._rows:
            store = self.result_store()
            if store is not None:
                from repro.harness.parallel import GridPoint, run_point_stored
                point = GridPoint(app, self._run_kwargs(app, d),
                                  label=f"{app} d={d}")
                self._rows[key] = run_point_stored(
                    point, store, resume=self.options.resume)
            else:
                self._rows[key] = run_workload(app, **self._run_kwargs(app, d))
        return self._rows[key]

    def prefetch(self, apps=None, ds=_D_SWEEP, jobs: int | None = None) -> None:
        """Run (and cache) the sweep up front, optionally in parallel.

        A grid point that fails in the parallel path is simply left
        uncached: the next :meth:`row` call reruns it serially and
        raises its real exception, exactly as the serial path would.
        With a configured result store every completed point commits as
        it lands, so a killed prefetch resumes from the committed rows.
        """
        jobs = self.jobs if jobs is None else jobs
        keys = [(app, d) for app in (apps or _APPS) for d in ds
                if (app, d) not in self._rows]
        if (jobs > 1 or self.options.store) and len(keys) > 1:
            from repro.harness.parallel import (
                GridFailure, GridPoint, run_grid,
            )
            points = [
                GridPoint(app, self._run_kwargs(app, d), label=f"{app} d={d}")
                for app, d in keys
            ]
            outcomes = run_grid(points, jobs=jobs,
                                store=self.result_store(),
                                options=self.options)
            for key, outcome in zip(keys, outcomes):
                if not isinstance(outcome, GridFailure):
                    self._rows[key] = outcome
            return
        for app, d in keys:
            self.row(app, d)

    def rows(self) -> dict[tuple[str, int], RunRow]:
        """Snapshot of every cached (app, d) -> RunRow (for exporters)."""
        return dict(self._rows)


# ---------------------------------------------------------------------
# Table 1 / Table 2
# ---------------------------------------------------------------------
@dataclass(slots=True)
class TableResult:
    title: str
    headers: list[str]
    rows: list[list[str]]

    def render(self) -> str:
        """The figure as an aligned text table."""
        return f"{self.title}\n{_fmt_table(self.headers, self.rows)}"


def table1() -> TableResult:
    """Regenerate Table 1 from the default configuration."""
    rows = [[k, v] for k, v in table1_rows(default_config())]
    return TableResult("Table 1: Simulation Configuration",
                       ["Parameter", "Values"], rows)


def table2(num_threads: int = DEFAULT_THREADS) -> TableResult:
    """Regenerate Table 2 from the workload registry."""
    rows = [list(r) for r in table2_rows(num_threads)]
    return TableResult("Table 2: Benchmarks",
                       ["Application", "Domain", "Input", "Error"], rows)


# ---------------------------------------------------------------------
# Fig. 1 — false-sharing dot-product thread sweep (baseline MESI)
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig1Result:
    thread_counts: list[int]
    naive_speedup: list[float]     # vs 1 thread, Listing 1
    private_speedup: list[float]   # vs 1 thread, Listing 2

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = [
            [str(t), f"{n:.2f}x", f"{p:.2f}x"]
            for t, n, p in zip(self.thread_counts, self.naive_speedup,
                               self.private_speedup)
        ]
        return ("Fig. 1: dot-product speedup vs threads (baseline MESI)\n"
                + _fmt_table(["threads", "naive (Listing 1)",
                              "privatized (Listing 2)"], rows))


def fig1(thread_counts=(1, 2, 4, 8, 16, 24), n_points: int = 4096,
         seed: int = 12345) -> Fig1Result:
    """Run the Listing-1/Listing-2 thread sweep on baseline MESI."""
    def cycles(name: str, threads: int) -> int:
        cfg = experiment_config(enabled=False, num_cores=max(threads, 1))
        w = create(name, num_threads=threads, seed=seed, n_points=n_points,
                   approximate=False) if name == "bad_dot_product" else \
            create(name, num_threads=threads, seed=seed, n_points=n_points)
        return w.run(cfg).cycles

    naive, private = [], []
    base_naive = base_private = None
    for t in thread_counts:
        cn = cycles("bad_dot_product", t)
        cp = cycles("private_dot_product", t)
        if t == thread_counts[0]:
            base_naive, base_private = cn, cp
        naive.append(base_naive / cn)
        private.append(base_private / cp)
    return Fig1Result(list(thread_counts), naive, private)


# ---------------------------------------------------------------------
# Fig. 2 — store-value d-distance CDFs per suite
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig2Result:
    profiles: dict[str, SimilarityProfile]   # app -> curve
    suites: dict[str, list[str]]             # suite -> apps

    def render(self) -> str:
        """The figure as an aligned text table."""
        ds = [0, 2, 4, 8, 12, 16, 24, 32]
        rows = []
        for app, prof in self.profiles.items():
            rows.append([_SHORT.get(app, app)]
                        + [f"{prof.fraction_within(d) * 100:5.1f}%" for d in ds])
        return ("Fig. 2: cumulative d-distance distribution of stores\n"
                + _fmt_table(["app"] + [f"<= {d}" for d in ds], rows))

    def suite_average_within(self, suite: str, d: int) -> float:
        """Mean P(<= d) across the suite's apps."""
        apps = self.suites[suite]
        return float(np.mean([
            self.profiles[a].fraction_within(d) for a in apps
        ]))


def fig2(num_threads: int = DEFAULT_THREADS, scale: float = DEFAULT_SCALE,
         seed: int = 12345) -> Fig2Result:
    """Profile store-value similarity over every Table 2 app."""
    profiles: dict[str, SimilarityProfile] = {}
    suites: dict[str, list[str]] = {}
    cfg = experiment_config(enabled=False, num_cores=num_threads)
    for app, cls in PAPER_WORKLOADS.items():
        w = create(app, num_threads=num_threads, scale=scale, seed=seed)
        result: WorkloadResult = w.run(cfg)
        hist = machine_store_histogram(result.machine)
        profiles[app] = SimilarityProfile(app, hist)
        suites.setdefault(w.suite, []).append(app)
    return Fig2Result(profiles, suites)


# ---------------------------------------------------------------------
# Fig. 7 — approximate-state utilization
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig7Result:
    gs_pct: dict[tuple[str, int], float]   # (app, d) -> %
    gi_pct: dict[tuple[str, int], float]

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = []
        for app in _APPS:
            rows.append([
                _SHORT[app],
                f"{self.gs_pct[(app, 4)]:5.1f}", f"{self.gs_pct[(app, 8)]:5.1f}",
                f"{self.gi_pct[(app, 4)]:5.1f}", f"{self.gi_pct[(app, 8)]:5.1f}",
            ])
        rows.append([
            "Avg.",
            f"{np.mean([self.gs_pct[(a, 4)] for a in _APPS]):5.1f}",
            f"{np.mean([self.gs_pct[(a, 8)] for a in _APPS]):5.1f}",
            f"{np.mean([self.gi_pct[(a, 4)] for a in _APPS]):5.1f}",
            f"{np.mean([self.gi_pct[(a, 8)] for a in _APPS]):5.1f}",
        ])
        return ("Fig. 7: % of would-miss stores serviced by GS (a) / GI (b)\n"
                + _fmt_table(
                    ["app", "GS d=4", "GS d=8", "GI d=4", "GI d=8"], rows))


def fig7(cache: SweepCache) -> Fig7Result:
    """Approximate-state utilization from the main sweep."""
    gs, gi = {}, {}
    for app in _APPS:
        for d in (4, 8):
            row = cache.row(app, d)
            gs[(app, d)] = row.gs_serviced_pct
            gi[(app, d)] = row.gi_serviced_pct
    return Fig7Result(gs, gi)


# ---------------------------------------------------------------------
# Fig. 8 — normalized coherence traffic breakdown
# ---------------------------------------------------------------------
_FIG8_CLASSES = [MessageClass.OTHER, MessageClass.DATA, MessageClass.GETS,
                 MessageClass.UPGRADE, MessageClass.GETX]


@dataclass(slots=True)
class Fig8Result:
    #: (app, d) -> {class: messages normalized to the app's d=0 total}
    normalized: dict[tuple[str, int], dict[MessageClass, float]]

    def total(self, app: str, d: int) -> float:
        """Normalized total traffic of one bar."""
        return sum(self.normalized[(app, d)].values())

    def reduction_pct(self, app: str, d: int) -> float:
        """Traffic reduction vs the app's baseline, percent."""
        return (1.0 - self.total(app, d)) * 100.0

    def average_reduction_pct(self, d: int) -> float:
        """Mean reduction across apps at one d."""
        return float(np.mean([self.reduction_pct(a, d) for a in _APPS]))

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = []
        for app in _APPS:
            for d in _D_SWEEP:
                split = self.normalized[(app, d)]
                rows.append(
                    [_SHORT[app], str(d)]
                    + [f"{split[k]:.3f}" for k in _FIG8_CLASSES]
                    + [f"{self.total(app, d):.3f}"]
                )
        return ("Fig. 8: normalized coherence traffic (per app, d=0 is "
                "baseline MESI)\n"
                + _fmt_table(
                    ["app", "d"] + [k.value for k in _FIG8_CLASSES]
                    + ["total"], rows))


def fig8(cache: SweepCache) -> Fig8Result:
    """Per-class traffic, normalized to each app's baseline."""
    normalized = {}
    for app in _APPS:
        base_total = sum(cache.row(app, 0).traffic.values())
        for d in _D_SWEEP:
            traffic = cache.row(app, d).traffic
            normalized[(app, d)] = {
                k: traffic.get(k, 0) / base_total for k in _FIG8_CLASSES
            }
    return Fig8Result(normalized)


# ---------------------------------------------------------------------
# Fig. 9 — dynamic energy savings (NoC + memory hierarchy)
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig9Result:
    noc_pct: dict[tuple[str, int], float]
    memory_pct: dict[tuple[str, int], float]
    combined_pct: dict[tuple[str, int], float]

    def average_combined(self, d: int) -> float:
        """Mean total savings across apps at one d."""
        return float(np.mean([self.combined_pct[(a, d)] for a in _APPS]))

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = []
        for app in _APPS:
            rows.append([_SHORT[app]] + [
                f"{self.noc_pct[(app, d)]:6.2f}" for d in (4, 8)
            ] + [
                f"{self.memory_pct[(app, d)]:6.2f}" for d in (4, 8)
            ] + [
                f"{self.combined_pct[(app, d)]:6.2f}" for d in (4, 8)
            ])
        rows.append(["Avg."] + [
            f"{np.mean([self.noc_pct[(a, d)] for a in _APPS]):6.2f}"
            for d in (4, 8)
        ] + [
            f"{np.mean([self.memory_pct[(a, d)] for a in _APPS]):6.2f}"
            for d in (4, 8)
        ] + [
            f"{self.average_combined(d):6.2f}" for d in (4, 8)
        ])
        return ("Fig. 9: dynamic energy saved (%) vs baseline MESI\n"
                + _fmt_table(
                    ["app", "NoC d=4", "NoC d=8", "Mem d=4", "Mem d=8",
                     "Total d=4", "Total d=8"], rows))


def fig9(cache: SweepCache) -> Fig9Result:
    """Dynamic-energy savings vs the baseline runs."""
    noc, mem, comb = {}, {}, {}
    for app in _APPS:
        base = cache.row(app, 0).energy
        for d in (4, 8):
            sav = cache.row(app, d).energy.savings_vs(base)
            noc[(app, d)] = sav.noc_pct
            mem[(app, d)] = sav.memory_pct
            comb[(app, d)] = sav.total_pct
    return Fig9Result(noc, mem, comb)


# ---------------------------------------------------------------------
# Fig. 10 — speedup
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig10Result:
    speedup_pct: dict[tuple[str, int], float]

    def average(self, d: int) -> float:
        """Mean speedup across apps at one d."""
        return float(np.mean([self.speedup_pct[(a, d)] for a in _APPS]))

    def maximum(self, d: int) -> float:
        """Best per-app speedup at one d."""
        return max(self.speedup_pct[(a, d)] for a in _APPS)

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = [
            [_SHORT[a], f"{self.speedup_pct[(a, 4)]:6.2f}",
             f"{self.speedup_pct[(a, 8)]:6.2f}"]
            for a in _APPS
        ]
        rows.append(["Avg.", f"{self.average(4):6.2f}",
                     f"{self.average(8):6.2f}"])
        return ("Fig. 10: speedup (%) vs baseline MESI\n"
                + _fmt_table(["app", "d=4", "d=8"], rows))


def fig10(cache: SweepCache) -> Fig10Result:
    """Speedup vs the baseline runs."""
    speedup = {}
    for app in _APPS:
        base_cycles = cache.row(app, 0).cycles
        for d in (4, 8):
            speedup[(app, d)] = (
                base_cycles / cache.row(app, d).cycles - 1.0
            ) * 100.0
    return Fig10Result(speedup)


# ---------------------------------------------------------------------
# Fig. 11 — output error
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig11Result:
    error_pct: dict[tuple[str, int], float]
    baseline_error_pct: dict[str, float]

    def average(self, d: int) -> float:
        """Mean output error across apps at one d."""
        return float(np.mean([self.error_pct[(a, d)] for a in _APPS]))

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = [
            [_SHORT[a], f"{self.error_pct[(a, 4)]:9.4f}",
             f"{self.error_pct[(a, 8)]:9.4f}"]
            for a in _APPS
        ]
        rows.append(["Avg.", f"{self.average(4):9.4f}",
                     f"{self.average(8):9.4f}"])
        return ("Fig. 11: output error (%) under Ghostwriter\n"
                + _fmt_table(["app", "d=4", "d=8"], rows))


def fig11(cache: SweepCache) -> Fig11Result:
    """Output error of the Ghostwriter runs."""
    err, base = {}, {}
    for app in _APPS:
        base[app] = cache.row(app, 0).error_pct
        for d in (4, 8):
            err[(app, d)] = cache.row(app, d).error_pct
    return Fig11Result(err, base)


# ---------------------------------------------------------------------
# Fig. 12 — GI timeout sensitivity on the microbenchmark
# ---------------------------------------------------------------------
@dataclass(slots=True)
class Fig12Result:
    timeouts: list[int]
    gi_serviced_pct: list[float]
    error_pct: list[float]

    def render(self) -> str:
        """The figure as an aligned text table."""
        rows = [
            [str(t), f"{g:6.1f}", f"{e:8.2f}"]
            for t, g, e in zip(self.timeouts, self.gi_serviced_pct,
                               self.error_pct)
        ]
        return ("Fig. 12: GI timeout sensitivity "
                "(bad_dot_product, 4-distance)\n"
                + _fmt_table(
                    ["timeout (cycles)", "serviced by GI (%)",
                     "output error MPE (%)"], rows))


def fig12(timeouts=(128, 512, 1024), num_threads: int = DEFAULT_THREADS,
          n_points: int = 4096, seed: int = 12345, jobs: int = 1,
          options: RunOptions | None = None) -> Fig12Result:
    """GI-timeout sensitivity sweep on the Listing-1 microbenchmark.

    ``options`` threads the durability knobs (result store, resume,
    per-point retry/timeout) into the underlying grid run.
    """
    from repro.harness.parallel import GridFailure, GridPoint, run_grid
    extra = {"options": options} if options is not None else {}
    points = [
        GridPoint("bad_dot_product",
                  dict(d_distance=4, num_threads=num_threads, seed=seed,
                       gi_timeout=timeout, n_points=n_points, max_value=3,
                       **extra),
                  label=f"gi_timeout={timeout}")
        for timeout in timeouts
    ]
    gi_pct, err = [], []
    for point, row in zip(points, run_grid(points, jobs=jobs,
                                           options=options)):
        if isinstance(row, GridFailure):
            raise RuntimeError(f"fig12 point failed: {row.render()}")
        gi_pct.append(row.gi_serviced_pct)
        err.append(row.error_pct)
    return Fig12Result(list(timeouts), gi_pct, err)


# ---------------------------------------------------------------------
# Protocol-variant comparison on the false-sharing microbenchmark
# ---------------------------------------------------------------------
@dataclass(slots=True)
class FigProtocolsResult:
    protocols: list[str]
    rows: list[RunRow]          # aligned with ``protocols``

    def baseline_cycles(self) -> int:
        """Cycle count of the first precise row (usually ``mesi``)."""
        return self.rows[0].cycles

    def render(self) -> str:
        """The figure as an aligned text table."""
        base = self.baseline_cycles()
        table = [
            [p, str(r.cycles), f"{base / r.cycles:5.2f}x",
             str(r.total_traffic), f"{r.error_pct:8.3f}",
             f"{r.gs_serviced_pct:5.1f}", f"{r.gi_serviced_pct:5.1f}"]
            for p, r in zip(self.protocols, self.rows)
        ]
        return ("Protocol variants on the false-sharing microbenchmark "
                "(bad_dot_product)\n"
                + _fmt_table(
                    ["protocol", "cycles", "speedup", "traffic",
                     "error %", "GS %", "GI %"], table))


def fig_protocols(protocols=None, *, d_distance: int = 4,
                  num_threads: int = DEFAULT_THREADS, n_points: int = 4096,
                  seed: int = 12345, jobs: int = 1,
                  options: RunOptions | None = None) -> FigProtocolsResult:
    """Every registered protocol variant on the Listing-1 microbenchmark.

    Approximation-capable variants run at ``d_distance``; precise ones
    run at ``d=0`` (see :func:`repro.harness.sweeps.sweep_protocols`).
    """
    from repro.harness.sweeps import sweep_protocols

    result = sweep_protocols(
        "bad_dot_product", protocols, d_distance=d_distance,
        num_threads=num_threads, seed=seed, jobs=jobs, options=options,
        n_points=n_points, max_value=3,
    )
    failed = result.failures()
    if failed:
        name, failure = failed[0]
        raise RuntimeError(
            f"protocol figure point {name!r} failed: {failure.render()}"
        )
    return FigProtocolsResult(list(result.values), list(result.rows))


# ---------------------------------------------------------------------
# Topology/scale sensitivity: GI staleness + GS acceptance vs directory
# distance (the sweep the paper never ran; ROADMAP item 2)
# ---------------------------------------------------------------------
@dataclass(slots=True)
class FigTopologyResult:
    #: (topology, cores) pairs, aligned with ``dir_hops`` and ``rows``
    points: list[tuple[str, int]]
    #: static mean hop distance from a node to a home directory
    dir_hops: list[float]
    rows: list[RunRow]

    def render(self) -> str:
        """The figure as an aligned text table."""
        table = [
            [t, str(c), f"{h:5.2f}", str(r.cycles),
             f"{r.gs_serviced_pct:5.1f}", f"{r.gi_serviced_pct:5.1f}",
             f"{r.gi_flashes_per_kcycle:7.2f}", str(r.flit_hops),
             f"{r.hops_per_flit:5.2f}", f"{r.error_pct:8.3f}"]
            for (t, c), h, r in zip(self.points, self.dir_hops, self.rows)
        ]
        return ("Topology/scale sensitivity (bad_dot_product): GI "
                "staleness and GS acceptance vs directory distance\n"
                + _fmt_table(
                    ["topology", "cores", "dir hops", "cycles", "GS %",
                     "GI %", "flashes/kcyc", "flit-hops", "hops/flit",
                     "error %"], table))


def fig_topology(topologies=None, core_counts=(24, 64, 128, 256), *,
                 d_distance: int = 4, gi_timeout: int = 1024,
                 n_points: int = 4096, seed: int = 12345, jobs: int = 1,
                 options: RunOptions | None = None) -> FigTopologyResult:
    """Core count x topology sweep on the Listing-1 microbenchmark.

    For each (topology, cores) cell the table reports the *static*
    mean node-to-directory hop distance next to the measured GS/GI
    service rates, the GI flash-invalidation rate, and the hop-weighted
    flit traffic — how the protocol's staleness/effectiveness shifts as
    the directory moves further away.
    """
    from repro.harness.sweeps import sweep_topology_scale

    result = sweep_topology_scale(
        "bad_dot_product", topologies, core_counts, d_distance=d_distance,
        gi_timeout=gi_timeout, seed=seed, jobs=jobs, options=options,
        n_points=n_points, max_value=3,
    )
    failed = result.failures()
    if failed:
        value, failure = failed[0]
        raise RuntimeError(
            f"topology figure point {value!r} failed: {failure.render()}"
        )
    dir_hops = []
    for topo, cores in result.values:
        cfg = experiment_config(enabled=True, d_distance=d_distance,
                                gi_timeout=gi_timeout, num_cores=cores,
                                topology=topo, options=options)
        dir_hops.append(cfg.noc.topo.mean_directory_hops())
    return FigTopologyResult(list(result.values), dir_hops,
                             list(result.rows))

