#!/usr/bin/env python3
"""Epoch-by-epoch reproduction of the paper's Figures 4 and 5.

Part 1 (Fig. 4) — migratory false sharing: two cores alternately load
and store different offsets of the same block, first under baseline
MESI (watch the UPGRADE ping-pong) and then under Ghostwriter (watch
the scribble absorb into GS and the epoch-2 load hit).

Part 2 (Fig. 5) — producer-consumer: producers rotate across cores;
under Ghostwriter the second producer's scribble transitions I -> GI
without a GETX, and the consumer still reads offset 0 correctly while
offset 1 is served stale (approximate execution).  The GI timeout then
returns the block to coherency.

Run:  python examples/protocol_walkthrough.py
"""
from repro.common.config import small_config
from repro.common.types import MessageClass
from repro.isa.instructions import Compute, Load, Scribble, SetAprx, Store
from repro.sim.machine import Machine

BLOCK = 0x4000
EPOCH = 400


def _machine(num_cores: int, enabled: bool, gi_timeout: int = 1024):
    cfg = small_config(num_cores=num_cores, enabled=enabled,
                       d_distance=4, gi_timeout=gi_timeout)
    machine = Machine(cfg)
    for l1 in machine.l1s:
        l1.transition_hook = lambda cyc, node, blk, old, new, why: print(
            f"    [cycle {cyc:>4}] core {node}: {old.value:>4} -> "
            f"{new.value:<4} ({why})"
        )
    return machine


def migratory(enabled: bool) -> None:
    label = "Ghostwriter" if enabled else "baseline MESI"
    print(f"\n--- Fig. 4: migratory false sharing under {label} ---")
    machine = _machine(2, enabled)

    def core0():
        yield SetAprx(4)
        print("  epoch 0: core 0 stores <a> at offset 0")
        yield Store(BLOCK + 0, 0xA)
        yield Compute(2 * EPOCH)
        print("  epoch 2: core 0 loads offset 0")
        v = yield Load(BLOCK + 0)
        print(f"    -> core 0 read {v:#x}")

    def core1():
        yield SetAprx(4)
        yield Compute(EPOCH)
        print("  epoch 1: core 1 loads offset 1, then writes <b> there")
        yield Load(BLOCK + 4)
        yield Scribble(BLOCK + 4, 0xB)
        yield Compute(2 * EPOCH)

    machine.add_thread(0, core0())
    machine.add_thread(1, core1())
    machine.run()
    machine.check_quiescent()
    c0 = machine.stats.child("l1").child("c0")
    counts = machine.network.class_counts()
    print(f"  => core 0 coherence load misses: {int(c0.load_misses)}, "
          f"UPGRADE requests on the NoC: {counts[MessageClass.UPGRADE]}")


def producer_consumer() -> None:
    print("\n--- Fig. 5: producer-consumer under Ghostwriter (GI) ---")
    machine = _machine(3, enabled=True, gi_timeout=6 * EPOCH)

    def core0():  # first producer
        yield SetAprx(4)
        yield Compute(EPOCH // 2)
        print("  epoch 0: core 0 produces <a> at offset 0 (GETX)")
        yield Store(BLOCK + 0, 0xA)
        yield Compute(3 * EPOCH)

    def core1():  # initially holds the block in M; next producer
        yield SetAprx(4)
        yield Store(BLOCK + 4, 0x1)
        yield Compute(EPOCH)
        print("  epoch 1: core 1 produces <b> at offset 1 as a scribble")
        yield Scribble(BLOCK + 4, 0xB)  # I -> GI: no GETX!
        yield Compute(8 * EPOCH)        # epoch 2: GI times out

    def core2():  # consumer
        yield SetAprx(4)
        yield Compute(2 * EPOCH)
        v0 = yield Load(BLOCK + 0)
        v1 = yield Load(BLOCK + 4)
        print(f"  consumer reads offset 0 = {v0:#x} (correct), "
              f"offset 1 = {v1:#x} (stale: core 1's 0xb is hidden)")

    machine.add_thread(0, core0())
    machine.add_thread(1, core1())
    machine.add_thread(2, core2())
    machine.run()
    machine.check_quiescent()
    l1 = machine.stats.child("l1")
    print(f"  => stores serviced by GI: {int(l1.total('gi_serviced'))}, "
          f"GI timeout invalidations: "
          f"{int(l1.total('gi_timeout_invalidations'))}")


def main() -> None:
    migratory(enabled=False)
    migratory(enabled=True)
    producer_consumer()


if __name__ == "__main__":
    main()
