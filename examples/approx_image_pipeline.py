#!/usr/bin/env python3
"""Approximate image pipeline: the paper's jpeg workload end to end.

Runs the multithreaded DCT+quantization encoder on the simulated 24-core
machine, baseline vs Ghostwriter, and reports exactly what an
application developer would weigh: traffic and energy saved vs the
quality of the reconstructed image (NRMSE and PSNR).

Run:  python examples/approx_image_pipeline.py
"""
import math

import numpy as np

from repro.energy.accounting import EnergyAccountant
from repro.harness.experiment import experiment_config
from repro.workloads.registry import create


def psnr(reference: np.ndarray, measured: np.ndarray) -> float:
    mse = float(np.mean((reference - measured) ** 2))
    if mse == 0:
        return math.inf
    return 10 * math.log10(255.0**2 / mse)


def run(d_distance: int):
    enabled = d_distance > 0
    cfg = experiment_config(enabled=enabled, d_distance=max(d_distance, 1))
    workload = create("jpeg", num_threads=24, scale=1.0)
    result = workload.run(cfg)
    energy = EnergyAccountant(cfg).report(result.machine)
    return workload, result, energy


def main() -> None:
    print("encoding a 48x48 synthetic photo on the simulated 24-core CMP\n")
    _, base, base_energy = run(0)
    print(f"baseline MESI : {base.cycles:>8} cycles, "
          f"NoC {base_energy.noc_pj / 1e3:8.1f} nJ, "
          f"error {base.error_pct:.4f}%")

    for d in (4, 8):
        w, r, e = run(d)
        n_px = w.edge * w.edge
        ref_img = np.asarray(r.reference[:n_px]).reshape(w.edge, w.edge)
        out_img = np.asarray(r.output[:n_px]).reshape(w.edge, w.edge)
        speedup = (base.cycles / r.cycles - 1) * 100
        saved = e.savings_vs(base_energy)
        print(f"ghostwriter d{d}: {r.cycles:>8} cycles ({speedup:+5.2f}%), "
              f"NoC energy saved {saved.noc_pct:5.1f}%, "
              f"error {r.error_pct:.4f}% NRMSE, "
              f"PSNR {psnr(ref_img, out_img):6.2f} dB")

    print("\nthe reconstruction stays visually identical while the "
          "encoder's\nshared rate-statistics traffic is absorbed by the "
          "approximate states")


if __name__ == "__main__":
    main()
