#!/usr/bin/env python3
"""Find false sharing with the trace tools, then fix it with Ghostwriter.

The paper (§2) motivates Ghostwriter with how hard false sharing is to
locate.  This example shows the full workflow the library supports:

1. record a memory trace of the suspect program on the baseline machine,
2. classify every cache block's sharing pattern and rank the
   false-sharing candidates,
3. replay the *same trace* under Ghostwriter and measure how much of the
   contended traffic the approximate states absorb.

Run:  python examples/find_false_sharing.py
"""
from repro.analysis.report import format_table
from repro.harness.experiment import experiment_config
from repro.sim.machine import Machine
from repro.trace import TraceRecorder, false_sharing_candidates, replay_trace
from repro.workloads.registry import create

THREADS = 8


def main() -> None:
    # 1. record the suspect program (Listing 1) on baseline MESI
    cfg = experiment_config(enabled=False, num_cores=THREADS)
    workload = create("bad_dot_product", num_threads=THREADS,
                      n_points=1024, max_value=7)
    machine = Machine(cfg)
    workload.build(machine)
    snapshot = machine.backing.memory_image()
    recorder = TraceRecorder(machine)
    machine.run()
    machine.check_quiescent()
    trace = recorder.trace()
    print(f"recorded {len(trace)} accesses, "
          f"L1 miss rate {trace.miss_rate():.1%}\n")

    # 2. rank false-sharing candidates
    candidates = false_sharing_candidates(trace)
    rows = [
        [f"{r.block:#x}", r.pattern.value, str(r.writers), str(r.writes),
         str(r.write_interleavings), f"{r.contention_score:.2f}"]
        for r in candidates[:5]
    ]
    print("top false-sharing blocks (the paper's 'total' array):")
    print(format_table(
        ["block", "pattern", "writers", "writes", "ping-pongs", "score"],
        rows,
    ))

    # 3. replay the identical trace under Ghostwriter
    print("\nreplaying the same trace under Ghostwriter (d=8)...")
    gw_cfg = experiment_config(enabled=True, d_distance=8,
                               num_cores=THREADS)
    base_replay = replay_trace(trace, cfg, initial_memory=snapshot)
    gw_replay = replay_trace(trace, gw_cfg, initial_memory=snapshot)
    b, g = base_replay.network.stats, gw_replay.network.stats
    l1 = gw_replay.stats.child("l1")
    absorbed = int(l1.total("gs_serviced") + l1.total("gi_serviced")
                   + l1.total("gs_store_hits") + l1.total("gi_store_hits"))
    print(f"  baseline replay : {b.messages} messages, "
          f"{b.flit_hops} flit-hops")
    print(f"  ghostwriter     : {g.messages} messages, "
          f"{g.flit_hops} flit-hops "
          f"({(1 - g.messages / b.messages):.1%} fewer)")
    print(f"  stores absorbed by GS/GI: {absorbed}")


if __name__ == "__main__":
    main()
