#!/usr/bin/env python3
"""Auto-tune the d-distance for a quality target (paper §3.5).

"We can also employ existing approximate auto-tuning frameworks to
automatically select the approximate regions and d-distance for an
output quality target specified by the user."  This example runs that
loop: given an error budget, find the most aggressive d-distance that
stays inside it, and show the resulting speedup — on both the MESI and
MOESI baselines.

Run:  python examples/autotune_quality.py [--target 1.0]
"""
import argparse

from repro.harness.autotune import tune_d_distance

THREADS = 8
KW = dict(num_threads=THREADS, scale=1.0, n_points=1024, max_value=7,
          seed=12345)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--target", type=float, default=1.0,
                    help="output error budget in percent (MPE)")
    args = ap.parse_args()

    print(f"tuning the false-sharing dot product for error <= "
          f"{args.target}% on {THREADS} cores\n")
    for target in (0.0, args.target, 10.0):
        res = tune_d_distance(
            "bad_dot_product", target,
            d_candidates=(1, 2, 4, 8, 12, 16), **KW,
        )
        print(f"target {target:5.1f}%: chose d={res.chosen_d:<2} "
              f"-> error {res.chosen_row.error_pct:6.3f}%, "
              f"speedup {res.speedup_pct:+6.2f}% "
              f"({len(res.evaluations)} profiling runs)")

    print("\nthe knob is a genuine accuracy/performance dial: looser "
          "budgets buy\nlarger d-distances and more absorbed coherence "
          "misses.")


if __name__ == "__main__":
    main()
