#!/usr/bin/env python3
"""Quickstart: build a machine, run threads, watch Ghostwriter work.

Simulates two cores sharing one cache block.  Core 1's approximate store
(a *scribble*) is absorbed by the GS state instead of invalidating
core 0's copy, so core 0's next load still hits — the essence of the
Ghostwriter protocol (paper Fig. 4).

Run:  python examples/quickstart.py
"""
from repro.common.config import small_config
from repro.common.types import MessageClass
from repro.isa.instructions import Compute, Load, Scribble, SetAprx, Store
from repro.sim.machine import Machine


def main() -> None:
    # a small 2-core machine with Ghostwriter enabled at d-distance 4
    cfg = small_config(num_cores=2, enabled=True, d_distance=4)
    machine = Machine(cfg)

    # print every coherence transition as it happens
    for l1 in machine.l1s:
        l1.transition_hook = lambda cyc, node, blk, old, new, why: print(
            f"  [cycle {cyc:>4}] core {node}: block {blk:#x} "
            f"{old.value:>4} -> {new.value:<4} ({why})"
        )

    BLOCK = 0x4000

    def core0():
        yield SetAprx(4)                 # program the scribe comparator
        yield Store(BLOCK + 0, 0xA)      # take the block exclusively
        yield Compute(400)               # ... meanwhile core 1 shares it
        value = yield Load(BLOCK + 0)    # still a HIT under Ghostwriter!
        print(f"core 0 read back {value:#x} (expected 0xa) "
              f"without a coherence miss")

    def core1():
        yield SetAprx(4)
        yield Compute(150)
        yield Load(BLOCK + 4)            # join as a sharer (S state)
        yield Scribble(BLOCK + 4, 0xB)   # approximate store -> GS, no
        value = yield Load(BLOCK + 4)    # UPGRADE broadcast
        print(f"core 1 sees its own scribbled value {value:#x} locally")

    machine.add_thread(0, core0())
    machine.add_thread(1, core1())

    print("running...")
    cycles = machine.run()
    machine.check_quiescent()

    counts = machine.network.class_counts()
    print(f"\nfinished in {cycles} cycles")
    print(f"coherence traffic: {counts[MessageClass.GETS]} GETS, "
          f"{counts[MessageClass.GETX]} GETX, "
          f"{counts[MessageClass.UPGRADE]} UPGRADE "
          f"(note: zero UPGRADEs — GS absorbed the scribble)")
    gs = machine.stats.child("l1").total("gs_serviced")
    print(f"stores serviced by the GS state: {int(gs)}")


if __name__ == "__main__":
    main()
