#!/usr/bin/env python3
"""False-sharing study: Listing 1 vs Listing 2 vs Ghostwriter.

Reproduces the paper's motivating experiment (Fig. 1) and then shows
what the paper proposes instead of rewriting the code: running the naive
version on a Ghostwriter machine recovers a good part of the lost
performance at a small accuracy cost.

Run:  python examples/false_sharing_study.py [--threads N]
"""
import argparse

from repro.harness.experiment import experiment_config
from repro.workloads.registry import create

N_POINTS = 4096


def run(name: str, threads: int, *, enabled: bool, d: int = 4, **kw):
    cfg = experiment_config(enabled=enabled, d_distance=d,
                            num_cores=max(threads, 1))
    w = create(name, num_threads=threads, n_points=N_POINTS, **kw)
    return w.run(cfg)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--threads", type=int, default=24)
    args = ap.parse_args()

    counts = [t for t in (1, 2, 4, 8, 16, 24) if t <= args.threads]

    print("Part 1 — the false-sharing cliff (baseline MESI, Fig. 1):")
    print(f"{'threads':>8} {'naive':>12} {'privatized':>12}")
    base_naive = base_priv = None
    naive_cycles = {}
    for t in counts:
        rn = run("bad_dot_product", t, enabled=False, approximate=False)
        rp = run("private_dot_product", t, enabled=False)
        naive_cycles[t] = rn.cycles
        if base_naive is None:
            base_naive, base_priv = rn.cycles, rp.cycles
        print(f"{t:>8} {base_naive / rn.cycles:>11.2f}x "
              f"{base_priv / rp.cycles:>11.2f}x")

    print("\nPart 2 — Ghostwriter rescues the naive code (no rewrite):")
    t = counts[-1]
    for d in (4, 8):
        r = run("bad_dot_product", t, enabled=True, d=d, max_value=15)
        rn = run("bad_dot_product", t, enabled=False, max_value=15)
        speedup = (rn.cycles / r.cycles - 1) * 100
        gs = r.stats.child("l1").total("gs_serviced")
        gi = r.stats.child("l1").total("gi_serviced")
        print(f"  d-distance {d}: {speedup:+6.2f}% speedup, "
              f"output error {r.error_pct:6.2f}% MPE "
              f"(GS entries {int(gs)}, GI entries {int(gi)})")
    print("\nThe fix-by-rewrite (Listing 2) is still fastest — Ghostwriter"
          "\ntargets the code you cannot rewrite.")


if __name__ == "__main__":
    main()
