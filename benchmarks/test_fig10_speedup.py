"""Fig. 10 — speedup over baseline MESI.

Shape assertions (paper §4.3): speedup tracks the amount of mitigated
coherence misses — highest for the false-sharing apps — and Ghostwriter
never slows an application down.
"""
from repro.harness.figures import fig10


def test_fig10(benchmark, sweep_cache):
    result = benchmark.pedantic(fig10, args=(sweep_cache,),
                                iterations=1, rounds=1)
    print("\n" + result.render())
    sp = result.speedup_pct
    apps = {a for a, _d in sp}

    # never a slowdown (paper: "no negative impact")
    for app in apps:
        for d in (4, 8):
            assert sp[(app, d)] > -1.0, f"{app} slowed down at d={d}"

    # somebody benefits substantially at d=8
    assert result.maximum(8) > 5.0
    # and it is a false-sharing app, not a compute-parallel one
    best = max(apps, key=lambda a: sp[(a, 8)])
    assert best in ("linear_regression", "inversek2j", "jpeg")

    # the no-false-sharing apps sit at ~zero
    assert abs(sp[("blackscholes", 8)]) < 1.0
    assert abs(sp[("pca", 4)]) < 1.0

    # average speedup grows (weakly) with d (paper: 4.7% -> 6.5%)
    assert result.average(8) >= result.average(4) - 0.2
    assert result.average(8) > 0.5
