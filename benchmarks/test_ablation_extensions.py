"""Ablations for the future-work extensions (paper §3.4 / §3.5).

* arithmetic vs bit-wise similarity on linear_regression — the richer
  comparator services strictly more stores (it accepts every bit-wise
  pass plus boundary-crossing pairs like 15->16 and -1->0);
* the approximate-write budget on the adversarial microbenchmark — a
  tightening budget trades benefit back for accuracy (runtime error
  bounding);
* the auto-tuner — finds the largest d meeting an error target and
  reports the resulting speedup.
"""
from dataclasses import replace

from repro.harness.autotune import tune_d_distance
from repro.harness.experiment import experiment_config
from repro.workloads.registry import create

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_THREADS


def _run_linreg(mode: str):
    cfg = experiment_config(enabled=True, d_distance=8)
    cfg = replace(cfg, ghostwriter=replace(cfg.ghostwriter,
                                           similarity_mode=mode))
    w = create("linear_regression", num_threads=BENCH_THREADS,
               scale=BENCH_SCALE, seed=BENCH_SEED)
    return w.run(cfg)


def test_similarity_mode_ablation(benchmark):
    def sweep():
        return _run_linreg("bitwise"), _run_linreg("arithmetic")

    bitwise, arith = benchmark.pedantic(sweep, iterations=1, rounds=1)
    b = bitwise.stats.child("l1")
    a = arith.stats.child("l1")
    b_served = b.total("gs_serviced") + b.total("gi_serviced")
    a_served = a.total("gs_serviced") + a.total("gi_serviced")
    print(
        f"\nsimilarity-mode ablation (linear_regression, d=8):\n"
        f"  bitwise   : {int(b_served):>5} episodes, "
        f"error {bitwise.error_pct:7.3f}%, {bitwise.cycles} cycles\n"
        f"  arithmetic: {int(a_served):>5} episodes, "
        f"error {arith.error_pct:7.3f}%, {arith.cycles} cycles"
    )
    # the arithmetic comparator accepts a superset of value pairs
    assert a_served >= b_served
    assert arith.cycles <= bitwise.cycles * 1.02


def test_write_budget_ablation(benchmark):
    def run(budget):
        cfg = experiment_config(enabled=True, d_distance=4)
        cfg = replace(cfg, ghostwriter=replace(
            cfg.ghostwriter, approx_write_budget=budget))
        w = create("bad_dot_product", num_threads=BENCH_THREADS,
                   n_points=1024, max_value=3, seed=BENCH_SEED)
        return w.run(cfg)

    def sweep():
        return {b: run(b) for b in (None, 16, 4, 1)}

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\napprox-write-budget ablation (bad_dot_product, d=4):")
    for budget, r in rows.items():
        label = "unbounded" if budget is None else f"{budget:>9}"
        print(f"  budget {label}: error {r.error_pct:6.2f}%, "
              f"{r.cycles} cycles")
    errs = [rows[b].error_pct for b in (None, 16, 4, 1)]
    # tightening the budget never increases error, and bounds it hard
    assert errs[1] <= errs[0] + 1e-9
    assert errs[2] <= errs[1] + 1e-9
    assert errs[3] <= errs[2] + 1e-9
    assert errs[3] < errs[0]


def test_autotune_meets_quality_target(benchmark):
    target = 1.0  # percent

    def tune():
        return tune_d_distance(
            "bad_dot_product", target, d_candidates=(1, 2, 4, 8, 16),
            num_threads=BENCH_THREADS, scale=1.0, n_points=1024,
            max_value=7, seed=BENCH_SEED,
        )

    res = benchmark.pedantic(tune, iterations=1, rounds=1)
    print("\n" + res.render())
    assert res.chosen_row.error_pct <= target
    assert res.chosen_d >= 1  # some approximation is affordable
