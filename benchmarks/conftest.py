"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures and asserts
its *shape* (who wins, rough factors, orderings) — not absolute numbers.
``pytest-benchmark`` wraps the generation so regeneration cost is
tracked run-over-run.

Benchmarks run the full 24-core machine but at reduced input scale
(``BENCH_SCALE``) so the whole suite finishes in minutes; the CLI
(``ghostwriter-figures``) uses the bigger defaults reported in
EXPERIMENTS.md.
"""
from __future__ import annotations

import pytest

from repro.harness.figures import SweepCache

#: scale factor for benchmark-suite runs (EXPERIMENTS.md uses 0.5)
BENCH_SCALE = 0.25
BENCH_THREADS = 24
BENCH_SEED = 12345


@pytest.fixture(scope="session")
def sweep_cache() -> SweepCache:
    """One shared sweep across every figure benchmark in the session."""
    return SweepCache(num_threads=BENCH_THREADS, scale=BENCH_SCALE,
                      seed=BENCH_SEED)
