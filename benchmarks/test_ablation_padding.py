"""Ablation — padding the structs vs Ghostwriter.

The classic fix for linear_regression's false sharing is padding each
lreg_args struct to its own cache block (§2's Listing-2-style rewrite;
also the layout §3.1's compiler produces for annotated data).  This
bench quantifies the paper's positioning: padding is the performance
ceiling (exact, fastest), and Ghostwriter recovers a meaningful part of
that gap *without relayout* at a bounded accuracy cost.
"""
from repro.harness.experiment import run_workload

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_THREADS

_KW = dict(num_threads=BENCH_THREADS, scale=BENCH_SCALE, seed=BENCH_SEED)


def test_padding_ablation(benchmark):
    def sweep():
        return {
            "packed_base": run_workload("linear_regression", d_distance=0,
                                        **_KW),
            "padded_base": run_workload("linear_regression", d_distance=0,
                                        padded=True, **_KW),
            "packed_gw": run_workload("linear_regression", d_distance=8,
                                      **_KW),
        }

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    packed, padded, gw = (rows["packed_base"], rows["padded_base"],
                          rows["packed_gw"])
    recovered = (packed.cycles - gw.cycles) / max(
        packed.cycles - padded.cycles, 1)
    print(
        f"\npadding ablation (linear_regression):\n"
        f"  packed baseline : {packed.cycles:>8} cycles (the false-sharing "
        f"victim)\n"
        f"  padded baseline : {padded.cycles:>8} cycles (the rewrite fix, "
        f"exact)\n"
        f"  packed + GW d=8 : {gw.cycles:>8} cycles "
        f"(recovers {recovered:.0%} of the gap, error {gw.error_pct:.2f}%)"
    )
    # padding is the ceiling: fastest and exact
    assert padded.cycles < packed.cycles
    assert padded.error_pct == 0.0
    # Ghostwriter closes a meaningful part of the gap without relayout
    assert gw.cycles < packed.cycles
    assert recovered > 0.15
    # padded data has no false sharing left for Ghostwriter to absorb
    padded_gw = run_workload("linear_regression", d_distance=8, padded=True,
                             **_KW)
    assert padded_gw.gs_serviced + padded_gw.gi_serviced < (
        gw.gs_serviced + gw.gi_serviced) / 10
