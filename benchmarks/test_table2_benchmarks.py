"""Table 2 — the benchmark roster."""
from repro.harness.figures import table2

from conftest import BENCH_THREADS


def test_table2(benchmark):
    result = benchmark(table2, BENCH_THREADS)
    print("\n" + result.render())
    by_app = {r[0]: r for r in result.rows}
    assert list(by_app) == [
        "histogram", "linear_regression", "pca",
        "blackscholes", "inversek2j", "jpeg",
    ]
    # Table 2's domain / error-metric columns
    assert by_app["histogram"][1] == "Image Processing"
    assert by_app["histogram"][3] == "MPE"
    assert by_app["linear_regression"][1] == "Machine Learning"
    assert by_app["linear_regression"][3] == "MPE"
    assert by_app["pca"][3] == "NRMSE"
    assert by_app["blackscholes"][1] == "Financial Analysis"
    assert by_app["blackscholes"][3] == "MPE"
    assert by_app["inversek2j"][1] == "Robotics"
    assert by_app["inversek2j"][3] == "NRMSE"
    assert by_app["jpeg"][1] == "Image Compression"
    assert by_app["jpeg"][3] == "NRMSE"
