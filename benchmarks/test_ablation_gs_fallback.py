"""Ablation — GS conventional-fallback design (DESIGN.md design choice).

Compares the two ways a dissimilar scribble can leave GS:

* UPGRADE in place (default): no data transfer; the whole locally
  modified block is published.
* GETX: the divergent copy is discarded; fresh data is fetched and only
  the store's word applied.

Measured on linear_regression (the heaviest GS user).  The bench asserts
the finding the default is based on: in-place UPGRADE is at least as
fast and no worse on error, because the "clobbered" neighbour words are
d-similar by construction while GETX pays a data transfer per fallback.
"""
from dataclasses import replace

from repro.common.config import GhostwriterConfig
from repro.harness.experiment import experiment_config
from repro.workloads.registry import create

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_THREADS


def _run(gs_fallback_getx: bool):
    cfg = experiment_config(enabled=True, d_distance=8)
    cfg = replace(cfg, ghostwriter=GhostwriterConfig(
        enabled=True, d_distance=8, gi_timeout=1024,
        gs_fallback_getx=gs_fallback_getx,
    ))
    w = create("linear_regression", num_threads=BENCH_THREADS,
               scale=BENCH_SCALE, seed=BENCH_SEED)
    return w.run(cfg)


def test_gs_fallback_ablation(benchmark):
    def sweep():
        return _run(False), _run(True)

    upgrade, getx = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print(
        f"\nGS fallback ablation (linear_regression, d=8):\n"
        f"  UPGRADE in place: cycles={upgrade.cycles:>8d} "
        f"error={upgrade.error_pct:7.3f}%\n"
        f"  GETX refetch:     cycles={getx.cycles:>8d} "
        f"error={getx.error_pct:7.3f}%"
    )
    # the finding behind the default: UPGRADE is no slower and no less
    # accurate than the refetching design
    assert upgrade.cycles <= getx.cycles * 1.02
    assert upgrade.error_pct <= getx.error_pct * 1.1 + 0.5
