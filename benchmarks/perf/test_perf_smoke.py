"""Smoke test for the perf microbenchmark suite.

Asserts the suite executes end to end in check-only mode and that the
emitted ``BENCH_perf.json`` is schema-valid — no timing thresholds, so
the test is robust on loaded CI runners.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""
from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest


@pytest.fixture(scope="module")
def run_perf():
    """The run_perf module, loaded by path (benchmarks/ is not a package)."""
    path = Path(__file__).with_name("run_perf.py")
    spec = importlib.util.spec_from_file_location("run_perf", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_check_only_emits_valid_report(run_perf, tmp_path):
    out = tmp_path / "BENCH_perf.json"
    assert run_perf.main(["--check-only", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    run_perf.validate_report(report)  # must not raise
    assert report["mode"] == "check"
    names = [row["name"] for row in report["benchmarks"]]
    assert "engine_same_cycle_dispatch" in names
    assert "scribe_check_observe" in names
    assert "workload_false_sharing" in names


def test_validator_rejects_bad_reports(run_perf):
    good = run_perf.run_suite(check_only=True, repeats=1)
    run_perf.validate_report(good)

    with pytest.raises(ValueError):
        run_perf.validate_report({})
    bad_version = dict(good, schema_version=99)
    with pytest.raises(ValueError):
        run_perf.validate_report(bad_version)
    missing_bench = dict(good, benchmarks=good["benchmarks"][:-1])
    with pytest.raises(ValueError):
        run_perf.validate_report(missing_bench)
    negative_time = dict(good, benchmarks=[
        dict(good["benchmarks"][0], best_seconds=-1.0)
    ] + good["benchmarks"][1:])
    with pytest.raises(ValueError):
        run_perf.validate_report(negative_time)
