"""Smoke test for the perf microbenchmark suite.

Asserts the suite executes end to end in check-only mode and that the
emitted ``BENCH_perf.json`` is schema-valid — no timing thresholds, so
the test is robust on loaded CI runners.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""
from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest


@pytest.fixture(scope="module")
def run_perf():
    """The run_perf module, loaded by path (benchmarks/ is not a package)."""
    path = Path(__file__).with_name("run_perf.py")
    spec = importlib.util.spec_from_file_location("run_perf", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_check_only_emits_valid_report(run_perf, tmp_path):
    out = tmp_path / "BENCH_perf.json"
    assert run_perf.main(["--check-only", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    run_perf.validate_report(report)  # must not raise
    assert report["mode"] == "check"
    names = [row["name"] for row in report["benchmarks"]]
    assert "engine_same_cycle_dispatch" in names
    assert "scribe_check_observe" in names
    assert "workload_false_sharing" in names


def test_obs_benchmarks_present(run_perf, tmp_path):
    out = tmp_path / "BENCH_perf.json"
    assert run_perf.main(["--check-only", "--out", str(out)]) == 0
    names = [row["name"] for row in
             json.loads(out.read_text())["benchmarks"]]
    assert "event_bus_emit" in names
    assert "workload_obs_tracing" in names


def test_untraced_machine_pays_no_structural_obs_cost():
    """Tracing off means *no* obs objects exist: the hot paths see a
    single ``is None`` attribute check and nothing else."""
    from repro.harness.experiment import experiment_config
    from repro.sim.machine import Machine

    m = Machine(experiment_config(enabled=True, num_cores=2))
    assert m.bus is None
    assert m.recorder is None
    assert m.flight is None
    assert m.timeline is None
    for l1 in m.l1s:
        assert l1.bus is None
        assert l1.scribe.bus is None
    assert m.network.bus is None


def test_obs_overhead_is_bounded():
    """A fully traced run may cost more, but only by a sane factor; the
    bound is deliberately generous so loaded CI runners stay green."""
    import time

    from repro.harness.experiment import run_workload
    from repro.harness.options import RunOptions

    kwargs = dict(d_distance=4, num_threads=4, seed=12345, n_points=512,
                  max_value=7)
    traced = RunOptions(trace_events=True, timeline_interval=1024)

    def best_of(opts, n=2):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            run_workload("bad_dot_product", options=opts, **kwargs)
            times.append(time.perf_counter() - t0)
        return min(times)

    best_of(RunOptions())                 # warm imports/caches
    t_off = best_of(RunOptions())
    t_on = best_of(traced)
    assert t_on < 25 * t_off, (t_off, t_on)


def test_protocol_benchmarks_present(run_perf, tmp_path):
    out = tmp_path / "BENCH_perf.json"
    assert run_perf.main(["--check-only", "--out", str(out)]) == 0
    names = [row["name"] for row in
             json.loads(out.read_text())["benchmarks"]]
    assert "l1_hit_path_mesi" in names
    assert "l1_hit_path_ghostwriter" in names
    assert "workload_protocol_mesi" in names
    assert "workload_protocol_update_hybrid" in names


def test_policy_indirection_under_five_percent(run_perf):
    """The pluggable-policy refactor's perf budget: routing L1 decisions
    through the injected ``ProtocolPolicy`` costs < 5% on the pure hit
    loop vs the precise MESI baseline.  Both thunks run the identical
    load-hit loop, so the only difference is policy-derived state; the
    ratio is taken over min-of-many trials and the whole measurement
    retries to shrug off scheduler noise on loaded CI runners."""
    import time

    n = 20_000
    mesi_thunk, _ = run_perf.bench_l1_hit_path("mesi")(n)
    gw_thunk, _ = run_perf.bench_l1_hit_path("ghostwriter")(n)

    def best_of(thunk, trials=7):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            thunk()
            best = min(best, time.perf_counter() - t0)
        return best

    best_of(mesi_thunk, 2)  # warm both code paths before comparing
    best_of(gw_thunk, 2)
    for attempt in range(3):
        t_mesi = best_of(mesi_thunk)
        t_gw = best_of(gw_thunk)
        if t_gw <= t_mesi * 1.05:
            return
    pytest.fail(f"policy indirection over budget: mesi={t_mesi:.4f}s "
                f"ghostwriter={t_gw:.4f}s ({t_gw / t_mesi:.3f}x)")


def test_validator_rejects_bad_reports(run_perf):
    good = run_perf.run_suite(check_only=True, repeats=1)
    run_perf.validate_report(good)

    with pytest.raises(ValueError):
        run_perf.validate_report({})
    bad_version = dict(good, schema_version=99)
    with pytest.raises(ValueError):
        run_perf.validate_report(bad_version)
    missing_bench = dict(good, benchmarks=good["benchmarks"][:-1])
    with pytest.raises(ValueError):
        run_perf.validate_report(missing_bench)
    negative_time = dict(good, benchmarks=[
        dict(good["benchmarks"][0], best_seconds=-1.0)
    ] + good["benchmarks"][1:])
    with pytest.raises(ValueError):
        run_perf.validate_report(negative_time)


def test_compiled_benchmarks_present(run_perf, tmp_path):
    out = tmp_path / "BENCH_perf.json"
    assert run_perf.main(["--check-only", "--out", str(out)]) == 0
    names = [row["name"] for row in
             json.loads(out.read_text())["benchmarks"]]
    assert "core_step_loop" in names
    assert "sweep_wall_clock" in names
    assert "sweep_wall_clock_batch" in names


@pytest.fixture(scope="module")
def check_regression():
    """The regression-guard module, loaded by path."""
    path = Path(__file__).with_name("check_regression.py")
    spec = importlib.util.spec_from_file_location("check_regression", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _report(ops, mode="full"):
    return {"mode": mode,
            "benchmarks": [{"name": n, "ops_per_second": v}
                           for n, v in ops.items()]}


def test_regression_guard_flags_only_real_drops(check_regression):
    names = check_regression.KEY_BENCHES
    base = _report({n: 100.0 for n in names})
    ok = check_regression.check(
        _report({n: 80.0 for n in names}), base)
    assert ok == []
    dropped = {n: 200.0 for n in names}
    dropped["core_step_loop"] = 60.0
    problems = check_regression.check(_report(dropped), base)
    assert len(problems) == 1 and "core_step_loop" in problems[0]


def test_regression_guard_fails_on_missing_guarded_bench(check_regression):
    """A guarded bench absent from the fresh report is a failure, not a
    silent skip — deleting or renaming a key benchmark must not turn
    its guard off."""
    names = check_regression.KEY_BENCHES
    base = _report({n: 100.0 for n in names})
    cur = {n: 100.0 for n in names}
    del cur["sweep_wall_clock_batch"]
    problems = check_regression.check(_report(cur), base)
    assert len(problems) == 1
    assert "sweep_wall_clock_batch" in problems[0]
    assert "missing" in problems[0]


def test_regression_guard_tolerates_new_bench_and_rejects_check_mode(
        check_regression):
    names = check_regression.KEY_BENCHES
    # missing only from the *baseline*: the bench was added after the
    # baseline was committed — nothing to compare against yet
    assert check_regression.check(
        _report({n: 100.0 for n in names}),
        _report({"core_step_loop": 100.0})) == []
    with pytest.raises(SystemExit):
        check_regression.check(_report({}, mode="check"),
                               _report({n: 100.0 for n in names}))


def test_regression_guard_gates_committed_baseline(check_regression):
    """Every key bench the guard gates on exists in the committed
    BENCH_perf.json (a rename would otherwise silently disable it)."""
    committed = json.loads(
        (Path(__file__).resolve().parents[2] / "BENCH_perf.json")
        .read_text())
    names = {row["name"] for row in committed["benchmarks"]}
    missing = set(check_regression.KEY_BENCHES) - names
    assert not missing, f"key benches missing from baseline: {missing}"
