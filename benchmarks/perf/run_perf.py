#!/usr/bin/env python
"""Hot-path microbenchmark suite -> ``BENCH_perf.json``.

Times the simulator paths the parallel-sweep PR optimized — same-cycle
event dispatch, scribe similarity checks, L1 stats recording, the
vectorized d-distance kernels, and one end-to-end workload run — plus
the observability layer's costs (raw EventBus fan-out and a fully
traced workload run, against the untraced run for the overhead ratio)
and a protocol dimension (a pure L1 hit loop under the precise MESI
policy vs the full Ghostwriter policy — the policy-indirection
measurement — plus end-to-end runs of two registry variants) and the
compiled-program layer (``core_step_loop``: the columnar interpreter's
fetch/dispatch loop) and the sweep backends (``sweep_wall_clock`` vs
``sweep_wall_clock_batch``: the same dense d-distance x GI-timeout
grid through the serial interpreter and the lockstep batch engine of
``repro.sim.batch`` — both produce bit-identical rows, so their ops/s
ratio is the batch speedup) — and emits a machine-readable
``BENCH_perf.json`` so the performance trajectory is tracked from this
PR on.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py
    PYTHONPATH=src python benchmarks/perf/run_perf.py --check-only

``--check-only`` runs every benchmark at a tiny op count and validates
the emitted JSON against the schema — no timing thresholds — which is
what CI's perf-smoke job executes.  Numbers from ``--check-only`` runs
are *not* comparable to full runs.
"""
from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Callable

# allow `python benchmarks/perf/run_perf.py` without an explicit PYTHONPATH
_SRC = Path(__file__).resolve().parents[2] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.common.stats import StatGroup
from repro.scribe.scribe_unit import ScribeUnit
from repro.scribe.similarity import d_distance, is_similar
from repro.sim.engine import Engine

SCHEMA_VERSION = 1
DEFAULT_OUT = "BENCH_perf.json"
_SEED = 20210814  # the paper's publication date; fixed for repeatability


def _word_pairs(n: int) -> list[tuple[int, int]]:
    rng = random.Random(_SEED)
    return [(rng.getrandbits(32), rng.getrandbits(32)) for _ in range(n)]


# ---------------------------------------------------------------------
# benchmark bodies: each returns (thunk, ops); the harness times thunk
# ---------------------------------------------------------------------
def bench_engine_spread_dispatch(n: int):
    """Event dispatch with every event on its own cycle (heap-bound)."""
    def thunk() -> None:
        e = Engine()
        cb = (lambda: None)
        for i in range(n):
            e.schedule(i, cb)
        e.run()
    return thunk, n


def bench_engine_same_cycle_dispatch(n: int):
    """Event dispatch with heavy same-cycle batching (the common shape:
    every core and NoC hop schedules work for 'now + small delta')."""
    cycles = max(1, n // 64)

    def thunk() -> None:
        e = Engine()
        cb = (lambda: None)
        for i in range(n):
            e.schedule(i % cycles, cb)
        e.run()
    return thunk, n


def bench_similarity_scalar(n: int):
    """Scalar ``is_similar`` (the memoized-mask comparator path)."""
    pairs = _word_pairs(n)

    def thunk() -> None:
        for a, b in pairs:
            is_similar(a, b, 4)
            is_similar(a, b, 8)
    return thunk, 2 * n


def bench_d_distance_scalar(n: int):
    """Scalar ``d_distance`` (the Fig. 2 observe path's kernel)."""
    pairs = _word_pairs(n)

    def thunk() -> None:
        for a, b in pairs:
            d_distance(a, b)
    return thunk, n


def bench_scribe_check_observe(n: int):
    """A programmed ScribeUnit's per-store ``observe`` + ``check``."""
    pairs = _word_pairs(n)

    def thunk() -> None:
        unit = ScribeUnit(d_distance=8, enabled=True, stats=StatGroup("s"))
        unit.program(8)
        for a, b in pairs:
            unit.observe(a, b)
            unit.check(a, b)
    return thunk, 2 * n


def bench_stats_hot_counters(n: int):
    """The counter-dict stats recording the L1 access path uses."""
    def thunk() -> None:
        g = StatGroup("l1")
        c = g.counters("loads", "stores")
        for _ in range(n):
            c["loads"] += 1
            c["stores"] += 1
    return thunk, 2 * n


def bench_ddistance_array(n: int):
    """Vectorized d-distance + mask-similarity over uint32 arrays."""
    from repro.analysis.ddistance import within_distance_array
    from repro.scribe.similarity import d_distance_array

    rng = np.random.default_rng(_SEED)
    a = rng.integers(0, 2**32, size=n, dtype=np.uint32)
    b = rng.integers(0, 2**32, size=n, dtype=np.uint32)

    def thunk() -> None:
        d_distance_array(a, b)
        within_distance_array(a, b, 8)
    return thunk, 2 * n


def bench_workload_false_sharing(n: int):
    """End-to-end simulator throughput on the Listing-1 microbenchmark
    (ops = simulated cycles, so ops/s is simulated cycles per second)."""
    from repro.harness.experiment import run_workload

    ops_box = [1]

    def thunk() -> None:
        row = run_workload("bad_dot_product", d_distance=4, num_threads=4,
                           seed=12345, n_points=n, max_value=7)
        ops_box[0] = row.cycles
    thunk()  # warm once so the reported op count is the real cycle count
    return thunk, ops_box[0]


def bench_core_step_loop(n: int):
    """The compiled interpreter's fetch/dispatch loop: one core running a
    pre-lowered all-load program cycling 16 words of a single resident
    block (first load fills it, the rest are pure L1 hits)."""
    from repro.common.config import small_config
    from repro.isa.compiled import CompiledProgram
    from repro.sim.machine import Machine

    addrs = [0x1000 + (i % 16) * 4 for i in range(n)]
    prog = CompiledProgram(
        np.zeros(n, dtype=np.int8),           # OP_LOAD
        np.asarray(addrs, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        validate_loads=False,
    )
    cfg = small_config(num_cores=1)

    def thunk() -> None:
        m = Machine(cfg)
        m.add_thread(0, prog)
        m.run()
    return thunk, n


def bench_core_hit_run(n: int):
    """The vectorized hit-run fast lane (repro.core.hitrun) on a mixed
    load/store/scribble stream inside an approximate region: one core
    cycling 4 resident blocks, so after the cold fills every op is a
    guaranteed L1 hit and the lane merges whole quanta as numpy
    kernels — the store/scribble kernel paths core_step_loop's all-load
    stream never reaches."""
    from repro.common.config import small_config
    from repro.isa.compiled import (
        CompiledProgram, OP_LOAD, OP_SCRIBBLE, OP_SETAPRX, OP_STORE,
    )
    from repro.sim.machine import Machine

    ops = [OP_SETAPRX]
    addrs = [0]
    vals = [0]
    cycs = [6]
    pattern = (OP_LOAD, OP_STORE, OP_LOAD, OP_SCRIBBLE)
    for i in range(n):
        code = pattern[i % 4]
        ops.append(code)
        addrs.append(0x1000 + (i % 4) * 64 + ((i * 7) % 16) * 4)
        vals.append(0 if code == OP_LOAD else (i * 3) & 0x3F)
        cycs.append(0)
    prog = CompiledProgram(
        np.asarray(ops, dtype=np.int8),
        np.asarray(addrs, dtype=np.int64),
        np.asarray(vals, dtype=np.int64),
        np.asarray(cycs, dtype=np.int64),
        validate_loads=False,
    )
    cfg = small_config(num_cores=1, enabled=True, d_distance=6)

    def thunk() -> None:
        m = Machine(cfg)
        m.add_thread(0, prog)
        m.run()
    return thunk, n


def _sweep_grid_points(n: int):
    """The dense d-distance x GI-timeout sweep grid both sweep benches
    run: ``n`` d values crossed with two GI timeouts on the histogram
    workload (2n points sharing one compiled op stream)."""
    from repro.harness.parallel import GridPoint

    return [
        GridPoint("histogram", (("d_distance", d), ("gi_timeout", gi),
                                ("num_threads", 4), ("scale", 0.1),
                                ("seed", 12345)))
        for d in range(1, n + 1) for gi in (256, 1024)
    ]


def _bench_sweep_grid(backend: str):
    """Factory of factories: the dense sweep grid under an execution
    backend.  Both backends produce bit-identical rows (enforced by
    tests/sim/test_batch_equivalence.py), so ops (total simulated
    cycles) are equal and the ops/s ratio is the wall-clock speedup."""
    def factory(n: int):
        from repro.harness.options import RunOptions
        from repro.harness.parallel import run_grid

        points = _sweep_grid_points(n)
        opts = RunOptions(backend=backend)
        ops_box = [1]

        def thunk() -> None:
            rows = run_grid(points, options=opts)
            ops_box[0] = sum(row.cycles for row in rows)
        thunk()  # warm once so the reported op count is the real cycle count
        return thunk, ops_box[0]
    return factory


#: serial baseline over the dense grid — one full interpreter run per
#: sweep point (the program cache amortizes op-stream recording only)
bench_sweep_wall_clock = _bench_sweep_grid("serial")

#: the same grid through the lockstep batch backend (repro.sim.batch):
#: one representative run per decision-equivalence class, every other
#: lane served from it
bench_sweep_wall_clock_batch = _bench_sweep_grid("batch")


def _hit_loop_l1(protocol: str):
    """A live machine whose L1 0 holds one block in M, ready for a pure
    hit loop (the warm store miss is drained before timing starts)."""
    from dataclasses import replace

    from repro.common.config import small_config
    from repro.common.types import AccessType
    from repro.sim.machine import Machine

    from repro.coherence.policy import get_protocol

    cfg = replace(
        small_config(num_cores=2, enabled=get_protocol(protocol).approx),
        protocol=protocol,
    )
    m = Machine(cfg)
    l1 = m.l1s[0]
    hit, _ = l1.access(AccessType.STORE, 0x8000, 1, lambda _v: None)
    if not hit:
        m.engine.run()
    return l1


def bench_l1_hit_path(protocol: str):
    """Factory of factories: the L1 load-hit hot path under ``protocol``.

    The loop is pure hits on a resident M line, so the two variants
    execute the same work except for policy-derived branches — the
    ``l1_hit_path_mesi`` / ``l1_hit_path_ghostwriter`` pair is the
    policy-indirection overhead measurement (the smoke test pins the
    ratio under 5%).
    """
    def factory(n: int):
        from repro.common.types import AccessType

        l1 = _hit_loop_l1(protocol)

        def thunk() -> None:
            acc = l1.access
            load = AccessType.LOAD
            nop = (lambda _v: None)
            for _ in range(n):
                acc(load, 0x8000, None, nop)
        return thunk, n
    return factory


def bench_workload_protocol(protocol: str, d_distance: int):
    """Factory of factories: the false-sharing workload under an
    arbitrary registered protocol (the perf suite's protocol dimension);
    ops = simulated cycles."""
    def factory(n: int):
        from repro.harness.experiment import run_workload

        ops_box = [1]

        def thunk() -> None:
            row = run_workload("bad_dot_product", protocol=protocol,
                               d_distance=d_distance, num_threads=4,
                               seed=12345, n_points=n, max_value=7)
            ops_box[0] = row.cycles
        thunk()  # warm once so the reported op count is the real cycle count
        return thunk, ops_box[0]
    return factory


def bench_noc_route_chiplet(n: int):
    """The chiplet topology's route/latency arithmetic — the hot NoC
    query path (`hops`, `route`, `path_latency`) over every (src, dst)
    pair of the 64-core 4x(4x4) machine, repeated to ``n`` lookups."""
    from repro.common.config import noc_for_topology

    cfg = noc_for_topology("chiplet", 64)
    topo = cfg.topo
    pairs = [(s, d) for s in range(cfg.num_nodes)
             for d in range(cfg.num_nodes)]
    rounds = max(1, n // len(pairs))

    def thunk() -> None:
        hops, route, lat = topo.hops, topo.route, topo.path_latency
        for _ in range(rounds):
            for s, d in pairs:
                hops(s, d)
                route(s, d)
                lat(s, d)
    return thunk, 3 * rounds * len(pairs)


def bench_checkpoint_roundtrip(n: int):
    """Factory: one whole-machine capture -> restore round trip
    (``repro.sim.state.MachineCheckpoint``) on a warmed 2-core machine —
    the unit of work the batch backend's fork-at-divergence pays per
    forked representative, and the CLI pays per recorder window."""
    from repro.common.config import small_config
    from repro.isa.compiled import ProgramCache, ProgramSpec
    from repro.isa.instructions import Compute, Load, SetAprx, Store
    from repro.sim.machine import Machine
    from repro.sim.state import MachineCheckpoint

    cfg = small_config(num_cores=2)
    cache = ProgramCache()

    def factory_for(cid: int):
        def prog():
            yield SetAprx(4)
            for i in range(32):
                yield Store(0x8000 + 4 * (4 + cid), (cid << 10) | i)
                yield Load(0x8000 + 4 * (4 + (cid ^ 1)))
                yield Compute(20)
        return prog

    def build() -> Machine:
        m = Machine(cfg)
        for cid in range(2):
            m.add_thread(cid, ProgramSpec(factory_for(cid),
                                          key=("bench_ckpt", cid),
                                          cache=cache))
        return m

    src = build()
    src.run()  # a finished machine is trivially at a safe point
    dst = build()

    def thunk() -> None:
        for _ in range(n):
            MachineCheckpoint.capture(src).restore_into(dst)
    return thunk, n


def bench_event_bus_emit(n: int):
    """Raw EventBus fan-out with one subscriber (the tracing fast path)."""
    from repro.obs.events import Event, EventBus, EventKind

    def thunk() -> None:
        bus = EventBus()
        sink = []
        bus.subscribe(sink.append)
        for i in range(n):
            bus.emit(Event(i, EventKind.ACCESS, 0, 64 * i, "load", "hit"))
    return thunk, n


def bench_workload_obs_tracing(n: int):
    """The false-sharing workload with full tracing on (events +
    timeline), against ``workload_false_sharing`` for the overhead
    ratio; ops = simulated cycles."""
    from repro.harness.experiment import run_workload
    from repro.harness.options import RunOptions

    opts = RunOptions(trace_events=True, timeline_interval=1024)
    ops_box = [1]

    def thunk() -> None:
        row = run_workload("bad_dot_product", d_distance=4, num_threads=4,
                           seed=12345, n_points=n, max_value=7,
                           options=opts)
        ops_box[0] = row.cycles
    thunk()  # warm once so the reported op count is the real cycle count
    return thunk, ops_box[0]


#: (name, factory, full-size n, check-only n)
BENCHMARKS: list[tuple[str, Callable, int, int]] = [
    ("engine_spread_dispatch", bench_engine_spread_dispatch, 100_000, 500),
    ("engine_same_cycle_dispatch", bench_engine_same_cycle_dispatch,
     100_000, 500),
    ("similarity_scalar", bench_similarity_scalar, 100_000, 500),
    ("d_distance_scalar", bench_d_distance_scalar, 100_000, 500),
    ("scribe_check_observe", bench_scribe_check_observe, 100_000, 500),
    ("stats_hot_counters", bench_stats_hot_counters, 100_000, 500),
    ("ddistance_array", bench_ddistance_array, 1_000_000, 1_000),
    ("workload_false_sharing", bench_workload_false_sharing, 1024, 96),
    ("core_step_loop", bench_core_step_loop, 50_000, 500),
    ("core_hit_run", bench_core_hit_run, 50_000, 500),
    ("sweep_wall_clock", bench_sweep_wall_clock, 32, 4),
    ("sweep_wall_clock_batch", bench_sweep_wall_clock_batch, 32, 4),
    ("noc_route_chiplet", bench_noc_route_chiplet, 40_000, 4_096),
    ("checkpoint_roundtrip", bench_checkpoint_roundtrip, 200, 4),
    ("event_bus_emit", bench_event_bus_emit, 200_000, 500),
    ("workload_obs_tracing", bench_workload_obs_tracing, 1024, 96),
    # protocol dimension: the policy-indirection pair (pure L1 hit loop,
    # precise MESI vs full Ghostwriter policy) and end-to-end runs of the
    # registry's precise baseline and one non-paper variant
    ("l1_hit_path_mesi", bench_l1_hit_path("mesi"), 50_000, 500),
    ("l1_hit_path_ghostwriter", bench_l1_hit_path("ghostwriter"),
     50_000, 500),
    ("workload_protocol_mesi", bench_workload_protocol("mesi", 0),
     1024, 96),
    ("workload_protocol_update_hybrid",
     bench_workload_protocol("update-hybrid", 4), 1024, 96),
]


def run_suite(*, check_only: bool = False, repeats: int = 3) -> dict:
    """Execute every benchmark; returns the report dict (not yet written)."""
    rows = []
    for name, factory, n_full, n_check in BENCHMARKS:
        n = n_check if check_only else n_full
        thunk, ops = factory(n)
        times = []
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            thunk()
            times.append(time.perf_counter() - t0)
        best = min(times)
        rows.append({
            "name": name,
            "ops": int(ops),
            "repeats": len(times),
            "best_seconds": best,
            "mean_seconds": sum(times) / len(times),
            "ops_per_second": (ops / best) if best > 0 else 0.0,
        })
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": "check" if check_only else "full",
        "python": sys.version.split()[0],
        "benchmarks": rows,
    }


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` matches the BENCH_perf.json
    schema (used by ``--check-only``, the smoke test, and CI)."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    if report.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"schema_version must be {SCHEMA_VERSION}")
    if report.get("mode") not in ("full", "check"):
        raise ValueError("mode must be 'full' or 'check'")
    if not isinstance(report.get("python"), str):
        raise ValueError("python must be a version string")
    rows = report.get("benchmarks")
    if not isinstance(rows, list) or not rows:
        raise ValueError("benchmarks must be a non-empty list")
    names = set()
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError("each benchmark entry must be an object")
        name = row.get("name")
        if not isinstance(name, str) or not name or name in names:
            raise ValueError(f"bad or duplicate benchmark name: {name!r}")
        names.add(name)
        if not (isinstance(row.get("ops"), int) and row["ops"] > 0):
            raise ValueError(f"{name}: ops must be a positive int")
        if not (isinstance(row.get("repeats"), int) and row["repeats"] > 0):
            raise ValueError(f"{name}: repeats must be a positive int")
        for key in ("best_seconds", "mean_seconds", "ops_per_second"):
            val = row.get(key)
            if not isinstance(val, (int, float)) or val < 0:
                raise ValueError(f"{name}: {key} must be a number >= 0")
    expected = {name for name, *_ in BENCHMARKS}
    if names != expected:
        raise ValueError(
            f"benchmark set mismatch: missing {sorted(expected - names)}, "
            f"unexpected {sorted(names - expected)}"
        )


def _render(report: dict) -> str:
    header = f"{'benchmark':<32} {'ops':>9} {'best (s)':>10} {'ops/s':>12}"
    lines = [header, "-" * len(header)]
    for row in report["benchmarks"]:
        lines.append(
            f"{row['name']:<32} {row['ops']:>9} "
            f"{row['best_seconds']:>10.4f} {row['ops_per_second']:>12.0f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="run_perf",
        description="Hot-path microbenchmarks; emits BENCH_perf.json.",
    )
    p.add_argument("--out", default=DEFAULT_OUT, metavar="PATH",
                   help=f"output JSON path (default {DEFAULT_OUT})")
    p.add_argument("--check-only", action="store_true",
                   help="tiny op counts + schema validation only "
                        "(no meaningful timings); what CI runs")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repetitions per benchmark (best is kept)")
    args = p.parse_args(argv)

    report = run_suite(check_only=args.check_only,
                       repeats=1 if args.check_only else args.repeats)
    validate_report(report)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(_render(report))
    print(f"[{report['mode']} mode; wrote {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
