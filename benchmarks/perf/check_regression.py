#!/usr/bin/env python
"""Perf-regression guard: compare a fresh BENCH_perf.json to the
committed baseline.

CI's perf-guard job reruns ``run_perf.py`` (full mode) on the runner and
fails the build when any *key* benchmark loses more than the allowed
fraction of its committed ops/sec.  Only a conservative subset of
benchmarks guards the build: end-to-end workload numbers on shared CI
runners are too noisy to gate on, while the tight single-path loops
below are stable enough that a >25% drop reliably means a real
regression, not scheduler jitter.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --out /tmp/now.json
    python benchmarks/perf/check_regression.py /tmp/now.json \
        --baseline BENCH_perf.json --max-drop 0.25
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: benchmarks stable enough to gate CI on (tight loops, low variance)
KEY_BENCHES = (
    "engine_spread_dispatch",
    "engine_same_cycle_dispatch",
    "similarity_scalar",
    "stats_hot_counters",
    "core_step_loop",
    "core_hit_run",
    "l1_hit_path_mesi",
    "l1_hit_path_ghostwriter",
    "sweep_wall_clock_batch",
    "noc_route_chiplet",
    "checkpoint_roundtrip",
)

DEFAULT_MAX_DROP = 0.25


def _ops_per_second(report: dict) -> dict[str, float]:
    if report.get("mode") != "full":
        raise SystemExit(
            f"refusing to compare a {report.get('mode')!r}-mode report: "
            "only full-mode timings are meaningful"
        )
    return {row["name"]: row["ops_per_second"]
            for row in report["benchmarks"]}


def check(current: dict, baseline: dict,
          max_drop: float = DEFAULT_MAX_DROP) -> list[str]:
    """Regression messages for every key bench below the allowed floor
    (empty list = pass).

    A guarded bench missing from the *fresh* report is itself a failure
    — a silently deleted or renamed benchmark must not pass the guard.
    A bench missing only from the *baseline* is skipped: it was added
    after the baseline was committed and has nothing to compare against
    yet (the schema validator in run_perf.py keeps fresh reports
    complete)."""
    cur = _ops_per_second(current)
    base = _ops_per_second(baseline)
    problems = []
    for name in KEY_BENCHES:
        if name not in cur:
            problems.append(
                f"{name}: guarded benchmark missing from the fresh "
                f"report — deleted or renamed without updating "
                f"KEY_BENCHES"
            )
            continue
        if name not in base:
            continue
        floor = base[name] * (1.0 - max_drop)
        if cur[name] < floor:
            problems.append(
                f"{name}: {cur[name]:,.0f} ops/s is "
                f"{1.0 - cur[name] / base[name]:.1%} below the committed "
                f"{base[name]:,.0f} ops/s (allowed drop {max_drop:.0%})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="check_regression",
        description="Fail when key benchmarks regress vs the baseline.",
    )
    p.add_argument("current", help="freshly generated BENCH_perf.json")
    p.add_argument("--baseline", default="BENCH_perf.json",
                   help="committed baseline (default BENCH_perf.json)")
    p.add_argument("--max-drop", type=float, default=DEFAULT_MAX_DROP,
                   help="allowed fractional ops/sec drop per key bench "
                        f"(default {DEFAULT_MAX_DROP})")
    args = p.parse_args(argv)

    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    problems = check(current, baseline, args.max_drop)
    if problems:
        print("perf regression detected:")
        for msg in problems:
            print(f"  - {msg}")
        return 1
    cur = _ops_per_second(current)
    base = _ops_per_second(baseline)
    for name in KEY_BENCHES:
        if name in cur and name in base:
            print(f"{name:<32} {cur[name] / base[name]:>7.2f}x baseline")
    print(f"[ok: no key bench dropped more than {args.max_drop:.0%}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
