"""Fig. 2 — cumulative d-distance distributions of store values.

Shape assertions (paper §2): a substantial fraction of overwritten
values are identical (silent stores; paper avg 22.8 %), similarity
grows with d (36.4 % within 4, 43.7 % within 8 on their samples), and
every per-app curve is a valid CDF.
"""
import numpy as np

from repro.harness.figures import fig2

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_THREADS


def test_fig2(benchmark):
    result = benchmark.pedantic(
        fig2, kwargs=dict(num_threads=BENCH_THREADS, scale=BENCH_SCALE,
                          seed=BENCH_SEED),
        iterations=1, rounds=1,
    )
    print("\n" + result.render())
    profiles = result.profiles
    assert set(result.suites) == {"Phoenix", "AxBench"}

    for app, prof in profiles.items():
        cdf = prof.cdf
        assert cdf.shape == (33,)
        assert np.all(np.diff(cdf) >= -1e-12), f"{app} CDF not monotone"
        assert cdf[-1] == 1.0, f"{app} CDF does not reach 1"

    avg0 = float(np.mean([p.silent_store_fraction
                          for p in profiles.values()]))
    avg4 = float(np.mean([p.fraction_within(4) for p in profiles.values()]))
    avg8 = float(np.mean([p.fraction_within(8) for p in profiles.values()]))
    # silent stores are a visible fraction, and more values fall within
    # larger d-distances (paper: 22.8% -> 36.4% -> 43.7%)
    assert 0.05 < avg0 < 0.9
    assert avg4 >= avg0
    assert avg8 > avg4
    # the accumulating workloads show strong low-bit similarity
    assert profiles["linear_regression"].fraction_within(8) > 0.4
