"""Table 1 — simulation configuration."""
from repro.harness.figures import table1


def test_table1(benchmark):
    result = benchmark(table1)
    text = result.render()
    print("\n" + text)
    rows = dict((r[0], r[1]) for r in result.rows)
    assert "24 in-order cores" in rows["Cores"]
    assert "32kB" in rows["L1"] and "2-Way" in rows["L1"]
    assert "128kB per core" in rows["L2"] and "8-Way" in rows["L2"]
    assert "1024-cycle GI timeout" in rows["Coherence"]
    assert "6x4 Mesh" in rows["Network"]
    assert "4 Directory Controllers at Mesh Corners" in rows["Network"]
    assert "2GB" in rows["DRAM"]
