"""Fig. 9 — NoC + memory-hierarchy dynamic energy savings.

Shape assertions (paper §4.3): savings are proportional to each app's
coherence-miss exposure — large for the false-sharing apps, ~zero for
histogram/pca/blackscholes — grow with d, and are never negative.
"""
from repro.harness.figures import fig9


def test_fig9(benchmark, sweep_cache):
    result = benchmark.pedantic(fig9, args=(sweep_cache,),
                                iterations=1, rounds=1)
    print("\n" + result.render())
    apps = {a for a, _d in result.noc_pct}

    for app in apps:
        for d in (4, 8):
            # Ghostwriter never costs energy (paper: no negative impact)
            assert result.combined_pct[(app, d)] > -1.0
            assert result.noc_pct[(app, d)] > -1.0

    # the false-sharing apps save visibly in the NoC at d=8
    fs_savers = max(
        result.noc_pct[("linear_regression", 8)],
        result.noc_pct[("inversek2j", 8)],
        result.noc_pct[("jpeg", 8)],
    )
    assert fs_savers > 8.0

    # compute-parallel apps save ~nothing
    assert abs(result.combined_pct[("blackscholes", 8)]) < 1.0

    # savings grow (weakly) with d
    for app in apps:
        assert result.noc_pct[(app, 8)] >= result.noc_pct[(app, 4)] - 0.5
