"""Fig. 8 — normalized coherence traffic, split by message class.

Shape assertions (paper §4.2): Ghostwriter never *adds* traffic; the
reduction grows with d-distance; linear_regression's reduction comes
out of UPGRADE requests and jpeg's out of GETX requests; histogram /
pca / blackscholes see little change.
"""
from repro.common.types import MessageClass

from repro.harness.figures import fig8


def test_fig8(benchmark, sweep_cache):
    result = benchmark.pedantic(fig8, args=(sweep_cache,),
                                iterations=1, rounds=1)
    print("\n" + result.render())
    apps = {a for a, _d in result.normalized}

    for app in apps:
        # d=0 is the baseline: normalized total is exactly 1
        assert abs(result.total(app, 0) - 1.0) < 1e-9
        # Ghostwriter never increases traffic (paper: no negative impact)
        assert result.total(app, 4) <= 1.0 + 1e-9
        assert result.total(app, 8) <= result.total(app, 4) + 0.02

    # linreg: UPGRADE requests shrink substantially at d=8 (paper: -22.5%)
    lr0 = result.normalized[("linear_regression", 0)][MessageClass.UPGRADE]
    lr8 = result.normalized[("linear_regression", 8)][MessageClass.UPGRADE]
    assert lr8 < lr0 * 0.8

    # jpeg: GETX requests shrink (paper: -23.6%); at benchmark scale the
    # absolute GETX counts are small, so require improvement plus a solid
    # overall reduction rather than an exact class factor
    jp0 = result.normalized[("jpeg", 0)][MessageClass.GETX]
    jp8 = result.normalized[("jpeg", 8)][MessageClass.GETX]
    assert jp8 <= jp0
    assert result.reduction_pct("jpeg", 8) > 10.0

    # average reduction grows with d (paper: 2.75% @4 -> 6.25% @8)
    assert result.average_reduction_pct(8) >= result.average_reduction_pct(4)
    assert result.average_reduction_pct(8) > 1.0
