"""Ablation — d-distance sweep beyond the paper's {4, 8}.

The paper fixes d to 4 or 8; this ablation sweeps d over
{0, 2, 4, 8, 12, 16} on linear_regression to expose the full
accuracy/benefit trade-off curve the knob controls (DESIGN.md:
"d-distance settings can be varied ... via PGO/auto-tuning").
"""
from repro.harness.experiment import run_workload

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_THREADS

_D_VALUES = (0, 2, 4, 8, 12, 16)


def test_d_distance_tradeoff(benchmark):
    def sweep():
        return {
            d: run_workload(
                "linear_regression", d_distance=d,
                num_threads=BENCH_THREADS, scale=BENCH_SCALE,
                seed=BENCH_SEED,
            )
            for d in _D_VALUES
        }

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    base = rows[0]
    print("\nd-distance trade-off (linear_regression):")
    for d in _D_VALUES:
        r = rows[d]
        sp = (base.cycles / r.cycles - 1) * 100
        print(f"  d={d:>2}: speedup={sp:6.2f}%  error={r.error_pct:8.3f}%  "
              f"GS%={r.gs_serviced_pct:5.1f}  GI%={r.gi_serviced_pct:5.1f}")

    # d=0 is the exact baseline
    assert rows[0].error_pct == 0.0

    # utilization grows monotonically with d
    for lo, hi in zip(_D_VALUES, _D_VALUES[1:]):
        assert rows[hi].gs_serviced_pct >= rows[lo].gs_serviced_pct - 1e-9

    # benefit grows with d ...
    assert rows[16].cycles < rows[4].cycles
    # ... and so does error: the knob is a genuine trade-off
    assert rows[16].error_pct > rows[4].error_pct
    # no material slowdown anywhere on the curve (small-scale runs carry
    # a few percent of interleaving noise)
    for d in _D_VALUES:
        assert rows[d].cycles <= base.cycles * 1.05
