"""Fig. 12 — GI timeout sensitivity on the Listing-1 microbenchmark.

Shape assertions: the microbenchmark exercises GI heavily (paper: up to
72.4 % of would-miss stores serviced at a 1024-cycle timeout) and its
output error is at microbenchmark scale — an order of magnitude above
any real application (paper: 15.3-60.8 % MPE vs <= 0.12 % in Fig. 11).

Reproduction note (EXPERIMENTS.md): the paper's *rising* trend over the
timeout period does not materialize under our protocol semantics —
approximate episodes are terminated by conventional fallbacks well
before any of the three timeout settings expire — so utilization and
error are assessed against the paper's reported ranges instead.
"""
from repro.harness.figures import fig12

from conftest import BENCH_SEED, BENCH_THREADS


def test_fig12(benchmark):
    result = benchmark.pedantic(
        fig12, kwargs=dict(timeouts=(128, 512, 1024),
                           num_threads=BENCH_THREADS, n_points=2048,
                           seed=BENCH_SEED),
        iterations=1, rounds=1,
    )
    print("\n" + result.render())
    assert result.timeouts == [128, 512, 1024]

    for gi_pct in result.gi_serviced_pct:
        # heavy GI exercise (paper reaches 72.4%)
        assert gi_pct > 40.0

    for err in result.error_pct:
        # microbenchmark-scale error: far above Fig. 11's app errors,
        # inside the paper's reported 15-61% band (with slack)
        assert 5.0 < err <= 100.0

    # the microbenchmark's error dwarfs every application's (Fig 11 vs 12)
    assert min(result.error_pct) > 2.0
