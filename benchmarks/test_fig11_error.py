"""Fig. 11 — output error under Ghostwriter.

Shape assertions (paper §4.3): the baseline is exact for every app;
apps with no realized false sharing stay exact under Ghostwriter; error
never decreases when d grows; only the heavily false-sharing
accumulator app shows material error (our contention density is much
higher than the paper's — see EXPERIMENTS.md).
"""
from repro.harness.figures import fig11


def test_fig11(benchmark, sweep_cache):
    result = benchmark.pedantic(fig11, args=(sweep_cache,),
                                iterations=1, rounds=1)
    print("\n" + result.render())
    err = result.error_pct
    apps = {a for a, _d in err}

    # the baseline runs are exact
    for app, base_err in result.baseline_error_pct.items():
        assert base_err == 0.0, f"{app} baseline not exact"

    # apps without realized false sharing stay exact
    assert err[("blackscholes", 8)] == 0.0
    assert err[("histogram", 8)] == 0.0

    # error is (weakly) monotone in d
    for app in apps:
        assert err[(app, 8)] >= err[(app, 4)] - 1e-9

    # the moderate apps stay at very low error (paper: <= 0.12%)
    assert err[("pca", 8)] < 1.0
    assert err[("jpeg", 8)] < 2.0
    assert err[("inversek2j", 8)] < 1.0

    # even the worst case is bounded well below the Fig. 12 regime
    assert max(err.values()) < 25.0
