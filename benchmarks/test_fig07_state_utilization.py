"""Fig. 7 — share of would-miss stores serviced by GS (a) and GI (b).

Shape assertions (paper §4.1): linear_regression leads GS service and
grows 63.7 % -> 69.1 % from d=4 to d=8; utilization never decreases with
a larger d-distance; pca shows the big GI jump between d=4 and d=8.
"""
from repro.harness.figures import fig7


def test_fig7(benchmark, sweep_cache):
    result = benchmark.pedantic(fig7, args=(sweep_cache,),
                                iterations=1, rounds=1)
    print("\n" + result.render())
    gs, gi = result.gs_pct, result.gi_pct
    apps = {a for a, _d in gs}

    # monotone in d for every app (larger window -> more scribbles pass)
    for app in apps:
        assert gs[(app, 8)] >= gs[(app, 4)] - 1e-9
        assert gi[(app, 8)] >= gi[(app, 4)] - 1e-9

    # linreg is the heavy GS user and grows with d (paper: 63.7 -> 69.1)
    assert gs[("linear_regression", 8)] > 50.0
    assert gs[("linear_regression", 8)] >= gs[("linear_regression", 4)]

    # pca's utilization jumps between d=4 and d=8 (paper: 3.7 -> 38.9 GI)
    assert gi[("pca", 8)] > gi[("pca", 4)] + 1.0

    # blackscholes has essentially no serviceable misses
    assert gs[("blackscholes", 8)] < 5.0
    assert gi[("blackscholes", 8)] < 5.0
