"""Fig. 1 — the motivating false-sharing microbenchmark.

Shape assertions: the privatized dot product (Listing 2) scales with
thread count while the naive version (Listing 1) collapses under
coherence-miss ping-pong, falling far below the privatized curve.
"""
from repro.harness.figures import fig1

from conftest import BENCH_SEED

_THREADS = (1, 2, 4, 8, 16, 24)


def test_fig1(benchmark):
    result = benchmark.pedantic(
        fig1, kwargs=dict(thread_counts=_THREADS, n_points=2048,
                          seed=BENCH_SEED),
        iterations=1, rounds=1,
    )
    print("\n" + result.render())
    naive = dict(zip(result.thread_counts, result.naive_speedup))
    priv = dict(zip(result.thread_counts, result.private_speedup))

    # privatized scales substantially (paper Fig. 1 right side)
    assert priv[24] > 10.0
    assert all(priv[b] >= priv[a] * 0.9
               for a, b in zip(_THREADS, _THREADS[1:]))

    # naive stops scaling: far below privatized at high thread counts
    assert naive[24] < priv[24] / 3
    # and collapses relative to its own early scaling
    assert naive[24] < max(naive.values()) * 1.5
    assert max(naive.values()) < 5.0
