"""Ablation — Ghostwriter on MOESI vs MESI baselines.

The paper's §3.2: the approximate states "can be added to most existing
protocols."  This bench runs the two heaviest-sharing workloads under
both baselines, with and without Ghostwriter, and asserts:

* the MOESI baseline is itself never slower than MESI (the O state
  removes dirty-read writebacks),
* Ghostwriter still delivers its traffic reduction on top of MOESI,
* outputs remain exact on both baselines.
"""
from repro.harness.experiment import experiment_config
from repro.workloads.registry import create

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_THREADS

#: approximate registry variant layered on each precise base
_GW_VARIANT = {"mesi": "ghostwriter", "moesi": "ghostwriter-moesi"}


def _run(name, *, protocol, enabled, d=8):
    cfg = experiment_config(
        enabled=enabled, d_distance=d,
        protocol=_GW_VARIANT[protocol] if enabled else protocol,
    )
    w = create(name, num_threads=BENCH_THREADS, scale=BENCH_SCALE,
               seed=BENCH_SEED)
    result = w.run(cfg)
    result.machine.check_coherence_invariants()
    return result


def test_protocol_ablation(benchmark):
    def sweep():
        out = {}
        for name in ("linear_regression", "jpeg"):
            for proto in ("mesi", "moesi"):
                out[(name, proto, "base")] = _run(name, protocol=proto,
                                                  enabled=False)
                out[(name, proto, "gw")] = _run(name, protocol=proto,
                                                enabled=True)
        return out

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nprotocol ablation (d=8):")
    for name in ("linear_regression", "jpeg"):
        for proto in ("mesi", "moesi"):
            base = rows[(name, proto, "base")]
            gw = rows[(name, proto, "gw")]
            sp = (base.cycles / gw.cycles - 1) * 100
            msgs_base = base.machine.network.stats.messages
            msgs_gw = gw.machine.network.stats.messages
            print(f"  {name:18s} {proto:5s}: base {base.cycles:>7} cyc, "
                  f"GW {sp:+6.2f}%, traffic {100 * (1 - msgs_gw / msgs_base):5.1f}% "
                  f"lower, err {gw.error_pct:7.3f}%")

    for name in ("linear_regression", "jpeg"):
        mesi_base = rows[(name, "mesi", "base")]
        moesi_base = rows[(name, "moesi", "base")]
        # both baselines exact
        assert mesi_base.error_pct == 0.0
        assert moesi_base.error_pct == 0.0
        # MOESI never slower than MESI as a baseline
        assert moesi_base.cycles <= mesi_base.cycles * 1.03
        # Ghostwriter still cuts traffic on MOESI
        gw = rows[(name, "moesi", "gw")]
        assert (gw.machine.network.stats.messages
                <= moesi_base.machine.network.stats.messages)
