"""Verification/fault flags: CLI parsing and config threading."""
from repro.harness.cli import _build_parser, main
from repro.harness.experiment import WATCHDOG_INTERVAL, experiment_config
from repro.harness.options import RunOptions


class TestParser:
    def test_defaults(self):
        args = _build_parser().parse_args(["table1"])
        assert args.check_invariants is True
        assert args.fault_rate == 0.0
        assert args.fault_seed == 1

    def test_no_check_invariants(self):
        args = _build_parser().parse_args(["table1", "--no-check-invariants"])
        assert args.check_invariants is False

    def test_fault_flags(self):
        args = _build_parser().parse_args(
            ["fig8", "--fault-rate", "25.5", "--fault-seed", "7"]
        )
        assert args.fault_rate == 25.5
        assert args.fault_seed == 7


class TestConfigThreading:
    def test_experiment_config_defaults(self):
        cfg = experiment_config(enabled=True)
        assert cfg.verify.check_invariants is True
        assert cfg.verify.watchdog_interval == WATCHDOG_INTERVAL
        assert not cfg.faults.active

    def test_experiment_config_faults(self):
        cfg = experiment_config(
            enabled=False,
            options=RunOptions(check_invariants=False, fault_rate=50.0,
                               fault_seed=9, fault_policy="log"),
        )
        assert cfg.verify.check_invariants is False
        assert cfg.faults.cache_rate == 50.0
        assert cfg.faults.seed == 9
        assert cfg.faults.policy == "log"
        assert cfg.faults.active


def test_negative_fault_rate_rejected(capsys):
    import pytest
    with pytest.raises(SystemExit):
        main(["table1", "--fault-rate", "-5"])
    assert "--fault-rate must be >= 0" in capsys.readouterr().err


def test_cli_runs_with_flags(capsys):
    assert main(["table1", "--no-check-invariants", "--fault-rate", "0"]) == 0
    assert "Table 1" in capsys.readouterr().out
