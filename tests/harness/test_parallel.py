"""Tests for the parallel sweep executor.

The determinism regression here is the golden guard for all future perf
work: the same config + seed must produce bit-identical ``RunRow`` stats
whether the grid runs serially or across a worker pool.
"""
import pytest

from repro.harness.experiment import RunRow
from repro.harness.parallel import (
    GridFailure, GridPoint, default_chunk_size, derive_seed, fan_out,
    run_grid,
)
from repro.verify.watchdog import DeadlockError

_POINT_KW = dict(num_threads=4, scale=1.0, seed=12345, n_points=160,
                 max_value=7)


def _grid(d_values=(0, 2, 4, 8)):
    return [
        GridPoint("bad_dot_product", dict(d_distance=d, **_POINT_KW),
                  label=f"d={d}")
        for d in d_values
    ]


# ---------------------------------------------------------------------
# the determinism regression (satellite 1)
# ---------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_rows_bit_identical_to_serial(self):
        points = _grid()
        serial = run_grid(points, jobs=1)
        parallel = run_grid(points, jobs=2, chunk_size=1)
        assert all(isinstance(r, RunRow) for r in serial)
        # RunRow is a frozen dataclass: == compares every stat field —
        # cycles, error, full traffic dict, energy, all L1 counters
        assert serial == parallel

    def test_parallel_rows_bit_identical_across_chunkings(self):
        points = _grid((0, 4))
        a = run_grid(points, jobs=2, chunk_size=1)
        b = run_grid(points, jobs=2, chunk_size=2)
        assert a == b

    def test_traffic_and_cycles_fields(self):
        # spot-check the headline stats named in the issue explicitly
        points = _grid((4,))
        [serial] = run_grid(points, jobs=1)
        [parallel] = run_grid(points * 1, jobs=2)
        assert serial.cycles == parallel.cycles
        assert serial.traffic == parallel.traffic
        assert serial.error_pct == parallel.error_pct

    def test_every_protocol_bit_identical_across_jobs(self):
        """Each registered protocol variant produces the same frozen
        RunRow whether its grid point runs in-process or in a worker."""
        from repro.coherence.policy import available_protocols, get_protocol

        points = [
            GridPoint("bad_dot_product",
                      dict(protocol=p,
                           d_distance=4 if get_protocol(p).approx else 0,
                           **_POINT_KW),
                      label=f"protocol={p}")
            for p in available_protocols()
        ]
        serial = run_grid(points, jobs=1)
        parallel = run_grid(points, jobs=2, chunk_size=1)
        assert all(isinstance(r, RunRow) for r in serial)
        assert [r.protocol for r in serial] == list(available_protocols())
        assert serial == parallel


# ---------------------------------------------------------------------
# executor mechanics
# ---------------------------------------------------------------------
def _times_ten(x):
    return x * 10


def _fail_on_three(x):
    if x == 3:
        raise DeadlockError(f"injected deadlock at {x}")
    return x * 10


class TestFanOut:
    def test_inline_path_preserves_order(self):
        assert fan_out(_times_ten, [3, 1, 2]) == [30, 10, 20]

    def test_parallel_path_preserves_order(self):
        out = fan_out(_times_ten, list(range(10)), jobs=3, chunk_size=2)
        assert out == [x * 10 for x in range(10)]

    @pytest.mark.parametrize("jobs,chunk", [(1, None), (2, 1), (2, 3)])
    def test_crash_isolation(self, jobs, chunk):
        """A DeadlockError grid point becomes a failed row at its index;
        sibling points still complete (satellite 3)."""
        out = fan_out(_fail_on_three, [1, 2, 3, 4, 5], jobs=jobs,
                      chunk_size=chunk)
        assert out[0] == 10 and out[1] == 20
        assert out[3] == 40 and out[4] == 50
        failure = out[2]
        assert isinstance(failure, GridFailure)
        assert failure.index == 2
        assert failure.error_type == "DeadlockError"
        assert "injected deadlock" in failure.message
        assert not failure  # failures are falsy for easy filtering

    def test_empty_grid(self):
        assert fan_out(_times_ten, [], jobs=4) == []

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(7, 1) == 2
        assert default_chunk_size(100, 4) == 7
        # never zero, even for degenerate inputs
        assert default_chunk_size(1, 64) == 1


class TestRunGrid:
    def test_failure_label_names_the_point(self, monkeypatch):
        import repro.harness.parallel as par

        def boom(name, **kwargs):
            raise DeadlockError("wedged")
        monkeypatch.setattr(par, "run_workload", boom)
        [out] = run_grid([GridPoint("bad_dot_product", {}, label="d=4")])
        assert isinstance(out, GridFailure)
        assert out.label == "d=4"
        assert "DeadlockError" in out.render() and "d=4" in out.render()

    def test_base_seed_fills_missing_seeds_only(self, monkeypatch):
        import repro.harness.parallel as par
        seen = []

        def record(name, **kwargs):
            seen.append(kwargs["seed"])
            return None
        monkeypatch.setattr(par, "run_workload", record)
        run_grid(
            [GridPoint("w", {}), GridPoint("w", {"seed": 7}),
             GridPoint("w", {})],
            base_seed=99,
        )
        assert seen[0] == derive_seed(99, 0)
        assert seen[1] == 7
        assert seen[2] == derive_seed(99, 2)
        assert seen[0] != seen[2]


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(1, 0) == derive_seed(1, 0)
        assert derive_seed(1, 0) != derive_seed(1, 1)
        assert derive_seed(1, 0) != derive_seed(2, 0)
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)

    def test_seed_space(self):
        for k in range(64):
            assert 0 <= derive_seed(12345, k) < 2**31

    def test_stable_values(self):
        # pinned: a change here silently invalidates every stored sweep
        assert derive_seed(12345, 0) == 316188692
