"""RunOptions: validation, derived configs, and the deprecation shims."""
import pickle

import pytest

from repro.harness import RunOptions, resolve_options
from repro.harness.experiment import experiment_config, run_workload
from repro.harness.figures import SweepCache
from repro.harness.options import LEGACY_KWARGS


class TestRunOptions:
    def test_defaults_are_off(self):
        opts = RunOptions()
        assert opts.check_invariants is True
        assert opts.fault_rate == 0.0
        assert opts.jobs == 1
        assert not opts.tracing

    def test_validation(self):
        with pytest.raises(ValueError):
            RunOptions(fault_rate=-1)
        with pytest.raises(ValueError):
            RunOptions(fault_policy="explode")
        with pytest.raises(ValueError):
            RunOptions(jobs=0)
        with pytest.raises(ValueError):
            RunOptions(timeline_interval=-1)
        with pytest.raises(ValueError):
            RunOptions(flight_recorder=-1)

    def test_tracing_property(self):
        assert RunOptions(trace_events=True).tracing
        assert RunOptions(timeline_interval=100).tracing
        assert RunOptions(flight_recorder=8).tracing

    def test_replace_returns_new_frozen_value(self):
        a = RunOptions()
        b = a.replace(fault_rate=5.0, fault_policy="log")
        assert a.fault_rate == 0.0 and b.fault_rate == 5.0
        with pytest.raises(Exception):
            b.fault_rate = 9.0

    def test_picklable_and_hashable(self):
        opts = RunOptions(trace_events=True, jobs=4)
        assert pickle.loads(pickle.dumps(opts)) == opts
        assert hash(opts) == hash(RunOptions(trace_events=True, jobs=4))

    def test_derived_configs(self):
        opts = RunOptions(check_invariants=False, fault_rate=2.5,
                          fault_seed=7, fault_policy="recover",
                          trace_events=True, timeline_interval=512,
                          flight_recorder=32)
        v = opts.verify_config(watchdog_interval=1000)
        assert v.check_invariants is False
        assert v.watchdog_interval == 1000
        f = opts.fault_config()
        assert (f.cache_rate, f.seed, f.policy) == (2.5, 7, "recover")
        o = opts.obs_config()
        assert o.trace_events and o.timeline_interval == 512
        assert o.flight_depth == 32


class TestResolveOptions:
    def test_plain_options_pass_through_silently(self, recwarn):
        opts = RunOptions(jobs=3)
        assert resolve_options(opts, who="x") is opts
        assert resolve_options(None, who="x") == RunOptions()
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_legacy_kwargs_warn_and_override(self):
        with pytest.warns(DeprecationWarning, match=r"x: keyword\(s\)"):
            out = resolve_options(RunOptions(fault_rate=1.0), who="x",
                                  fault_rate=9.0, jobs=2)
        assert out.fault_rate == 9.0
        assert out.jobs == 2

    def test_none_valued_kwargs_do_not_warn(self, recwarn):
        out = resolve_options(None, who="x", fault_rate=None, jobs=None)
        assert out == RunOptions()
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    @pytest.mark.parametrize("key,value", [
        ("check_invariants", False),
        ("fault_rate", 2.0),
        ("fault_seed", 9),
        ("fault_policy", "log"),
        ("jobs", 2),
    ])
    def test_each_legacy_spelling_warns_once_naming_replacement(
            self, recwarn, key, value):
        out = resolve_options(None, who="x", **{key: value})
        warns = [w for w in recwarn
                 if issubclass(w.category, DeprecationWarning)]
        assert len(warns) == 1
        assert LEGACY_KWARGS[key] in str(warns[0].message)
        assert getattr(out, key) == value

    def test_shim_table_covers_exactly_the_pre_pr3_spellings(self):
        assert sorted(LEGACY_KWARGS) == [
            "check_invariants", "fault_policy", "fault_rate",
            "fault_seed", "jobs",
        ]
        for field in LEGACY_KWARGS.values():
            assert field.startswith("RunOptions.")

    def test_unknown_legacy_key_is_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected legacy keyword"):
            resolve_options(None, who="x", fault_rtae=1.0)

    def test_topology_field_validated(self):
        assert RunOptions(topology="chiplet").topology == "chiplet"
        with pytest.raises(ValueError, match="unknown topology"):
            RunOptions(topology="torus")


class TestSurfaceShims:
    """Every public surface keeps its old keywords, with a warning."""

    def test_experiment_config_shim(self):
        with pytest.warns(DeprecationWarning, match="experiment_config"):
            cfg = experiment_config(enabled=False, check_invariants=False,
                                    fault_rate=10.0)
        assert cfg.verify.check_invariants is False
        assert cfg.faults.cache_rate == 10.0

    def test_run_workload_shim(self):
        with pytest.warns(DeprecationWarning, match="run_workload"):
            row = run_workload("histogram", d_distance=4, num_threads=2,
                               scale=0.05, check_invariants=False)
        assert row.cycles > 0

    def test_sweep_cache_shim_and_legacy_views(self):
        with pytest.warns(DeprecationWarning, match="SweepCache"):
            cache = SweepCache(num_threads=2, scale=0.05,
                               check_invariants=False, fault_rate=3.0,
                               jobs=2)
        assert cache.jobs == 2
        assert cache.check_invariants is False
        assert cache.fault_rate == 3.0
        # faulty sweeps force the log policy so rows complete
        assert cache.options.fault_policy == "log"

    def test_sweep_cache_options_only_is_silent(self, recwarn):
        cache = SweepCache(num_threads=2, scale=0.05,
                           options=RunOptions(check_invariants=False))
        assert cache.options.check_invariants is False
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_run_pair_shim(self):
        from repro.harness.experiment import run_pair

        with pytest.warns(DeprecationWarning, match="run_pair"):
            base, gw = run_pair("histogram", d_distance=4, num_threads=2,
                                scale=0.05, jobs=1)
        assert base.d_distance == 0
        assert gw.d_distance == 4

    def test_fault_sweep_shim(self):
        from repro.faults.sweep import fault_sweep

        with pytest.warns(DeprecationWarning, match="fault_sweep"):
            result = fault_sweep("histogram", num_threads=2, scale=0.05,
                                 rates=(0.0,), jobs=1)
        assert result.cells
