"""Topology knob threading: store keys, sweeps, figures, backends.

The acceptance bar for the topology layer is that ``--topology mesh``
is invisible: store point keys hash to exactly what they hashed before
the knob existed (pinned here against pre-change golden digests), and
the fig12-style rows come out identical across the serial, ``--jobs``
and ``--backend batch`` execution paths.  Non-default topologies must
key distinctly and run end-to-end through ``sweep_topology_scale`` /
``fig_topology``.
"""
import pytest

from repro.harness.experiment import run_workload
from repro.harness.figures import fig_topology
from repro.harness.options import RunOptions
from repro.harness.parallel import GridFailure
from repro.harness.sweeps import sweep_topology_scale
from repro.store.keys import (
    NEUTRAL_DEFAULTS,
    canonical_point,
    options_fingerprint,
    point_key,
)

#: Pre-topology-layer point keys of the fig12 grid (captured on the
#: commit before the ``topology`` field existed).  If these move, every
#: stored sweep row silently retires — that is a KEY_SCHEMA bump, not a
#: refactor detail.
GOLDEN_FIG12_KEYS = {
    128: "af73c46b7338d4d8e662495059a423e5",
    512: "5baaca8d783b6d272b9106d3a5733173",
    1024: "99c485efa7050412f47b31cd1d01d51a",
}


def _fig12_kwargs(gi_timeout, **over):
    kwargs = dict(d_distance=4, num_threads=4, seed=12345,
                  gi_timeout=gi_timeout, n_points=4096, max_value=3,
                  options=RunOptions())
    kwargs.update(over)
    return kwargs


class TestStoreKeyByteIdentity:
    def test_default_mesh_keys_unchanged(self):
        for gi, want in GOLDEN_FIG12_KEYS.items():
            key = point_key("bad_dot_product", _fig12_kwargs(gi))
            assert key == want, f"gi_timeout={gi} key moved"

    def test_default_topology_elided_from_fingerprint(self):
        assert NEUTRAL_DEFAULTS == {"topology": "mesh"}
        fp = options_fingerprint(RunOptions())
        assert "topology" not in dict(fp)
        assert dict(fp)["protocol"] == "ghostwriter"

    def test_non_default_topology_keys_distinctly(self):
        fp = options_fingerprint(RunOptions(topology="ring"))
        assert dict(fp)["topology"] == "ring"
        mesh = point_key("bad_dot_product", _fig12_kwargs(1024))
        ring = point_key(
            "bad_dot_product",
            _fig12_kwargs(1024, options=RunOptions(topology="ring")))
        assert mesh != ring

    def test_topology_kwarg_enters_canonical_point(self):
        a = canonical_point("w", {"topology": "mesh"})
        b = canonical_point("w", {"topology": "ring"})
        assert a != b


SMALL = dict(workload="bad_dot_product", core_counts=(2,), scale=0.05,
             seed=12345, n_points=256, max_value=3)


def _rows(options, topologies=("mesh", "ring"), jobs=1):
    kwargs = dict(SMALL)
    kwargs.pop("core_counts")
    result = sweep_topology_scale(
        kwargs.pop("workload"), topologies, (2,), jobs=jobs,
        options=options, **kwargs)
    assert not result.failures(), result.render()
    return result


class TestSweepTopologyScale:
    def test_grid_shape_and_labels(self):
        result = _rows(RunOptions())
        assert result.parameter == "topology_scale"
        assert result.values == (("mesh", 2), ("ring", 2))
        assert all(r.cycles > 0 for r in result.rows)

    def test_serial_parallel_batch_rows_identical(self):
        serial = _rows(RunOptions()).rows
        fanned = _rows(RunOptions(jobs=2), jobs=2).rows
        batch = _rows(RunOptions(backend="batch")).rows
        assert serial == fanned == batch

    def test_topology_changes_the_simulation(self):
        # 2 cores see different directory distances on mesh vs crossbar
        mesh, xbar = _rows(RunOptions(),
                           topologies=("mesh", "crossbar")).rows
        assert mesh.flit_hops != xbar.flit_hops


class TestFigTopology:
    def test_chiplet_column_end_to_end(self):
        fig = fig_topology(("chiplet",), (4,), n_points=256, seed=12345)
        assert fig.points == [("chiplet", 4)]
        assert fig.dir_hops[0] > 0
        row = fig.rows[0]
        assert not isinstance(row, GridFailure)
        assert row.cycles > 0 and row.flits > 0
        text = fig.render()
        assert "chiplet" in text and "dir hops" in text

    def test_rows_carry_the_new_noc_metrics(self):
        row = run_workload("bad_dot_product", d_distance=4, num_threads=2,
                           seed=12345, n_points=256, max_value=3,
                           topology="ring")
        assert row.flits > 0
        assert row.flit_hops > 0
        assert row.hops_per_flit == pytest.approx(
            row.flit_hops / row.flits)
        assert row.gi_flashes_per_kcycle >= 0.0
