"""Tests for the experiment runner and RunRow derivations."""
import pytest

from repro.common.types import MessageClass
from repro.harness.experiment import (
    RunRow, experiment_config, run_pair, run_workload,
)
from repro.energy.accounting import EnergyReport


class TestExperimentConfig:
    def test_matches_table1(self):
        cfg = experiment_config(enabled=True, d_distance=8)
        assert cfg.num_cores == 24
        assert cfg.l1.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 128 * 1024
        assert cfg.ghostwriter.d_distance == 8
        assert cfg.ghostwriter.enabled

    def test_baseline_flag(self):
        cfg = experiment_config(enabled=False)
        assert not cfg.ghostwriter.enabled

    def test_timeout_and_cores_forwarded(self):
        cfg = experiment_config(enabled=True, gi_timeout=128, num_cores=8)
        assert cfg.ghostwriter.gi_timeout == 128
        assert cfg.num_cores == 8


def _row(**kw):
    defaults = dict(
        workload="x", d_distance=4, cycles=100, error_pct=0.0,
        energy=EnergyReport(1, 1, 1, 1),
        traffic={k: 0 for k in MessageClass},
        gs_serviced=0, gi_serviced=0, gs_store_hits=0, gi_store_hits=0,
        store_miss_on_s=0, store_miss_on_i=0,
        loads=0, stores=0, load_misses=0, store_misses=0,
    )
    defaults.update(kw)
    return RunRow(**defaults)


class TestRunRowDerivations:
    def test_gs_pct(self):
        row = _row(gs_serviced=20, gs_store_hits=30, store_miss_on_s=50)
        assert row.gs_serviced_pct == pytest.approx(50.0)

    def test_gi_pct(self):
        row = _row(gi_serviced=10, gi_store_hits=0, store_miss_on_i=30)
        assert row.gi_serviced_pct == pytest.approx(25.0)

    def test_pct_with_no_events(self):
        assert _row().gs_serviced_pct == 0.0
        assert _row().gi_serviced_pct == 0.0

    def test_total_traffic(self):
        traffic = {k: 0 for k in MessageClass}
        traffic[MessageClass.GETS] = 3
        traffic[MessageClass.DATA] = 4
        assert _row(traffic=traffic).total_traffic == 7


class TestRunners:
    def test_run_workload_d0_is_baseline(self):
        row = run_workload("bad_dot_product", d_distance=0, num_threads=4,
                           scale=0.1)
        assert row.d_distance == 0
        assert row.error_pct == 0.0
        assert row.gs_serviced == 0 and row.gi_serviced == 0

    def test_run_pair_same_workload_inputs(self):
        base, gw = run_pair("bad_dot_product", d_distance=4, num_threads=4,
                            scale=0.1)
        # same program/inputs: identical op counts either way
        assert base.loads == gw.loads
        assert base.stores == gw.stores

    def test_workload_kwargs_forwarded(self):
        row = run_workload("bad_dot_product", d_distance=0, num_threads=2,
                           scale=1.0, n_points=64)
        assert row.stores > 0
