"""Tests for the command-line interface."""
import pytest

from repro.harness.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "[table1:" in out

    def test_table2(self, capsys):
        assert main(["table2", "--threads", "4"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig12_small(self, capsys):
        assert main(["fig12", "--threads", "4"]) == 0
        assert "Fig. 12" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_profile_prints_top_functions(self, capsys):
        assert main(["table1", "--profile", "5"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        # pstats writes its report to stderr, sorted by cumulative time
        assert "cumulative" in captured.err
        assert "function calls" in captured.err

    def test_negative_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--profile", "-1"])

    def test_fig10_small_machine(self, capsys):
        assert main(["fig10", "--threads", "4", "--scale", "0.1"]) == 0
        assert "Fig. 10" in capsys.readouterr().out
