"""Tests for the per-figure drivers (small machines, fast settings)."""
import numpy as np
import pytest

from repro.common.types import MessageClass
from repro.harness import figures as F

THREADS = 6
SCALE = 0.12


@pytest.fixture(scope="module")
def cache():
    c = F.SweepCache(num_threads=THREADS, scale=SCALE, seed=99)
    return c


class TestTables:
    def test_table1_renders(self):
        out = F.table1().render()
        assert "Table 1" in out
        assert "24 in-order cores" in out

    def test_table2_renders(self):
        out = F.table2(THREADS).render()
        assert "Table 2" in out
        assert "jpeg" in out


class TestSweepCache:
    def test_memoizes(self, cache):
        r1 = cache.row("pca", 0)
        r2 = cache.row("pca", 0)
        assert r1 is r2

    def test_distinct_settings_distinct_rows(self, cache):
        assert cache.row("pca", 0) is not cache.row("pca", 8)


class TestFig1:
    def test_speedups_relative_to_first(self):
        res = F.fig1(thread_counts=(1, 2, 4), n_points=512, seed=5)
        assert res.naive_speedup[0] == pytest.approx(1.0)
        assert res.private_speedup[0] == pytest.approx(1.0)
        assert res.private_speedup[-1] > 1.2
        assert "Fig. 1" in res.render()


class TestFig2:
    def test_profiles_cover_apps(self):
        res = F.fig2(num_threads=THREADS, scale=SCALE, seed=99)
        assert set(res.profiles) == set(F.PAPER_WORKLOADS)
        for prof in res.profiles.values():
            assert prof.cdf[-1] == pytest.approx(1.0)
        assert 0.0 <= res.suite_average_within("Phoenix", 8) <= 1.0
        assert "Fig. 2" in res.render()


class TestSweepFigures:
    def test_fig7_shapes(self, cache):
        res = F.fig7(cache)
        for app in F.PAPER_WORKLOADS:
            for d in (4, 8):
                assert 0.0 <= res.gs_pct[(app, d)] <= 100.0
                assert 0.0 <= res.gi_pct[(app, d)] <= 100.0
        assert "Fig. 7" in res.render()

    def test_fig8_baseline_normalized(self, cache):
        res = F.fig8(cache)
        for app in F.PAPER_WORKLOADS:
            assert res.total(app, 0) == pytest.approx(1.0)
            split = res.normalized[(app, 0)]
            assert set(split) == {
                MessageClass.OTHER, MessageClass.DATA, MessageClass.GETS,
                MessageClass.UPGRADE, MessageClass.GETX,
            }
        assert isinstance(res.average_reduction_pct(8), float)
        assert "Fig. 8" in res.render()

    def test_fig9_consistency(self, cache):
        res = F.fig9(cache)
        for key, total in res.combined_pct.items():
            assert total <= 100.0
        assert "Fig. 9" in res.render()

    def test_fig10_average(self, cache):
        res = F.fig10(cache)
        avg = res.average(8)
        vals = [res.speedup_pct[(a, 8)] for a in F.PAPER_WORKLOADS]
        assert avg == pytest.approx(float(np.mean(vals)))
        assert "Fig. 10" in res.render()

    def test_fig11_baseline_exact(self, cache):
        res = F.fig11(cache)
        assert all(v == 0.0 for v in res.baseline_error_pct.values())
        assert "Fig. 11" in res.render()


class TestFig12:
    def test_timeout_sweep(self):
        res = F.fig12(timeouts=(128, 1024), num_threads=THREADS,
                      n_points=512, seed=99)
        assert res.timeouts == [128, 1024]
        assert len(res.gi_serviced_pct) == 2
        assert all(0 <= e <= 100 for e in res.error_pct)
        assert "Fig. 12" in res.render()
