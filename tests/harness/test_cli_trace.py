"""CLI trace flags, the trace bundle, and figure-crash context."""
import json

import pytest

from repro.harness import figures as F
from repro.harness.cli import _build_parser, main
from repro.obs.timeline import DEFAULT_TIMELINE_INTERVAL, load_merged


class TestParser:
    def test_trace_defaults_off(self):
        args = _build_parser().parse_args(["fig7"])
        assert args.trace_events is False
        assert args.timeline_interval == 0
        assert args.trace_out is None

    def test_trace_flags_parse(self):
        args = _build_parser().parse_args(
            ["fig7", "--trace-events", "--timeline-interval", "512",
             "--trace-out", "/tmp/x"]
        )
        assert args.trace_events is True
        assert args.timeline_interval == 512
        assert args.trace_out == "/tmp/x"

    def test_trace_out_requires_a_trace_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig7", "--trace-out", "/tmp/x"])
        err = capsys.readouterr().err
        assert "--trace-out needs" in err

    def test_negative_timeline_interval_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig7", "--timeline-interval", "-4"])
        assert "--timeline-interval must be >= 0" in capsys.readouterr().err


class TestTraceBundle:
    def test_traced_figure_writes_bundle(self, tmp_path, capsys):
        out = tmp_path / "trace"
        rc = main(["fig7", "--threads", "2", "--scale", "0.05",
                   "--trace-events", "--trace-out", str(out)])
        assert rc == 0
        assert (out / "events.jsonl").exists()
        assert (out / "timeline.npz").exists()
        assert (out / "report.txt").exists()
        labels = {json.loads(ln)["run"] for ln in
                  (out / "events.jsonl").read_text().splitlines()}
        # fig7 sweeps every paper app at d in {0, 4, 8}
        assert any(lbl.endswith(".d4") for lbl in labels)
        merged = load_merged(out / "timeline.npz")
        assert set(merged) == labels
        assert "[trace:" in capsys.readouterr().out

    def test_trace_events_implies_default_interval(self, capsys,
                                                   monkeypatch):
        seen = {}

        class FakeCache:
            def __init__(self, **kwargs):
                seen.update(kwargs)
                raise RuntimeError("stop here")

        monkeypatch.setattr(F, "SweepCache", FakeCache)
        with pytest.raises(RuntimeError):
            main(["fig7", "--trace-events"])
        opts = seen["options"]
        assert opts.trace_events is True
        assert opts.timeline_interval == DEFAULT_TIMELINE_INTERVAL

    def test_untraced_run_reports_nothing_to_export(self, capsys):
        rc = main(["table1", "--timeline-interval", "100",
                   "--trace-out", "/tmp/unused-trace-dir"])
        assert rc == 0
        assert "[trace: no traced sweep runs to export]" in (
            capsys.readouterr().out
        )


class TestCrashContext:
    def test_figure_crash_names_the_figure(self, capsys, monkeypatch):
        def boom():
            raise RuntimeError("synthetic figure failure")

        monkeypatch.setattr(F, "table1", boom)
        with pytest.raises(RuntimeError, match="synthetic figure failure"):
            main(["table1"])
        err = capsys.readouterr().err
        assert "[table1: failed: RuntimeError: synthetic figure failure]" \
            in err
