"""Tests for the d-distance auto-tuner."""
import pytest

from repro.harness.autotune import tune_d_distance

_KW = dict(num_threads=4, scale=1.0, n_points=256, max_value=7, seed=3)


class TestAutotune:
    def test_zero_target_chooses_exact_setting(self):
        res = tune_d_distance("bad_dot_product", 0.0,
                              d_candidates=(2, 4, 8), **_KW)
        # whatever it picks must actually meet the target
        assert res.chosen_row.error_pct <= 0.0
        assert res.chosen_d in (0, 2, 4, 8)

    def test_loose_target_picks_largest_d(self):
        res = tune_d_distance("bad_dot_product", 100.0,
                              d_candidates=(2, 4, 8), **_KW)
        assert res.chosen_d == 8

    def test_chosen_setting_meets_target(self):
        target = 1.0
        res = tune_d_distance("bad_dot_product", target,
                              d_candidates=(1, 2, 4, 8, 16), **_KW)
        assert res.chosen_row.error_pct <= target
        # and the next-larger candidate (if probed) violated it, or the
        # chosen one is the max candidate
        assert res.chosen_d <= 16

    def test_binary_search_probe_count(self):
        res = tune_d_distance("bad_dot_product", 100.0,
                              d_candidates=(1, 2, 4, 8, 12, 16), **_KW)
        # log2(6) ~ 3 probes, certainly fewer than exhaustive
        assert len(res.evaluations) <= 3

    def test_render(self):
        res = tune_d_distance("bad_dot_product", 100.0,
                              d_candidates=(4,), **_KW)
        out = res.render()
        assert "auto-tune" in out and "chose d=" in out

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            tune_d_distance("bad_dot_product", -1.0, **_KW)
        with pytest.raises(ValueError):
            tune_d_distance("bad_dot_product", 1.0, d_candidates=(0,),
                            **_KW)
