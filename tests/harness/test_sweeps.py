"""Tests for the sweep helpers."""
import math

import pytest

from repro.harness.experiment import RunRow
from repro.harness.parallel import GridFailure
from repro.harness.sweeps import (
    SweepResult, sweep_d_distance, sweep_gi_timeout, sweep_threads,
)
from repro.verify.watchdog import DeadlockError


class TestSweepResult:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            SweepResult("x", (1, 2), ())

    def test_series_extracts_columns(self):
        res = sweep_d_distance("bad_dot_product", d_values=(0, 8),
                               num_threads=4, scale=1.0, n_points=128,
                               max_value=7)
        cycles = res.series("cycles")
        assert len(cycles) == 2 and all(c > 0 for c in cycles)
        assert res.series("error_pct")[0] == 0.0

    def test_series_and_failures_with_failed_row(self):
        ok = sweep_d_distance("bad_dot_product", d_values=(4,),
                              num_threads=4, scale=1.0, n_points=128,
                              max_value=7).rows[0]
        bad = GridFailure(index=1, error_type="DeadlockError",
                          message="wedged", label="d_distance=8")
        res = SweepResult("d_distance", (4, 8), (ok, bad))
        series = res.series("cycles")
        assert series[0] == float(ok.cycles)
        assert math.isnan(series[1])
        assert res.failures() == [(8, bad)]
        assert res.ok_rows() == [ok]
        assert "FAILED" in res.render() and "DeadlockError" in res.render()

    def test_speedups_require_ok_first_row(self):
        bad = GridFailure(index=0, error_type="DeadlockError",
                          message="wedged")
        res = SweepResult("threads", (1,), (bad,))
        with pytest.raises(ValueError, match="first sweep point"):
            res.speedups_vs_first()


class TestCrashIsolation:
    def test_deadlocked_point_reported_siblings_complete(self, monkeypatch):
        """A grid point that deadlocks becomes a failed row; the other
        sweep points still produce real RunRows."""
        import repro.harness.parallel as par
        real = par.run_workload

        def wedge_d8(name, **kwargs):
            if kwargs.get("d_distance") == 8:
                raise DeadlockError("no retirement for 2 intervals")
            return real(name, **kwargs)
        monkeypatch.setattr(par, "run_workload", wedge_d8)

        res = sweep_d_distance("bad_dot_product", d_values=(0, 8, 4),
                               num_threads=4, scale=1.0, n_points=128,
                               max_value=7)
        assert isinstance(res.rows[0], RunRow)
        assert isinstance(res.rows[2], RunRow)
        failure = res.rows[1]
        assert isinstance(failure, GridFailure)
        assert failure.error_type == "DeadlockError"
        assert res.failures()[0][0] == 8
        # aggregation helpers stay usable around the hole
        assert not math.isnan(res.series("cycles")[0])
        assert math.isnan(res.series("cycles")[1])
        assert res.speedups_vs_first()[2] > 0


class TestDDistanceSweep:
    def test_curve_shapes(self):
        res = sweep_d_distance(
            "bad_dot_product", d_values=(0, 4, 8), num_threads=4,
            scale=1.0, n_points=256, max_value=7,
        )
        assert res.parameter == "d_distance"
        assert len(res.rows) == 3
        assert res.rows[0].error_pct == 0.0     # d=0 exact
        # utilization monotone
        gs = res.series("gs_serviced_pct")
        assert gs[2] >= gs[1] >= gs[0]
        assert "sweep over d_distance" in res.render()

    def test_speedups_vs_first(self):
        res = sweep_d_distance("bad_dot_product", d_values=(0, 8),
                               num_threads=4, scale=1.0, n_points=256,
                               max_value=3)
        sp = res.speedups_vs_first()
        assert sp[0] == pytest.approx(1.0)
        assert sp[1] >= 0.95  # never materially slower


class TestThreadSweep:
    def test_privatized_scales(self):
        res = sweep_threads("private_dot_product",
                            thread_counts=(1, 2, 4), scale=1.0,
                            n_points=512)
        sp = res.speedups_vs_first()
        assert sp[0] == pytest.approx(1.0)
        assert sp[-1] > 2.0

    def test_rows_are_runrows(self):
        res = sweep_threads("private_dot_product", thread_counts=(2,),
                            scale=1.0, n_points=128)
        assert isinstance(res.rows[0], RunRow)


class TestTimeoutSweep:
    def test_timeout_sweep_runs(self):
        res = sweep_gi_timeout("bad_dot_product", timeouts=(128, 1024),
                               num_threads=4, scale=1.0, n_points=256,
                               max_value=3)
        assert res.values == (128, 1024)
        for row in res.rows:
            assert row.cycles > 0
