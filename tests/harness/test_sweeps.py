"""Tests for the sweep helpers."""
import pytest

from repro.harness.experiment import RunRow
from repro.harness.sweeps import (
    SweepResult, sweep_d_distance, sweep_gi_timeout, sweep_threads,
)


class TestSweepResult:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            SweepResult("x", (1, 2), ())


class TestDDistanceSweep:
    def test_curve_shapes(self):
        res = sweep_d_distance(
            "bad_dot_product", d_values=(0, 4, 8), num_threads=4,
            scale=1.0, n_points=256, max_value=7,
        )
        assert res.parameter == "d_distance"
        assert len(res.rows) == 3
        assert res.rows[0].error_pct == 0.0     # d=0 exact
        # utilization monotone
        gs = res.series("gs_serviced_pct")
        assert gs[2] >= gs[1] >= gs[0]
        assert "sweep over d_distance" in res.render()

    def test_speedups_vs_first(self):
        res = sweep_d_distance("bad_dot_product", d_values=(0, 8),
                               num_threads=4, scale=1.0, n_points=256,
                               max_value=3)
        sp = res.speedups_vs_first()
        assert sp[0] == pytest.approx(1.0)
        assert sp[1] >= 0.95  # never materially slower


class TestThreadSweep:
    def test_privatized_scales(self):
        res = sweep_threads("private_dot_product",
                            thread_counts=(1, 2, 4), scale=1.0,
                            n_points=512)
        sp = res.speedups_vs_first()
        assert sp[0] == pytest.approx(1.0)
        assert sp[-1] > 2.0

    def test_rows_are_runrows(self):
        res = sweep_threads("private_dot_product", thread_counts=(2,),
                            scale=1.0, n_points=128)
        assert isinstance(res.rows[0], RunRow)


class TestTimeoutSweep:
    def test_timeout_sweep_runs(self):
        res = sweep_gi_timeout("bad_dot_product", timeouts=(128, 1024),
                               num_threads=4, scale=1.0, n_points=256,
                               max_value=3)
        assert res.values == (128, 1024)
        for row in res.rows:
            assert row.cycles > 0
