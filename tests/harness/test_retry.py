"""Retry, timeout and pool-supervision tests for the sweep executor.

Covers the robustness half of the durable-sweep work: transient
failures retry with bounded, deterministic backoff; permanent failures
never retry; per-point wall-clock budgets fire in the worker; and a
worker that dies outright (``BrokenProcessPool``) degrades only its own
grid point while siblings complete on a respawned pool (satellite 1).
"""
import os
import time

import pytest

from repro.harness.options import RunOptions
from repro.harness.parallel import (
    GridFailure, PERMANENT_ERRORS, RetryPolicy, fan_out,
    is_permanent_failure, retry_from_options,
)
from repro.verify.watchdog import DeadlockError

_FAST = dict(backoff_base=0.0, backoff_max=0.0)


# ---------------------------------------------------------------------
# module-level helpers (must pickle across the worker boundary)
# ---------------------------------------------------------------------
def _ok(x):
    return x * 10


def _sleep_on_two(x):
    if x == 2:
        time.sleep(60.0)
    return x * 10


def _die_on_two(x):
    if x == 2:
        os._exit(1)          # hard worker death: BrokenProcessPool
    return x * 10


def _flaky_marker(arg):
    """Fails with OSError until its marker file exists (cross-process)."""
    x, marker = arg
    if x == 2 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("tried once")
        raise OSError("transient hiccup")
    return x * 10


def _die_once_marker(arg):
    """Kills its worker the first time only (cross-process state)."""
    x, marker = arg
    if x == 2 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died once")
        os._exit(1)
    return x * 10


# ---------------------------------------------------------------------
# the policy object
# ---------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(retries=5, backoff_base=1.0, backoff_factor=2.0,
                        backoff_max=3.0, jitter=0.0)
        assert p.delay(1) == 1.0
        assert p.delay(2) == 2.0
        assert p.delay(3) == 3.0   # capped
        assert p.delay(4) == 3.0

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.5)
        assert p.delay(1, 7) == p.delay(1, 7)
        assert p.delay(1, 7) != p.delay(1, 8)  # keyed by the point
        assert 1.0 <= p.delay(1, 7) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_retry_from_options(self):
        assert retry_from_options(None) is None
        assert retry_from_options(RunOptions()) is None  # legacy behavior
        p = retry_from_options(RunOptions(point_retries=3,
                                          point_timeout=2.0,
                                          point_backoff=0.5))
        assert p.retries == 3
        assert p.timeout == 2.0
        assert p.backoff_base == 0.5

    def test_taxonomy(self):
        assert is_permanent_failure("DeadlockError")
        assert is_permanent_failure("ProtocolError")
        assert not is_permanent_failure("OSError")
        assert not is_permanent_failure("PointTimeout")
        assert not is_permanent_failure("BrokenProcessPool")
        assert "ValueError" in PERMANENT_ERRORS


# ---------------------------------------------------------------------
# serial (jobs=1) retry semantics
# ---------------------------------------------------------------------
class TestSerialRetry:
    def test_transient_failure_retried_until_success(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            if len(attempts) < 3:
                raise OSError("hiccup")
            return x * 10
        [out] = fan_out(flaky, [5], retry=RetryPolicy(retries=3, **_FAST))
        assert out == 50
        assert len(attempts) == 3

    def test_exhausted_retries_degrade_with_attempt_count(self):
        def always(x):
            raise OSError("hiccup")
        [out] = fan_out(always, [5], retry=RetryPolicy(retries=2, **_FAST))
        assert isinstance(out, GridFailure)
        assert not out.permanent
        assert out.attempts == 3   # 1 initial + 2 retries
        assert "after 3 attempts" in out.render()

    def test_permanent_failure_never_retried(self):
        attempts = []

        def wedged(x):
            attempts.append(x)
            raise DeadlockError("wedged config")
        [out] = fan_out(wedged, [5], retry=RetryPolicy(retries=5, **_FAST))
        assert isinstance(out, GridFailure)
        assert out.permanent
        assert out.attempts == 1
        assert len(attempts) == 1

    def test_no_policy_means_no_retries(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            raise OSError("hiccup")
        [out] = fan_out(flaky, [5])
        assert isinstance(out, GridFailure)
        assert len(attempts) == 1

    def test_backoff_actually_waits(self):
        def always(x):
            raise OSError("hiccup")
        t0 = time.monotonic()
        fan_out(always, [5],
                retry=RetryPolicy(retries=2, backoff_base=0.05,
                                  backoff_factor=1.0, jitter=0.0))
        assert time.monotonic() - t0 >= 0.1   # two 0.05 s backoffs

    def test_on_result_sees_final_outcomes_only(self):
        seen = []
        state = {"failed": False}

        def flaky(x):
            if x == 2 and not state["failed"]:
                # fails once; on_result must see only the final success
                state["failed"] = True
                raise OSError("hiccup")
            return x * 10
        out = fan_out(flaky, [1, 2, 3],
                      retry=RetryPolicy(retries=1, **_FAST),
                      on_result=lambda i, o: seen.append((i, o)))
        assert out == [10, 20, 30]
        assert sorted(seen) == [(0, 10), (1, 20), (2, 30)]


# ---------------------------------------------------------------------
# wall-clock timeouts
# ---------------------------------------------------------------------
class TestTimeouts:
    def test_serial_timeout_is_transient(self):
        def slow(x):
            time.sleep(60.0)
        [out] = fan_out(slow, [1],
                        retry=RetryPolicy(retries=0, timeout=0.2, **_FAST))
        assert isinstance(out, GridFailure)
        assert out.error_type == "PointTimeout"
        assert not out.permanent

    def test_serial_timeout_retry_can_recover(self):
        attempts = []

        def slow_once(x):
            attempts.append(x)
            if len(attempts) == 1:
                time.sleep(60.0)
            return x * 10
        [out] = fan_out(slow_once, [1],
                        retry=RetryPolicy(retries=1, timeout=0.2, **_FAST))
        assert out == 10
        assert len(attempts) == 2

    def test_pooled_timeout_spares_siblings(self):
        out = fan_out(_sleep_on_two, [1, 2, 3], jobs=2, chunk_size=1,
                      retry=RetryPolicy(retries=0, timeout=0.3, **_FAST))
        assert out[0] == 10 and out[2] == 30
        assert isinstance(out[1], GridFailure)
        assert out[1].error_type == "PointTimeout"

    def test_fast_points_unaffected_by_budget(self):
        out = fan_out(_ok, [1, 2, 3],
                      retry=RetryPolicy(retries=0, timeout=30.0, **_FAST))
        assert out == [10, 20, 30]


# ---------------------------------------------------------------------
# pool supervision (satellite 1: BrokenProcessPool degrades, not crashes)
# ---------------------------------------------------------------------
class TestPoolSupervision:
    def test_dead_worker_degrades_only_its_point(self):
        out = fan_out(_die_on_two, [1, 2, 3, 4], jobs=2, chunk_size=1)
        assert out[0] == 10 and out[2] == 30 and out[3] == 40
        assert isinstance(out[1], GridFailure)
        assert not out[1].permanent   # worker death is transient-class
        assert "BrokenProcessPool" in out[1].error_type

    def test_dead_worker_in_chunk_spares_chunk_mates(self):
        # chunk_size=2 puts the killer in a chunk with an innocent; the
        # quarantine re-runs the innocents solo and they complete
        out = fan_out(_die_on_two, [1, 2, 3, 4], jobs=2, chunk_size=2)
        assert out[0] == 10 and out[2] == 30 and out[3] == 40
        assert isinstance(out[1], GridFailure)

    def test_retry_recovers_one_off_worker_death(self, tmp_path):
        marker = str(tmp_path / "died")
        items = [(1, marker), (2, marker), (3, marker)]
        out = fan_out(_die_once_marker, items, jobs=2, chunk_size=1,
                      retry=RetryPolicy(retries=1, **_FAST))
        assert out == [10, 20, 30]
        assert os.path.exists(marker)

    def test_retry_recovers_transient_exception_in_worker(self, tmp_path):
        marker = str(tmp_path / "tried")
        items = [(1, marker), (2, marker), (3, marker)]
        out = fan_out(_flaky_marker, items, jobs=2, chunk_size=1,
                      retry=RetryPolicy(retries=1, **_FAST))
        assert out == [10, 20, 30]


# ---------------------------------------------------------------------
# failure reporting (satellite 2: identity + traceback in render())
# ---------------------------------------------------------------------
class TestFailureReporting:
    def test_render_names_the_point_and_the_traceback(self):
        from repro.harness.parallel import GridPoint, run_grid
        import repro.harness.parallel as par

        def boom(name, **kwargs):
            raise DeadlockError("wedged at barrier 3")
        original = par.run_workload
        par.run_workload = boom
        try:
            [out] = run_grid([GridPoint(
                "bad_dot_product",
                dict(d_distance=4, seed=777, protocol="ghostwriter"),
                label="d=4")])
        finally:
            par.run_workload = original
        assert isinstance(out, GridFailure)
        text = out.render()
        assert "workload=bad_dot_product" in text
        assert "protocol=ghostwriter" in text
        assert "seed=777" in text
        assert "d=4" in text
        assert "DeadlockError" in text
        assert "permanent" in text
        assert "wedged at barrier 3" in text
        # the traceback tail names the raise site
        assert out.traceback and "DeadlockError" in out.traceback

    def test_render_reads_protocol_from_options(self):
        from repro.harness.parallel import GridPoint, run_grid
        import repro.harness.parallel as par

        def boom(name, **kwargs):
            raise ValueError("bad knob")
        original = par.run_workload
        par.run_workload = boom
        try:
            [out] = run_grid([GridPoint(
                "histogram",
                dict(d_distance=4, seed=1,
                     options=RunOptions(protocol="ghostwriter-moesi")))])
        finally:
            par.run_workload = original
        assert out.protocol == "ghostwriter-moesi"
        assert out.permanent   # ValueError is deterministic

    def test_minimal_failure_renders(self):
        f = GridFailure(index=0, error_type="OSError", message="x")
        text = f.render()
        assert "OSError" in text and "transient" in text
