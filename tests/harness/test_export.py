"""Tests for figure data export."""
import csv
import json

import pytest

from repro.harness import figures as F
from repro.harness.export import export_result, records_for, write_csv


class TestRecords:
    def test_table1_records(self):
        recs = records_for("table1", F.table1())
        assert recs[0]["Parameter"] == "Cores"
        assert "24 in-order cores" in recs[0]["Values"]

    def test_fig1_records(self):
        res = F.fig1(thread_counts=(1, 2), n_points=128, seed=1)
        recs = records_for("fig1", res)
        assert recs[0] == {
            "threads": 1, "naive_speedup": 1.0, "private_speedup": 1.0,
        }

    def test_fig12_records(self):
        res = F.fig12(timeouts=(128,), num_threads=4, n_points=128, seed=1)
        recs = records_for("fig12", res)
        assert recs[0]["timeout_cycles"] == 128
        assert set(recs[0]) == {"timeout_cycles", "gi_serviced_pct",
                                "error_mpe_pct"}

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            records_for("fig99", None)


class TestFiles:
    def test_roundtrip_csv_json(self, tmp_path):
        res = F.table2(4)
        paths = export_result("table2", res, tmp_path)
        assert [p.name for p in paths] == ["table2.csv", "table2.json"]
        with open(paths[0]) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["Application"] == "histogram"
        with open(paths[1]) as fh:
            data = json.load(fh)
        assert len(data) == len(rows)

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")

    def test_cli_out_flag(self, tmp_path, capsys):
        from repro.harness.cli import main
        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert "exported" in capsys.readouterr().out
