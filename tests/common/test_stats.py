"""Unit tests for repro.common.stats."""
import pytest

from repro.common.stats import HistogramStat, StatGroup


class TestStatGroup:
    def test_auto_init_counters(self):
        g = StatGroup("g")
        assert g.hits == 0
        g.hits += 3
        assert g.hits == 3

    def test_children_nest(self):
        g = StatGroup("root")
        g.child("a").x = 1
        g.child("a").x += 1
        assert g.child("a").x == 2

    def test_flatten(self):
        g = StatGroup("")
        g.top = 5
        g.child("l1").child("c0").hits = 7
        flat = g.flatten()
        assert flat["top"] == 5
        assert flat["l1.c0.hits"] == 7

    def test_merge(self):
        a = StatGroup("x")
        b = StatGroup("x")
        a.n = 1
        b.n = 2
        a.child("k").m = 10
        b.child("k").m = 5
        a.merge(b)
        assert a.n == 3
        assert a.child("k").m == 15

    def test_total_across_children(self):
        g = StatGroup("root")
        g.child("a").hits = 2
        g.child("b").hits = 3
        g.hits = 1
        assert g.total("hits") == 6

    def test_histogram_type_guard(self):
        g = StatGroup("g")
        g.n = 1
        with pytest.raises(TypeError):
            g.histogram("n")

    def test_histogram_flatten(self):
        g = StatGroup("g")
        g.histogram("h").add(3, 2)
        assert g.flatten()["g.h"] == {3: 2}


class TestHistogramStat:
    def test_add_and_total(self):
        h = HistogramStat()
        h.add(0, 5)
        h.add(4)
        assert h.total() == 6

    def test_cdf(self):
        h = HistogramStat()
        h.add(0, 2)
        h.add(2, 2)
        cdf = h.cdf(4)
        assert cdf == [0.5, 0.5, 1.0, 1.0, 1.0]

    def test_cdf_empty(self):
        assert HistogramStat().cdf(2) == [0.0, 0.0, 0.0]

    def test_merge(self):
        a, b = HistogramStat(), HistogramStat()
        a.add(1)
        b.add(1, 2)
        b.add(9)
        a.merge(b)
        assert a.as_dict() == {1: 3, 9: 1}
