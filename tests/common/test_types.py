"""Unit tests for repro.common.types."""
import pytest

from repro.common.types import (
    AccessType,
    CoherenceState,
    MessageClass,
    MessageType,
    WordAddr,
    WORD_BYTES,
)


class TestAccessType:
    def test_is_write(self):
        assert not AccessType.LOAD.is_write
        assert AccessType.STORE.is_write
        assert AccessType.SCRIBBLE.is_write


class TestCoherenceState:
    def test_stable_states(self):
        for s in (CoherenceState.I, CoherenceState.S, CoherenceState.E,
                  CoherenceState.M, CoherenceState.GS, CoherenceState.GI):
            assert s.stable
            assert not s.transient

    def test_transient_states(self):
        for s in (CoherenceState.IS_D, CoherenceState.IM_D,
                  CoherenceState.SM_D):
            assert s.transient
            assert not s.stable

    def test_readable(self):
        assert CoherenceState.S.readable
        assert CoherenceState.E.readable
        assert CoherenceState.M.readable
        assert CoherenceState.GS.readable, "paper: loads hit on GS"
        assert CoherenceState.GI.readable, "paper: loads hit on GI"
        assert not CoherenceState.I.readable
        assert not CoherenceState.IS_D.readable

    def test_writable(self):
        assert CoherenceState.E.writable
        assert CoherenceState.M.writable
        assert CoherenceState.GS.writable, "paper: stores hit on GS"
        assert CoherenceState.GI.writable, "paper: stores hit on GI"
        assert not CoherenceState.S.writable
        assert not CoherenceState.I.writable

    def test_approximate_flags(self):
        assert CoherenceState.GS.approximate
        assert CoherenceState.GI.approximate
        assert not CoherenceState.M.approximate

    def test_dirty_owner_states(self):
        dirty = [s for s in CoherenceState if s.owns_dirty_data]
        assert dirty == [CoherenceState.M, CoherenceState.O]

    def test_owned_state_properties(self):
        assert CoherenceState.O.stable
        assert CoherenceState.O.readable
        assert not CoherenceState.O.writable
        assert not CoherenceState.O.approximate


class TestMessageType:
    def test_data_bearing(self):
        assert MessageType.DATA.carries_data
        assert MessageType.DATA_E.carries_data
        assert MessageType.PUTM.carries_data
        assert MessageType.FWD_DATA.carries_data
        assert MessageType.CHAIN_DATA.carries_data
        assert not MessageType.GETS.carries_data
        assert not MessageType.INV.carries_data

    def test_fig8_classes(self):
        """The Fig. 8 traffic breakdown buckets."""
        assert MessageType.GETS.klass is MessageClass.GETS
        assert MessageType.GETX.klass is MessageClass.GETX
        assert MessageType.UPGRADE.klass is MessageClass.UPGRADE
        assert MessageType.DATA.klass is MessageClass.DATA
        assert MessageType.INV.klass is MessageClass.OTHER
        assert MessageType.INV_ACK.klass is MessageClass.OTHER

    def test_every_type_has_class(self):
        for mt in MessageType:
            assert isinstance(mt.klass, MessageClass)
            assert mt.label


class TestWordAddr:
    def test_valid(self):
        a = WordAddr(64)
        assert int(a) == 64
        assert a.word_index == 16

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            WordAddr(WORD_BYTES + 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WordAddr(-4)
