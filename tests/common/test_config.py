"""Unit tests for repro.common.config (paper Table 1)."""
import pytest

from repro.common.config import (
    CacheConfig,
    DramConfig,
    GhostwriterConfig,
    NocConfig,
    SimConfig,
    default_config,
    small_config,
    table1_rows,
)


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        l1 = CacheConfig(32 * 1024, 2, 64, 2)
        assert l1.num_blocks == 512
        assert l1.num_sets == 256
        assert l1.words_per_block == 16

    def test_paper_l2_geometry(self):
        l2 = CacheConfig(128 * 1024, 8, 64, 10)
        assert l2.num_blocks == 2048
        assert l2.num_sets == 256

    def test_set_index_wraps(self):
        c = CacheConfig(1024, 2, 64)
        assert c.num_sets == 8
        assert c.set_index(0) == 0
        assert c.set_index(64) == 1
        assert c.set_index(64 * 8) == 0

    @pytest.mark.parametrize("size", [0, 3, 100])
    def test_rejects_non_pow2_size(self, size):
        with pytest.raises(ValueError):
            CacheConfig(size, 2, 64)

    def test_rejects_cache_smaller_than_set(self):
        with pytest.raises(ValueError):
            CacheConfig(64, 4, 64)


class TestNocConfig:
    def test_paper_mesh_corners(self):
        noc = NocConfig(mesh_cols=6, mesh_rows=4)
        assert noc.num_nodes == 24
        assert noc.directory_nodes == (0, 5, 18, 23)

    def test_coords_roundtrip(self):
        noc = NocConfig(mesh_cols=6, mesh_rows=4)
        assert noc.topo.coords(0) == (0, 0)
        assert noc.topo.coords(5) == (5, 0)
        assert noc.topo.coords(23) == (5, 3)

    def test_hops_manhattan(self):
        noc = NocConfig(mesh_cols=6, mesh_rows=4)
        assert noc.topo.hops(0, 0) == 0
        assert noc.topo.hops(0, 23) == 8
        assert noc.topo.hops(5, 18) == 8

    def test_topology_knob_rebuilds_the_model(self):
        ring = NocConfig(mesh_cols=6, mesh_rows=4, topology="ring")
        assert ring.topo.hops(0, 23) == 1
        with pytest.raises(ValueError, match="registered"):
            NocConfig(topology="torus")

    def test_directory_node_error_names_topology(self):
        with pytest.raises(ValueError, match="'mesh'"):
            NocConfig(mesh_cols=2, mesh_rows=2, directory_nodes=(4,))

    def test_flits(self):
        noc = NocConfig()
        assert noc.flits(8) == 1
        assert noc.flits(16) == 1
        assert noc.flits(17) == 2
        assert noc.flits(64 + 8) == 5

    def test_message_latency_serialization(self):
        noc = NocConfig(mesh_cols=2, mesh_rows=2)
        control = noc.message_latency(0, 1, 8)
        data = noc.message_latency(0, 1, 72)
        assert control == 2          # 1 hop * (1+1)
        assert data == 2 + (5 - 1)   # + serialization

    def test_local_delivery_nonzero(self):
        noc = NocConfig()
        assert noc.message_latency(0, 0, 8) >= 1


class TestSimConfig:
    def test_default_matches_table1(self):
        cfg = default_config()
        assert cfg.num_cores == 24
        assert cfg.l1.size_bytes == 32 * 1024 and cfg.l1.assoc == 2
        assert cfg.l2.size_bytes == 128 * 1024 and cfg.l2.assoc == 8
        assert cfg.l1.hit_latency == 2 and cfg.l2.hit_latency == 10
        assert cfg.ghostwriter.gi_timeout == 1024
        assert len(cfg.noc.directory_nodes) == 4

    def test_table1_rows_render(self):
        rows = dict(table1_rows(default_config()))
        assert "24 in-order cores" in rows["Cores"]
        assert "32kB" in rows["L1"]
        assert "1024-cycle GI timeout" in rows["Coherence"]
        assert "Mesh Corners" in rows["Network"]

    def test_table1_baseline_row(self):
        cfg = default_config().with_ghostwriter(enabled=False)
        assert dict(table1_rows(cfg))["Coherence"] == "Baseline MESI"

    def test_with_ghostwriter_sweep(self):
        cfg = default_config().with_ghostwriter(d_distance=8, gi_timeout=128)
        assert cfg.ghostwriter.d_distance == 8
        assert cfg.ghostwriter.gi_timeout == 128
        assert cfg.ghostwriter.enabled

    def test_home_directory_interleave(self):
        cfg = default_config()
        homes = {cfg.home_directory(b * 64) for b in range(16)}
        assert homes == set(cfg.noc.directory_nodes)

    def test_home_l2_slice_interleave(self):
        cfg = default_config()
        slices = {cfg.home_l2_slice(b * 64) for b in range(48)}
        assert slices == set(range(24))

    def test_cores_must_fit_mesh(self):
        with pytest.raises(ValueError):
            SimConfig(num_cores=25)

    def test_small_config_valid(self):
        for n in (1, 2, 3, 4, 8):
            cfg = small_config(n)
            assert cfg.num_cores == n
            assert cfg.num_cores <= cfg.noc.num_nodes


class TestGhostwriterConfig:
    def test_d_distance_bounds(self):
        GhostwriterConfig(d_distance=0)
        GhostwriterConfig(d_distance=32)
        with pytest.raises(ValueError):
            GhostwriterConfig(d_distance=33)
        with pytest.raises(ValueError):
            GhostwriterConfig(d_distance=-1)

    def test_timeout_positive(self):
        with pytest.raises(ValueError):
            GhostwriterConfig(gi_timeout=0)


class TestDramConfig:
    def test_defaults(self):
        d = DramConfig()
        assert d.size_bytes == 2 * 1024**3
        assert d.num_banks == 8

    def test_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            DramConfig(num_banks=3)
