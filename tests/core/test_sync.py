"""Unit tests for barriers and locks."""
import pytest

from repro.core.sync import Barrier, Lock
from repro.isa.instructions import Acquire, BarrierWait, Compute, Load, Release, Store
from repro.sim.engine import Engine

from tests.conftest import build_machine, run_scripts

BLK = 0x4000


class TestBarrierUnit:
    def test_releases_when_full(self):
        e = Engine()
        b = Barrier(e, 3)
        hits = []
        b.arrive(lambda: hits.append(1))
        b.arrive(lambda: hits.append(2))
        e.run()
        assert hits == []  # not full yet
        b.arrive(lambda: hits.append(3))
        e.run()
        assert sorted(hits) == [1, 2, 3]
        assert b.generation == 1

    def test_reusable(self):
        e = Engine()
        b = Barrier(e, 2)
        order = []
        b.arrive(lambda: order.append("a1"))
        b.arrive(lambda: order.append("b1"))
        e.run()
        b.arrive(lambda: order.append("a2"))
        b.arrive(lambda: order.append("b2"))
        e.run()
        assert b.generation == 2
        assert len(order) == 4

    def test_overflow_rejected(self):
        e = Engine()
        b = Barrier(e, 1)
        # single party releases immediately; arriving again is a new round
        b.arrive(lambda: None)
        assert b.generation == 1

    def test_zero_parties_rejected(self):
        with pytest.raises(ValueError):
            Barrier(Engine(), 0)


class TestLockUnit:
    def test_fifo_grant_order(self):
        e = Engine()
        lk = Lock(e)
        order = []
        lk.acquire(0, lambda: order.append(0))
        lk.acquire(1, lambda: order.append(1))
        lk.acquire(2, lambda: order.append(2))
        e.run()
        assert order == [0]
        lk.release(0)
        e.run()
        assert order == [0, 1]
        lk.release(1)
        e.run()
        lk.release(2)
        assert order == [0, 1, 2]

    def test_release_unheld_raises(self):
        lk = Lock(Engine())
        with pytest.raises(RuntimeError):
            lk.release(0)

    def test_release_by_non_owner_raises(self):
        e = Engine()
        lk = Lock(e)
        lk.acquire(0, lambda: None)
        e.run()
        with pytest.raises(RuntimeError):
            lk.release(1)


class TestSyncInPrograms:
    def test_barrier_orders_phases(self):
        m = build_machine(3, enabled=False)
        b = m.barrier(3)
        got = {}

        def writer(tid, delay):
            def prog():
                yield Compute(delay)
                yield Store(BLK + 4 * tid, 100 + tid)
                yield BarrierWait(b)
                if tid == 0:
                    vals = []
                    for t in range(3):
                        vals.append((yield Load(BLK + 4 * t)))
                    got["vals"] = vals
            return prog()

        run_scripts(m, writer(0, 5), writer(1, 300), writer(2, 77))
        assert got["vals"] == [100, 101, 102]

    def test_lock_serializes_critical_section(self):
        m = build_machine(4, enabled=False, quantum=1)
        lk = m.lock()
        iters = 20

        def worker(tid):
            def prog():
                for _ in range(iters):
                    yield Acquire(lk)
                    v = yield Load(BLK)
                    yield Store(BLK, v + 1)
                    yield Release(lk)
            return prog()

        for t in range(4):
            m.add_thread(t, worker(t))
        m.run()
        m.check_quiescent()
        # with the lock, the racy read-modify-write is exact
        owner_val = None
        for l1 in m.l1s:
            v = l1.peek_word(BLK)
            st = l1.state_of(BLK)
            if st is not None and st.readable:
                owner_val = v
        assert owner_val == 4 * iters
