"""Fast-lane/scalar equivalence across the whole workload registry.

The correctness bar for the vectorized hit-run fast lane (ISSUE 10,
:mod:`repro.core.hitrun`): for every registered workload and a protocol
cross-section, a run executed with ``RunOptions(fast_lane=True)`` must
be **bit-identical** to the scalar event-driven run — the full frozen
``RunRow``, every flattened counter, the backing-memory image and cache
arrays (the checkpoint layer's fingerprint payload), the engine's
cycle/event accounting, and the ``MachineCheckpoint`` fingerprint.

This mirrors tests/sim/test_batch_equivalence.py one layer down: that
suite proves the lane-sharing sweep engine preserves whole-sweep
behavior; this one proves the single-run op-merging kernel preserves
single-run behavior.  A Hypothesis property closes the loop at the op
level: random compiled streams segment into hit runs whose vectorized
replay matches the scalar interpreter op-for-op.
"""
import numpy as np
import pytest

import repro.core.hitrun as hitrun
from repro.harness.experiment import row_from_result, run_workload_result
from repro.harness.options import RunOptions
from repro.sim.state import MachineCheckpoint, machine_fingerprint
from repro.workloads.registry import (
    ALL_WORKLOADS, MICROBENCHMARKS, PROGRAM_CACHE,
)

THREADS = 4
SCALE = 0.05
SEED = 7

#: the ISSUE's protocol cross-section: both precise/approximate main
#: variants plus the two structurally different approximation policies
PROTOCOLS = ("mesi", "ghostwriter", "self-invalidate", "update-hybrid")

pytestmark = pytest.mark.usefixtures("clean_cache")


@pytest.fixture
def clean_cache():
    PROGRAM_CACHE.clear()
    yield
    PROGRAM_CACHE.clear()


@pytest.fixture
def tiny_min_run(monkeypatch):
    """Shrink the lane's engagement floor so scaled-down test runs merge
    aggressively (MIN_RUN is a perf heuristic, not a correctness knob)."""
    monkeypatch.setattr(hitrun, "MIN_RUN", 1)


def _sizing(name):
    if name in MICROBENCHMARKS:
        return {"n_points": 96, "max_value": 7}
    return {"scale": SCALE}


def _run(name, *, lane, d=4, protocol=None, seed=SEED, warm=True):
    """One workload run; returns (RunRow, fingerprint payload dict).

    ``warm`` primes the program cache first (a recording run) so the
    measured run executes through the compiled interpreter — the only
    form the fast lane engages on.  The cache is shared between the
    lane-on and lane-off legs, so both replay the *same* compiled
    program.
    """
    if warm and PROGRAM_CACHE is not None:
        run_workload_result(
            name, d_distance=d, num_threads=THREADS, seed=seed,
            protocol=protocol, options=RunOptions(fast_lane=lane),
            **_sizing(name),
        )
    opts = RunOptions(fast_lane=lane)
    result, cfg = run_workload_result(
        name, d_distance=d, num_threads=THREADS, seed=seed,
        protocol=protocol, options=opts, **_sizing(name),
    )
    row = row_from_result(name, d, result, cfg)
    m = result.machine
    from repro.sim.state import fingerprint_payload

    payload = fingerprint_payload(m)
    payload["engine"] = (m.engine.now, m.engine.events_executed)
    payload["checkpoint"] = machine_fingerprint(m)
    # MachineCheckpoint round-trips through the same payload; capturing
    # proves the (never-serialized) residency mirror doesn't leak into
    # the snapshot
    MachineCheckpoint.capture(m)
    return row, payload


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_fastlane_matches_scalar_per_workload(name, tiny_min_run):
    """Every workload: lane-on run byte-equal to lane-off run in row,
    stats, memory image, cache arrays, engine accounting, and
    checkpoint fingerprint."""
    row_on, pay_on = _run(name, lane=True)
    row_off, pay_off = _run(name, lane=False, warm=False)
    assert row_on == row_off
    assert pay_on == pay_off


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("name", ["histogram", "bad_dot_product"])
def test_fastlane_matches_scalar_per_protocol(name, protocol, tiny_min_run):
    """The ISSUE's protocol cross-section: hit-capable state sets differ
    per protocol (GS/GI only exist under approximation policies), so the
    residency-mirror classification exercises different rows — runs must
    still be byte-equal."""
    for d in (0, 4):
        row_on, pay_on = _run(name, lane=True, d=d, protocol=protocol)
        row_off, pay_off = _run(name, lane=False, d=d, protocol=protocol,
                                warm=False)
        assert row_on == row_off, f"d={d}"
        assert pay_on == pay_off, f"d={d}"


def test_fastlane_is_execution_only_in_store_keys():
    """``fast_lane`` is an execution knob, not an identity knob: rows
    computed either way commit under the same store keys."""
    from repro.store.keys import options_fingerprint

    assert (options_fingerprint(RunOptions(fast_lane=False))
            == options_fingerprint(RunOptions()))


def test_tracing_forces_scalar_path_with_identical_rows(tiny_min_run):
    """An attached event bus disables merging dynamically (the lane
    cannot replay per-op STATE emissions), and the traced run is still
    byte-equal with the knob on or off."""
    on = RunOptions(fast_lane=True, trace_events=True)
    off = RunOptions(fast_lane=False, trace_events=True)
    result_on, cfg_on = run_workload_result(
        "bad_dot_product", d_distance=4, num_threads=THREADS, seed=SEED,
        options=on, **_sizing("bad_dot_product"))
    result_off, cfg_off = run_workload_result(
        "bad_dot_product", d_distance=4, num_threads=THREADS, seed=SEED,
        options=off, **_sizing("bad_dot_product"))
    row_on = row_from_result("bad_dot_product", 4, result_on, cfg_on)
    row_off = row_from_result("bad_dot_product", 4, result_off, cfg_off)
    assert row_on == row_off
    assert row_on.obs is not None
    assert np.array_equal(np.asarray(result_on.output),
                          np.asarray(result_off.output))


# ---------------------------------------------------------------------
# op-level Hypothesis property
# ---------------------------------------------------------------------
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

_OP_LOAD, _OP_STORE, _OP_SCRIBBLE, _OP_COMPUTE = 0, 1, 2, 3
_OP_SETAPRX, _OP_ENDAPRX, _OP_FLUSH = 7, 8, 11

_ops_strategy = st.lists(
    st.one_of(
        # a handful of hot words across 4 blocks: runs stay hot in L1
        st.tuples(st.just("mem"),
                  st.sampled_from((_OP_LOAD, _OP_STORE, _OP_SCRIBBLE)),
                  st.integers(0, 3), st.integers(0, 15),
                  st.integers(0, 2**32 - 1)),
        st.tuples(st.just("compute"), st.integers(1, 6)),
        st.tuples(st.just("setaprx"), st.integers(0, 14)),
        st.tuples(st.just("endaprx")),
        st.tuples(st.just("flush")),
    ),
    min_size=1, max_size=120,
)


def _compiled_from(draw_ops):
    from repro.isa.compiled import CompiledProgram

    ops, addrs, vals, cycs = [], [], [], []
    for t in draw_ops:
        kind = t[0]
        if kind == "mem":
            _, code, blk, woff, value = t
            ops.append(code)
            addrs.append(0x2000 + blk * 64 + woff * 4)
            vals.append(0 if code == _OP_LOAD else value)
            cycs.append(0)
        elif kind == "compute":
            ops.append(_OP_COMPUTE)
            addrs.append(0)
            vals.append(0)
            cycs.append(t[1])
        elif kind == "setaprx":
            ops.append(_OP_SETAPRX)
            addrs.append(0)
            vals.append(0)
            cycs.append(t[1])
        elif kind == "endaprx":
            ops.append(_OP_ENDAPRX)
            addrs.append(0)
            vals.append(0)
            cycs.append(0)
        else:
            ops.append(_OP_FLUSH)
            addrs.append(0)
            vals.append(0)
            cycs.append(0)
    return CompiledProgram(
        np.asarray(ops, dtype=np.int8),
        np.asarray(addrs, dtype=np.int64),
        np.asarray(vals, dtype=np.int64),
        np.asarray(cycs, dtype=np.int64),
        validate_loads=False,
    )


def _machine_state(cfg, prog):
    from repro.sim.machine import Machine
    from repro.sim.state import fingerprint_payload

    m = Machine(cfg)
    m.add_thread(0, prog)
    m.run()
    payload = fingerprint_payload(m)
    payload["engine"] = (m.engine.now, m.engine.events_executed)
    return payload


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(draw_ops=_ops_strategy, quantum=st.sampled_from((1, 4, 16)),
       gw=st.booleans())
def test_random_compiled_streams_replay_identically(draw_ops, quantum, gw):
    """Random compiled streams segment into hit runs whose vectorized
    replay matches the scalar interpreter op-for-op: final stats,
    memory, caches, and engine accounting are all byte-equal."""
    from dataclasses import replace

    from repro.common.config import small_config

    prog = _compiled_from(draw_ops)
    saved = hitrun.MIN_RUN
    hitrun.MIN_RUN = 1
    try:
        base = small_config(num_cores=1, enabled=gw, d_distance=6,
                            core_quantum=quantum)
        on = _machine_state(replace(base, fast_lane=True), prog)
        off = _machine_state(replace(base, fast_lane=False), prog)
    finally:
        hitrun.MIN_RUN = saved
    assert on == off
