"""Unit tests for the in-order core model."""
import pytest

from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, Compute, Load, SetAprx, Store,
)
from repro.common.types import CoherenceState as CS

from tests.conftest import build_machine, run_scripts

BLK = 0x4000


class TestExecution:
    def test_load_value_delivery(self):
        m = build_machine(1)
        m.backing.store_word(BLK, 42)
        got = {}

        def prog():
            got["v"] = yield Load(BLK)

        run_scripts(m, prog())
        assert got["v"] == 42

    def test_compute_advances_time(self):
        m1 = build_machine(1)
        m2 = build_machine(1)

        def short():
            yield Compute(10)

        def long():
            yield Compute(5000)

        run_scripts(m1, short())
        run_scripts(m2, long())
        assert m2.cores[0].finish_cycle - m1.cores[0].finish_cycle >= 4900

    def test_hit_latency_charged(self):
        m = build_machine(1)

        def prog():
            yield Store(BLK, 1)      # miss
            for _ in range(100):
                yield Load(BLK)       # 100 hits at 2 cycles each

        run_scripts(m, prog())
        finish = m.cores[0].finish_cycle
        assert finish >= 200  # at least the hit latency of the loop

    def test_bad_op_raises(self):
        m = build_machine(1)

        def prog():
            yield "not an op"

        m.add_thread(0, prog())
        with pytest.raises(TypeError):
            m.run()

    def test_core_reuse_rejected(self):
        m = build_machine(2)

        def prog():
            yield Compute(1)

        m.add_thread(0, prog())
        with pytest.raises(ValueError):
            m.add_thread(0, prog())

    def test_mem_ops_counted(self):
        m = build_machine(1)

        def prog():
            yield Store(BLK, 1)
            yield Load(BLK)
            yield Load(BLK + 4)

        run_scripts(m, prog())
        assert m.stats.child("core").child("c0").mem_ops == 3


class TestQuantumEquivalence:
    """Functional results must not depend on the hit-batching quantum."""

    @pytest.mark.parametrize("quantum", [1, 2, 8, 32])
    def test_single_core_results_identical(self, quantum):
        m = build_machine(1, quantum=quantum)
        got = []

        def prog():
            for i in range(50):
                yield Store(BLK + 4 * (i % 16), i)
            for i in range(16):
                got.append((yield Load(BLK + 4 * i)))

        run_scripts(m, prog())
        expected = [48, 49, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44,
                    45, 46, 47]
        assert got == expected


class TestApproxConversion:
    def test_store_in_region_becomes_scribble(self):
        m = build_machine(2, d_distance=4)

        def a():
            yield SetAprx(4)
            yield ApproxBegin(((BLK, BLK + 64),))
            yield Load(BLK)
            yield Compute(300)
            yield Store(BLK, 7)      # converted to a scribble -> GS
            yield Compute(50)

        def b():
            yield Compute(100)
            yield Load(BLK)
            yield Compute(300)

        run_scripts(m, a(), b())
        assert m.l1s[0].stats.gs_serviced == 1

    def test_store_outside_region_stays_conventional(self):
        m = build_machine(2, d_distance=4)

        def a():
            yield SetAprx(4)
            yield ApproxBegin(((BLK + 0x1000, BLK + 0x1040),))  # elsewhere
            yield Load(BLK)
            yield Compute(300)
            yield Store(BLK, 7)
            yield Compute(50)

        def b():
            yield Compute(100)
            yield Load(BLK)
            yield Compute(300)

        run_scripts(m, a(), b())
        assert m.l1s[0].stats.gs_serviced == 0
        assert m.l1s[0].state_of(BLK) is CS.M

    def test_approx_end_stops_conversion(self):
        m = build_machine(2, d_distance=4)
        rng = ((BLK, BLK + 64),)

        def a():
            yield SetAprx(4)
            yield ApproxBegin(rng)
            yield ApproxEnd(rng)
            yield Load(BLK)
            yield Compute(300)
            yield Store(BLK, 7)   # no conversion
            yield Compute(50)

        def b():
            yield Compute(100)
            yield Load(BLK)
            yield Compute(300)

        run_scripts(m, a(), b())
        assert m.l1s[0].stats.gs_serviced == 0
