"""End-to-end pipeline smoke tests crossing subsystem boundaries.

Each test exercises a realistic multi-module flow a downstream user
would run: record -> classify -> replay -> compare; sweep -> export;
tune -> verify; the full figure path under MOESI.
"""
import csv

from repro.harness.autotune import tune_d_distance
from repro.harness.experiment import experiment_config, run_workload
from repro.harness.export import export_result
from repro.harness import figures as F
from repro.sim.machine import Machine
from repro.trace import TraceRecorder, false_sharing_candidates, replay_trace
from repro.workloads.registry import create

THREADS = 4


def test_record_classify_replay_pipeline(tmp_path):
    """The find_false_sharing.py workflow, persisted through disk."""
    cfg = experiment_config(enabled=False, num_cores=THREADS)
    w = create("bad_dot_product", num_threads=THREADS, n_points=256,
               max_value=7)
    m = Machine(cfg)
    w.build(m)
    snap = m.backing.memory_image()
    rec = TraceRecorder(m)
    m.run()
    m.check_quiescent()

    # persist + reload the trace
    trace_path = tmp_path / "run.npz"
    rec.trace().save(trace_path)
    from repro.trace import Trace
    trace = Trace.load(trace_path)

    # the classifier finds the paper's structure
    hits = false_sharing_candidates(trace)
    assert hits and hits[0].writers == THREADS

    # replay under Ghostwriter cuts traffic on exactly that structure
    gw = replay_trace(
        trace, experiment_config(enabled=True, d_distance=8,
                                 num_cores=THREADS),
        initial_memory=snap,
    )
    base = replay_trace(
        trace, experiment_config(enabled=False, num_cores=THREADS),
        initial_memory=snap,
    )
    assert gw.network.stats.messages < base.network.stats.messages


def test_figure_export_pipeline(tmp_path):
    """One sweep figure, rendered and exported, with consistent data."""
    cache = F.SweepCache(num_threads=THREADS, scale=0.1, seed=11)
    result = F.fig10(cache)
    paths = export_result("fig10", result, tmp_path)
    with open(paths[0]) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 12  # 6 apps x 2 d values
    by_key = {(r["app"], int(r["d"])): float(r["speedup_pct"])
              for r in rows}
    for (app, d), v in result.speedup_pct.items():
        assert abs(by_key[(app, d)] - v) < 1e-9


def test_tune_then_verify_pipeline():
    """The auto-tuner's chosen d reproduces its promised error."""
    res = tune_d_distance(
        "bad_dot_product", 5.0, d_candidates=(2, 4, 8),
        num_threads=THREADS, scale=1.0, n_points=256, max_value=7, seed=3,
    )
    if res.chosen_d > 0:
        rerun = run_workload(
            "bad_dot_product", d_distance=res.chosen_d,
            num_threads=THREADS, scale=1.0, n_points=256, max_value=7,
            seed=3,
        )
        assert rerun.error_pct == res.chosen_row.error_pct  # deterministic
        assert rerun.error_pct <= 5.0


def test_moesi_figure_pipeline():
    """The sweep figures run end to end on the MOESI-based variant."""
    cache = F.SweepCache(num_threads=THREADS, scale=0.1, seed=11,
                         protocol="ghostwriter-moesi")
    f10 = F.fig10(cache)
    f11 = F.fig11(cache)
    for app in F.PAPER_WORKLOADS:
        assert f10.speedup_pct[(app, 8)] > -1.0
        assert f11.baseline_error_pct[app] == 0.0
