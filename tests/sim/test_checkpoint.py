"""Checkpoint/restore round trips across every layer (repro.sim.state).

The contract under test: capture at a safe point mid-run, restore into a
freshly built shape-compatible machine, resume — and the resumed run is
*bit-identical* to the uninterrupted one in every counter, every backing
word, and every cache line (``machine_fingerprint``).
"""
import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import small_config
from repro.harness.experiment import experiment_config, row_from_result
from repro.workloads.base import WorkloadResult
from repro.workloads.registry import create as registry_create
from repro.isa.compiled import ProgramCache, ProgramSpec
from repro.isa.instructions import (
    BarrierWait, Compute, Load, Scribble, SetAprx, Store,
)
from repro.sim.engine import CheckpointUnsupported, Engine, SimulationError
from repro.sim.machine import Machine
from repro.sim.state import (
    CheckpointRecorder, MachineCheckpoint, fingerprint_payload,
    machine_fingerprint,
)
from tests.conftest import build_machine

BLK = 0x4000
SHARED = 0x4040


def _factory(cid: int, rounds: int = 24, salt: int = 0):
    """A deterministic false-sharing + scribble mix for one core, with
    compute gaps long enough that the machine regularly quiesces (the
    safe points the checkpoint layer needs)."""
    def prog():
        yield SetAprx(4)
        for i in range(rounds):
            yield Store(BLK + 4 * (4 + cid), (cid << 10) | (i ^ salt))
            yield Load(BLK + 4 * (4 + ((cid + 1) % 4)))
            yield Scribble(SHARED, (cid << 10) | i)
            yield Compute(20)
    return prog


def _scripted_machine(num_cores: int = 2, *, period: int | None = 64,
                      growth: int = 0, rounds: int = 24, salt: int = 0,
                      protocol: str = "mesi", enabled: bool = True,
                      max_keep: int | None = None) -> Machine:
    m = build_machine(num_cores, protocol=protocol, enabled=enabled)
    if period is not None:
        m.checkpoint_recorder = CheckpointRecorder(period, growth=growth,
                                                   max_keep=max_keep)
    # a per-machine program cache keeps the cores in recorder/compiled
    # mode — the snapshotable program forms (a bare generator is not)
    cache = ProgramCache()
    for cid in range(num_cores):
        m.add_thread(cid, ProgramSpec(_factory(cid, rounds, salt),
                                      key=(cid, rounds, salt),
                                      cache=cache))
    return m


class TestRoundTrip:
    def test_mid_run_restore_is_bit_identical(self):
        base = _scripted_machine(2)
        end = base.run()
        rec = base.checkpoint_recorder
        mid = [c for c in rec.checkpoints if 0 < c.cycle < end]
        assert mid, f"no mid-run checkpoint ({len(rec)} kept)"
        ckpt = mid[len(mid) // 2]

        fresh = _scripted_machine(2)
        ckpt.restore_into(fresh, verify=True)
        assert fresh.engine.now == ckpt.cycle
        assert fresh.resume() == end
        assert machine_fingerprint(fresh) == machine_fingerprint(base)
        assert fresh.stats.flatten() == base.stats.flatten()

    def test_every_checkpoint_resumes_to_same_state(self):
        base = _scripted_machine(2, period=32)
        end = base.run()
        final = machine_fingerprint(base)
        anchors = [c for c in base.checkpoint_recorder.checkpoints
                   if c.cycle < end]
        assert len(anchors) >= 3
        for ckpt in anchors:
            fresh = _scripted_machine(2)
            ckpt.restore_into(fresh)
            fresh.resume()
            assert machine_fingerprint(fresh) == final, (
                f"divergence resuming from cycle {ckpt.cycle}")

    def test_payload_layers_match_not_just_digest(self):
        base = _scripted_machine(2)
        base.run()
        ckpt = base.checkpoint_recorder.checkpoints[0]
        fresh = _scripted_machine(2)
        ckpt.restore_into(fresh)
        fresh.resume()
        a, b = fingerprint_payload(base), fingerprint_payload(fresh)
        assert a["stats"] == b["stats"]
        assert a["memory"] == b["memory"]
        assert a["caches"] == b["caches"]

    def test_restore_verify_detects_tampered_blob(self):
        base = _scripted_machine(2)
        base.run()
        ckpt = base.checkpoint_recorder.checkpoints[-1]

        def bump_first_counter(group) -> bool:
            for key, val in group["values"].items():
                if isinstance(val, (int, float)) and val:
                    group["values"][key] = val + 1
                    return True
            return any(bump_first_counter(kid)
                       for kid in group["children"].values())

        assert bump_first_counter(ckpt.blob["stats"])
        fresh = _scripted_machine(2)
        with pytest.raises(ValueError, match="fingerprint"):
            ckpt.restore_into(fresh, verify=True)

    def test_shape_mismatch_fails_loudly(self):
        base = _scripted_machine(2)
        base.run()
        ckpt = base.checkpoint_recorder.latest()
        with pytest.raises(ValueError, match="L1s|cores"):
            ckpt.restore_into(_scripted_machine(4))


class TestSafePoints:
    def test_untagged_event_blocks_capture(self):
        m = build_machine(2)
        m.engine.schedule(3, lambda: None)
        with pytest.raises(CheckpointUnsupported, match="untagged"):
            MachineCheckpoint.capture(m)

    def test_engine_snapshot_rejects_anonymous_closures(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        assert not eng.all_tagged()
        with pytest.raises(CheckpointUnsupported):
            eng.snapshot()

    def test_stale_event_restore_rejected(self):
        """Satellite regression: a blob whose event predates its clock
        must fail deterministically, never replay into the past."""
        eng = Engine()
        blob = {"now": 100, "seq": 7, "events_executed": 0,
                "events": [(40, 1, ("monitor",))]}
        with pytest.raises(ValueError, match="past"):
            eng.restore(blob, lambda tag: (lambda: None))
        # the failed restore must not have adopted the stale clock
        assert eng.now == 0 and eng.pending() == 0

    def test_engine_queue_roundtrip_preserves_order(self):
        eng = Engine()
        fired: list[str] = []
        eng.schedule_tagged(5, lambda: fired.append("b"), ("tag_b",))
        eng.schedule_tagged(2, lambda: fired.append("a"), ("tag_a",))
        blob = eng.snapshot()

        eng2 = Engine()
        eng2.restore(blob, lambda tag: (lambda: fired.append(tag[0])))
        eng2.run()
        assert fired == ["tag_a", "tag_b"]
        assert eng2.now == 5


class TestRecorder:
    def test_latest_before_is_strict(self):
        rec = CheckpointRecorder(10)
        for cyc in (10, 20, 30):
            rec.checkpoints.append(
                MachineCheckpoint(cycle=cyc, fingerprint="x", blob={}))
        assert rec.latest_before(25).cycle == 20
        assert rec.latest_before(20).cycle == 10
        assert rec.latest_before(10) is None
        assert rec.latest().cycle == 30

    def test_max_keep_evicts_oldest(self):
        m = _scripted_machine(2, period=32, max_keep=2)
        m.run()
        rec = m.checkpoint_recorder
        assert 1 <= len(rec) <= 2
        cycles = [c.cycle for c in rec.checkpoints]
        assert cycles == sorted(cycles)

    def test_growth_widens_the_window(self):
        m = _scripted_machine(2, period=16, growth=4, rounds=64)
        end = m.run()
        rec = m.checkpoint_recorder
        assert end > 16 * 4  # long enough for the window to adapt
        assert rec.period > 16  # adapted upward as the run got longer
        # the window tracks the clock at the *last capture*
        assert rec.period == max(16, rec.latest().cycle // 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointRecorder(0)
        with pytest.raises(ValueError):
            CheckpointRecorder(10, max_keep=0)
        with pytest.raises(ValueError):
            CheckpointRecorder(10, growth=-1)

    def test_chunked_drain_matches_plain_run(self):
        """The recorder's windowed drain must not perturb the sim: same
        final state as the same machine run without any recorder."""
        plain = _scripted_machine(2, period=None)
        end_plain = plain.run()
        for period in (17, 64, 501):
            chunked = _scripted_machine(2, period=period)
            assert chunked.run() == end_plain
            assert (machine_fingerprint(chunked)
                    == machine_fingerprint(plain))


class TestErrorCheckpoints:
    def test_simulation_error_carries_restorable_checkpoint(self):
        m = build_machine(2)
        m.checkpoint_recorder = CheckpointRecorder(32)
        bar = m.barrier(2)

        def stuck():
            yield Compute(1)
            yield BarrierWait(bar)

        cache = ProgramCache()
        m.add_thread(0, ProgramSpec(stuck, key="stuck", cache=cache))
        m.add_thread(1, ProgramSpec(_factory(1, rounds=12),
                                    key="worker", cache=cache))
        with pytest.raises(SimulationError) as info:
            m.run()
        ckpt = info.value.checkpoint
        assert ckpt is not None
        assert ckpt.cycle <= m.engine.now

    def test_error_without_recorder_has_no_checkpoint(self):
        m = build_machine(2)
        bar = m.barrier(2)

        def stuck():
            yield BarrierWait(bar)

        m.add_thread(0, stuck())
        m.add_thread(1, _factory(1, rounds=4)())
        with pytest.raises(SimulationError) as info:
            m.run()
        assert info.value.checkpoint is None


class TestWorkloadMatrix:
    """Satellite (c): the round trip holds for *real* experiment
    machines, not just scripted ones — across coherence protocols and
    NoC topologies, the restored run's stats, fingerprint, and summary
    row match the uninterrupted run bit for bit."""

    @staticmethod
    def _cfg(protocol, topology):
        from dataclasses import replace
        cfg = experiment_config(
            enabled=protocol != "mesi", d_distance=4, num_cores=4,
            protocol=None if protocol == "mesi" else protocol,
            topology=topology)
        return replace(cfg, verify=replace(cfg.verify,
                                           checkpoint_period=150))

    @staticmethod
    def _run(workload_name, cfg):
        w = registry_create(workload_name, num_threads=4, seed=11,
                            n_points=512)
        machine = w.prepare(cfg)
        end = machine.run()
        return w, machine, end

    @pytest.mark.parametrize("protocol",
                             ["mesi", "ghostwriter", "self-invalidate"])
    @pytest.mark.parametrize("topology", [None, "chiplet"])
    def test_roundtrip_matrix(self, protocol, topology):
        cfg = self._cfg(protocol, topology)
        base_w, base, end = self._run("bad_dot_product", cfg)
        base_row = row_from_result(
            "bad_dot_product", 4, WorkloadResult(base_w, base, end), cfg)
        mids = [c for c in base.checkpoint_recorder.checkpoints
                if 0 < c.cycle < end]
        assert mids, "no mid-run safe point in this cell"
        ckpt = mids[len(mids) // 2]

        fresh_w, = (registry_create("bad_dot_product", num_threads=4,
                                    seed=11, n_points=512),)
        fresh = fresh_w.prepare(cfg)
        ckpt.restore_into(fresh, verify=True)
        end2 = fresh.resume()
        assert end2 == end
        assert machine_fingerprint(fresh) == machine_fingerprint(base)
        assert fresh.stats.flatten() == base.stats.flatten()
        row2 = row_from_result(
            "bad_dot_product", 4, WorkloadResult(fresh_w, fresh, end2), cfg)
        assert dataclasses.asdict(row2) == dataclasses.asdict(base_row)


class TestCli:
    def test_dump_and_reload(self, tmp_path, capsys):
        from repro.sim.state import main
        path = tmp_path / "ckpt.npz"
        rc = main(["--workload", "bad_dot_product", "--dump-checkpoint",
                   str(path), "--num-threads", "4", "--scale", "1.0",
                   "--checkpoint-period", "150"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoint @ cycle" in out
        loaded = MachineCheckpoint.load(path)
        assert loaded.cycle > 0 and loaded.fingerprint


class TestPersistence:
    @pytest.mark.parametrize("name", ["ckpt.pkl", "ckpt.npz"])
    def test_save_load_roundtrip(self, tmp_path, name):
        base = _scripted_machine(2)
        end = base.run()
        ckpt = base.checkpoint_recorder.checkpoints[0]
        path = tmp_path / name
        ckpt.save(path)
        loaded = MachineCheckpoint.load(path)
        assert loaded.cycle == ckpt.cycle
        assert loaded.fingerprint == ckpt.fingerprint
        fresh = _scripted_machine(2)
        loaded.restore_into(fresh, verify=True)
        assert fresh.resume() == end
        assert machine_fingerprint(fresh) == machine_fingerprint(base)


@settings(max_examples=6, deadline=None)
@given(data=st.data(),
       salt=st.integers(0, 255),
       period=st.integers(16, 200))
def test_fingerprint_property_random_anchor(data, salt, period):
    """Property: restoring from *any* kept checkpoint of a randomized
    run and resuming reproduces the uninterrupted run's fingerprint."""
    base = _scripted_machine(2, period=period, salt=salt, rounds=12)
    end = base.run()
    final = machine_fingerprint(base)
    anchors = base.checkpoint_recorder.checkpoints
    if not anchors:
        return
    k = data.draw(st.integers(0, len(anchors) - 1))
    fresh = _scripted_machine(2, salt=salt, rounds=12)
    anchors[k].restore_into(fresh)
    fresh.resume()
    assert machine_fingerprint(fresh) == final
    assert fresh.engine.now == end
