"""Fork-at-divergence batch peeling (harness.batch + sim.state).

Peeled lanes become *forked representatives*: they resume from the
previous representative's last safe-point checkpoint before the first
divergent decision instead of re-simulating from cycle 0.  The contract
under test is the batch backend's only promise — rows bit-identical to
serial execution — plus the accounting (``BatchReport``) that proves
the shortcut actually ran, and every fallback path that turns a missed
fork back into a plain serial representative.

Real workloads only quiesce at phase boundaries, so the probe workload
here is built to fork deterministically at tiny scale: a pure-compute
warm-up (regular safe points, no comparator decisions) followed by a
false-sharing accumulate phase (d-sensitive decisions, i.e. the
divergence) — anchors are guaranteed to predate the divergence.  The
warm-up is long enough (relative to the whole run) that the anchor
clears the ``FORK_MIN_FRACTION`` benefit gate.
"""
import dataclasses
from functools import partial

import pytest

from repro.harness import batch as hb
from repro.harness.parallel import GridPoint, _run_point
from repro.isa.instructions import (
    ApproxBegin, ApproxEnd, BarrierWait, Compute, FlushApprox, SetAprx,
)
from repro.sim.batch import Lane
from repro.workloads import registry
from repro.workloads.base import Workload

D_VALUES = (1, 2, 4, 8, 16)


class CkptProbe(Workload):
    """Compute warm-up (safe points), then a packed-accumulator
    false-sharing phase (late, d-sensitive divergence)."""

    name = "ckpt_probe"
    suite = "micro"
    domain = "Test"
    error_metric = "MPE"

    def __init__(self, num_threads, d_distance=4, seed=12345, scale=1.0,
                 n_points=256, warmup=40):
        super().__init__(num_threads, d_distance, seed, scale)
        self.n_points = self.scaled(n_points, minimum=num_threads)
        self.warmup = warmup
        self.input_desc = f"{self.n_points} ints, warmup {warmup}"
        self.vals = self.rng.integers(0, 256, self.n_points)
        self._collected = None

    def reference_output(self):
        return [int(self.vals[c.start:c.stop].sum())
                for c in self.chunks(self.n_points)]

    def collect_output(self):
        if self._collected is None:
            raise RuntimeError("run() has not completed")
        return self._collected

    def build(self, machine):
        mem = self.make_memory(machine)
        a = mem.alloc_i32(self.n_points, "a", pad_to_block=True,
                          init=self.vals.tolist())
        mem.block_gap()
        total = mem.alloc_i32(self.num_threads, "total",
                              init=[0] * self.num_threads)
        barrier = machine.barrier(self.num_threads)
        collected = [0] * self.num_threads
        self._collected = collected
        chunks = self.chunks(self.n_points)

        def worker(tid):
            yield SetAprx(self.d_distance)
            for _ in range(self.warmup):
                yield Compute(50)
            yield ApproxBegin((total.byte_range(),))
            for i in chunks[tid]:
                av = yield from a.load(i)
                yield Compute(2)
                yield from total.add(tid, av)
            yield ApproxEnd((total.byte_range(),))
            yield BarrierWait(barrier)
            if tid == 0:
                yield FlushApprox()
                for t in range(self.num_threads):
                    collected[t] = yield from total.load(t)

        for tid in range(self.num_threads):
            self.bind_program(machine, tid, partial(worker, tid))


@pytest.fixture(autouse=True)
def _register(monkeypatch):
    monkeypatch.setitem(registry.ALL_WORKLOADS, "ckpt_probe", CkptProbe)


def _points(**extra):
    return [GridPoint("ckpt_probe",
                      dict(d_distance=d, seed=7, num_threads=4, **extra))
            for d in D_VALUES]


def _rows(outcomes):
    rows = [(o.value if hasattr(o, "value") else o) for o in outcomes]
    assert all(not isinstance(r, hb.GridFailure) for r in rows), rows
    return [dataclasses.asdict(r) for r in rows]


def test_forked_reps_bit_identical_to_serial():
    pts = _points()
    rpt = hb.BatchReport()
    res = hb.batch_fan_out(pts, report=rpt)
    assert rpt.forked >= 2, rpt
    assert rpt.fork_verified == 1, rpt  # first fork serially cross-checked
    assert rpt.reps == 1, rpt           # only one full representative ran
    assert rpt.degraded == 0 and not rpt.divergences, rpt
    assert _rows(res) == _rows([_run_point(p) for p in pts])


def test_no_early_anchor_falls_back_to_serial():
    # warmup=0 removes the quiescent prelude: the first divergent
    # decision predates any safe-point checkpoint, so every fork is
    # vetoed and peeling seeds fresh serial representatives
    pts = _points(warmup=0)
    rpt = hb.BatchReport()
    res = hb.batch_fan_out(pts, report=rpt)
    assert rpt.forked == 0, rpt
    assert rpt.reps >= 2, rpt
    assert _rows(res) == _rows([_run_point(p) for p in pts])


def test_shallow_anchor_gated_by_min_fraction():
    # warmup=10 leaves the last safe point at ~9% of the run: resuming
    # there saves almost nothing, so the benefit gate must veto the
    # fork (this is what keeps the sweep benches at baseline speed)
    pts = _points(warmup=10)
    rpt = hb.BatchReport()
    res = hb.batch_fan_out(pts, report=rpt)
    assert rpt.forked == 0, rpt
    assert _rows(res) == _rows([_run_point(p) for p in pts])


def test_zero_period_disables_forking(monkeypatch):
    monkeypatch.setattr(hb, "FORK_CHECKPOINT_PERIOD", 0)
    pts = _points()
    rpt = hb.BatchReport()
    res = hb.batch_fan_out(pts, report=rpt)
    assert rpt.forked == 0 and rpt.fork_verified == 0, rpt
    assert _rows(res) == _rows([_run_point(p) for p in pts])


def test_fork_mismatch_degrades_group_to_serial(monkeypatch):
    """Trust-but-verify backstop: a forked representative whose row
    disagrees with the serial interpreter is discarded, the serial row
    is emitted, and no later lane trusts a fork."""
    orig = hb._fork_lane

    def corrupted(point, rep_lane, out, lane):
        forked = orig(point, rep_lane, out, lane)
        if forked is not None:
            forked.result.cycles += 1  # any row-visible corruption
        return forked

    monkeypatch.setattr(hb, "_fork_lane", corrupted)
    pts = _points()
    rpt = hb.BatchReport()
    res = hb.batch_fan_out(pts, report=rpt)
    assert rpt.forked == 0, rpt
    assert any("fork cross-check mismatch" in why
               for _, why in rpt.divergences), rpt
    # results still exactly serial — the backstop never ships bad rows
    assert _rows(res) == _rows([_run_point(p) for p in pts])


def test_unstamped_record_vetoes_fork():
    """A probe record without a cycle stamp cannot be placed relative
    to the anchor: _fork_lane must refuse rather than guess."""
    point = GridPoint("ckpt_probe",
                      dict(d_distance=1, seed=7, num_threads=4))
    out = hb._rep_run(point)
    rep_lane = Lane(d=1, gi=1024, payload=0)
    lane = Lane(d=4, gi=1024, payload=1)
    lane_point = GridPoint("ckpt_probe",
                           dict(d_distance=4, seed=7, num_threads=4))
    assert hb._fork_lane(lane_point, rep_lane, out, lane) is not None

    stripped = dataclasses.replace(out, records=[r[:5] for r in out.records])
    assert hb._fork_lane(lane_point, rep_lane, out=stripped,
                         lane=lane) is None

    unstamped = dataclasses.replace(
        out, records=[(r[0], r[1], r[2], r[3], r[4], -1)
                      for r in out.records])
    assert hb._fork_lane(lane_point, rep_lane, out=unstamped,
                         lane=lane) is None


def test_forked_rep_anchors_further_forks():
    """Chained forks: the forked representative's grafted anchor (plus
    its own recorder) lets the *next* peeled lane fork from it."""
    pts = _points()
    rpt = hb.BatchReport()
    hb.batch_fan_out(pts, report=rpt)
    # one full rep, every later equivalence class forked off the chain
    assert rpt.reps == 1, rpt
    assert rpt.forked + rpt.shared + rpt.fork_verified + rpt.reps \
        >= len(pts) - rpt.degraded, rpt
