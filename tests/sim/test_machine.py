"""Tests for machine assembly and its invariant checkers."""
import pytest

from repro.coherence.messages import ProtocolError
from repro.common.config import small_config
from repro.isa.instructions import Compute, Load, Store
from repro.sim.engine import SimulationError
from repro.sim.machine import Machine

from tests.conftest import build_machine, run_scripts

BLK = 0x4000


class TestAssembly:
    def test_component_counts(self):
        m = build_machine(4)
        assert len(m.l1s) == 4
        assert len(m.l2_slices) == 4
        assert set(m.agents) == set(m.cfg.noc.directory_nodes)
        assert len(m.cores) == 4

    def test_paper_machine_assembles(self):
        from repro.common.config import default_config
        m = Machine(default_config())
        assert len(m.l1s) == 24
        assert len(m.agents) == 4

    def test_thread_binding_validated(self):
        m = build_machine(2)
        with pytest.raises(ValueError):
            m.add_thread(5, iter(()))

    def test_run_requires_threads(self):
        m = build_machine(2)
        with pytest.raises(SimulationError):
            m.run()

    def test_run_once_only(self):
        m = build_machine(1)

        def prog():
            yield Compute(1)

        m.add_thread(0, prog())
        m.run()
        with pytest.raises(SimulationError):
            m.run()

    def test_unfinished_core_detected(self):
        m = build_machine(2)
        b = m.barrier(2)

        def waits_forever():
            from repro.isa.instructions import BarrierWait
            yield BarrierWait(b)

        def finishes():
            yield Compute(1)

        m.add_thread(0, waits_forever())
        m.add_thread(1, finishes())
        with pytest.raises(SimulationError):
            m.run()


class TestInvariantChecker:
    def test_passes_after_clean_run(self):
        m = build_machine(2)

        def a():
            yield Store(BLK, 1)
            yield Compute(300)

        def b():
            yield Compute(100)
            yield Load(BLK)

        run_scripts(m, a(), b())
        m.check_coherence_invariants()

    def test_detects_forged_double_owner(self):
        m = build_machine(2)

        def a():
            yield Store(BLK, 1)

        def b():
            yield Compute(200)
            yield Store(BLK + 0x1000, 1)

        run_scripts(m, a(), b())
        # forge a second M copy of BLK in core 1's cache
        from repro.common.types import CoherenceState as CS
        line = m.l1s[1].array.find_free_or_victim(BLK, lambda l: True)
        m.l1s[1].array.install(line, BLK)
        line.words = [0] * 16
        line.state = CS.M
        with pytest.raises(ProtocolError):
            m.check_coherence_invariants()

    def test_detects_untracked_sharer(self):
        m = build_machine(2)

        def a():
            yield Compute(5)

        def b():
            yield Compute(5)

        run_scripts(m, a(), b())
        from repro.common.types import CoherenceState as CS
        line = m.l1s[0].array.find_free_or_victim(BLK, lambda l: True)
        m.l1s[0].array.install(line, BLK)
        line.words = [0] * 16
        line.state = CS.S
        with pytest.raises(ProtocolError):
            m.check_coherence_invariants()

    def test_gi_copies_exempt_from_directory_agreement(self):
        """GI blocks are invisible to the directory by design: the checker
        must not flag them."""
        from repro.isa.instructions import Scribble, SetAprx

        m = build_machine(2, d_distance=4, gi_timeout=100000)

        def a():
            yield SetAprx(4)
            yield Store(BLK, 3)
            yield Compute(300)
            yield Scribble(BLK, 5)   # -> GI
            yield Compute(50)

        def b():
            yield SetAprx(4)
            yield Compute(100)
            yield Store(BLK + 4, 1)
            yield Compute(600)

        for cid, prog in enumerate((a(), b())):
            m.add_thread(cid, prog)
        # run only until cores finish; leave the GI timeout pending so the
        # GI state is still live when we check
        for core in m.cores:
            core.start()
        m._ran = True
        m.engine.run_until(3000)
        from repro.common.types import CoherenceState as CS
        assert m.l1s[0].state_of(BLK) is CS.GI
        m.check_coherence_invariants()  # must not raise
