"""Cold fig12 run through the batch backend vs a committed serial
fixture (CI's batch-equivalence job).

The fixture under ``tests/sim/fixtures/`` holds the full row set of the
fig12 GI-timeout sweep executed by the *serial* backend at pinned
parameters.  The gated test re-runs the identical grid cold through
``RunOptions(backend="batch")`` in a fresh process and compares **every
serialized row field** — a divergence anywhere (stats, energy, traffic,
error) fails CI.  Gated behind ``GHOSTWRITER_FIG12_FIXTURE=1`` because
it re-simulates the whole sweep; the tier-1 suite already covers
batch/serial equivalence on smaller grids
(tests/sim/test_batch_equivalence.py).

Regenerate the fixture (serial backend, by construction) after a
legitimate simulator-behavior change::

    PYTHONPATH=src:. python tests/sim/test_fig12_fixture.py regen
"""
import json
import os
from dataclasses import asdict
from pathlib import Path

import pytest

FIXTURE = Path(__file__).parent / "fixtures" / "fig12_serial.json"

#: pinned fig12 parameters (smaller than the paper figure's defaults so
#: the CI job stays fast, but the same grid shape)
TIMEOUTS = (128, 512, 1024)
THREADS = 4
N_POINTS = 1024
SEED = 12345


def _points(options=None):
    from repro.harness.parallel import GridPoint

    extra = {"options": options} if options is not None else {}
    return [
        GridPoint("bad_dot_product",
                  dict(d_distance=4, num_threads=THREADS, seed=SEED,
                       gi_timeout=timeout, n_points=N_POINTS,
                       max_value=3, **extra),
                  label=f"gi_timeout={timeout}")
        for timeout in TIMEOUTS
    ]


def _row_to_json(row) -> dict:
    """Every comparable RunRow field, JSON-stable (obs is run-local and
    excluded from RunRow comparison, so it is not serialized)."""
    data = asdict(row)
    data.pop("obs", None)
    data["traffic"] = {k.name: v for k, v in row.traffic.items()}
    return data


def _run(backend: str) -> list[dict]:
    from repro.harness.options import RunOptions
    from repro.harness.parallel import run_grid

    rows = run_grid(_points(), options=RunOptions(backend=backend))
    return [_row_to_json(row) for row in rows]


@pytest.mark.skipif(
    os.environ.get("GHOSTWRITER_FIG12_FIXTURE") != "1",
    reason="full fig12 re-simulation; set GHOSTWRITER_FIG12_FIXTURE=1",
)
def test_cold_batch_fig12_matches_committed_serial_rows():
    committed = json.loads(FIXTURE.read_text())
    batch = _run("batch")
    assert len(batch) == len(committed["rows"])
    for i, (got, want) in enumerate(zip(batch, committed["rows"])):
        assert got == want, (
            f"fig12 row {i} (gi_timeout={TIMEOUTS[i]}) diverged from "
            f"the committed serial fixture"
        )


def test_fixture_is_committed_and_matches_parameters():
    """Cheap tier-1 guard: the fixture exists and was generated at the
    parameters this test pins (catches silent drift after a param
    edit without a regen)."""
    committed = json.loads(FIXTURE.read_text())
    assert committed["params"] == {
        "timeouts": list(TIMEOUTS), "threads": THREADS,
        "n_points": N_POINTS, "seed": SEED,
    }
    assert len(committed["rows"]) == len(TIMEOUTS)
    for row, timeout in zip(committed["rows"], TIMEOUTS):
        assert row["workload"] == "bad_dot_product"


def _regen() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "params": {"timeouts": list(TIMEOUTS), "threads": THREADS,
                   "n_points": N_POINTS, "seed": SEED},
        "rows": _run("serial"),
    }
    FIXTURE.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {FIXTURE} ({len(payload['rows'])} rows)")


if __name__ == "__main__":
    import sys

    if sys.argv[1:] == ["regen"]:
        _regen()
    else:
        raise SystemExit(f"usage: {sys.argv[0]} regen")
