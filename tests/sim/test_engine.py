"""Unit tests for the event engine."""
import pytest

from repro.sim.engine import Engine, SimulationError, SimulationTimeout


class TestScheduling:
    def test_events_fire_in_time_order(self):
        e = Engine()
        order = []
        e.schedule(10, lambda: order.append("b"))
        e.schedule(5, lambda: order.append("a"))
        e.schedule(20, lambda: order.append("c"))
        e.run()
        assert order == ["a", "b", "c"]

    def test_same_cycle_fifo(self):
        e = Engine()
        order = []
        for i in range(10):
            e.schedule(7, lambda i=i: order.append(i))
        e.run()
        assert order == list(range(10))

    def test_now_tracks_cycle(self):
        e = Engine()
        seen = []
        e.schedule(3, lambda: seen.append(e.now))
        e.schedule(9, lambda: seen.append(e.now))
        end = e.run()
        assert seen == [3, 9]
        assert end == 9

    def test_callbacks_can_schedule(self):
        e = Engine()
        seen = []

        def first():
            seen.append(e.now)
            e.schedule(5, lambda: seen.append(e.now))

        e.schedule(1, first)
        e.run()
        assert seen == [1, 6]

    def test_negative_delay_rejected(self):
        e = Engine()
        with pytest.raises(ValueError):
            e.schedule(-1, lambda: None)

    def test_schedule_at_absolute(self):
        e = Engine()
        seen = []
        e.schedule(2, lambda: e.schedule_at(10, lambda: seen.append(e.now)))
        e.run()
        assert seen == [10]

    def test_schedule_at_now_is_allowed(self):
        e = Engine()
        seen = []
        e.schedule(5, lambda: e.schedule_at(5, lambda: seen.append(e.now)))
        e.run()
        assert seen == [5]

    def test_schedule_at_past_cycle_rejected_clearly(self):
        e = Engine()
        captured = []

        def late():
            try:
                e.schedule_at(3, lambda: None)
            except ValueError as exc:
                captured.append(str(exc))

        e.schedule(10, late)
        e.run()
        [msg] = captured
        # names the absolute cycle and the current clock, not a
        # confusing negative delay
        assert "absolute cycle 3" in msg
        assert "current cycle is 10" in msg
        assert "-" not in msg.split("cycle")[0]


class TestRunControl:
    def test_timeout_raises(self):
        e = Engine()

        def forever():
            e.schedule(1, forever)

        e.schedule(0, forever)
        with pytest.raises(SimulationTimeout):
            e.run(max_cycles=100)

    def test_max_events(self):
        e = Engine()

        def forever():
            e.schedule(0, forever)

        e.schedule(0, forever)
        with pytest.raises(SimulationTimeout):
            e.run(max_events=50)

    def test_not_reentrant(self):
        e = Engine()

        def bad():
            e.run()

        e.schedule(0, bad)
        with pytest.raises(SimulationError):
            e.run()

    def test_run_until_stops_midway(self):
        e = Engine()
        seen = []
        for t in (1, 5, 9):
            e.schedule(t, lambda t=t: seen.append(t))
        e.run_until(5)
        assert seen == [1, 5]
        assert e.pending() == 1
        e.run()
        assert seen == [1, 5, 9]

    def test_run_until_advances_clock_when_idle(self):
        e = Engine()
        e.run_until(42)
        assert e.now == 42

    def test_run_until_batched_same_cycle_dispatch_sees_new_events(self):
        """run_until shares run()'s batched dispatch: zero-delay events a
        same-cycle callback adds fire within the same cycle (not left
        queued behind the stop cycle)."""
        e = Engine()
        order = []

        def first():
            order.append(("first", e.now))
            e.schedule(0, lambda: order.append(("chained", e.now)))

        e.schedule(4, first)
        e.schedule(4, lambda: order.append(("second", e.now)))
        e.run_until(4)
        assert order == [("first", 4), ("second", 4), ("chained", 4)]
        assert e.pending() == 0

    def test_run_until_counts_executed_events(self):
        e = Engine()
        for i in range(5):
            e.schedule(i % 2, lambda: None)
        e.run_until(0)
        assert e.events_executed == 3
        e.run_until(1)
        assert e.events_executed == 5

    def test_run_until_max_events_guards_same_cycle_spin(self):
        """A zero-delay self-rescheduling loop trips the max_events
        budget with the run()-style diagnostic (timeout_hook included)."""
        e = Engine()
        e.timeout_hook = lambda: "hook-context"

        def forever():
            e.schedule(0, forever)

        e.schedule(3, forever)
        with pytest.raises(SimulationTimeout) as exc:
            e.run_until(10, max_events=25)
        assert "run_until exceeded 25 events" in str(exc.value)
        assert "hook-context" in str(exc.value)
        assert e.events_executed == 26
        assert e.now == 3  # never escaped the spinning cycle

    def test_run_until_not_reentrant(self):
        e = Engine()

        def bad():
            e.run_until(99)

        e.schedule(0, bad)
        with pytest.raises(SimulationError):
            e.run_until(5)

    def test_events_executed_counts_everything(self):
        e = Engine()
        for i in range(7):
            e.schedule(i % 3, lambda: None)
        e.run()
        assert e.events_executed == 7

    def test_batched_same_cycle_dispatch_sees_new_events(self):
        """Zero-delay events added by a same-cycle callback fire within
        the same cycle, after already-queued same-cycle events."""
        e = Engine()
        order = []

        def first():
            order.append(("first", e.now))
            e.schedule(0, lambda: order.append(("chained", e.now)))

        e.schedule(4, first)
        e.schedule(4, lambda: order.append(("second", e.now)))
        e.run()
        assert order == [("first", 4), ("second", 4), ("chained", 4)]

    def test_max_events_counts_across_batches(self):
        e = Engine()

        def forever():
            e.schedule(1, forever)

        e.schedule(0, forever)
        with pytest.raises(SimulationTimeout) as exc:
            e.run(max_events=10)
        assert "exceeded 10 events" in str(exc.value)
        assert e.events_executed == 11

    def test_determinism(self):
        def trace():
            e = Engine()
            out = []
            for t in (4, 4, 2, 8, 2):
                e.schedule(t, lambda t=t: out.append((e.now, t)))
            e.run()
            return out

        assert trace() == trace()
