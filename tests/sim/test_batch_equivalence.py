"""Batch/serial equivalence across the whole workload registry.

The correctness bar for the lockstep batch backend (ISSUE 7): for every
registered workload, every registered protocol, and several seeds, a
sweep grid executed through ``RunOptions(backend="batch")`` must be
**bit-identical** to the serial backend — the full frozen ``RunRow``
(stats snapshot, cycles, energy, error) for every point, the store keys
the rows would commit under, and the observability timelines of traced
points (which the batch backend routes through the serial interpreter).
By transitivity with tests/harness/test_parallel.py's serial-vs-jobs
guards, the same holds against ``--jobs N``; one direct jobs=2 vs batch
comparison pins the triangle shut.

This mirrors tests/workloads/test_compiled_equivalence.py one layer up:
that suite proves the columnar interpreter preserves single-run
behavior; this one proves the lane-sharing engine preserves whole-sweep
behavior.
"""
import pytest

from repro.harness.batch import BatchReport, batch_fan_out, group_key
from repro.harness.options import RunOptions
from repro.harness.parallel import GridPoint, run_grid
from repro.workloads.registry import (
    ALL_WORKLOADS, MICROBENCHMARKS, PROGRAM_CACHE,
)

THREADS = 4
SCALE = 0.05
SEEDS = (7, 8, 9)
BATCH = RunOptions(backend="batch")

pytestmark = pytest.mark.usefixtures("clean_cache")


@pytest.fixture
def clean_cache():
    PROGRAM_CACHE.clear()
    yield
    PROGRAM_CACHE.clear()


def _points(name, *, ds=(0, 2, 8), seeds=SEEDS, gis=(1024,),
            protocol=None, options=None):
    """A d x gi x seed sweep grid over one workload."""
    extra = []
    if protocol is not None:
        extra.append(("protocol", protocol))
    if options is not None:
        extra.append(("options", options))
    if name in MICROBENCHMARKS:
        size = [("n_points", 96), ("max_value", 7)]
    else:
        size = [("scale", SCALE)]
    return [
        GridPoint(name, tuple([("d_distance", d), ("gi_timeout", gi),
                               ("num_threads", THREADS), ("seed", seed)]
                              + size + extra))
        for seed in seeds for d in ds for gi in gis
    ]


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_batch_matches_serial_per_workload(name):
    """Every workload, d-swept across three seeds: batch rows byte-equal
    to serial rows, and the batch executor actually batched (every
    enabled lane entered a lockstep group)."""
    points = _points(name)
    serial = run_grid(points)
    report = BatchReport()
    batch = batch_fan_out(points, report=report)
    assert batch == serial
    # d=0 points are singleton groups (one per seed) and run serially;
    # the d>0 lanes all enter lockstep groups
    assert report.lanes == len(SEEDS) * 2
    assert report.serial == len(SEEDS)
    assert report.degraded == 0 and report.divergences == []


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
@pytest.mark.parametrize("protocol", [
    "mesi", "moesi", "ghostwriter", "ghostwriter-moesi", "gw-gs-only",
    "gw-gi-only", "self-invalidate", "update-hybrid",
])
@pytest.mark.parametrize("name", ["histogram", "bad_dot_product"])
def test_batch_matches_serial_per_protocol(name, protocol):
    """Every registered protocol variant: the scribble next-state tables
    differ per protocol, so sharing decisions replay different policy
    paths — rows must still be byte-equal."""
    points = _points(name, ds=(2, 8), protocol=protocol)
    assert run_grid(points, options=BATCH) == run_grid(points)


def test_batch_matches_serial_gi_sweep():
    """A GI-timeout sweep: lanes share only when the representative
    provably never armed the flash timer; either way rows match."""
    points = _points("bad_dot_product", ds=(4,), seeds=(7, 8),
                     gis=(64, 256, 1024, 4096))
    assert run_grid(points, options=BATCH) == run_grid(points)
    points = _points("histogram", ds=(4,), seeds=(7,),
                     gis=(64, 256, 1024, 4096))
    assert run_grid(points, options=BATCH) == run_grid(points)


def test_batch_matches_jobs2():
    """Close the serial/jobs/batch triangle directly."""
    points = _points("bad_dot_product", ds=(0, 1, 4, 8))
    assert run_grid(points, options=BATCH) == run_grid(points, jobs=2)


def test_store_keys_identical_across_backends(tmp_path):
    """The backend is an execution knob, not an identity knob: rows
    computed by either backend commit under the same store keys, so a
    store written by one backend serves the other."""
    from repro.store.keys import options_fingerprint

    assert (options_fingerprint(BATCH)
            == options_fingerprint(RunOptions()))

    db = str(tmp_path / "rows.db")
    points = _points("histogram", ds=(0, 2, 8), seeds=(7,))
    first = run_grid(points, options=RunOptions(store=db, backend="batch"))
    served = run_grid(points, options=RunOptions(store=db))
    assert served == first
    from repro.store import open_store
    with open_store(db) as store:
        assert len(store) == len(points)


def test_traced_points_fall_back_to_serial_with_identical_obs():
    """Tracing captures are run-local, so traced points never batch —
    and their rows + observability payloads are byte-equal to serial."""
    opts = RunOptions(trace_events=True, timeline_interval=512)
    traced = RunOptions(trace_events=True, timeline_interval=512,
                        backend="batch")
    points = _points("bad_dot_product", ds=(2, 8), seeds=(7,),
                     options=None)
    assert all(group_key(p) is not None for p in points)
    points_traced = _points("bad_dot_product", ds=(2, 8), seeds=(7,),
                            options=opts)
    assert all(group_key(p) is None for p in points_traced)

    serial_rows = run_grid(points_traced, options=opts)
    batch_rows = run_grid(points_traced, options=traced)
    for s, b in zip(serial_rows, batch_rows):
        assert s == b
        assert s.obs is not None and b.obs is not None
        assert s.obs.events == b.obs.events
        assert s.obs.timeline == b.obs.timeline
