"""Lane peeling under injected divergence (satellite of ISSUE 7).

Property tests over the lockstep engine's core invariant: a lane the
:class:`~repro.sim.batch.DecisionTrace` predicts to share really would
have made every comparator decision the representative made, and every
lane the predicate rejects *peels* — drops back to its own serial run —
so surviving lanes are always bit-identical to never-batched runs.
Divergence is injected three ways: random decision traces whose
alternative thresholds genuinely flip decisions, GI-timeout flashes
(sweeping ``gi_timeout`` on a workload that arms the flash timer), and
seeded cache-bit-flip fault injection via :mod:`repro.faults`; a forced
cross-check mismatch exercises the trust-but-verify degradation path
end to end.
"""
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import WORD_BITS, WORD_MASK
from repro.harness.batch import BatchReport, batch_fan_out, group_key
from repro.harness.options import RunOptions
from repro.harness.parallel import GridPoint, run_grid
from repro.scribe.similarity import is_similar
from repro.sim.batch import (
    DecisionTrace, Lane, classify_divergence, gi_never_armed, run_group,
    share_split,
)

words = st.integers(min_value=0, max_value=WORD_MASK)
ds = st.integers(min_value=1, max_value=WORD_BITS)
states = st.sampled_from(["S", "I", "GS", "GI", None])


@st.composite
def traces_and_lanes(draw):
    """A synthetic decision trace (recorded under swept_d) plus
    alternative lane thresholds."""
    swept_d = draw(ds)
    n = draw(st.integers(min_value=0, max_value=24))
    records = []
    for _ in range(n):
        a, b = draw(words), draw(words)
        # mix swept-site records with hardcoded-d records the trace
        # must ignore (the substitution rule)
        p = draw(st.sampled_from([swept_d, swept_d, 4, 31]))
        records.append((a, b, p, draw(states), is_similar(a, b, p)))
    lane_ds = draw(st.lists(ds, min_size=1, max_size=6))
    return swept_d, records, lane_ds


class TestDecisionTrace:
    @given(traces_and_lanes())
    @settings(max_examples=200, deadline=None)
    def test_predictions_match_the_scalar_comparator(self, case):
        """decisions(d) is extensionally the production scalar
        comparator over the swept-site records, in order."""
        swept_d, records, lane_ds = case
        trace = DecisionTrace(records, swept_d=swept_d)
        swept = [r for r in records if r[2] == swept_d]
        assert len(trace) == len(swept)
        for d in lane_ds:
            expect = [is_similar(a, b, d) for a, b, _p, _s, _ok in swept]
            assert trace.decisions(d).tolist() == expect

    @given(traces_and_lanes())
    @settings(max_examples=200, deadline=None)
    def test_agreement_is_exact(self, case):
        """agrees(d) holds iff *every* swept decision is reproduced —
        one flipped decision must peel the lane."""
        swept_d, records, lane_ds = case
        trace = DecisionTrace(records, swept_d=swept_d)
        swept = [r for r in records if r[2] == swept_d]
        for d in lane_ds:
            flips = sum(
                is_similar(a, b, d) != ok
                for a, b, _p, _s, ok in swept
            )
            assert trace.agrees(d) == (flips == 0)
            # a genuinely divergent lane has a non-empty classification
            assert (sum(classify_divergence(trace, d).values()) == flips)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DecisionTrace([], swept_d=4, mode="fuzzy")


class TestShareSplit:
    @given(traces_and_lanes(),
           st.lists(st.integers(min_value=64, max_value=4096),
                    min_size=1, max_size=5),
           st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_partition_is_total_and_sound(self, case, gis, armed):
        swept_d, records, lane_ds = case
        trace = DecisionTrace(records, swept_d=swept_d)
        rep = Lane(d=swept_d, gi=1024, payload="rep")
        lanes = [Lane(d=d, gi=gis[i % len(gis)], payload=i)
                 for i, d in enumerate(lane_ds)]
        shared, peeled = share_split(trace, rep, lanes,
                                     rep_armed_gi=armed)
        # total partition, order-preserving within each side
        assert sorted(x.payload for x in shared + peeled) == sorted(
            x.payload for x in lanes)
        for lane in shared:
            assert lane.gi == rep.gi or not armed
            assert lane.d == rep.d or trace.agrees(lane.d)
        for lane in peeled:
            assert ((lane.gi != rep.gi and armed)
                    or (lane.d != rep.d and not trace.agrees(lane.d)))

    @given(traces_and_lanes())
    @settings(max_examples=100, deadline=None)
    def test_run_group_covers_every_lane_exactly_once(self, case):
        """Peeled lanes recurse with a fresh representative until the
        pool drains; nobody is dropped or served twice."""
        swept_d, records, lane_ds = case
        lanes = [Lane(d=d, gi=1024, payload=i)
                 for i, d in enumerate(lane_ds)]

        class Out:  # stands in for RepRun: isinstance check must fail
            pass

        seen = []
        trace = DecisionTrace(records, swept_d=swept_d)

        def run_rep(lane):
            from repro.sim.batch import RepRun

            class R:
                stats = None
            result = R()
            # reuse the same trace for every rep: d-dependent sharing
            # only — the GI rule is covered above
            rep_trace = DecisionTrace(
                [(a, b, lane.d if p == swept_d else p, s, ok)
                 for a, b, p, s, ok in records], swept_d=lane.d)
            return RepRun(result=result, cfg=None, trace=rep_trace)

        import repro.sim.batch as B
        orig = B.gi_never_armed
        B.gi_never_armed = lambda stats: True
        try:
            for rep, _out, shared in run_group(lanes, run_rep):
                seen.append(rep.payload)
                seen.extend(lane.payload for lane in shared)
        finally:
            B.gi_never_armed = orig
        assert sorted(seen) == list(range(len(lanes)))


class TestInjectedDivergence:
    def _grid(self, name, *, ds=(4,), gis=(1024,), options=None, n=96,
              protocol=None):
        extra = [("options", options)] if options is not None else []
        if protocol is not None:
            extra.append(("protocol", protocol))
        return [
            GridPoint(name, tuple([("d_distance", d), ("gi_timeout", gi),
                                   ("num_threads", 4), ("seed", 7),
                                   ("n_points", n), ("max_value", 3)]
                                  + extra))
            for d in ds for gi in gis
        ]

    def test_gi_flash_peels_but_stays_bit_identical(self):
        """Under gw-gi-only the workload arms the GI flash timer, so
        gi-swept lanes cannot share a representative that flashed —
        they peel, re-run, and the grid still matches serial row for
        row.  Under plain ghostwriter the same grid never arms the
        timer, so every gi lane shares one representative."""
        flashing = self._grid("bad_dot_product", ds=(4,),
                              gis=(16, 64, 256, 1024),
                              protocol="gw-gi-only")
        report = BatchReport()
        batch = batch_fan_out(flashing, report=report)
        assert batch == run_grid(flashing)
        assert report.reps == 4, "GI flash must peel every gi lane"
        assert report.shared == 0

        quiet = self._grid("bad_dot_product", ds=(4,),
                           gis=(16, 64, 256, 1024))
        report = BatchReport()
        batch = batch_fan_out(quiet, report=report)
        assert batch == run_grid(quiet)
        assert report.reps == 1 and report.shared == 3
        assert report.verified == 1

    def test_fault_injection_batches_bit_identically(self):
        """Seeded cache bit flips (repro.faults) perturb the very words
        the scribe compares; the decision trace records the perturbed
        reality, so sharing stays sound — and the serial cross-check
        guards the claim."""
        opts = RunOptions(fault_rate=200.0, fault_seed=99)
        points = self._grid("bad_dot_product", ds=(1, 2, 4, 8, 16),
                            options=opts)
        assert all(group_key(p) is not None for p in points)
        assert batch_fan_out(points) == run_grid(points, options=opts)

    def test_forced_cross_check_mismatch_degrades_to_serial(self,
                                                            monkeypatch):
        """Forced deopt: corrupt every non-representative shared row so
        the trust-but-verify sample trips; the whole share set must
        degrade to serial execution and the grid output must remain
        exactly the serial rows."""
        import repro.harness.batch as HB

        # a grid whose four gi lanes all share one representative
        grid = lambda: self._grid("bad_dot_product", ds=(4,),  # noqa: E731
                                  gis=(16, 64, 256, 1024))
        serial = run_grid(grid())
        real = HB._shared_row

        def corrupt(point, out):
            import dataclasses
            row = real(point, out)
            # corrupt shared lanes only: the representative rebuilds
            # its own row through the same helper, under its own gi
            if (dict(point.kwargs)["gi_timeout"]
                    != out.cfg.ghostwriter.gi_timeout):
                row = dataclasses.replace(row, cycles=-1)
            return row

        monkeypatch.setattr(HB, "_shared_row", corrupt)
        report = BatchReport()
        batch = batch_fan_out(grid(), report=report)
        assert batch == serial
        assert report.divergences, "cross-check should have tripped"
        assert report.degraded == 2   # the two lanes behind the sample
        assert report.shared == 0


class TestGroupKey:
    def test_swept_knobs_do_not_split_groups(self):
        a = GridPoint("histogram", (("d_distance", 2), ("gi_timeout", 64),
                                    ("num_threads", 4), ("seed", 7),
                                    ("scale", 0.05)))
        b = GridPoint("histogram", (("d_distance", 9), ("gi_timeout", 999),
                                    ("num_threads", 4), ("seed", 7),
                                    ("scale", 0.05)))
        assert group_key(a) == group_key(b) is not None

    def test_disabled_lanes_bucket_separately(self):
        on = GridPoint("histogram", (("d_distance", 2), ("seed", 7),
                                     ("scale", 0.05)))
        off = GridPoint("histogram", (("d_distance", 0), ("seed", 7),
                                      ("scale", 0.05)))
        assert group_key(on) != group_key(off)
        assert group_key(off) is not None

    def test_unbatchable_points_fall_back(self):
        assert group_key(GridPoint("histogram",
                                   (("d_distance", "4"),))) is None
        assert group_key(GridPoint("histogram",
                                   (("d_distance", True),))) is None
        assert group_key(GridPoint(
            "histogram", (("d_distance", 4),
                          ("fault_rate", 1.0)))) is None
        assert group_key(GridPoint(
            "histogram", (("d_distance", 4),
                          ("extras", bytearray(b"unhashable"))))) is None


def test_gi_never_armed_reads_the_flash_counters():
    from repro.harness.experiment import run_workload_result

    result, _cfg = run_workload_result("bad_dot_product", d_distance=4,
                                       num_threads=4, seed=7,
                                       gi_timeout=16, n_points=96,
                                       max_value=3, protocol="gw-gi-only")
    assert not gi_never_armed(result.stats)
    result, _cfg = run_workload_result("histogram", d_distance=4,
                                       num_threads=4, seed=7, scale=0.05)
    assert gi_never_armed(result.stats)
