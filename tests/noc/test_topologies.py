"""Conformance suite for the pluggable topology layer (repro.noc.topologies).

Covers the registry, per-topology route conformance (minimality,
connectivity, symmetry), byte-identity of the default mesh with the
historic hardwired arithmetic, the chiplet latency model, directory
placement / ``home_directory`` interleaving, and the seeded sampling
that keeps ``validate`` tractable past paper scale.
"""
import pytest

from repro.common.config import NocConfig, SimConfig, noc_for_topology
from repro.noc import topologies as T
from repro.noc.topologies import (
    VALIDATE_SAMPLE_LIMIT,
    ChipletTopology,
    CrossbarTopology,
    MeshTopology,
    RingTopology,
    Topology,
    available_topologies,
    build_topology,
    get_topology,
    register_topology,
)

PAPER = NocConfig(mesh_cols=6, mesh_rows=4)
RING8 = NocConfig(mesh_cols=8, mesh_rows=1, topology="ring")
XBAR8 = NocConfig(mesh_cols=8, mesh_rows=1, topology="crossbar")
CHIP16 = NocConfig(mesh_cols=2, mesh_rows=2, topology="chiplet", chiplets=4)

ALL_CFGS = (PAPER, RING8, XBAR8, CHIP16)


class TestRegistry:
    def test_four_topologies_ship(self):
        assert available_topologies() == ("chiplet", "crossbar", "mesh",
                                          "ring")

    def test_get_topology_resolves(self):
        assert get_topology("mesh") is MeshTopology
        assert get_topology("ring") is RingTopology
        assert get_topology("crossbar") is CrossbarTopology
        assert get_topology("chiplet") is ChipletTopology

    def test_unknown_name_names_the_options(self):
        with pytest.raises(KeyError, match="mesh"):
            get_topology("torus")

    def test_duplicate_registration_rejected(self):
        class Dup(MeshTopology):
            name = "mesh"

        with pytest.raises(ValueError, match="already registered"):
            register_topology(Dup)

    def test_nameless_registration_rejected(self):
        class NoName(MeshTopology):
            name = ""

        with pytest.raises(ValueError, match="name"):
            register_topology(NoName)

    def test_build_topology_memoizes_per_config(self):
        a = build_topology(NocConfig(mesh_cols=6, mesh_rows=4))
        b = build_topology(NocConfig(mesh_cols=6, mesh_rows=4))
        assert a is b
        assert NocConfig().topo is a

    def test_config_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="registered"):
            NocConfig(topology="hypercube")


@pytest.mark.parametrize("cfg", ALL_CFGS,
                         ids=lambda c: c.topology)
class TestConformance:
    """Route conformance shared by every registered topology."""

    def test_validate_passes(self, cfg):
        cfg.topo.validate()

    def test_routes_minimal_and_connected(self, cfg):
        topo = cfg.topo
        n = topo.num_nodes
        for src in range(n):
            for dst in range(n):
                path = topo.route(src, dst)
                assert path[0] == src and path[-1] == dst
                assert len(path) - 1 == topo.hops(src, dst)
                assert len(set(path)) == len(path)
                for a, b in zip(path, path[1:]):
                    assert topo.hops(a, b) == 1

    def test_hops_symmetric(self, cfg):
        topo = cfg.topo
        n = topo.num_nodes
        for src in range(n):
            for dst in range(n):
                assert topo.hops(src, dst) == topo.hops(dst, src)

    def test_router_traversals_include_injection(self, cfg):
        topo = cfg.topo
        assert topo.route_routers(0, 0) == 1
        assert topo.route_routers(0, 1) == topo.hops(0, 1) + 1

    def test_directories_inside_topology(self, cfg):
        assert cfg.directory_nodes
        for d in cfg.directory_nodes:
            assert 0 <= d < cfg.num_nodes

    def test_mean_directory_hops_matches_definition(self, cfg):
        topo = cfg.topo
        dirs = cfg.directory_nodes
        n = topo.num_nodes
        want = sum(topo.hops(s, d) for s in range(n)
                   for d in dirs) / (n * len(dirs))
        assert topo.mean_directory_hops() == pytest.approx(want)

    def test_summary_names_the_shape(self, cfg):
        assert "Directory Controllers" in cfg.topo.summary()


class TestMeshByteIdentity:
    """The default mesh must reproduce the historic NocConfig arithmetic."""

    def test_default_directories_are_table1_corners(self):
        assert PAPER.directory_nodes == (0, 5, 18, 23)

    def test_coords(self):
        topo = PAPER.topo
        assert topo.coords(0) == (0, 0)
        assert topo.coords(5) == (5, 0)
        assert topo.coords(23) == (5, 3)

    def test_hops_manhattan(self):
        topo = PAPER.topo
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 23) == 8
        assert topo.hops(5, 18) == 8

    def test_message_latency_unchanged(self):
        # the historic model: hops * (router + link) + (flits - 1)
        assert PAPER.message_latency(0, 23, 8) == 8 * 2
        assert PAPER.message_latency(0, 23, 72) == 8 * 2 + (5 - 1)
        assert PAPER.message_latency(7, 7, 8) == PAPER.router_latency

    def test_xy_route_order(self):
        assert PAPER.topo.route(0, 23) == [0, 1, 2, 3, 4, 5, 11, 17, 23]

    def test_table1_summary_string_unchanged(self):
        assert PAPER.topo.summary() == (
            "6x4 Mesh, XY Routing, 1-cycle router, 1-cycle link, "
            "4 Directory Controllers at Mesh Corners"
        )

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            PAPER.topo.coords(24)


class TestRing:
    def test_wraparound_hops(self):
        topo = RING8.topo
        assert topo.hops(0, 7) == 1
        assert topo.hops(0, 4) == 4
        assert topo.hops(1, 6) == 3

    def test_shorter_direction_route(self):
        topo = RING8.topo
        assert topo.route(0, 7) == [0, 7]
        assert topo.route(0, 2) == [0, 1, 2]

    def test_tie_goes_clockwise(self):
        assert RING8.topo.route(0, 4) == [0, 1, 2, 3, 4]

    def test_default_directories_spread(self):
        assert RING8.directory_nodes == (0, 2, 4, 6)


class TestCrossbar:
    def test_single_hop_everywhere(self):
        topo = XBAR8.topo
        assert topo.hops(0, 0) == 0
        assert all(topo.hops(0, d) == 1 for d in range(1, 8))
        assert topo.route(3, 6) == [3, 6]

    def test_flat_latency(self):
        assert XBAR8.message_latency(0, 7, 8) == \
            XBAR8.message_latency(3, 4, 8)


class TestChiplet:
    def test_geometry(self):
        topo = CHIP16.topo
        assert CHIP16.num_nodes == 16
        assert topo.chiplet_of(0) == 0
        assert topo.chiplet_of(7) == 1
        assert [topo.gateway(c) for c in range(4)] == [0, 4, 8, 12]

    def test_directory_slice_per_chiplet(self):
        assert CHIP16.directory_nodes == (0, 4, 8, 12)

    def test_cross_chiplet_routes_via_gateways(self):
        topo = CHIP16.topo
        # node 3 is (1,1) of chiplet 0; node 5 is (1,0) of chiplet 1:
        # 2 local hops to gateway 0, the die crossing, 1 hop from gw 4
        assert topo.hops(3, 5) == 4
        assert topo.route(3, 5) == [3, 2, 0, 4, 5]

    def test_die_crossing_costs_chiplet_link_latency(self):
        topo = CHIP16.topo
        assert topo.link_latency(0, 1) == CHIP16.link_latency
        assert topo.link_latency(0, 4) == CHIP16.chiplet_link_latency
        # 3 local hops at (router+link) + the crossing's router + link
        assert topo.path_latency(3, 5) == 3 * 2 + 1 + 4

    def test_cross_chiplet_slower_than_local(self):
        # same hop count, different links: 1->2 is 2 local hops; 0->5 is
        # the crossing plus one local hop
        local = CHIP16.message_latency(1, 2, 8)
        cross = CHIP16.message_latency(0, 5, 8)
        assert CHIP16.topo.hops(1, 2) == CHIP16.topo.hops(0, 5) == 2
        assert cross > local

    def test_single_die_topologies_reject_chiplets(self):
        with pytest.raises(ValueError, match="single-die"):
            NocConfig(topology="mesh", chiplets=2)

    def test_chiplet_needs_at_least_two_dies(self):
        with pytest.raises(ValueError, match="chiplets >= 2"):
            NocConfig(mesh_cols=2, mesh_rows=2, topology="chiplet")

    def test_crossing_cannot_beat_on_die_link(self):
        with pytest.raises(ValueError, match="cannot be faster"):
            NocConfig(mesh_cols=2, mesh_rows=2, topology="chiplet",
                      chiplets=2, link_latency=2, chiplet_link_latency=1)


class TestValidationSampling:
    """Satellite: validate() is exhaustive at paper scale, sampled above."""

    def test_paper_scale_is_exhaustive(self):
        topo = PAPER.topo
        nodes = topo._validate_nodes(VALIDATE_SAMPLE_LIMIT, seed=0)
        assert nodes == list(range(24))

    def test_large_topology_samples(self):
        cfg = noc_for_topology("ring", 256)
        nodes = cfg.topo._validate_nodes(VALIDATE_SAMPLE_LIMIT, seed=0)
        assert len(nodes) < 256
        assert 0 in nodes and 255 in nodes
        assert set(cfg.directory_nodes) <= set(nodes)

    def test_sampling_is_seeded_and_deterministic(self):
        cfg = noc_for_topology("ring", 256)
        a = cfg.topo._validate_nodes(VALIDATE_SAMPLE_LIMIT, seed=7)
        b = cfg.topo._validate_nodes(VALIDATE_SAMPLE_LIMIT, seed=7)
        c = cfg.topo._validate_nodes(VALIDATE_SAMPLE_LIMIT, seed=8)
        assert a == b
        assert a != c

    @pytest.mark.parametrize("name", ["mesh", "ring", "crossbar", "chiplet"])
    def test_256_core_topologies_validate(self, name):
        noc_for_topology(name, 256).topo.validate()


class TestHomeDirectoryInterleave:
    """Satellite: block interleaving under non-corner placements."""

    def test_chiplet_slices_interleave_round_robin(self):
        homes = [CHIP16.home_directory(b * 64, 64) for b in range(8)]
        assert homes == [0, 4, 8, 12, 0, 4, 8, 12]

    def test_ring_adjacent_placement(self):
        cfg = NocConfig(mesh_cols=8, mesh_rows=1, topology="ring",
                        directory_nodes=(2, 3))
        homes = [cfg.home_directory(b * 64, 64) for b in range(4)]
        assert homes == [2, 3, 2, 3]

    def test_every_directory_gets_blocks(self):
        for cfg in ALL_CFGS:
            homes = {cfg.home_directory(b * 64, 64)
                     for b in range(4 * len(cfg.directory_nodes))}
            assert homes == set(cfg.directory_nodes)

    def test_directory_node_outside_topology_rejected(self):
        with pytest.raises(ValueError, match="'ring'"):
            NocConfig(mesh_cols=8, mesh_rows=1, topology="ring",
                      directory_nodes=(8,))

    def test_empty_directory_set_is_a_clear_error(self):
        """A topology that provides no default placement must make
        home_directory fail by name, not by ZeroDivisionError."""

        @register_topology
        class _NullDir(CrossbarTopology):
            name = "nulldir"

            @classmethod
            def default_directory_nodes(cls, cfg):
                return ()

        try:
            cfg = NocConfig(mesh_cols=4, mesh_rows=1, topology="nulldir")
            assert cfg.directory_nodes == ()
            with pytest.raises(ValueError, match="'nulldir'"):
                cfg.home_directory(0, 64)
            with pytest.raises(ValueError, match="no directory nodes"):
                SimConfig(num_cores=4, noc=cfg).home_directory(0)
        finally:
            T._REGISTRY.pop("nulldir")


class TestNocForTopology:
    def test_default_mesh_is_the_paper_machine(self):
        assert noc_for_topology("mesh", 24) == NocConfig()
        assert noc_for_topology("mesh", 4) == NocConfig()

    def test_large_mesh_grows_squareish(self):
        cfg = noc_for_topology("mesh", 64)
        assert (cfg.mesh_cols, cfg.mesh_rows) == (8, 8)
        cfg = noc_for_topology("mesh", 128)
        assert cfg.num_nodes >= 128

    def test_linear_topologies_get_one_node_per_core(self):
        assert noc_for_topology("ring", 64).num_nodes == 64
        assert noc_for_topology("crossbar", 64).num_nodes == 64

    def test_chiplet_splits_over_four_dies(self):
        cfg = noc_for_topology("chiplet", 64)
        assert cfg.chiplets == 4
        assert (cfg.mesh_cols, cfg.mesh_rows) == (4, 4)
        assert cfg.directory_nodes == (0, 16, 32, 48)

    def test_unknown_name_raises_the_registry_error(self):
        with pytest.raises(ValueError, match="registered"):
            noc_for_topology("torus", 24)

    def test_distance_ordering_matches_intuition(self):
        # at 64 cores: crossbar < chiplet < mesh < ring directory distance
        dist = {name: noc_for_topology(name, 64).topo.mean_directory_hops()
                for name in available_topologies()}
        assert dist["crossbar"] < dist["chiplet"]
        assert dist["chiplet"] < dist["mesh"] < dist["ring"]


class TestAbstractBase:
    def test_topology_is_abstract(self):
        with pytest.raises(TypeError):
            Topology(PAPER)  # type: ignore[abstract]
