"""Mesh routing through the topology layer, plus the legacy-module shims.

The property tests that used to drive ``repro.noc.topology`` directly
now go through ``NocConfig.topo``; the legacy module functions survive
as deprecation shims and are pinned here to warn exactly once per call,
naming their replacement.
"""
import warnings

import pytest
from hypothesis import given, strategies as st

from repro.common.config import NocConfig
from repro.noc import topology as legacy

PAPER = NocConfig(mesh_cols=6, mesh_rows=4)
TOPO = PAPER.topo


class TestXYRoute:
    def test_self_route(self):
        assert TOPO.route(7, 7) == [7]

    def test_straight_line(self):
        assert TOPO.route(0, 3) == [0, 1, 2, 3]

    def test_x_then_y(self):
        # 0 is (0,0); 23 is (5,3): route goes across row 0 then down col 5
        assert TOPO.route(0, 23) == [0, 1, 2, 3, 4, 5, 11, 17, 23]

    def test_route_length_is_hops(self):
        for src in range(PAPER.num_nodes):
            for dst in range(PAPER.num_nodes):
                assert len(TOPO.route(src, dst)) - 1 == TOPO.hops(src, dst)

    def test_validate_paper_topology(self):
        TOPO.validate()

    def test_router_traversals_include_injection(self):
        assert TOPO.route_routers(0, 0) == 1
        assert TOPO.route_routers(0, 1) == 2

    @given(
        cols=st.integers(min_value=1, max_value=8),
        rows=st.integers(min_value=1, max_value=8),
    )
    def test_any_mesh_validates(self, cols, rows):
        NocConfig(mesh_cols=cols, mesh_rows=rows).topo.validate()

    @given(st.integers(min_value=0, max_value=23),
           st.integers(min_value=0, max_value=23))
    def test_route_endpoints(self, src, dst):
        path = TOPO.route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(set(path)) == len(path)  # no loops

    @given(st.integers(min_value=0, max_value=23),
           st.integers(min_value=0, max_value=23))
    def test_hops_symmetric(self, src, dst):
        assert TOPO.hops(src, dst) == TOPO.hops(dst, src)


def _single_warning(calls):
    """Run a callable, assert exactly one DeprecationWarning, return it."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = calls()
    deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1, [str(w.message) for w in caught]
    return result, str(deps[0].message)


class TestLegacyModuleShims:
    """Each retired spelling warns exactly once, naming its replacement."""

    def test_xy_route_shim(self):
        path, msg = _single_warning(lambda: legacy.xy_route(PAPER, 0, 23))
        assert path == TOPO.route(0, 23)
        assert "NocConfig.topo.route" in msg

    def test_route_routers_shim(self):
        n, msg = _single_warning(lambda: legacy.route_routers(PAPER, 0, 1))
        assert n == 2
        assert "NocConfig.topo.route_routers" in msg

    def test_validate_topology_shim(self):
        _, msg = _single_warning(lambda: legacy.validate_topology(PAPER))
        assert "NocConfig.topo.validate" in msg

    def test_nocconfig_coords_shim(self):
        xy, msg = _single_warning(lambda: PAPER.coords(23))
        assert xy == (5, 3)
        assert "NocConfig.topo.coords" in msg

    def test_nocconfig_hops_shim(self):
        h, msg = _single_warning(lambda: PAPER.hops(0, 23))
        assert h == 8
        assert "NocConfig.topo.hops" in msg

    def test_nocconfig_corner_nodes_shim(self):
        corners, msg = _single_warning(PAPER.corner_nodes)
        assert corners == (0, 5, 18, 23)
        assert "default_directory_nodes" in msg

    def test_shims_delegate_beyond_the_mesh(self):
        ring = NocConfig(mesh_cols=8, mesh_rows=1, topology="ring")
        with pytest.warns(DeprecationWarning):
            assert legacy.xy_route(ring, 0, 7) == [0, 7]
