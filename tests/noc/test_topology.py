"""Unit + property tests for mesh topology and XY routing."""
from hypothesis import given, strategies as st

from repro.common.config import NocConfig
from repro.noc.topology import route_routers, validate_topology, xy_route

PAPER = NocConfig(mesh_cols=6, mesh_rows=4)


class TestXYRoute:
    def test_self_route(self):
        assert xy_route(PAPER, 7, 7) == [7]

    def test_straight_line(self):
        assert xy_route(PAPER, 0, 3) == [0, 1, 2, 3]

    def test_x_then_y(self):
        # 0 is (0,0); 23 is (5,3): route goes across row 0 then down col 5
        path = xy_route(PAPER, 0, 23)
        assert path == [0, 1, 2, 3, 4, 5, 11, 17, 23]

    def test_route_length_is_hops(self):
        for src in range(PAPER.num_nodes):
            for dst in range(PAPER.num_nodes):
                assert len(xy_route(PAPER, src, dst)) - 1 == PAPER.hops(src, dst)

    def test_validate_paper_topology(self):
        validate_topology(PAPER)

    def test_router_traversals_include_injection(self):
        assert route_routers(PAPER, 0, 0) == 1
        assert route_routers(PAPER, 0, 1) == 2

    @given(
        cols=st.integers(min_value=1, max_value=8),
        rows=st.integers(min_value=1, max_value=8),
    )
    def test_any_mesh_validates(self, cols, rows):
        validate_topology(NocConfig(mesh_cols=cols, mesh_rows=rows))

    @given(st.integers(min_value=0, max_value=23),
           st.integers(min_value=0, max_value=23))
    def test_route_endpoints(self, src, dst):
        path = xy_route(PAPER, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(set(path)) == len(path)  # no loops

    @given(st.integers(min_value=0, max_value=23),
           st.integers(min_value=0, max_value=23))
    def test_hops_symmetric(self, src, dst):
        assert PAPER.hops(src, dst) == PAPER.hops(dst, src)
