"""Unit tests for NoC message transport and traffic accounting."""
import pytest

from repro.common.config import NocConfig
from repro.common.types import MessageClass, MessageType
from repro.coherence.messages import Message
from repro.noc.network import Network
from repro.sim.engine import Engine


def _net(cols=2, rows=2):
    engine = Engine()
    net = Network(NocConfig(mesh_cols=cols, mesh_rows=rows), engine,
                  block_bytes=64)
    return engine, net


class TestDelivery:
    def test_message_delivered_with_latency(self):
        engine, net = _net()
        got = []
        net.register(1, lambda m: got.append((engine.now, m)))
        net.send(Message(MessageType.GETS, 0x40, src=0, dst=1))
        engine.run()
        (when, msg), = got
        assert when == net.cfg.message_latency(0, 1, 8)
        assert msg.mtype is MessageType.GETS

    def test_data_slower_than_control(self):
        engine, net = _net()
        times = {}
        net.register(3, lambda m: times.setdefault(m.mtype, engine.now))
        net.send(Message(MessageType.GETS, 0x40, src=0, dst=3))
        net.send(Message(MessageType.DATA, 0x40, src=0, dst=3,
                         words=[0] * 16))
        engine.run()
        assert times[MessageType.DATA] > times[MessageType.GETS]

    def test_unregistered_destination(self):
        _engine, net = _net()
        with pytest.raises(ValueError):
            net.send(Message(MessageType.GETS, 0x40, src=0, dst=3))

    def test_double_register_rejected(self):
        _engine, net = _net()
        net.register(0, lambda m: None)
        with pytest.raises(ValueError):
            net.register(0, lambda m: None)

    def test_extra_delay(self):
        engine, net = _net()
        got = []
        net.register(1, lambda m: got.append(engine.now))
        net.send(Message(MessageType.ACK, 0x40, src=0, dst=1), extra_delay=10)
        engine.run()
        assert got[0] == net.cfg.message_latency(0, 1, 8) + 10


class TestAccounting:
    def test_class_counts(self):
        engine, net = _net()
        net.register(1, lambda m: None)
        net.send(Message(MessageType.GETS, 0x40, src=0, dst=1))
        net.send(Message(MessageType.GETX, 0x40, src=0, dst=1))
        net.send(Message(MessageType.UPGRADE, 0x40, src=0, dst=1))
        net.send(Message(MessageType.INV, 0x40, src=0, dst=1))
        net.send(Message(MessageType.DATA, 0x40, src=0, dst=1, words=[0] * 16))
        engine.run()
        counts = net.class_counts()
        assert counts[MessageClass.GETS] == 1
        assert counts[MessageClass.GETX] == 1
        assert counts[MessageClass.UPGRADE] == 1
        assert counts[MessageClass.OTHER] == 1
        assert counts[MessageClass.DATA] == 1

    def test_flit_accounting(self):
        engine, net = _net()
        net.register(1, lambda m: None)
        net.send(Message(MessageType.DATA, 0x40, src=0, dst=1, words=[0] * 16))
        engine.run()
        # 64B block + 8B header = 72B -> 5 flits of 16B, one hop
        assert net.stats.flits == 5
        assert net.stats.flit_hops == 5
        assert net.stats.router_traversals == 10  # 2 routers x 5 flits

    def test_account_transfer_counts_without_delivery(self):
        _engine, net = _net()
        lat = net.account_transfer(0, 3, data=True)
        assert lat == net.cfg.message_latency(0, 3, 72)
        assert net.stats.messages == 1
        assert net.class_counts()[MessageClass.OTHER] == 1

    def test_finalize_stats_exports_classes(self):
        engine, net = _net()
        net.register(1, lambda m: None)
        net.send(Message(MessageType.GETS, 0x40, src=0, dst=1))
        engine.run()
        net.finalize_stats()
        assert net.stats.msgs_GETS == 1

    def test_data_message_requires_words(self):
        with pytest.raises(Exception):
            Message(MessageType.DATA, 0x40, src=0, dst=1)
