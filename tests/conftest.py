"""Shared fixtures and helpers for the test suite."""
from __future__ import annotations

import pytest

from repro.common.config import SimConfig, small_config
from repro.isa.instructions import (
    Compute, Load, Scribble, SetAprx, Store,
)
from repro.sim.machine import Machine


class TraceRecorder:
    """Captures L1 coherence transitions for assertions."""

    def __init__(self) -> None:
        self.events: list[tuple[int, int, int, str, str, str]] = []

    def attach(self, machine: Machine) -> None:
        for l1 in machine.l1s:
            l1.transition_hook = self._record

    def _record(self, cycle, node, block, old, new, why) -> None:
        self.events.append((cycle, node, block, old.value, new.value, why))

    def transitions(self, node: int | None = None) -> list[tuple[str, str]]:
        return [
            (old, new)
            for (_c, n, _b, old, new, _w) in self.events
            if node is None or n == node
        ]

    def has(self, old: str, new: str, node: int | None = None) -> bool:
        return (old, new) in self.transitions(node)


#: Legacy (base, enabled=True) spellings map to the registry's approx
#: variants so tests written against the old two-knob interface build
#: the same machine without tripping the DeprecationWarning shim.
_LEGACY_APPROX = {"mesi": "ghostwriter", "moesi": "ghostwriter-moesi"}


def build_machine(num_cores: int = 2, *, enabled: bool = True,
                  d_distance: int = 4, gi_timeout: int = 1024,
                  quantum: int = 8, protocol: str = "mesi") -> Machine:
    from dataclasses import replace
    if enabled:
        protocol = _LEGACY_APPROX.get(protocol, protocol)
    cfg = small_config(
        num_cores=num_cores, enabled=enabled, d_distance=d_distance,
        gi_timeout=gi_timeout, core_quantum=quantum,
    )
    return Machine(replace(cfg, protocol=protocol))


def run_scripts(machine: Machine, *scripts, max_cycles: int = 2_000_000) -> int:
    """Bind generator scripts to cores 0..n-1 and run to completion."""
    for cid, script in enumerate(scripts):
        machine.add_thread(cid, script)
    end = machine.run(max_cycles=max_cycles)
    machine.check_quiescent()
    return end


def simple_writer(addr: int, values) :
    def prog():
        yield SetAprx(4)
        for v in values:
            yield Store(addr, v)
    return prog()


@pytest.fixture
def machine2():
    return build_machine(2)


@pytest.fixture
def machine4():
    return build_machine(4)


@pytest.fixture
def baseline2():
    return build_machine(2, enabled=False)


__all__ = [
    "TraceRecorder", "build_machine", "run_scripts",
    "Load", "Store", "Scribble", "SetAprx", "Compute",
]
